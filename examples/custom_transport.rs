//! Scenario: running the protocol over a real channel with the server
//! on its own thread — the deployment shape of the library (the
//! in-process `sync_file` driver is for experiments; a real tool talks
//! over a socket-like transport).
//!
//! Also demonstrates the [`msync::protocol::LinkModel`] to answer the
//! operational question: *on which links does the multi-round protocol
//! win over rsync?*
//!
//! ```text
//! cargo run --release --example custom_transport
//! ```

use msync::core::{sync_file_with, ChannelOptions, ProtocolConfig, SyncOptions};
use msync::protocol::LinkModel;
use std::time::Duration;

fn main() {
    let old: Vec<u8> = b"status-report: all systems nominal; sensors 1..64 online.\n"
        .iter()
        .copied()
        .cycle()
        .take(80_000)
        .collect();
    let mut new = old.clone();
    new.splice(40_000..40_000, b"ALERT: sensor 17 offline since 03:12 UTC\n".iter().copied());

    // Client and server talk through a real duplex channel; the server
    // runs on its own thread. Byte accounting comes from the channel.
    let opts = SyncOptions { channel: Some(ChannelOptions::default()), ..SyncOptions::default() };
    let outcome =
        sync_file_with(&old, &new, &ProtocolConfig::default(), &opts).expect("sync succeeds");
    assert_eq!(outcome.reconstructed, new);
    println!(
        "channel run: {} bytes, {} roundtrips (file {} KiB)",
        outcome.stats.total_bytes(),
        outcome.stats.traffic.roundtrips,
        new.len() / 1024
    );

    // The trade-off the paper calls out: msync spends roundtrips to save
    // bytes. Where is the crossover vs rsync as latency grows?
    let rsync = msync::rsync::sync(&old, &new, 700);
    println!("\nrsync: {} bytes, 1 roundtrip", rsync.stats.total_bytes());
    println!(
        "\nestimated single-file times by round-trip latency (56 kbit/s up, 256 kbit/s down):"
    );
    println!("{:>10}  {:>10}  {:>10}  winner", "RTT", "msync", "rsync");
    for rtt_ms in [5u64, 20, 50, 100, 200, 500] {
        let link =
            LinkModel { up_bps: 56_000.0, down_bps: 256_000.0, rtt: Duration::from_millis(rtt_ms) };
        let tm = link.estimate(&outcome.stats.traffic);
        let tr = link.estimate(&rsync.stats);
        println!(
            "{:>8}ms  {:>9.2}s  {:>9.2}s  {}",
            rtt_ms,
            tm.as_secs_f64(),
            tr.as_secs_f64(),
            if tm < tr { "msync" } else { "rsync" },
        );
    }
    println!("\nFor single files on high-latency links, rsync's one roundtrip wins;");
    println!("for collections, msync batches its rounds across all files (see the");
    println!("web_mirror example), which is the regime the paper targets.");
}
