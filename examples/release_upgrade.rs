//! Scenario: mirroring a software release tree over a slow link — the
//! paper's gcc/emacs experiment as an application.
//!
//! A mirror holds release N of a ~1000-file source tree and wants
//! release N+1. We compare what each transfer strategy would cost and
//! how long it would take on early-2000s links.
//!
//! ```text
//! cargo run --release --example release_upgrade
//! ```

use msync::core::{sync_collection, FileEntry, ProtocolConfig};
use msync::corpus::{gcc_like, release_pair};
use msync::protocol::{LinkModel, TrafficStats};

fn main() {
    // A scaled-down gcc-like minor release pair (10% of the paper's
    // 1002 files ≈ 2.7 MB; pass 1.0 to gcc_like for the full size).
    let pair = release_pair(&gcc_like(0.1));
    let (old, new) = pair.pair(0, 1);
    println!(
        "release tree: {} files, {} KB -> {} files, {} KB",
        old.len(),
        old.total_bytes() / 1024,
        new.len(),
        new.total_bytes() / 1024
    );

    let to_entries = |c: &msync::corpus::Collection| -> Vec<FileEntry> {
        c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
    };

    let outcome = sync_collection(&to_entries(old), &to_entries(new), &ProtocolConfig::default())
        .expect("valid configuration");
    for (got, want) in outcome.files.iter().zip(new.files()) {
        assert_eq!(got.data, want.data);
    }
    println!(
        "msync: {} KB total, {} roundtrips ({} unchanged, {} created, {} deleted)",
        outcome.traffic.total_bytes() / 1024,
        outcome.traffic.roundtrips,
        outcome.unchanged,
        outcome.created,
        outcome.deleted,
    );

    // rsync comparison, file by file.
    let mut rsync_total = TrafficStats::new();
    for nf in new.files() {
        let old_data = old.get(&nf.name).map(|f| f.data.clone()).unwrap_or_default();
        let out = msync::rsync::sync(&old_data, &nf.data, msync::rsync::DEFAULT_BLOCK_SIZE);
        rsync_total.merge(&out.stats);
    }
    println!("rsync: {} KB total", rsync_total.total_bytes() / 1024);

    // What does that mean on a slow link?
    println!("\nestimated transfer times:");
    for (name, link) in [
        ("56k dial-up", LinkModel::dialup()),
        ("DSL        ", LinkModel::dsl()),
        ("cable      ", LinkModel::cable()),
        ("T1         ", LinkModel::t1()),
    ] {
        println!(
            "  {name}: msync {:>7.1?}  vs  rsync {:>7.1?}",
            link.estimate(&outcome.traffic),
            link.estimate(&rsync_total),
        );
    }
}
