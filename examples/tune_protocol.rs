//! Scenario: tuning the protocol with a parameter file — the paper's
//! prototype is driven by "a simple parameter file" selecting the
//! techniques per round, and §7 asks for a tool that adapts its
//! parameters to the data set.
//!
//! This example parses parameter files, sweeps a few candidate
//! configurations over a sample of the collection, and picks the
//! cheapest — a small version of the adaptive tool the paper sketches.
//!
//! ```text
//! cargo run --release --example tune_protocol
//! ```

use msync::core::params;
use msync::core::{sync_file, ProtocolConfig};
use msync::corpus::{gcc_like, release_pair};

fn main() {
    // Candidate configurations, written exactly like the paper's
    // parameter files.
    let candidates: Vec<(&str, &str)> = vec![
        (
            "conservative (2 roundtrip-ish, big blocks)",
            "min_block_global = 256\nmin_block_cont = 256\nuse_continuation = false\nverify = per_candidate 24\n",
        ),
        (
            "balanced (defaults)",
            "", // empty file = library defaults
        ),
        (
            "aggressive (deep recursion, 3 verify batches)",
            "min_block_global = 64\nmin_block_cont = 8\ncont_bits = 3\nverify = group 6x12, 3x14, 1x16\n",
        ),
    ];

    // Tune on a sample: a handful of changed files from a gcc-like pair.
    let pair = release_pair(&gcc_like(0.03));
    let (old, new) = pair.pair(0, 1);
    let sample: Vec<(&[u8], &[u8])> = new
        .files()
        .iter()
        .filter_map(|nf| {
            let of = old.get(&nf.name)?;
            (of.data != nf.data).then_some((of.data.as_slice(), nf.data.as_slice()))
        })
        .take(8)
        .collect();
    println!("tuning on {} changed files\n", sample.len());

    let mut best: Option<(&str, u64, ProtocolConfig)> = None;
    for (name, text) in &candidates {
        let cfg = params::parse(text).expect("example parameter files are valid");
        let mut total = 0u64;
        let mut roundtrips = 0u32;
        for (o, n) in &sample {
            let out = sync_file(o, n, &cfg).expect("sync succeeds");
            assert_eq!(out.reconstructed, *n);
            total += out.stats.total_bytes();
            roundtrips = roundtrips.max(out.stats.traffic.roundtrips);
        }
        println!("{name}\n  -> {total} bytes over the sample, ≤{roundtrips} roundtrips");
        if best.as_ref().is_none_or(|(_, b, _)| total < *b) {
            best = Some((name, total, cfg));
        }
    }

    let (winner, bytes, cfg) = best.expect("candidates non-empty");
    println!("\nwinner: {winner} ({bytes} bytes)");
    println!("\nits parameter file:\n{}", params::render(&cfg));
}
