//! Scenario: updating a file **in place** on a space-constrained device
//! (the paper's related work [40], in-place rsync for "mobile and
//! wireless devices") — the token stream overwrites the old file's own
//! buffer, with cycles in the block-move graph broken through a scratch
//! block.
//!
//! ```text
//! cargo run --release --example inplace_update
//! ```

use msync::rsync::inplace::apply_inplace;
use msync::rsync::matcher::match_tokens;
use msync::rsync::Signatures;

fn main() {
    // A device holds a 64 KiB database image; the new firmware image
    // reorganizes it: header rewritten, two sections swapped, a little
    // data appended. No room for a second copy.
    let section = |seed: u64, n: usize| -> Vec<u8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    };
    let header = section(1, 4_096);
    let a = section(2, 28_672);
    let b = section(9, 28_672); // seeds map through `| 1`: keep them distinct
    let old = [header.clone(), a.clone(), b.clone()].concat();

    let mut new_header = header.clone();
    new_header[..16].copy_from_slice(b"FWIMG-v2========");
    let new = [new_header, b, a, section(12, 2_048)].concat(); // swap + append

    // Standard rsync exchange to get the token stream…
    let sigs = Signatures::compute(&old, 2_048);
    let tokens = match_tokens(&new, &sigs);

    // …then apply it in place.
    let mut buf = old.clone();
    let stats = apply_inplace(&mut buf, &sigs, &tokens).expect("valid token stream");
    assert_eq!(buf, new);

    let literal_bytes: usize = tokens
        .iter()
        .map(|t| match t {
            msync::rsync::matcher::Token::Literal(v) => v.len(),
            _ => 0,
        })
        .sum();
    println!("old image : {} KiB", old.len() / 1024);
    println!("new image : {} KiB", new.len() / 1024);
    println!(
        "reused    : {} block copies ({} KiB moved in place)",
        stats.copies,
        (new.len() - literal_bytes) / 1024
    );
    println!("downloaded: {} KiB of literals", literal_bytes / 1024);
    println!(
        "cycles    : {} broken, peak scratch {} bytes",
        stats.cycles_broken, stats.peak_scratch
    );
    println!("\nThe swap of the two 28 KiB sections forms a dependency cycle in");
    println!("the block-move graph; one scratch block is all the extra memory");
    println!("the update needed.");
}
