//! Scenario: keeping a mirrored web-page collection fresh — the
//! application that motivated the paper ("our main motivation for this
//! work is to build a system for efficiently sharing large recrawls over
//! a wide area network").
//!
//! A client mirrors a crawl of web pages and refreshes it after 1, 2 and
//! 7 days of churn; we report the per-interval cost of each strategy,
//! i.e. Table 6.2 as a library user would run it.
//!
//! ```text
//! cargo run --release --example web_mirror
//! ```

use msync::core::{sync_collection, FileEntry, ProtocolConfig};
use msync::corpus::{web_collection, web_params};

fn main() {
    // 2% of the paper's 10,000 pages (≈ 3 MB per snapshot); raise the
    // scale for the full experiment via the `exp` binary.
    let params = web_params(0.02);
    let crawl = web_collection(&params, 7);
    println!(
        "crawl: {} pages, {} KB per snapshot",
        crawl.versions[0].len(),
        crawl.versions[0].total_bytes() / 1024
    );

    let to_entries = |c: &msync::corpus::Collection| -> Vec<FileEntry> {
        c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
    };

    println!("\nrefresh cost by update interval (msync, all techniques):");
    for days in [1usize, 2, 7] {
        let (old, new) = crawl.pair(0, days);
        let out = sync_collection(&to_entries(old), &to_entries(new), &ProtocolConfig::default())
            .expect("valid configuration");
        let changed = new.len() - out.unchanged;
        println!(
            "  after {days} day(s): {:>6} KB for {:>4} changed pages ({} roundtrips, {:.1}% of raw)",
            out.traffic.total_bytes() / 1024,
            changed,
            out.traffic.roundtrips,
            100.0 * out.traffic.total_bytes() as f64 / new.total_bytes() as f64,
        );
    }

    println!("\nThe paper's observation holds: even a week of drift syncs for a");
    println!("few percent of the collection size, so a mirror on a DSL line can");
    println!("stay fresh nightly.");
}
