//! Quickstart: synchronize one file and inspect the cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use msync::core::{sync_file, ProtocolConfig};

fn main() {
    // The client holds yesterday's document…
    let old: Vec<u8> = b"# Release notes\n\nNothing to report yet.\n"
        .iter()
        .copied()
        .cycle()
        .take(20_000)
        .collect();

    // …the server holds today's, with a paragraph inserted in the middle
    // and a correction near the end.
    let mut new = old.clone();
    new.splice(
        10_000..10_000,
        b"\n## Breaking change\nThe frobnicator now defaults to level 3.\n".iter().copied(),
    );
    let at = new.len() - 100;
    new[at..at + 7].copy_from_slice(b"Plenty!");

    // One call runs the whole multi-round protocol: map construction
    // (recursive splitting + continuation hashes + group-testing
    // verification) followed by the delta transfer.
    let outcome = sync_file(&old, &new, &ProtocolConfig::default()).expect("valid configuration");

    assert_eq!(outcome.reconstructed, new, "client now holds the server's file");
    let stats = &outcome.stats;
    println!("file size        : {} bytes", new.len());
    println!(
        "bytes on the wire: {} ({:.1}% of the file)",
        stats.total_bytes(),
        100.0 * stats.total_bytes() as f64 / new.len() as f64
    );
    println!("roundtrips       : {}", stats.traffic.roundtrips);
    println!(
        "map knew         : {} of {} bytes before the delta phase",
        stats.known_bytes,
        new.len()
    );
    println!("final delta      : {} bytes", stats.delta_bytes);
    println!();
    println!("per-round harvest:");
    for level in &stats.levels {
        println!(
            "  block {:>6} B: {:>3} items ({} continuation, {} suppressed) -> {:>3} candidates, {:>3} confirmed",
            level.block_size, level.items, level.cont_items, level.suppressed, level.candidates, level.confirmed
        );
    }
}
