//! # msync — multi-round file synchronization
//!
//! A Rust implementation of the file-synchronization framework of
//! Suel, Noel and Trendafilov, *Improved File Synchronization Techniques
//! for Maintaining Large Replicated Collections over Slow Networks*
//! (ICDE 2004).
//!
//! The problem: a client holds an outdated file `f_old`, a server holds
//! the current file `f_new`, and the client must obtain `f_new` with as
//! little communication as possible. rsync solves this with one roundtrip
//! of fixed-size block hashes; this crate implements the paper's
//! multi-round improvement, which typically halves rsync's traffic and
//! comes within a factor ~1.5–2 of a local delta compressor.
//!
//! ## Crate layout
//!
//! * [`hashes`] — rolling, decomposable, and strong (MD4/MD5) hashes.
//! * [`compress`] — gzip-like stream compression, a zdelta-like delta
//!   coder, and a vcdiff-like delta coder.
//! * [`protocol`] — message framing, byte-accounting channels, and a
//!   slow-link cost model.
//! * [`rsync`] — a complete reimplementation of the rsync algorithm used
//!   as the baseline throughout the paper.
//! * [`core`] — the paper's contribution: two-phase (map construction +
//!   delta) multi-round synchronization, with recursive block splitting,
//!   group-testing match verification, continuation/local hashes, and
//!   decomposable hash functions.
//! * [`cdc`] — an LBFS-style content-defined-chunking synchronizer,
//!   a related-work baseline.
//! * [`recon`] — changed-file identification (Merkle difference and
//!   group-testing reconciliation), the §4 related-work substrate.
//! * [`net`] — the real network layer: a TCP-backed transport speaking
//!   the same frame codec, the `msync serve` daemon, and the
//!   `--remote` client running the pipelined collection scheduler.
//! * [`corpus`] — synthetic data sets with the statistical shape of the
//!   paper's gcc, emacs, and web-crawl collections.
//! * [`trace`] — first-party observability: typed span events, log2
//!   latency histograms, the JSONL journal sink, and the Prometheus-style
//!   metrics snapshot aggregated by the serve daemon.
//!
//! ## Quickstart
//!
//! ```
//! use msync::core::{sync_file, ProtocolConfig};
//!
//! let old = b"the quick brown fox jumps over the lazy dog".repeat(100);
//! let mut new = old.clone();
//! new.extend_from_slice(b"... and a new sentence appears at the end");
//!
//! let outcome = sync_file(&old, &new, &ProtocolConfig::default()).unwrap();
//! assert_eq!(outcome.reconstructed, new);
//! println!("transferred {} bytes for a {}-byte file",
//!          outcome.stats.total_bytes(), new.len());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use msync_cdc as cdc;
pub use msync_compress as compress;
pub use msync_core as core;
pub use msync_corpus as corpus;
pub use msync_hash as hashes;
pub use msync_net as net;
pub use msync_protocol as protocol;
pub use msync_recon as recon;
pub use msync_rsync as rsync;
pub use msync_trace as trace;
