//! Randomized property tests over the core invariants.
//!
//! The one invariant the whole system hangs on: *whatever the inputs,
//! the client ends up with exactly the server's bytes.* Plus the
//! algebraic identities of the decomposable hash and the lossless-coding
//! roundtrips, which the protocol's correctness argument relies on.
//!
//! These were proptest strategies in an earlier revision; the offline
//! build (see DESIGN.md) replaces them with explicit deterministic
//! case loops over the vendored [`msync::corpus::Rng`]. Every case is
//! reproducible from its printed seed.

use msync::core::{sync_file, ProtocolConfig, VerifyStrategy};
use msync::corpus::Rng;
use msync::hashes::decomposable::{
    prefix_decompose_left, prefix_decompose_right, DecomposableDigest,
};
use msync::hashes::rolling::RollingHash;
use msync::hashes::{BitReader, BitWriter, DecomposableAdler};

/// Byte vectors with adversarial structure: random, repetitive, and
/// phrase-repeating segments — the same three shapes the old proptest
/// strategy drew from.
fn gen_file(rng: &mut Rng, max: usize) -> Vec<u8> {
    let n = rng.gen_range(0..=max);
    match rng.gen_range(0..3u32) {
        0 => (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect(),
        1 => {
            // Low-entropy: few distinct bytes, long runs.
            let alphabet = [0u8, 1, b'a'];
            (0..n).map(|_| alphabet[rng.gen_range(0..3usize)]).collect()
        }
        _ => {
            // Repeating phrase with occasional noise.
            let phrase = b"the quick brown fox ";
            let salt = rng.gen_range(0..256u32) as u8;
            (0..n)
                .map(|i| {
                    if i % 97 == 0 {
                        salt.wrapping_add((i % 256) as u8)
                    } else {
                        phrase[i % phrase.len()]
                    }
                })
                .collect()
        }
    }
}

/// A derived version: the old file plus random splices.
fn edited_pair(rng: &mut Rng, max: usize) -> (Vec<u8>, Vec<u8>) {
    let old = gen_file(rng, max);
    let mut new = old.clone();
    for _ in 0..rng.gen_range(0..5u32) {
        let insert = gen_file(rng, 64);
        if new.is_empty() {
            new = insert;
            continue;
        }
        let at = rng.gen_range(0..new.len());
        let del = (insert.len() / 2).min(new.len() - at);
        new.splice(at..at + del, insert);
    }
    (old, new)
}

fn quick_cfg() -> ProtocolConfig {
    ProtocolConfig {
        start_block: 1 << 10,
        min_block_global: 32,
        min_block_cont: 8,
        ..ProtocolConfig::default()
    }
}

/// Run `cases` deterministic cases, seeding each from `tag ^ case index`
/// so a failure names the exact reproducing seed.
fn for_cases(tag: u64, cases: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = tag ^ case;
        let mut rng = Rng::seed_from_u64(seed);
        body(&mut rng);
    }
}

#[test]
fn msync_reconstructs_exactly() {
    for_cases(0x6d73796e_0001, 64, |rng| {
        let (old, new) = edited_pair(rng, 4096);
        let out = sync_file(&old, &new, &quick_cfg()).unwrap();
        assert_eq!(out.reconstructed, new);
    });
}

#[test]
fn msync_exact_with_weak_hashes() {
    // Deliberately weak parameters: correctness must come from the
    // fingerprint fallback, not from hash strength.
    let cfg = ProtocolConfig {
        global_extra_bits: 0,
        cont_bits: 1,
        verify: VerifyStrategy::PerCandidate { bits: 2 },
        ..quick_cfg()
    };
    for_cases(0x6d73796e_0002, 64, |rng| {
        let (old, new) = edited_pair(rng, 2048);
        let out = sync_file(&old, &new, &cfg).unwrap();
        assert_eq!(out.reconstructed, new);
    });
}

#[test]
fn rsync_reconstructs_exactly() {
    for_cases(0x6d73796e_0003, 64, |rng| {
        let (old, new) = edited_pair(rng, 4096);
        let out = msync::rsync::sync(&old, &new, 128);
        assert_eq!(out.reconstructed, new);
    });
}

#[test]
fn lz_roundtrip() {
    for_cases(0x6d73796e_0004, 64, |rng| {
        let data = gen_file(rng, 8192);
        let c = msync::compress::compress(&data);
        assert_eq!(msync::compress::decompress(&c).unwrap(), data);
    });
}

#[test]
fn delta_roundtrip() {
    for_cases(0x6d73796e_0005, 64, |rng| {
        let reference = gen_file(rng, 4096);
        let target = gen_file(rng, 4096);
        let d = msync::compress::delta_encode(&reference, &target);
        assert_eq!(msync::compress::delta_decode(&reference, &d).unwrap(), target);
    });
}

#[test]
fn delta_roundtrip_similar() {
    for_cases(0x6d73796e_0006, 64, |rng| {
        let (old, new) = edited_pair(rng, 4096);
        let d = msync::compress::delta_encode(&old, &new);
        assert_eq!(msync::compress::delta_decode(&old, &d).unwrap(), new);
        // Identity-ish deltas stay small relative to the file.
        if old == new && !old.is_empty() {
            assert!(d.len() < old.len().max(256));
        }
    });
}

#[test]
fn vcdiff_roundtrip() {
    for_cases(0x6d73796e_0007, 64, |rng| {
        let reference = gen_file(rng, 4096);
        let target = gen_file(rng, 4096);
        let d = msync::compress::vcdiff_encode(&reference, &target);
        assert_eq!(msync::compress::vcdiff_decode(&reference, &d).unwrap(), target);
    });
}

#[test]
fn decomposable_compose_decompose() {
    for_cases(0x6d73796e_0008, 64, |rng| {
        let data = gen_file(rng, 2048);
        let split = rng.gen_range(0..=data.len());
        let l = DecomposableDigest::of(&data[..split]);
        let r = DecomposableDigest::of(&data[split..]);
        let p = l.compose(&r);
        assert_eq!(p, DecomposableDigest::of(&data));
        assert_eq!(p.decompose_right(&l), Some(r));
        assert_eq!(p.decompose_left(&r), Some(l));
    });
}

#[test]
fn decomposable_prefix_identities() {
    for_cases(0x6d73796e_0009, 64, |rng| {
        let data = gen_file(rng, 1024);
        let split = rng.gen_range(0..=data.len());
        let bits = rng.gen_range(1..=64u32);
        let l = DecomposableDigest::of(&data[..split]);
        let r = DecomposableDigest::of(&data[split..]);
        let p = l.compose(&r);
        assert_eq!(
            prefix_decompose_right(p.prefix(bits), l.prefix(bits), bits, r.len),
            r.prefix(bits)
        );
        assert_eq!(
            prefix_decompose_left(p.prefix(bits), r.prefix(bits), bits, r.len),
            l.prefix(bits)
        );
    });
}

#[test]
fn rolling_equals_recompute() {
    for_cases(0x6d73796e_000a, 32, |rng| {
        let n = rng.gen_range(2..512usize);
        let data: Vec<u8> = (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect();
        let window = 1 + rng.gen_range(0..data.len() - 1);
        let mut h = DecomposableAdler::new();
        h.reset(&data[..window]);
        for start in 1..=(data.len() - window) {
            h.roll(data[start - 1], data[start + window - 1]);
            assert_eq!(h.value(), DecomposableDigest::of(&data[start..start + window]).value());
        }
    });
}

#[test]
fn bitio_roundtrip() {
    for_cases(0x6d73796e_000b, 64, |rng| {
        let ops: Vec<(u64, u32)> = (0..rng.gen_range(0..64u32))
            .map(|_| (rng.next_u64(), rng.gen_range(0..=64u32)))
            .collect();
        let mut w = BitWriter::new();
        for &(v, bits) in &ops {
            w.write_bits(v, bits);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, bits) in &ops {
            let expect = if bits == 64 {
                v
            } else if bits == 0 {
                0
            } else {
                v & ((1u64 << bits) - 1)
            };
            assert_eq!(r.read_bits(bits).unwrap(), expect);
        }
    });
}

#[test]
fn fingerprints_separate() {
    for_cases(0x6d73796e_000c, 64, |rng| {
        let a = gen_file(rng, 512);
        let b = gen_file(rng, 512);
        let fa = msync::hashes::file_fingerprint(&a);
        let fb = msync::hashes::file_fingerprint(&b);
        assert_eq!(a == b, fa == fb);
    });
}

#[test]
fn md5_md4_incremental() {
    for_cases(0x6d73796e_000d, 64, |rng| {
        let data = gen_file(rng, 2048);
        let chunk = rng.gen_range(1..64usize);
        let mut m5 = msync::hashes::Md5::new();
        let mut m4 = msync::hashes::Md4::new();
        for chunk in data.chunks(chunk) {
            m5.update(chunk);
            m4.update(chunk);
        }
        assert_eq!(m5.finish(), msync::hashes::Md5::digest(&data));
        assert_eq!(m4.finish(), msync::hashes::Md4::digest(&data));
    });
}

/// Decoders must never panic on adversarial input — corrupt streams are
/// a fact of life for a network tool. (Errors are fine; panics are not.)
mod decoder_robustness {
    use super::{edited_pair, for_cases, gen_file};

    fn junk(rng: &mut msync::corpus::Rng, max: usize) -> Vec<u8> {
        let n = rng.gen_range(0..=max);
        (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect()
    }

    #[test]
    fn lz_decompress_never_panics() {
        for_cases(0x6a756e6b_0001, 256, |rng| {
            let _ = msync::compress::decompress(&junk(rng, 2048));
        });
    }

    #[test]
    fn delta_decode_never_panics() {
        for_cases(0x6a756e6b_0002, 256, |rng| {
            let reference = junk(rng, 512);
            let _ = msync::compress::delta_decode(&reference, &junk(rng, 2048));
        });
    }

    #[test]
    fn vcdiff_decode_never_panics() {
        for_cases(0x6a756e6b_0003, 256, |rng| {
            let reference = junk(rng, 512);
            let _ = msync::compress::vcdiff_decode(&reference, &junk(rng, 2048));
        });
    }

    #[test]
    fn signature_decode_never_panics() {
        for_cases(0x6a756e6b_0004, 256, |rng| {
            let _ = msync::rsync::Signatures::decode(&junk(rng, 1024));
        });
    }

    #[test]
    fn token_deserialize_never_panics() {
        for_cases(0x6a756e6b_0005, 256, |rng| {
            let _ = msync::rsync::matcher::deserialize_tokens(&junk(rng, 1024));
        });
    }

    #[test]
    fn bit_corrupted_delta_decodes_or_errors_never_panics() {
        for_cases(0x6a756e6b_0006, 128, |rng| {
            // Flip one bit in a real delta: the decoder must either
            // error or produce bytes — and if it produces the *right*
            // bytes the flip hit padding. It must never panic; the
            // outer fingerprint check (exercised in the sync tests)
            // catches wrong output.
            let (old, new) = edited_pair(rng, 2048);
            let mut d = msync::compress::delta_encode(&old, &new);
            if !d.is_empty() {
                let bit = rng.gen_range(0..d.len() * 8);
                d[bit / 8] ^= 1 << (bit % 8);
                let _ = msync::compress::delta_decode(&old, &d);
            }
        });
    }

    #[test]
    fn gen_file_shapes_are_exercised() {
        // Guard against the generator degenerating: all three shapes and
        // a spread of lengths must appear across the seed range.
        let mut empties = 0;
        let mut large = 0;
        for_cases(0x6a756e6b_0007, 64, |rng| {
            let f = gen_file(rng, 4096);
            if f.is_empty() {
                empties += 1;
            }
            if f.len() > 1024 {
                large += 1;
            }
        });
        assert!(large > 5, "generator never produced large files");
        assert!(empties < 60, "generator produced almost only empty files");
    }
}

/// Cross-implementation agreement and the extension surfaces.
mod extensions {
    use super::{edited_pair, for_cases};
    use msync::cdc::ChunkParams;
    use msync::core::{sync_file_with, ChannelOptions, ProtocolConfig, SyncOptions};

    #[test]
    fn cdc_sync_reconstructs_exactly() {
        for_cases(0x65787431, 32, |rng| {
            let (old, new) = edited_pair(rng, 8192);
            let params = ChunkParams { avg_size: 512, min_size: 64, max_size: 4096 };
            let out = msync::cdc::sync(&old, &new, &params);
            assert_eq!(out.reconstructed, new);
        });
    }

    #[test]
    fn inplace_matches_out_of_place() {
        for_cases(0x65787432, 32, |rng| {
            let (old, new) = edited_pair(rng, 4096);
            let sigs = msync::rsync::Signatures::compute(&old, 128);
            let tokens = msync::rsync::matcher::match_tokens(&new, &sigs);
            let expected = msync::rsync::reconstruct::apply(&old, &sigs, &tokens).unwrap();
            let mut buf = old.clone();
            msync::rsync::inplace::apply_inplace(&mut buf, &sigs, &tokens).unwrap();
            assert_eq!(buf, expected);
        });
    }

    #[test]
    fn channel_sync_reconstructs_exactly() {
        let cfg = ProtocolConfig {
            start_block: 1 << 10,
            min_block_global: 32,
            min_block_cont: 8,
            ..ProtocolConfig::default()
        };
        let opts =
            SyncOptions { channel: Some(ChannelOptions::default()), ..SyncOptions::default() };
        for_cases(0x65787433, 32, |rng| {
            let (old, new) = edited_pair(rng, 4096);
            let out = sync_file_with(&old, &new, &cfg, &opts).unwrap();
            assert_eq!(out.reconstructed, new);
        });
    }
}

/// Structural invariants of the shared interval machinery and the
/// broadcast variant's exactness.
mod structures {
    use super::{edited_pair, for_cases};
    use msync::core::coverage::Coverage;

    #[test]
    fn coverage_invariants_under_disjoint_inserts() {
        for_cases(0x73747231, 128, |rng| {
            // Interpret each value as a grid slot of width 16; dedup to
            // keep inserts disjoint.
            let mut slots: Vec<u64> =
                (0..rng.gen_range(1..40u32)).map(|_| u64::from(rng.gen_range(0..200u32))).collect();
            slots.sort_unstable();
            slots.dedup();
            let mut c = Coverage::new();
            let mut order = slots.clone();
            // Insert in a scrambled but deterministic order.
            order.reverse();
            let mut total = 0u64;
            for s in order {
                c.insert(s * 16, 16);
                total += 16;
            }
            assert_eq!(c.covered_bytes(), total);
            // Intervals sorted, disjoint, non-touching.
            let iv = c.intervals();
            for w in iv.windows(2) {
                assert!(w[0].1 < w[1].0, "{iv:?}");
            }
            // Every inserted slot contained; gaps free.
            for &s in &slots {
                assert!(c.contains(s * 16, 16));
            }
            for probe in 0..200u64 {
                let inside = slots.contains(&probe);
                assert_eq!(c.contains(probe * 16, 16), inside);
                assert_eq!(c.is_free(probe * 16, 16), !inside);
            }
        });
    }

    #[test]
    fn broadcast_reconstructs_for_all_clients() {
        for_cases(0x73747232, 32, |rng| {
            // Two clients: one with the generated old version, one with a
            // further perturbation of it.
            let (old_a, new) = edited_pair(rng, 4096);
            let mut old_b = old_a.clone();
            if !old_b.is_empty() {
                let at = rng.gen_range(0..old_b.len());
                old_b[at] ^= 0xA5;
            }
            let cfg = msync::core::ProtocolConfig {
                start_block: 1 << 10,
                min_block_global: 32,
                ..Default::default()
            };
            let refs: Vec<&[u8]> = vec![&old_a, &old_b];
            let out = msync::core::sync_broadcast(&new, &refs, &cfg).unwrap();
            assert_eq!(out.reconstructed[0], new);
            assert_eq!(out.reconstructed[1], new);
        });
    }

    #[test]
    fn recon_strategies_always_agree() {
        for_cases(0x73747233, 64, |rng| {
            use msync::hashes::file_fingerprint;
            use msync::recon::{self, Item};
            let mut names = std::collections::BTreeSet::new();
            for _ in 0..rng.gen_range(0..60u32) {
                let len = rng.gen_range(1..=12usize);
                let name: String =
                    (0..len).map(|_| char::from(b'a' + rng.gen_range(0..26u32) as u8)).collect();
                names.insert(name);
            }
            let mut a: Vec<Item> = names
                .iter()
                .map(|n| Item { name: n.clone(), fp: file_fingerprint(n.as_bytes()) })
                .collect();
            let mut b = a.clone();
            for _ in 0..rng.gen_range(0..10u32) {
                if b.is_empty() {
                    break;
                }
                let idx = rng.gen_range(0..b.len());
                b[idx].fp = file_fingerprint(format!("flip-{}", b[idx].name).as_bytes());
            }
            recon::canonicalize(&mut a);
            recon::canonicalize(&mut b);
            let truth = recon::diff_names(&a, &b);
            assert_eq!(recon::merkle::reconcile(&a, &b).differing, truth);
            assert_eq!(recon::group_testing::reconcile(&a, &b).differing, truth);
            assert_eq!(recon::flat_exchange(&a, &b).differing, truth);
        });
    }
}
