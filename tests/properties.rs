//! Property-based tests over the core invariants.
//!
//! The one invariant the whole system hangs on: *whatever the inputs,
//! the client ends up with exactly the server's bytes.* Plus the
//! algebraic identities of the decomposable hash and the lossless-coding
//! roundtrips, which the protocol's correctness argument relies on.

use msync::core::{sync_file, ProtocolConfig, VerifyStrategy};
use msync::hashes::decomposable::{
    prefix_decompose_left, prefix_decompose_right, DecomposableDigest,
};
use msync::hashes::rolling::RollingHash;
use msync::hashes::{BitReader, BitWriter, DecomposableAdler};
use proptest::prelude::*;

/// Byte vectors with adversarial structure: random, repetitive, and
/// mixed segments.
fn file_strategy(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..max),
        // Low-entropy: few distinct bytes, long runs.
        proptest::collection::vec(prop_oneof![Just(0u8), Just(1u8), Just(b'a')], 0..max),
        // Repeating phrase with occasional noise.
        (0usize..max, any::<u8>()).prop_map(|(n, salt)| {
            let phrase = b"the quick brown fox ";
            (0..n)
                .map(|i| {
                    if i % 97 == 0 {
                        salt.wrapping_add(i as u8)
                    } else {
                        phrase[i % phrase.len()]
                    }
                })
                .collect()
        }),
    ]
}

/// A derived version: the old file plus random splices.
pub fn edited_pair_pub(max: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    edited_pair(max)
}

fn edited_pair(max: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (file_strategy(max), proptest::collection::vec((any::<u16>(), file_strategy(64)), 0..5)).prop_map(
        |(old, edits)| {
            let mut new = old.clone();
            for (pos, insert) in edits {
                if new.is_empty() {
                    new = insert;
                    continue;
                }
                let at = pos as usize % new.len();
                let del = (insert.len() / 2).min(new.len() - at);
                new.splice(at..at + del, insert);
            }
            (old, new)
        },
    )
}

fn quick_cfg() -> ProtocolConfig {
    ProtocolConfig {
        start_block: 1 << 10,
        min_block_global: 32,
        min_block_cont: 8,
        ..ProtocolConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn msync_reconstructs_exactly((old, new) in edited_pair(4096)) {
        let out = sync_file(&old, &new, &quick_cfg()).unwrap();
        prop_assert_eq!(&out.reconstructed, &new);
    }

    #[test]
    fn msync_exact_with_weak_hashes((old, new) in edited_pair(2048)) {
        // Deliberately weak parameters: correctness must come from the
        // fingerprint fallback, not from hash strength.
        let cfg = ProtocolConfig {
            global_extra_bits: 0,
            cont_bits: 1,
            verify: VerifyStrategy::PerCandidate { bits: 2 },
            ..quick_cfg()
        };
        let out = sync_file(&old, &new, &cfg).unwrap();
        prop_assert_eq!(out.reconstructed, new);
    }

    #[test]
    fn rsync_reconstructs_exactly((old, new) in edited_pair(4096)) {
        let out = msync::rsync::sync(&old, &new, 128);
        prop_assert_eq!(out.reconstructed, new);
    }

    #[test]
    fn lz_roundtrip(data in file_strategy(8192)) {
        let c = msync::compress::compress(&data);
        prop_assert_eq!(msync::compress::decompress(&c).unwrap(), data);
    }

    #[test]
    fn delta_roundtrip((reference, target) in (file_strategy(4096), file_strategy(4096))) {
        let d = msync::compress::delta_encode(&reference, &target);
        prop_assert_eq!(msync::compress::delta_decode(&reference, &d).unwrap(), target);
    }

    #[test]
    fn delta_roundtrip_similar((old, new) in edited_pair(4096)) {
        let d = msync::compress::delta_encode(&old, &new);
        prop_assert_eq!(&msync::compress::delta_decode(&old, &d).unwrap(), &new);
        // Identity-ish deltas stay small relative to the file.
        if old == new && !old.is_empty() {
            prop_assert!(d.len() < old.len().max(256));
        }
    }

    #[test]
    fn vcdiff_roundtrip((reference, target) in (file_strategy(4096), file_strategy(4096))) {
        let d = msync::compress::vcdiff_encode(&reference, &target);
        prop_assert_eq!(msync::compress::vcdiff_decode(&reference, &d).unwrap(), target);
    }

    #[test]
    fn decomposable_compose_decompose(data in file_strategy(2048), split_sel in any::<u16>()) {
        let split = if data.is_empty() { 0 } else { split_sel as usize % (data.len() + 1) };
        let l = DecomposableDigest::of(&data[..split]);
        let r = DecomposableDigest::of(&data[split..]);
        let p = l.compose(&r);
        prop_assert_eq!(p, DecomposableDigest::of(&data));
        prop_assert_eq!(p.decompose_right(&l), Some(r));
        prop_assert_eq!(p.decompose_left(&r), Some(l));
    }

    #[test]
    fn decomposable_prefix_identities(data in file_strategy(1024), split_sel in any::<u16>(), bits in 1u32..=64) {
        let split = if data.is_empty() { 0 } else { split_sel as usize % (data.len() + 1) };
        let l = DecomposableDigest::of(&data[..split]);
        let r = DecomposableDigest::of(&data[split..]);
        let p = l.compose(&r);
        prop_assert_eq!(
            prefix_decompose_right(p.prefix(bits), l.prefix(bits), bits, r.len),
            r.prefix(bits)
        );
        prop_assert_eq!(
            prefix_decompose_left(p.prefix(bits), r.prefix(bits), bits, r.len),
            l.prefix(bits)
        );
    }

    #[test]
    fn rolling_equals_recompute(data in proptest::collection::vec(any::<u8>(), 2..512), window_sel in any::<u8>()) {
        let window = 1 + (window_sel as usize) % (data.len() - 1);
        let mut h = DecomposableAdler::new();
        h.reset(&data[..window]);
        for start in 1..=(data.len() - window) {
            h.roll(data[start - 1], data[start + window - 1]);
            prop_assert_eq!(h.value(), DecomposableDigest::of(&data[start..start + window]).value());
        }
    }

    #[test]
    fn bitio_roundtrip(ops in proptest::collection::vec((any::<u64>(), 0u32..=64), 0..64)) {
        let mut w = BitWriter::new();
        for &(v, bits) in &ops {
            w.write_bits(v, bits);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, bits) in &ops {
            let expect = if bits == 64 { v } else if bits == 0 { 0 } else { v & ((1u64 << bits) - 1) };
            prop_assert_eq!(r.read_bits(bits).unwrap(), expect);
        }
    }

    #[test]
    fn fingerprints_separate(a in file_strategy(512), b in file_strategy(512)) {
        let fa = msync::hashes::file_fingerprint(&a);
        let fb = msync::hashes::file_fingerprint(&b);
        prop_assert_eq!(a == b, fa == fb);
    }

    #[test]
    fn md5_md4_incremental(data in file_strategy(2048), chunk_sel in 1usize..64) {
        let mut m5 = msync::hashes::Md5::new();
        let mut m4 = msync::hashes::Md4::new();
        for chunk in data.chunks(chunk_sel) {
            m5.update(chunk);
            m4.update(chunk);
        }
        prop_assert_eq!(m5.finish(), msync::hashes::Md5::digest(&data));
        prop_assert_eq!(m4.finish(), msync::hashes::Md4::digest(&data));
    }
}

/// Decoders must never panic on adversarial input — corrupt streams are
/// a fact of life for a network tool. (Errors are fine; panics are not.)
mod decoder_robustness {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn lz_decompress_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let _ = msync::compress::decompress(&junk);
        }

        #[test]
        fn delta_decode_never_panics(
            reference in proptest::collection::vec(any::<u8>(), 0..512),
            junk in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let _ = msync::compress::delta_decode(&reference, &junk);
        }

        #[test]
        fn vcdiff_decode_never_panics(
            reference in proptest::collection::vec(any::<u8>(), 0..512),
            junk in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let _ = msync::compress::vcdiff_decode(&reference, &junk);
        }

        #[test]
        fn signature_decode_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let _ = msync::rsync::Signatures::decode(&junk);
        }

        #[test]
        fn token_deserialize_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let _ = msync::rsync::matcher::deserialize_tokens(&junk);
        }

        #[test]
        fn bit_corrupted_delta_decodes_or_errors_never_wrong_silently(
            (old, new) in super::edited_pair_pub(2048),
            flip in any::<u16>(),
        ) {
            // Flip one bit in a real delta: the decoder must either
            // error or produce bytes — and if it produces the *right*
            // bytes the flip hit padding. It must never panic, and the
            // outer fingerprint check (exercised in the sync tests)
            // catches wrong output.
            let mut d = msync::compress::delta_encode(&old, &new);
            if !d.is_empty() {
                let bit = flip as usize % (d.len() * 8);
                d[bit / 8] ^= 1 << (bit % 8);
                let _ = msync::compress::delta_decode(&old, &d);
            }
        }
    }
}

/// Cross-implementation agreement and the new extension surfaces.
mod extensions {
    use msync::cdc::ChunkParams;
    use msync::core::{sync_over_channel, ProtocolConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn cdc_sync_reconstructs_exactly((old, new) in super::edited_pair_pub(8192)) {
            let params = ChunkParams { avg_size: 512, min_size: 64, max_size: 4096 };
            let out = msync::cdc::sync(&old, &new, &params);
            prop_assert_eq!(&out.reconstructed, &new);
        }

        #[test]
        fn inplace_matches_out_of_place((old, new) in super::edited_pair_pub(4096)) {
            let sigs = msync::rsync::Signatures::compute(&old, 128);
            let tokens = msync::rsync::matcher::match_tokens(&new, &sigs);
            let expected = msync::rsync::reconstruct::apply(&old, &sigs, &tokens).unwrap();
            let mut buf = old.clone();
            msync::rsync::inplace::apply_inplace(&mut buf, &sigs, &tokens).unwrap();
            prop_assert_eq!(&buf, &expected);
        }

        #[test]
        fn channel_sync_reconstructs_exactly((old, new) in super::edited_pair_pub(4096)) {
            let cfg = ProtocolConfig {
                start_block: 1 << 10,
                min_block_global: 32,
                min_block_cont: 8,
                ..ProtocolConfig::default()
            };
            let out = sync_over_channel(&old, &new, &cfg).unwrap();
            prop_assert_eq!(&out.reconstructed, &new);
        }
    }
}

/// Structural invariants of the shared interval machinery and the
/// broadcast variant's exactness.
mod structures {
    use msync::core::coverage::Coverage;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn coverage_invariants_under_disjoint_inserts(blocks in proptest::collection::vec(0u8..200, 1..40)) {
            // Interpret each value as a grid slot of width 16; dedup to
            // keep inserts disjoint.
            let mut slots: Vec<u64> = blocks.iter().map(|&b| b as u64).collect();
            slots.sort_unstable();
            slots.dedup();
            let mut c = Coverage::new();
            let mut order = slots.clone();
            // Insert in a scrambled but deterministic order.
            order.reverse();
            let mut total = 0u64;
            for s in order {
                c.insert(s * 16, 16);
                total += 16;
            }
            prop_assert_eq!(c.covered_bytes(), total);
            // Intervals sorted, disjoint, non-touching.
            let iv = c.intervals();
            for w in iv.windows(2) {
                prop_assert!(w[0].1 < w[1].0, "{:?}", iv);
            }
            // Every inserted slot contained; gaps free.
            for &s in &slots {
                prop_assert!(c.contains(s * 16, 16));
            }
            for probe in 0..200u64 {
                let inside = slots.contains(&probe);
                prop_assert_eq!(c.contains(probe * 16, 16), inside);
                prop_assert_eq!(c.is_free(probe * 16, 16), !inside);
            }
        }

        #[test]
        fn broadcast_reconstructs_for_all_clients(
            (old_a, new) in super::edited_pair_pub(4096),
            extra_edit in any::<u16>(),
        ) {
            // Two clients: one with the generated old version, one with a
            // further perturbation of it.
            let mut old_b = old_a.clone();
            if !old_b.is_empty() {
                let at = extra_edit as usize % old_b.len();
                old_b[at] ^= 0xA5;
            }
            let cfg = msync::core::ProtocolConfig {
                start_block: 1 << 10,
                min_block_global: 32,
                ..Default::default()
            };
            let refs: Vec<&[u8]> = vec![&old_a, &old_b];
            let out = msync::core::sync_broadcast(&new, &refs, &cfg).unwrap();
            prop_assert_eq!(&out.reconstructed[0], &new);
            prop_assert_eq!(&out.reconstructed[1], &new);
        }

        #[test]
        fn recon_strategies_always_agree(
            names in proptest::collection::btree_set("[a-z]{1,12}", 0..60),
            flips in proptest::collection::vec(any::<u8>(), 0..10),
        ) {
            use msync::recon::{self, Item};
            use msync::hashes::file_fingerprint;
            let mut a: Vec<Item> = names.iter().map(|n| Item {
                name: n.clone(),
                fp: file_fingerprint(n.as_bytes()),
            }).collect();
            let mut b = a.clone();
            for &f in &flips {
                if b.is_empty() { break; }
                let idx = f as usize % b.len();
                b[idx].fp = file_fingerprint(format!("flip-{}", b[idx].name).as_bytes());
            }
            recon::canonicalize(&mut a);
            recon::canonicalize(&mut b);
            let truth = recon::diff_names(&a, &b);
            prop_assert_eq!(&recon::merkle::reconcile(&a, &b).differing, &truth);
            prop_assert_eq!(&recon::group_testing::reconcile(&a, &b).differing, &truth);
            prop_assert_eq!(&recon::flat_exchange(&a, &b).differing, &truth);
        }
    }
}
