//! Quick cross-crate sanity: msync beats rsync on a localized edit.

use msync_core::{sync_file, ProtocolConfig};

fn blob(n: usize, seed: u64) -> Vec<u8> {
    // Word-like compressible-ish content
    let words =
        ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa"];
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(words[(state % 10) as usize].as_bytes());
        out.push(b' ');
        if state.is_multiple_of(13) {
            out.push(b'\n');
        }
    }
    out.truncate(n);
    out
}

#[test]
fn msync_vs_rsync_localized_edit() {
    let old = blob(60_000, 42);
    let mut new = old.clone();
    new.splice(30_000..30_050, b"a fresh edit right here in the middle yes".iter().copied());
    let cfg = ProtocolConfig::default();
    let m = sync_file(&old, &new, &cfg).unwrap();
    assert_eq!(m.reconstructed, new);
    assert!(!m.fell_back);
    let r = msync_rsync::sync(&old, &new, 700);
    assert_eq!(r.reconstructed, new);
    let zd = msync_compress::delta_size(&old, &new) as u64;
    eprintln!(
        "msync: {} B ({} rt), rsync: {} B, zdelta bound: {} B, known {}/{}",
        m.stats.total_bytes(),
        m.stats.traffic.roundtrips,
        r.stats.total_bytes(),
        zd,
        m.stats.known_bytes,
        new.len()
    );
    for l in &m.stats.levels {
        eprintln!(
            "  level bs={} items={} cont={} suppr={} cand={} conf={}",
            l.block_size, l.items, l.cont_items, l.suppressed, l.candidates, l.confirmed
        );
    }
    assert!(m.stats.total_bytes() < r.stats.total_bytes());
}
