//! The static-analysis gate, wired into `cargo test`.
//!
//! Two halves: (1) the shipped tree must pass the gate with the
//! checked-in `lint-baseline.toml`, so any new violation fails plain
//! `cargo test` as well as `cargo run -p xtask -- lint`; (2) synthetic
//! mini-workspaces seeded with one violation per rule class must make
//! the corresponding rule fire, so the gate itself cannot silently rot.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::rules::Rule;
use xtask::{gate, lint_workspace, LintConfig};

fn workspace_root() -> PathBuf {
    xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the msync workspace")
}

#[test]
fn shipped_tree_passes_the_gate() {
    let root = workspace_root();
    let outcome = gate(&root, &LintConfig::msync()).expect("lint scan");
    assert!(
        outcome.active.is_empty(),
        "lint gate failed on the shipped tree:\n{}",
        outcome.active.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn baseline_is_not_stale() {
    // Entries that over-allow are a silent hole the gate should not ship
    // with: regenerate with `cargo run -p xtask -- lint --update-baseline`.
    let root = workspace_root();
    let outcome = gate(&root, &LintConfig::msync()).expect("lint scan");
    assert!(
        outcome.stale.is_empty(),
        "lint-baseline.toml over-allows; ratchet it down: {:?}",
        outcome.stale
    );
}

/// A scratch workspace with one crate whose lib.rs is `body`, laid out
/// the way [`LintConfig::msync`] expects (`crates/<name>/src/lib.rs`).
struct MiniWorkspace {
    dir: PathBuf,
}

impl MiniWorkspace {
    fn new(tag: &str, crate_name: &str, body: &str) -> MiniWorkspace {
        Self::with_manifest(
            tag,
            crate_name,
            body,
            "[package]\nname = \"x\"\nversion = \"0.0.0\"\n\n[dependencies]\n",
        )
    }

    fn with_manifest(tag: &str, crate_name: &str, body: &str, manifest: &str) -> MiniWorkspace {
        let dir =
            std::env::temp_dir().join(format!("msync-lint-gate-{tag}-{}", std::process::id()));
        let crate_dir = dir.join("crates").join(crate_name).join("src");
        fs::create_dir_all(&crate_dir).expect("scratch dir");
        fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("workspace manifest");
        fs::write(dir.join("crates").join(crate_name).join("Cargo.toml"), manifest)
            .expect("crate manifest");
        fs::write(crate_dir.join("lib.rs"), body).expect("lib.rs");
        MiniWorkspace { dir }
    }

    fn findings_for(&self, rule: Rule) -> Vec<xtask::Finding> {
        let findings = lint_workspace(&self.dir, &LintConfig::msync()).expect("scan scratch tree");
        findings.into_iter().filter(|f| f.rule == rule).collect()
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

const CLEAN_HEADER: &str = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! Docs.\n";

#[test]
fn detects_missing_crate_headers() {
    let ws = MiniWorkspace::new("headers", "hashes", "//! Docs but no lint headers.\n");
    let hits = ws.findings_for(Rule::CrateHeaders);
    assert!(!hits.is_empty(), "missing #![forbid(unsafe_code)] must fire");
}

#[test]
fn detects_panic_in_protocol_critical_code() {
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn f(v: Option<u32>) -> u32 {{\n    v.unwrap()\n}}\n"
    );
    let ws = MiniWorkspace::new("panic", "protocol", &body);
    let hits = ws.findings_for(Rule::PanicFreedom);
    assert_eq!(hits.len(), 1, "unwrap() in a protocol-critical crate must fire");
    assert!(hits[0].line >= 4, "finding should carry the real line, got {}", hits[0].line);
}

#[test]
fn ignores_panics_in_test_code_and_strings() {
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub const S: &str = \"call unwrap() here\";\n\
         #[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{\n        None::<u32>.unwrap();\n        panic!(\"boom\");\n    }}\n}}\n"
    );
    let ws = MiniWorkspace::new("panic-masked", "protocol", &body);
    let hits = ws.findings_for(Rule::PanicFreedom);
    assert!(hits.is_empty(), "test blocks and string literals must be masked: {hits:?}");
}

#[test]
fn detects_lossy_cast_in_wire_module() {
    let dir = std::env::temp_dir().join(format!("msync-lint-gate-cast-{}", std::process::id()));
    let src = dir.join("crates").join("hashes").join("src");
    fs::create_dir_all(&src).expect("scratch dir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n").expect("manifest");
    fs::write(
        dir.join("crates").join("hashes").join("Cargo.toml"),
        "[package]\nname = \"hashes\"\nversion = \"0.0.0\"\n",
    )
    .expect("crate manifest");
    fs::write(src.join("lib.rs"), format!("{CLEAN_HEADER}\npub mod bitio;\n")).expect("lib.rs");
    fs::write(
        src.join("bitio.rs"),
        "//! Wire module.\n/// Doc.\npub fn narrow(v: u64) -> u8 {\n    v as u8\n}\n",
    )
    .expect("bitio.rs");
    let findings = lint_workspace(&dir, &LintConfig::msync()).expect("scan");
    // The other configured wire modules don't exist in the scratch tree;
    // the scanner flags those too (self-checking), so filter to the cast.
    let hits: Vec<_> = findings
        .into_iter()
        .filter(|f| f.rule == Rule::LossyCast && f.message.contains("narrowing"))
        .collect();
    fs::remove_dir_all(&dir).ok();
    assert_eq!(hits.len(), 1, "narrowing `as` in a wire module must fire: {hits:?}");
    assert_eq!(hits[0].file, "crates/hashes/src/bitio.rs");
}

#[test]
fn detects_ambient_time_and_rng_in_protocol_logic() {
    let body = format!(
        "{CLEAN_HEADER}\nuse std::time::Instant;\n\n/// Doc.\npub fn now_ms() -> u128 {{\n    Instant::now().elapsed().as_millis()\n}}\n"
    );
    let ws = MiniWorkspace::new("determinism", "core", &body);
    let hits = ws.findings_for(Rule::Determinism);
    assert!(!hits.is_empty(), "Instant in protocol logic must fire");
}

#[test]
fn detects_non_workspace_dependency() {
    let manifest =
        "[package]\nname = \"x\"\nversion = \"0.0.0\"\n\n[dependencies]\nserde = \"1\"\n";
    let ws = MiniWorkspace::with_manifest("hermetic", "core", CLEAN_HEADER, manifest);
    let hits = ws.findings_for(Rule::Hermeticity);
    assert!(!hits.is_empty(), "registry dependency must fire the hermeticity rule");
}

#[test]
fn detects_bare_recv_in_protocol_critical_code() {
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn wait(rx: &std::sync::mpsc::Receiver<u8>) {{\n    let _ = rx.recv();\n}}\n"
    );
    let ws = MiniWorkspace::new("channel", "core", &body);
    let hits = ws.findings_for(Rule::ChannelDiscipline);
    assert_eq!(hits.len(), 1, "bare recv() in a protocol-critical crate must fire: {hits:?}");

    let bounded = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn wait(rx: &std::sync::mpsc::Receiver<u8>, d: std::time::Duration) {{\n    let _ = rx.recv_timeout(d);\n    let _ = rx.try_recv();\n}}\n"
    );
    let ws = MiniWorkspace::new("channel-ok", "core", &bounded);
    let hits = ws.findings_for(Rule::ChannelDiscipline);
    assert!(hits.is_empty(), "recv_timeout/try_recv must not fire: {hits:?}");
}

#[test]
fn detects_ambient_clock_outside_trace_crate() {
    // clock-discipline covers every crate, not just protocol-critical
    // ones: a non-critical crate reading the ambient clock must fire.
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn stamp() -> std::time::SystemTime {{\n    std::time::SystemTime::now()\n}}\n"
    );
    let ws = MiniWorkspace::new("clock", "corpus", &body);
    let hits = ws.findings_for(Rule::ClockDiscipline);
    assert_eq!(hits.len(), 1, "SystemTime::now outside crates/trace must fire: {hits:?}");

    let ws = MiniWorkspace::new("clock-exempt", "trace", &body);
    let hits = ws.findings_for(Rule::ClockDiscipline);
    assert!(hits.is_empty(), "crates/trace owns the ambient clock: {hits:?}");
}

/// The `Output` registry declaration the machine-discipline pass
/// expects at `crates/core/src/engine/mod.rs` in scratch trees.
const OUTPUT_REGISTRY: &str = "//! Engine module.\n/// Doc.\npub enum Output {\n    /// T.\n    Transmit,\n    /// A.\n    Attribute,\n    /// W.\n    Wait,\n    /// D.\n    Done,\n}\n";

/// The `Phase` frame-tag registry the wire-schema pass expects at
/// `crates/protocol/src/stats.rs` in scratch trees.
const PHASE_REGISTRY: &str = "//! Stats module.\n/// Doc.\npub enum Phase {\n    /// S.\n    Setup,\n    /// M.\n    Map,\n    /// D.\n    Delta,\n}\n";

/// A scratch tree shaped like the real workspace: several crates, each
/// with a lib.rs plus optional extra modules at arbitrary `src/`-relative
/// paths. [`MiniWorkspace`] is the single-crate special case.
struct MultiCrateWorkspace {
    dir: PathBuf,
}

impl MultiCrateWorkspace {
    /// `files` maps `crates/<name>/src/<path>` (given as
    /// `(crate, src_relative_path, contents)`) into the scratch tree.
    fn new(tag: &str, files: &[(&str, &str, &str)]) -> MultiCrateWorkspace {
        let dir =
            std::env::temp_dir().join(format!("msync-lint-gate-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("workspace manifest");
        for (krate, rel, contents) in files {
            let crate_dir = dir.join("crates").join(krate);
            let manifest = crate_dir.join("Cargo.toml");
            if !manifest.is_file() {
                fs::create_dir_all(&crate_dir).expect("crate dir");
                fs::write(
                    &manifest,
                    format!("[package]\nname = \"{krate}\"\nversion = \"0.0.0\"\n"),
                )
                .expect("crate manifest");
            }
            let path = crate_dir.join("src").join(rel);
            fs::create_dir_all(path.parent().expect("src parent")).expect("module dir");
            fs::write(&path, contents).expect("module file");
        }
        MultiCrateWorkspace { dir }
    }

    fn findings_for(&self, rule: Rule) -> Vec<xtask::Finding> {
        let findings = lint_workspace(&self.dir, &LintConfig::msync()).expect("scan scratch tree");
        findings.into_iter().filter(|f| f.rule == rule).collect()
    }
}

impl Drop for MultiCrateWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn wire_schema_detects_one_sided_decode_arm() {
    // The decode side dispatches on registry variants in arm bodies but
    // never produces `Phase::Delta`: the classic desynchronized decoder.
    let decoder = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn decode(b: u8) -> Option<msync_protocol::Phase> {{\n    match b {{\n        0 => Some(msync_protocol::Phase::Setup),\n        1 => Some(msync_protocol::Phase::Map),\n        _ => None,\n    }}\n}}\n"
    );
    let ws = MultiCrateWorkspace::new(
        "wire-decode",
        &[("protocol", "stats.rs", PHASE_REGISTRY), ("net", "lib.rs", &decoder)],
    );
    let hits = ws.findings_for(Rule::WireSchema);
    let hit = hits
        .iter()
        .find(|f| f.file == "crates/net/src/lib.rs")
        .unwrap_or_else(|| panic!("one-sided decode arm must fire wire-schema: {hits:?}"));
    assert!(hit.message.contains("Delta"), "names the missing variant: {}", hit.message);
    assert!(hit.line > 1 && hit.col >= 1, "spanned diagnostic expected: {hit:?}");
}

#[test]
fn wire_schema_accepts_symmetric_encode_and_decode() {
    let encoder = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn encode(p: Phase) -> u8 {{\n    match p {{\n        Phase::Setup => 0,\n        Phase::Map => 1,\n        Phase::Delta => 2,\n    }}\n}}\n/// Doc.\npub fn decode(b: u8) -> Option<Phase> {{\n    match b {{\n        0 => Some(Phase::Setup),\n        1 => Some(Phase::Map),\n        2 => Some(Phase::Delta),\n        _ => None,\n    }}\n}}\n"
    );
    let ws = MultiCrateWorkspace::new(
        "wire-symmetric",
        &[("protocol", "stats.rs", PHASE_REGISTRY), ("net", "lib.rs", &encoder)],
    );
    let hits = ws.findings_for(Rule::WireSchema);
    assert!(
        hits.iter().all(|f| f.file != "crates/net/src/lib.rs"),
        "complete matches must not fire: {hits:?}"
    );
}

#[test]
fn charge_point_detects_unattributed_socket_write() {
    // A send path that charges TrafficStats but never journals the
    // frame (the acceptance scenario: the trace event line deleted).
    let unpaired = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub struct S {{\n    /// Doc.\n    pub stats: u8,\n}}\nimpl S {{\n    /// Doc.\n    pub fn send(&mut self, n: u64) {{\n        self.stats.record(n);\n    }}\n}}\n"
    );
    let ws = MultiCrateWorkspace::new("charge-unpaired", &[("net", "lib.rs", &unpaired)]);
    let hits = ws.findings_for(Rule::ChargePoint);
    assert_eq!(hits.len(), 1, "charge without trace event must fire: {hits:?}");
    assert!(hits[0].message.contains("send"), "names the function: {}", hits[0].message);
    assert!(hits[0].line > 1 && hits[0].col >= 1, "spanned diagnostic expected: {:?}", hits[0]);

    // The paired shape — charge plus FrameSend journal in the same
    // function — is the sanctioned idiom and must stay quiet.
    let paired = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub struct S {{\n    /// Doc.\n    pub stats: u8,\n}}\nimpl S {{\n    /// Doc.\n    pub fn send(&mut self, n: u64) {{\n        self.stats.record(n);\n        self.rec.record(EventKind::FrameSend {{ bytes: n }});\n    }}\n}}\n"
    );
    let ws = MultiCrateWorkspace::new("charge-paired", &[("net", "lib.rs", &paired)]);
    let hits = ws.findings_for(Rule::ChargePoint);
    assert!(hits.is_empty(), "paired charge + frame event must not fire: {hits:?}");
}

#[test]
fn charge_point_is_scoped_to_io_crates() {
    // The same unpaired charge in a non-I/O crate is out of scope.
    let unpaired = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn tally(stats: &mut Vec<u64>, n: u64) {{\n    stats.record(n);\n}}\n"
    );
    let ws = MultiCrateWorkspace::new("charge-scope", &[("hashes", "lib.rs", &unpaired)]);
    let hits = ws.findings_for(Rule::ChargePoint);
    assert!(hits.is_empty(), "charge-point only covers crates/net and crates/protocol: {hits:?}");
}

#[test]
fn machine_discipline_detects_unhandled_output_wait() {
    // A drive loop that polls the machine but never handles
    // `Output::Wait` silently spins instead of arming a deadline.
    let loop_body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn pump(m: &mut Machine) {{\n    loop {{\n        match m.poll_output() {{\n            Output::Transmit => {{}}\n            Output::Attribute => {{}}\n            Output::Done => return,\n        }}\n    }}\n}}\n"
    );
    let ws = MultiCrateWorkspace::new(
        "machine-wait",
        &[("core", "engine/mod.rs", OUTPUT_REGISTRY), ("net", "lib.rs", &loop_body)],
    );
    let hits = ws.findings_for(Rule::MachineDiscipline);
    let hit = hits
        .iter()
        .find(|f| f.file == "crates/net/src/lib.rs")
        .unwrap_or_else(|| panic!("unhandled Output::Wait must fire: {hits:?}"));
    assert!(hit.message.contains("Wait"), "names the missing variant: {}", hit.message);
    assert!(hit.line > 1 && hit.col >= 1, "spanned diagnostic expected: {hit:?}");

    // Handling all four variants satisfies the pass.
    let complete = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn pump(m: &mut Machine) {{\n    loop {{\n        match m.poll_output() {{\n            Output::Transmit => {{}}\n            Output::Attribute => {{}}\n            Output::Wait => break,\n            Output::Done => return,\n        }}\n    }}\n}}\n"
    );
    let ws = MultiCrateWorkspace::new(
        "machine-complete",
        &[("core", "engine/mod.rs", OUTPUT_REGISTRY), ("net", "lib.rs", &complete)],
    );
    let hits = ws.findings_for(Rule::MachineDiscipline);
    assert!(
        hits.iter().all(|f| f.file != "crates/net/src/lib.rs"),
        "complete drive loop must not fire: {hits:?}"
    );
}

#[test]
fn machine_discipline_keeps_engine_modules_effect_pure() {
    // The sans-IO rule is path-scoped: the same code is legal in a
    // driver module but must fire inside crates/core/src/engine/.
    let offending = format!(
        "{OUTPUT_REGISTRY}/// Doc.\npub fn bad(rx: &std::sync::mpsc::Receiver<u8>, d: std::time::Duration) {{\n    std::thread::spawn(|| {{}});\n    let _ = rx.recv_timeout(d);\n}}\n"
    );
    let lib = format!("{CLEAN_HEADER}\npub mod engine;\npub mod driver;\n");
    let driver = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn ok(rx: &std::sync::mpsc::Receiver<u8>, d: std::time::Duration) {{\n    std::thread::spawn(|| {{}});\n    let _ = rx.recv_timeout(d);\n}}\n"
    );
    let ws = MultiCrateWorkspace::new(
        "machine-purity",
        &[
            ("core", "lib.rs", &lib),
            ("core", "engine/mod.rs", &offending),
            ("core", "driver.rs", &driver),
        ],
    );
    let hits: Vec<_> = ws
        .findings_for(Rule::MachineDiscipline)
        .into_iter()
        .filter(|f| f.message.contains("sans-IO"))
        .collect();
    assert_eq!(hits.len(), 2, "spawn + recv_timeout inside engine/ must fire: {hits:?}");
    assert!(hits.iter().all(|f| f.file == "crates/core/src/engine/mod.rs"), "{hits:?}");
}

#[test]
fn apply_discipline_detects_bare_write_on_apply_paths() {
    // A bare write in an apply-scoped crate (cli) must fire; the same
    // code in an out-of-scope crate (core owns the applier) must not.
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn apply(path: &std::path::Path, data: &[u8]) {{\n    let _ = std::fs::write(path, data);\n    let _ = std::fs::File::create(path);\n}}\n"
    );
    let ws = MiniWorkspace::new("apply", "cli", &body);
    let hits = ws.findings_for(Rule::ApplyDiscipline);
    assert_eq!(hits.len(), 2, "bare fs::write + File::create in crates/cli must fire: {hits:?}");
    assert!(hits[0].message.contains("AtomicApplier"), "{}", hits[0].message);
    assert!(hits[0].line > 1 && hits[0].col >= 1, "spanned diagnostic expected: {:?}", hits[0]);

    let ws = MiniWorkspace::new("apply-scope", "core", &body);
    let hits = ws.findings_for(Rule::ApplyDiscipline);
    assert!(hits.is_empty(), "apply-discipline is scoped to the apply paths: {hits:?}");
}

#[test]
fn alloc_discipline_detects_frame_copies_outside_the_allowlist() {
    // A frame/payload copy in a wire module must fire; the sanctioned
    // copy site (fault.rs copy_for_mutation) must not; a frame copy in
    // a non-wire module is out of scope.
    let offender = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn cache(frame: &[u8], payload: &[u8]) -> (Vec<u8>, Vec<u8>) {{\n    (frame.to_vec(), payload.to_vec())\n}}\n"
    );
    let sanctioned = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn copy_for_mutation(payload: &[u8]) -> Vec<u8> {{\n    payload.to_vec()\n}}\n"
    );
    let ws = MultiCrateWorkspace::new(
        "alloc",
        &[
            ("protocol", "channel.rs", &offender),
            ("protocol", "fault.rs", &sanctioned),
            ("core", "session.rs", &offender),
        ],
    );
    let hits = ws.findings_for(Rule::AllocDiscipline);
    assert_eq!(hits.len(), 2, "both copies in the wire module must fire, nothing else: {hits:?}");
    assert!(hits.iter().all(|f| f.file == "crates/protocol/src/channel.rs"), "{hits:?}");
    assert!(hits[0].message.contains("FrameBuf"), "{}", hits[0].message);
    assert!(hits[0].line > 1 && hits[0].col >= 1, "spanned diagnostic expected: {:?}", hits[0]);
}

/// Every `.rs` file in the workspace (crate sources, root `src/`, and
/// this test directory), for corpus-wide lexer properties.
fn workspace_rust_sources() -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                if name != "target" && name != ".git" {
                    walk(&path, out);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    let root = workspace_root();
    let mut files = Vec::new();
    walk(&root.join("crates"), &mut files);
    walk(&root.join("src"), &mut files);
    walk(&root.join("tests"), &mut files);
    files.sort();
    assert!(files.len() > 20, "workspace corpus unexpectedly small: {}", files.len());
    files
}

#[test]
fn lexer_tiles_every_workspace_source_exactly() {
    // Property: for any real source file the token stream covers the
    // input with no gaps, no overlaps, and consistent line counters —
    // the invariant every rule's span reporting depends on.
    for path in workspace_rust_sources() {
        let src = fs::read_to_string(&path).expect("read source");
        let tokens = xtask::tokens::lex(&src);
        let mut pos = 0usize;
        let mut line = 1u32;
        for t in &tokens {
            assert_eq!(t.start, pos, "gap/overlap at byte {pos} of {}", path.display());
            assert!(t.end > t.start, "empty token at byte {pos} of {}", path.display());
            assert_eq!(t.line, line, "line counter drift at byte {pos} of {}", path.display());
            line += u32::try_from(src[t.start..t.end].matches('\n').count()).expect("line count");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "lexer stopped early in {}", path.display());
    }
}

#[test]
fn token_masker_matches_scanner_on_every_workspace_source() {
    // Differential oracle: the legacy masked-string scanner and the
    // token-derived masker must agree byte-for-byte on the whole tree,
    // so the scanner stays a trustworthy fallback for the lexer.
    for path in workspace_rust_sources() {
        let src = fs::read_to_string(&path).expect("read source");
        let via_tokens = xtask::tokens::mask_via_tokens(&src);
        let via_scanner = xtask::scanner::mask_source(&src);
        assert_eq!(via_tokens, via_scanner, "maskers diverge on {}", path.display());
    }
}

#[test]
fn non_critical_crate_may_panic() {
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn f(v: Option<u32>) -> u32 {{\n    v.unwrap()\n}}\n"
    );
    let ws = MiniWorkspace::new("non-critical", "corpus", &body);
    let hits = ws.findings_for(Rule::PanicFreedom);
    assert!(hits.is_empty(), "panic-freedom only applies to protocol-critical crates");
}
