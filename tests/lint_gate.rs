//! The static-analysis gate, wired into `cargo test`.
//!
//! Two halves: (1) the shipped tree must pass the gate with the
//! checked-in `lint-baseline.toml`, so any new violation fails plain
//! `cargo test` as well as `cargo run -p xtask -- lint`; (2) synthetic
//! mini-workspaces seeded with one violation per rule class must make
//! the corresponding rule fire, so the gate itself cannot silently rot.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::rules::Rule;
use xtask::{gate, lint_workspace, LintConfig};

fn workspace_root() -> PathBuf {
    xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the msync workspace")
}

#[test]
fn shipped_tree_passes_the_gate() {
    let root = workspace_root();
    let outcome = gate(&root, &LintConfig::msync()).expect("lint scan");
    assert!(
        outcome.active.is_empty(),
        "lint gate failed on the shipped tree:\n{}",
        outcome.active.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn baseline_is_not_stale() {
    // Entries that over-allow are a silent hole the gate should not ship
    // with: regenerate with `cargo run -p xtask -- lint --update-baseline`.
    let root = workspace_root();
    let outcome = gate(&root, &LintConfig::msync()).expect("lint scan");
    assert!(
        outcome.stale.is_empty(),
        "lint-baseline.toml over-allows; ratchet it down: {:?}",
        outcome.stale
    );
}

/// A scratch workspace with one crate whose lib.rs is `body`, laid out
/// the way [`LintConfig::msync`] expects (`crates/<name>/src/lib.rs`).
struct MiniWorkspace {
    dir: PathBuf,
}

impl MiniWorkspace {
    fn new(tag: &str, crate_name: &str, body: &str) -> MiniWorkspace {
        Self::with_manifest(
            tag,
            crate_name,
            body,
            "[package]\nname = \"x\"\nversion = \"0.0.0\"\n\n[dependencies]\n",
        )
    }

    fn with_manifest(tag: &str, crate_name: &str, body: &str, manifest: &str) -> MiniWorkspace {
        let dir =
            std::env::temp_dir().join(format!("msync-lint-gate-{tag}-{}", std::process::id()));
        let crate_dir = dir.join("crates").join(crate_name).join("src");
        fs::create_dir_all(&crate_dir).expect("scratch dir");
        fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("workspace manifest");
        fs::write(dir.join("crates").join(crate_name).join("Cargo.toml"), manifest)
            .expect("crate manifest");
        fs::write(crate_dir.join("lib.rs"), body).expect("lib.rs");
        MiniWorkspace { dir }
    }

    fn findings_for(&self, rule: Rule) -> Vec<xtask::Finding> {
        let findings = lint_workspace(&self.dir, &LintConfig::msync()).expect("scan scratch tree");
        findings.into_iter().filter(|f| f.rule == rule).collect()
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

const CLEAN_HEADER: &str = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! Docs.\n";

#[test]
fn detects_missing_crate_headers() {
    let ws = MiniWorkspace::new("headers", "hashes", "//! Docs but no lint headers.\n");
    let hits = ws.findings_for(Rule::CrateHeaders);
    assert!(!hits.is_empty(), "missing #![forbid(unsafe_code)] must fire");
}

#[test]
fn detects_panic_in_protocol_critical_code() {
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn f(v: Option<u32>) -> u32 {{\n    v.unwrap()\n}}\n"
    );
    let ws = MiniWorkspace::new("panic", "protocol", &body);
    let hits = ws.findings_for(Rule::PanicFreedom);
    assert_eq!(hits.len(), 1, "unwrap() in a protocol-critical crate must fire");
    assert!(hits[0].line >= 4, "finding should carry the real line, got {}", hits[0].line);
}

#[test]
fn ignores_panics_in_test_code_and_strings() {
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub const S: &str = \"call unwrap() here\";\n\
         #[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{\n        None::<u32>.unwrap();\n        panic!(\"boom\");\n    }}\n}}\n"
    );
    let ws = MiniWorkspace::new("panic-masked", "protocol", &body);
    let hits = ws.findings_for(Rule::PanicFreedom);
    assert!(hits.is_empty(), "test blocks and string literals must be masked: {hits:?}");
}

#[test]
fn detects_lossy_cast_in_wire_module() {
    let dir = std::env::temp_dir().join(format!("msync-lint-gate-cast-{}", std::process::id()));
    let src = dir.join("crates").join("hashes").join("src");
    fs::create_dir_all(&src).expect("scratch dir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n").expect("manifest");
    fs::write(
        dir.join("crates").join("hashes").join("Cargo.toml"),
        "[package]\nname = \"hashes\"\nversion = \"0.0.0\"\n",
    )
    .expect("crate manifest");
    fs::write(src.join("lib.rs"), format!("{CLEAN_HEADER}\npub mod bitio;\n")).expect("lib.rs");
    fs::write(
        src.join("bitio.rs"),
        "//! Wire module.\n/// Doc.\npub fn narrow(v: u64) -> u8 {\n    v as u8\n}\n",
    )
    .expect("bitio.rs");
    let findings = lint_workspace(&dir, &LintConfig::msync()).expect("scan");
    // The other configured wire modules don't exist in the scratch tree;
    // the scanner flags those too (self-checking), so filter to the cast.
    let hits: Vec<_> = findings
        .into_iter()
        .filter(|f| f.rule == Rule::LossyCast && f.message.contains("narrowing"))
        .collect();
    fs::remove_dir_all(&dir).ok();
    assert_eq!(hits.len(), 1, "narrowing `as` in a wire module must fire: {hits:?}");
    assert_eq!(hits[0].file, "crates/hashes/src/bitio.rs");
}

#[test]
fn detects_ambient_time_and_rng_in_protocol_logic() {
    let body = format!(
        "{CLEAN_HEADER}\nuse std::time::Instant;\n\n/// Doc.\npub fn now_ms() -> u128 {{\n    Instant::now().elapsed().as_millis()\n}}\n"
    );
    let ws = MiniWorkspace::new("determinism", "core", &body);
    let hits = ws.findings_for(Rule::Determinism);
    assert!(!hits.is_empty(), "Instant in protocol logic must fire");
}

#[test]
fn detects_non_workspace_dependency() {
    let manifest =
        "[package]\nname = \"x\"\nversion = \"0.0.0\"\n\n[dependencies]\nserde = \"1\"\n";
    let ws = MiniWorkspace::with_manifest("hermetic", "core", CLEAN_HEADER, manifest);
    let hits = ws.findings_for(Rule::Hermeticity);
    assert!(!hits.is_empty(), "registry dependency must fire the hermeticity rule");
}

#[test]
fn detects_bare_recv_in_protocol_critical_code() {
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn wait(rx: &std::sync::mpsc::Receiver<u8>) {{\n    let _ = rx.recv();\n}}\n"
    );
    let ws = MiniWorkspace::new("channel", "core", &body);
    let hits = ws.findings_for(Rule::ChannelDiscipline);
    assert_eq!(hits.len(), 1, "bare recv() in a protocol-critical crate must fire: {hits:?}");

    let bounded = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn wait(rx: &std::sync::mpsc::Receiver<u8>, d: std::time::Duration) {{\n    let _ = rx.recv_timeout(d);\n    let _ = rx.try_recv();\n}}\n"
    );
    let ws = MiniWorkspace::new("channel-ok", "core", &bounded);
    let hits = ws.findings_for(Rule::ChannelDiscipline);
    assert!(hits.is_empty(), "recv_timeout/try_recv must not fire: {hits:?}");
}

#[test]
fn detects_ambient_clock_outside_trace_crate() {
    // clock-discipline covers every crate, not just protocol-critical
    // ones: a non-critical crate reading the ambient clock must fire.
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn stamp() -> std::time::SystemTime {{\n    std::time::SystemTime::now()\n}}\n"
    );
    let ws = MiniWorkspace::new("clock", "corpus", &body);
    let hits = ws.findings_for(Rule::ClockDiscipline);
    assert_eq!(hits.len(), 1, "SystemTime::now outside crates/trace must fire: {hits:?}");

    let ws = MiniWorkspace::new("clock-exempt", "trace", &body);
    let hits = ws.findings_for(Rule::ClockDiscipline);
    assert!(hits.is_empty(), "crates/trace owns the ambient clock: {hits:?}");
}

#[test]
fn detects_blocking_io_inside_engine_modules() {
    // io-discipline is path-scoped: the same code is legal in a driver
    // module but must fire inside crates/core/src/engine/.
    let dir = std::env::temp_dir().join(format!("msync-lint-gate-engine-{}", std::process::id()));
    let src = dir.join("crates").join("core").join("src");
    fs::create_dir_all(src.join("engine")).expect("scratch dir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n").expect("manifest");
    fs::write(
        dir.join("crates").join("core").join("Cargo.toml"),
        "[package]\nname = \"core\"\nversion = \"0.0.0\"\n",
    )
    .expect("crate manifest");
    fs::write(src.join("lib.rs"), format!("{CLEAN_HEADER}\npub mod engine;\npub mod driver;\n"))
        .expect("lib.rs");
    let offending = "//! Engine module.\n/// Doc.\npub fn bad(rx: &std::sync::mpsc::Receiver<u8>, d: std::time::Duration) {\n    std::thread::spawn(|| {});\n    let _ = rx.recv_timeout(d);\n}\n";
    fs::write(src.join("engine").join("mod.rs"), offending).expect("engine/mod.rs");
    // Identical body outside the engine tree: io-discipline stays quiet
    // there (channel-discipline has its own opinion about recv, which
    // recv_timeout satisfies).
    fs::write(src.join("driver.rs"), offending).expect("driver.rs");
    let findings = lint_workspace(&dir, &LintConfig::msync()).expect("scan");
    let hits: Vec<_> = findings.into_iter().filter(|f| f.rule == Rule::IoDiscipline).collect();
    fs::remove_dir_all(&dir).ok();
    assert_eq!(hits.len(), 2, "spawn + recv_timeout inside engine/ must fire: {hits:?}");
    assert!(hits.iter().all(|f| f.file == "crates/core/src/engine/mod.rs"), "{hits:?}");
}

#[test]
fn non_critical_crate_may_panic() {
    let body = format!(
        "{CLEAN_HEADER}\n/// Doc.\npub fn f(v: Option<u32>) -> u32 {{\n    v.unwrap()\n}}\n"
    );
    let ws = MiniWorkspace::new("non-critical", "corpus", &body);
    let hits = ws.findings_for(Rule::PanicFreedom);
    assert!(hits.is_empty(), "panic-freedom only applies to protocol-critical crates");
}
