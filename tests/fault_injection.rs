//! Fault-injection soak: the session layer must survive lossy,
//! corrupting, and hanging links.
//!
//! Sweeps every fault class of `msync::protocol::fault` across a seed
//! range and two block-size schedules, driving real two-thread
//! [`msync::core::sync_file_with`] sessions over a faulty
//! channel. The contract under test (ISSUE: "graceful degradation"):
//!
//! * **no panic, no hang** — every run finishes within a watchdog
//!   deadline, whatever the link does;
//! * **no silent corruption** — whenever a run reports `Ok`, the
//!   reconstruction is byte-exact;
//! * **typed failure** — when the retry budget is exhausted the error
//!   is `Timeout` / `FrameCorrupt` / `PeerGone` / `Desync`, never a
//!   deadlock or a wrong file.
//!
//! Seeds are deterministic; a failure reproduces from the printed
//! `(class, schedule, seed)` triple. `MSYNC_SOAK_SEEDS=100` widens the
//! sweep (CI runs it with more seeds than the default 20).

use msync::core::{
    sync_file, sync_file_with, ChannelOptions, ProtocolConfig, SyncError, SyncOptions,
};
use msync::corpus::Rng;
use msync::protocol::fault::FaultInjector;
use msync::protocol::{FaultPlan, RetryPolicy};
use msync::trace::{DirTag, EventKind, FaultKind, Recorder};
use std::time::Duration;

/// Fault classes under test — every profile the injector ships except
/// the clean one (covered by `zero_fault_rates_change_nothing`).
const CLASSES: &[&str] =
    &["drop", "corrupt", "truncate", "duplicate", "delay", "disconnect", "lossy", "evil"];

/// Per-run watchdog: generous next to the retry budget (worst case a
/// few seconds of backoff), tiny next to a real hang.
const DEADLINE: Duration = Duration::from_secs(60);

fn seed_count() -> u64 {
    std::env::var("MSYNC_SOAK_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(20)
}

/// Short deadlines so injected losses cost milliseconds, not the
/// default half-second.
fn soak_retry() -> RetryPolicy {
    RetryPolicy {
        timeout: Duration::from_millis(10),
        max_retries: 8,
        backoff_cap: Duration::from_millis(80),
    }
}

/// Block-size schedules: the paper's default deep recursion and a
/// shallow schedule that reaches small blocks fast (more rounds of
/// small frames vs fewer rounds of large ones).
fn schedules() -> Vec<(&'static str, ProtocolConfig)> {
    vec![
        ("default", ProtocolConfig::default()),
        (
            "shallow",
            ProtocolConfig {
                start_block: 4096,
                min_block_global: 64,
                min_block_cont: 32,
                ..ProtocolConfig::default()
            },
        ),
    ]
}

/// Deterministic file pair: ~24 KiB old file plus an edited copy
/// (splices, overwrites, and a tail change) derived from `seed`.
fn file_pair(seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let n = rng.gen_range(16_384..=24_576usize);
    let old: Vec<u8> = (0..n).map(|_| (rng.next_u64() >> 56) as u8).collect();
    let mut new = old.clone();
    for _ in 0..rng.gen_range(1..=4u32) {
        let at = rng.gen_range(0..new.len());
        let len = rng.gen_range(1..=512usize).min(new.len() - at);
        match rng.gen_range(0..3u32) {
            0 => {
                // Overwrite in place.
                for b in &mut new[at..at + len] {
                    *b = (rng.next_u64() >> 56) as u8;
                }
            }
            1 => {
                // Insert.
                let patch: Vec<u8> = (0..len).map(|_| (rng.next_u64() >> 56) as u8).collect();
                new.splice(at..at, patch);
            }
            _ => {
                // Delete.
                new.drain(at..at + len);
            }
        }
    }
    (old, new)
}

/// Run one sync on a worker thread under the watchdog. A deadline miss
/// is exactly the hang this PR exists to eliminate, so it panics the
/// test with the reproducing triple.
fn run_with_deadline(
    label: &str,
    old: Vec<u8>,
    new: Vec<u8>,
    cfg: ProtocolConfig,
    opts: ChannelOptions,
) -> Result<(Vec<u8>, u64), SyncError> {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let sync_opts = SyncOptions { channel: Some(opts), ..SyncOptions::default() };
        let result = sync_file_with(&old, &new, &cfg, &sync_opts)
            .map(|out| (out.reconstructed, out.stats.traffic.retransmits));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(DEADLINE) {
        Ok(result) => {
            let _ = handle.join();
            result
        }
        Err(_) => panic!("HANG: {label} exceeded the {DEADLINE:?} watchdog"),
    }
}

#[test]
fn soak_every_fault_class_across_seeds() {
    let seeds = seed_count();
    for class in CLASSES {
        let plan = FaultPlan::profile(class).expect("profile exists");
        let mut successes = 0u64;
        let mut failures = 0u64;
        let mut retransmits = 0u64;
        for (schedule, cfg) in schedules() {
            for seed in 0..seeds {
                let label = format!("class={class} schedule={schedule} seed={seed}");
                let (old, new) = file_pair(seed);
                let opts = ChannelOptions {
                    retry: soak_retry(),
                    fault_plan: Some(plan),
                    fault_seed: seed,
                };
                match run_with_deadline(&label, old, new.clone(), cfg.clone(), opts) {
                    Ok((reconstructed, rtx)) => {
                        assert_eq!(
                            reconstructed, new,
                            "{label}: reported success but reconstruction differs"
                        );
                        successes += 1;
                        retransmits += rtx;
                    }
                    Err(
                        SyncError::Timeout
                        | SyncError::FrameCorrupt
                        | SyncError::PeerGone
                        | SyncError::Desync(_),
                    ) => failures += 1,
                    Err(other) => panic!("{label}: non-transport error {other}"),
                }
            }
        }
        let runs = successes + failures;
        println!("class {class:<10} {successes}/{runs} ok, {retransmits} retransmitted frame(s)");
        // The disconnect profile severs the link mid-session, so typed
        // failure is its expected outcome; every recoverable class must
        // actually recover on at least some seeds.
        if *class != "disconnect" {
            assert!(successes > 0, "class {class}: no run ever succeeded");
        }
    }
}

#[test]
fn recoverable_classes_mostly_recover() {
    // Mild per-class rates must be *absorbed* by retransmission, not
    // merely survived: demand a high success rate so recovery
    // regressions show up even while errors stay typed.
    let seeds = seed_count();
    for class in ["drop", "corrupt", "duplicate", "delay"] {
        let plan = FaultPlan::profile(class).expect("profile exists");
        let mut successes = 0u64;
        let mut runs = 0u64;
        for seed in 0..seeds {
            let label = format!("class={class} seed={seed}");
            let (old, new) = file_pair(seed);
            let opts =
                ChannelOptions { retry: soak_retry(), fault_plan: Some(plan), fault_seed: seed };
            runs += 1;
            if let Ok((reconstructed, _)) =
                run_with_deadline(&label, old, new.clone(), ProtocolConfig::default(), opts)
            {
                assert_eq!(reconstructed, new, "{label}: corrupt reconstruction");
                successes += 1;
            }
        }
        assert!(
            successes * 10 >= runs * 9,
            "class {class}: only {successes}/{runs} runs recovered"
        );
    }
}

#[test]
fn disconnect_surfaces_typed_error_not_hang() {
    let plan = FaultPlan::profile("disconnect").expect("profile exists");
    for seed in 0..seed_count() {
        let label = format!("class=disconnect seed={seed}");
        let (old, new) = file_pair(seed);
        let opts = ChannelOptions { retry: soak_retry(), fault_plan: Some(plan), fault_seed: seed };
        match run_with_deadline(&label, old, new.clone(), ProtocolConfig::default(), opts) {
            // The session may finish before the cut lands.
            Ok((reconstructed, _)) => assert_eq!(reconstructed, new, "{label}"),
            Err(
                SyncError::PeerGone
                | SyncError::Timeout
                | SyncError::FrameCorrupt
                | SyncError::Desync(_),
            ) => {}
            Err(other) => panic!("{label}: non-transport error {other}"),
        }
    }
}

#[test]
fn zero_fault_rates_change_nothing() {
    // A FaultPlan with every rate at zero must be bit-transparent:
    // identical bytes, frames, and phase attribution to the clean
    // channel, zero retransmissions, and only the documented fixed
    // per-frame ARQ header overhead versus the in-process driver.
    let (old, new) = file_pair(7);
    let cfg = ProtocolConfig::default();
    let clean_opts =
        SyncOptions { channel: Some(ChannelOptions::default()), ..SyncOptions::default() };
    let clean = sync_file_with(&old, &new, &cfg, &clean_opts).expect("clean run");
    let opts = ChannelOptions {
        retry: RetryPolicy::default(),
        fault_plan: Some(FaultPlan::none()),
        fault_seed: 1234,
    };
    let zeroed_opts = SyncOptions { channel: Some(opts), ..SyncOptions::default() };
    let zeroed = sync_file_with(&old, &new, &cfg, &zeroed_opts).expect("zero-fault run");
    assert_eq!(zeroed.reconstructed, new);
    assert_eq!(zeroed.stats.traffic, clean.stats.traffic, "zero-rate plan perturbed accounting");
    assert_eq!(zeroed.stats.traffic.retransmits, 0);

    let driver = sync_file(&old, &new, &cfg).expect("in-process driver");
    let diff = zeroed.stats.total_bytes().abs_diff(driver.stats.total_bytes());
    assert!(
        diff <= 8 * zeroed.stats.traffic.frames,
        "channel overhead {diff} exceeds the per-frame ARQ header bound ({} frames)",
        zeroed.stats.traffic.frames
    );
}

#[test]
fn every_injected_fault_is_traced_with_matching_direction_and_seq() {
    // The channel stamps each fault event with the injector's 1-based
    // per-direction frame sequence, so a mirror pair of injectors built
    // from the same `(rates, seed)` must reproduce the recorded fates
    // exactly. The `lossy` profile (drop + duplicate + delay) is the
    // widest one whose fates consume no extra RNG draws beyond
    // `next_fate()` (corrupt/truncate also draw for the bit flip /
    // prefix length), which keeps the mirror replay a pure function of
    // the frame index.
    let plan = FaultPlan::profile("lossy").expect("profile exists");
    let fault_seed = 0x5EEDu64;
    let (old, new) = file_pair(42);
    let recorder = Recorder::system();
    let opts = ChannelOptions {
        retry: RetryPolicy { timeout: Duration::from_millis(50), ..RetryPolicy::default() },
        fault_plan: Some(plan),
        fault_seed,
    };
    // Outcome is irrelevant here (Ok or typed failure both leave a
    // valid journal); only the recorded fault events are under test.
    let sync_opts =
        SyncOptions { channel: Some(opts), recorder: recorder.clone(), ..SyncOptions::default() };
    let _ = sync_file_with(&old, &new, &ProtocolConfig::default(), &sync_opts);

    let mut observed: [Vec<(u64, FaultKind)>; 2] = [Vec::new(), Vec::new()];
    for ev in recorder.drain_events() {
        if let EventKind::FaultInjected { dir, kind, seq } = ev.kind {
            let d = match dir {
                DirTag::C2s => 0,
                DirTag::S2c => 1,
            };
            let last = observed[d].last().map_or(0, |&(s, _)| s);
            assert!(seq >= last, "per-direction fault seqs must be non-decreasing");
            observed[d].push((seq, kind));
        }
    }
    assert!(
        observed[0].len() + observed[1].len() > 0,
        "a lossy run must inject (and trace) at least one fault"
    );

    // Mirror the channel's per-direction injector seeding and replay.
    let mirrors = [
        FaultInjector::new(plan.c2s, fault_seed),
        FaultInjector::new(plan.s2c, fault_seed ^ 0x9E37_79B9_7F4A_7C15),
    ];
    for (mut mirror, events) in mirrors.into_iter().zip(observed) {
        let max_seq = events.last().map_or(0, |&(s, _)| s);
        let mut expected: Vec<(u64, FaultKind)> = Vec::new();
        for seq in 1..=max_seq {
            let fate = mirror.next_fate();
            // Same order the channel emits fault events in.
            for (hit, kind) in [
                (fate.disconnect, FaultKind::Disconnect),
                (fate.drop, FaultKind::Drop),
                (fate.corrupt, FaultKind::Corrupt),
                (fate.truncate, FaultKind::Truncate),
                (fate.duplicate, FaultKind::Duplicate),
                (fate.delay, FaultKind::Delay),
            ] {
                if hit {
                    expected.push((seq, kind));
                }
            }
        }
        assert_eq!(events, expected, "traced fault events must match the mirror injector's fates");
    }
}

#[test]
fn faulty_runs_are_reproducible() {
    // Timing-driven retransmissions make lossy runs' traffic counts
    // scheduling-dependent, so determinism is asserted on a profile
    // where nothing is ever lost or held: duplication perturbs the
    // stream (and triggers receipt-driven resends) without any
    // timeouts, so bytes, frames, and resend counts must reproduce
    // exactly from the fault seed. The roundtrip counter is excluded:
    // it counts direction reversals, and how a concurrent resend
    // interleaves with the peer's next message is up to the scheduler.
    let plan = FaultPlan::profile("duplicate").expect("profile exists");
    let (old, new) = file_pair(3);
    let run = |seed: u64| {
        // Long deadline: with no losses a timeout only fires on a
        // pathological scheduler stall, which would make the comparison
        // spuriously flaky under a heavily loaded test machine.
        let retry = RetryPolicy { timeout: Duration::from_secs(10), ..RetryPolicy::default() };
        let opts = ChannelOptions { retry, fault_plan: Some(plan), fault_seed: seed };
        let opts = SyncOptions { channel: Some(opts), ..SyncOptions::default() };
        sync_file_with(&old, &new, &ProtocolConfig::default(), &opts)
            .map(|out| {
                let mut traffic = out.stats.traffic;
                traffic.roundtrips = 0;
                (out.reconstructed, traffic)
            })
            .map_err(|e| e.to_string())
    };
    assert_eq!(run(11), run(11), "same fault seed must reproduce the same run");
}
