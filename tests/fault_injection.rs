//! Fault-injection soak: the session layer must survive lossy,
//! corrupting, and hanging links.
//!
//! Sweeps every fault class of `msync::protocol::fault` across a seed
//! range and two block-size schedules, driving real two-thread
//! [`msync::core::sync_file_with`] sessions over a faulty
//! channel. The contract under test (ISSUE: "graceful degradation"):
//!
//! * **no panic, no hang** — every run finishes within a watchdog
//!   deadline, whatever the link does;
//! * **no silent corruption** — whenever a run reports `Ok`, the
//!   reconstruction is byte-exact;
//! * **typed failure** — when the retry budget is exhausted the error
//!   is `Timeout` / `FrameCorrupt` / `PeerGone` / `Desync`, never a
//!   deadlock or a wrong file.
//!
//! Seeds are deterministic; a failure reproduces from the printed
//! `(class, schedule, seed)` triple. `MSYNC_SOAK_SEEDS=100` widens the
//! sweep (CI runs it with more seeds than the default 20).
//!
//! The crash-recovery section at the bottom drives the durable-session
//! machinery end to end: seeded disconnects kill live daemon sessions
//! mid-collection, the client reconnects with a resume offer built from
//! the files it completed (as the checkpoint journal would), and the
//! resumed run must end byte-exact while transferring measurably fewer
//! bytes than a from-scratch restart. `MSYNC_BENCH=1` additionally
//! emits the measurement as `BENCH_resume.json` in the repo root.

use msync::core::{
    sync_file, sync_file_with, AtomicApplier, ChannelOptions, FileEntry, PipelineOptions,
    ProtocolConfig, ResumePlan, SyncError, SyncOptions,
};
use msync::corpus::Rng;
use msync::hashes::file_fingerprint;
use msync::net::{sync_remote, sync_remote_with, Daemon, DaemonOptions, RemoteOptions};
use msync::protocol::fault::FaultInjector;
use msync::protocol::{FaultPlan, Phase, RetryPolicy};
use msync::trace::{DirTag, EventKind, FaultKind, Recorder};
use std::time::Duration;

/// Fault classes under test — every profile the injector ships except
/// the clean one (covered by `zero_fault_rates_change_nothing`).
const CLASSES: &[&str] =
    &["drop", "corrupt", "truncate", "duplicate", "delay", "disconnect", "lossy", "evil"];

/// Per-run watchdog: generous next to the retry budget (worst case a
/// few seconds of backoff), tiny next to a real hang.
const DEADLINE: Duration = Duration::from_secs(60);

fn seed_count() -> u64 {
    std::env::var("MSYNC_SOAK_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(20)
}

/// Short deadlines so injected losses cost milliseconds, not the
/// default half-second.
fn soak_retry() -> RetryPolicy {
    RetryPolicy {
        timeout: Duration::from_millis(10),
        max_retries: 8,
        backoff_cap: Duration::from_millis(80),
    }
}

/// Block-size schedules: the paper's default deep recursion and a
/// shallow schedule that reaches small blocks fast (more rounds of
/// small frames vs fewer rounds of large ones).
fn schedules() -> Vec<(&'static str, ProtocolConfig)> {
    vec![
        ("default", ProtocolConfig::default()),
        (
            "shallow",
            ProtocolConfig {
                start_block: 4096,
                min_block_global: 64,
                min_block_cont: 32,
                ..ProtocolConfig::default()
            },
        ),
    ]
}

/// Deterministic file pair: ~24 KiB old file plus an edited copy
/// (splices, overwrites, and a tail change) derived from `seed`.
fn file_pair(seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let n = rng.gen_range(16_384..=24_576usize);
    let old: Vec<u8> = (0..n).map(|_| (rng.next_u64() >> 56) as u8).collect();
    let mut new = old.clone();
    for _ in 0..rng.gen_range(1..=4u32) {
        let at = rng.gen_range(0..new.len());
        let len = rng.gen_range(1..=512usize).min(new.len() - at);
        match rng.gen_range(0..3u32) {
            0 => {
                // Overwrite in place.
                for b in &mut new[at..at + len] {
                    *b = (rng.next_u64() >> 56) as u8;
                }
            }
            1 => {
                // Insert.
                let patch: Vec<u8> = (0..len).map(|_| (rng.next_u64() >> 56) as u8).collect();
                new.splice(at..at, patch);
            }
            _ => {
                // Delete.
                new.drain(at..at + len);
            }
        }
    }
    (old, new)
}

/// Run one sync on a worker thread under the watchdog. A deadline miss
/// is exactly the hang this PR exists to eliminate, so it panics the
/// test with the reproducing triple.
fn run_with_deadline(
    label: &str,
    old: Vec<u8>,
    new: Vec<u8>,
    cfg: ProtocolConfig,
    opts: ChannelOptions,
) -> Result<(Vec<u8>, u64), SyncError> {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let sync_opts = SyncOptions { channel: Some(opts), ..SyncOptions::default() };
        let result = sync_file_with(&old, &new, &cfg, &sync_opts)
            .map(|out| (out.reconstructed, out.stats.traffic.retransmits));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(DEADLINE) {
        Ok(result) => {
            let _ = handle.join();
            result
        }
        Err(_) => panic!("HANG: {label} exceeded the {DEADLINE:?} watchdog"),
    }
}

#[test]
fn soak_every_fault_class_across_seeds() {
    let seeds = seed_count();
    for class in CLASSES {
        let plan = FaultPlan::profile(class).expect("profile exists");
        let mut successes = 0u64;
        let mut failures = 0u64;
        let mut retransmits = 0u64;
        for (schedule, cfg) in schedules() {
            for seed in 0..seeds {
                let label = format!("class={class} schedule={schedule} seed={seed}");
                let (old, new) = file_pair(seed);
                let opts = ChannelOptions {
                    retry: soak_retry(),
                    fault_plan: Some(plan),
                    fault_seed: seed,
                };
                match run_with_deadline(&label, old, new.clone(), cfg.clone(), opts) {
                    Ok((reconstructed, rtx)) => {
                        assert_eq!(
                            reconstructed, new,
                            "{label}: reported success but reconstruction differs"
                        );
                        successes += 1;
                        retransmits += rtx;
                    }
                    Err(
                        SyncError::Timeout
                        | SyncError::FrameCorrupt
                        | SyncError::PeerGone
                        | SyncError::Desync(_),
                    ) => failures += 1,
                    Err(other) => panic!("{label}: non-transport error {other}"),
                }
            }
        }
        let runs = successes + failures;
        println!("class {class:<10} {successes}/{runs} ok, {retransmits} retransmitted frame(s)");
        // The disconnect profile severs the link mid-session, so typed
        // failure is its expected outcome; every recoverable class must
        // actually recover on at least some seeds.
        if *class != "disconnect" {
            assert!(successes > 0, "class {class}: no run ever succeeded");
        }
    }
}

#[test]
fn recoverable_classes_mostly_recover() {
    // Mild per-class rates must be *absorbed* by retransmission, not
    // merely survived: demand a high success rate so recovery
    // regressions show up even while errors stay typed.
    let seeds = seed_count();
    for class in ["drop", "corrupt", "duplicate", "delay"] {
        let plan = FaultPlan::profile(class).expect("profile exists");
        let mut successes = 0u64;
        let mut runs = 0u64;
        for seed in 0..seeds {
            let label = format!("class={class} seed={seed}");
            let (old, new) = file_pair(seed);
            let opts =
                ChannelOptions { retry: soak_retry(), fault_plan: Some(plan), fault_seed: seed };
            runs += 1;
            if let Ok((reconstructed, _)) =
                run_with_deadline(&label, old, new.clone(), ProtocolConfig::default(), opts)
            {
                assert_eq!(reconstructed, new, "{label}: corrupt reconstruction");
                successes += 1;
            }
        }
        assert!(
            successes * 10 >= runs * 9,
            "class {class}: only {successes}/{runs} runs recovered"
        );
    }
}

#[test]
fn disconnect_surfaces_typed_error_not_hang() {
    let plan = FaultPlan::profile("disconnect").expect("profile exists");
    for seed in 0..seed_count() {
        let label = format!("class=disconnect seed={seed}");
        let (old, new) = file_pair(seed);
        let opts = ChannelOptions { retry: soak_retry(), fault_plan: Some(plan), fault_seed: seed };
        match run_with_deadline(&label, old, new.clone(), ProtocolConfig::default(), opts) {
            // The session may finish before the cut lands.
            Ok((reconstructed, _)) => assert_eq!(reconstructed, new, "{label}"),
            Err(
                SyncError::PeerGone
                | SyncError::Timeout
                | SyncError::FrameCorrupt
                | SyncError::Desync(_),
            ) => {}
            Err(other) => panic!("{label}: non-transport error {other}"),
        }
    }
}

#[test]
fn zero_fault_rates_change_nothing() {
    // A FaultPlan with every rate at zero must be bit-transparent:
    // identical bytes, frames, and phase attribution to the clean
    // channel, zero retransmissions, and only the documented fixed
    // per-frame ARQ header overhead versus the in-process driver.
    let (old, new) = file_pair(7);
    let cfg = ProtocolConfig::default();
    let clean_opts =
        SyncOptions { channel: Some(ChannelOptions::default()), ..SyncOptions::default() };
    let clean = sync_file_with(&old, &new, &cfg, &clean_opts).expect("clean run");
    let opts = ChannelOptions {
        retry: RetryPolicy::default(),
        fault_plan: Some(FaultPlan::none()),
        fault_seed: 1234,
    };
    let zeroed_opts = SyncOptions { channel: Some(opts), ..SyncOptions::default() };
    let zeroed = sync_file_with(&old, &new, &cfg, &zeroed_opts).expect("zero-fault run");
    assert_eq!(zeroed.reconstructed, new);
    assert_eq!(zeroed.stats.traffic, clean.stats.traffic, "zero-rate plan perturbed accounting");
    assert_eq!(zeroed.stats.traffic.retransmits, 0);

    let driver = sync_file(&old, &new, &cfg).expect("in-process driver");
    let diff = zeroed.stats.total_bytes().abs_diff(driver.stats.total_bytes());
    assert!(
        diff <= 8 * zeroed.stats.traffic.frames,
        "channel overhead {diff} exceeds the per-frame ARQ header bound ({} frames)",
        zeroed.stats.traffic.frames
    );
}

#[test]
fn every_injected_fault_is_traced_with_matching_direction_and_seq() {
    // The channel stamps each fault event with the injector's 1-based
    // per-direction frame sequence, so a mirror pair of injectors built
    // from the same `(rates, seed)` must reproduce the recorded fates
    // exactly. The `lossy` profile (drop + duplicate + delay) is the
    // widest one whose fates consume no extra RNG draws beyond
    // `next_fate()` (corrupt/truncate also draw for the bit flip /
    // prefix length), which keeps the mirror replay a pure function of
    // the frame index.
    let plan = FaultPlan::profile("lossy").expect("profile exists");
    let fault_seed = 0x5EEDu64;
    let (old, new) = file_pair(42);
    let recorder = Recorder::system();
    let opts = ChannelOptions {
        retry: RetryPolicy { timeout: Duration::from_millis(50), ..RetryPolicy::default() },
        fault_plan: Some(plan),
        fault_seed,
    };
    // Outcome is irrelevant here (Ok or typed failure both leave a
    // valid journal); only the recorded fault events are under test.
    let sync_opts =
        SyncOptions { channel: Some(opts), recorder: recorder.clone(), ..SyncOptions::default() };
    let _ = sync_file_with(&old, &new, &ProtocolConfig::default(), &sync_opts);

    let mut observed: [Vec<(u64, FaultKind)>; 2] = [Vec::new(), Vec::new()];
    for ev in recorder.drain_events() {
        if let EventKind::FaultInjected { dir, kind, seq } = ev.kind {
            let d = match dir {
                DirTag::C2s => 0,
                DirTag::S2c => 1,
            };
            let last = observed[d].last().map_or(0, |&(s, _)| s);
            assert!(seq >= last, "per-direction fault seqs must be non-decreasing");
            observed[d].push((seq, kind));
        }
    }
    assert!(
        observed[0].len() + observed[1].len() > 0,
        "a lossy run must inject (and trace) at least one fault"
    );

    // Mirror the channel's per-direction injector seeding and replay.
    let mirrors = [
        FaultInjector::new(plan.c2s, fault_seed),
        FaultInjector::new(plan.s2c, fault_seed ^ 0x9E37_79B9_7F4A_7C15),
    ];
    for (mut mirror, events) in mirrors.into_iter().zip(observed) {
        let max_seq = events.last().map_or(0, |&(s, _)| s);
        let mut expected: Vec<(u64, FaultKind)> = Vec::new();
        for seq in 1..=max_seq {
            let fate = mirror.next_fate();
            // Same order the channel emits fault events in.
            for (hit, kind) in [
                (fate.disconnect, FaultKind::Disconnect),
                (fate.drop, FaultKind::Drop),
                (fate.corrupt, FaultKind::Corrupt),
                (fate.truncate, FaultKind::Truncate),
                (fate.duplicate, FaultKind::Duplicate),
                (fate.delay, FaultKind::Delay),
            ] {
                if hit {
                    expected.push((seq, kind));
                }
            }
        }
        assert_eq!(events, expected, "traced fault events must match the mirror injector's fates");
    }
}

#[test]
fn faulty_runs_are_reproducible() {
    // Timing-driven retransmissions make lossy runs' traffic counts
    // scheduling-dependent, so determinism is asserted on a profile
    // where nothing is ever lost or held: duplication perturbs the
    // stream (and triggers receipt-driven resends) without any
    // timeouts, so bytes, frames, and resend counts must reproduce
    // exactly from the fault seed. The roundtrip counter is excluded:
    // it counts direction reversals, and how a concurrent resend
    // interleaves with the peer's next message is up to the scheduler.
    let plan = FaultPlan::profile("duplicate").expect("profile exists");
    let (old, new) = file_pair(3);
    let run = |seed: u64| {
        // Long deadline: with no losses a timeout only fires on a
        // pathological scheduler stall, which would make the comparison
        // spuriously flaky under a heavily loaded test machine.
        let retry = RetryPolicy { timeout: Duration::from_secs(10), ..RetryPolicy::default() };
        let opts = ChannelOptions { retry, fault_plan: Some(plan), fault_seed: seed };
        let opts = SyncOptions { channel: Some(opts), ..SyncOptions::default() };
        sync_file_with(&old, &new, &ProtocolConfig::default(), &opts)
            .map(|out| {
                let mut traffic = out.stats.traffic;
                traffic.roundtrips = 0;
                (out.reconstructed, traffic)
            })
            .map_err(|e| e.to_string())
    };
    assert_eq!(run(11), run(11), "same fault seed must reproduce the same run");
}

// ---------------------------------------------------------------------
// Crash recovery: kill-and-resume over a live daemon, torn-temp sweep,
// and the repeated-sync fast path.
// ---------------------------------------------------------------------

/// Deterministic collection pair: `files` entries of [`file_pair`] data,
/// old on the client, edited new on the server.
fn collection_pair(files: usize, seed: u64) -> (Vec<FileEntry>, Vec<FileEntry>) {
    let mut old = Vec::new();
    let mut new = Vec::new();
    for i in 0..files {
        let (o, n) = file_pair(seed.wrapping_mul(1009).wrapping_add(i as u64));
        old.push(FileEntry::new(format!("f{i:02}.bin"), o));
        new.push(FileEntry::new(format!("f{i:02}.bin"), n));
    }
    (old, new)
}

fn assert_collection(got: &[FileEntry], want: &[FileEntry], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: file count differs");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.name, w.name, "{label}: name order differs");
        assert_eq!(g.data, w.data, "{label}: `{}` is not byte-exact", g.name);
    }
}

/// The seeded kill points for the resume soak: the connection is cut
/// after this many server-to-client frames, spanning everything from
/// "died during the first file" to "died near the end".
const KILL_POINTS: &[u64] = &[10, 20, 40, 70, 110, 160, 220, 300];

/// One client run against `addr` with the link cut after `cut` s2c
/// frames. Returns the `(name, data)` pairs the durability sink saw
/// before the cut, or `None` if the session outran the kill (in which
/// case the outcome is verified byte-exact here).
fn killed_run(
    addr: &str,
    old: &[FileEntry],
    new: &[FileEntry],
    cut: u64,
) -> Option<Vec<(String, Vec<u8>)>> {
    let mut plan = FaultPlan::none();
    plan.s2c.disconnect_after = Some(cut);
    // Depth 1 serializes the per-file sessions, so a mid-collection cut
    // leaves the earlier files completed (and checkpointed) — the
    // partial state the resume machinery exists for. At the default
    // depth every file finishes near the end, so almost every cut would
    // land before the first completion.
    let opts = RemoteOptions {
        pipeline: PipelineOptions { depth: 1, retry: soak_retry() },
        fault_wrap: Some((plan, cut)),
        ..RemoteOptions::default()
    };
    let mut completed = Vec::new();
    match sync_remote_with(addr, old, &opts, &mut |f| {
        completed.push((f.name.clone(), f.data.clone()));
        Ok(())
    }) {
        Ok(got) => {
            assert_collection(&got.outcome.files, new, &format!("clean run (cut {cut})"));
            None
        }
        Err(_) => Some(completed),
    }
}

/// Reconnect after a kill the way the durable CLI does: the completed
/// files are already applied on disk (so the retry's `old` holds their
/// final bytes) and the checkpoint feeds the resume offer.
fn resume_state(
    old: &[FileEntry],
    completed: &[(String, Vec<u8>)],
) -> (Vec<FileEntry>, ResumePlan) {
    let mut retry_old = old.to_vec();
    let mut plan = ResumePlan::new(&ProtocolConfig::default());
    for (name, data) in completed {
        match retry_old.iter_mut().find(|e| e.name == *name) {
            Some(e) => e.data.clone_from(data),
            None => retry_old.push(FileEntry::new(name.clone(), data.clone())),
        }
        plan.add(name.clone(), file_fingerprint(data));
    }
    (retry_old, plan)
}

#[test]
fn kill_and_resume_completes_byte_exact_with_fewer_bytes() {
    let (old, new) = collection_pair(6, 99);
    let daemon =
        Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {}).expect("bind");
    let addr = daemon.local_addr().to_string();

    // Restart baseline: what a crash costs without checkpoints — the
    // whole collection re-synced from the original client state.
    let restart = sync_remote(&addr, &old, &RemoteOptions::default()).expect("restart baseline");
    assert_collection(&restart.outcome.files, &new, "restart baseline");
    let restart_bytes = restart.socket_sent + restart.socket_received;

    let mut exercised = 0u64;
    for &cut in KILL_POINTS {
        let Some(completed) = killed_run(&addr, &old, &new, cut) else { continue };
        if completed.is_empty() {
            continue; // Cut landed before any file finished: a pure restart.
        }
        exercised += 1;
        let (retry_old, plan) = resume_state(&old, &completed);
        let opts = RemoteOptions { resume: Some(plan), ..RemoteOptions::default() };
        let got = sync_remote(&addr, &retry_old, &opts)
            .unwrap_or_else(|e| panic!("cut {cut}: resumed run failed: {e}"));
        assert_collection(&got.outcome.files, &new, &format!("resumed run (cut {cut})"));
        assert_eq!(
            got.outcome.resumed,
            completed.len(),
            "cut {cut}: the daemon must confirm every checkpointed file"
        );
        let resumed_bytes = got.socket_sent + got.socket_received;
        assert!(
            resumed_bytes < restart_bytes,
            "cut {cut}: resume after {} completed file(s) moved {resumed_bytes} bytes, \
             restart moved {restart_bytes}",
            completed.len()
        );
        println!(
            "kill-and-resume: cut after {cut} frames -> {} file(s) checkpointed, \
             {resumed_bytes} resumed bytes vs {restart_bytes} restart bytes",
            completed.len()
        );
    }
    daemon.shutdown();
    assert!(exercised > 0, "no kill point produced a mid-session cut with completed files");
}

#[test]
fn stale_checkpoint_entries_degrade_to_full_sync_not_failure() {
    // A checkpoint written before the server-side content changed must
    // be declined per entry — the sync still completes byte-exact.
    let (old, new) = collection_pair(3, 5);
    let daemon =
        Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {}).expect("bind");
    let addr = daemon.local_addr().to_string();

    // Offer f00 at its *old* digest (stale) and f01 at its final digest
    // (fresh); pretend both are already on disk.
    let mut retry_old = old.clone();
    retry_old[1].data.clone_from(&new[1].data);
    let mut plan = ResumePlan::new(&ProtocolConfig::default());
    plan.add(old[0].name.clone(), file_fingerprint(&old[0].data));
    plan.add(new[1].name.clone(), file_fingerprint(&new[1].data));

    let opts = RemoteOptions { resume: Some(plan), ..RemoteOptions::default() };
    let got = sync_remote(&addr, &retry_old, &opts).expect("degraded run");
    daemon.shutdown();
    assert_collection(&got.outcome.files, &new, "degraded run");
    assert_eq!(got.outcome.resumed, 1, "only the fresh entry is confirmed");
}

#[test]
fn torn_temp_files_are_swept_and_reapplied_atomically() {
    // A crash mid-apply leaves `<final>.msync-tmp` siblings, never a
    // torn final file; the startup sweep removes them and the resumed
    // apply lands the real content.
    let dir = std::env::temp_dir().join(format!("msync-torn-temp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("sub")).expect("scratch dir");
    std::fs::write(dir.join("a.bin.msync-tmp"), b"torn half-write").expect("plant orphan");
    std::fs::write(dir.join("sub").join("b.bin.msync-tmp"), b"torn nested").expect("plant orphan");
    std::fs::write(dir.join("a.bin"), b"previous generation").expect("previous file");

    let applier = AtomicApplier::new(&dir);
    assert_eq!(applier.clean_orphans().expect("sweep"), 2, "both orphans are swept");
    applier.apply("a.bin", b"resumed final content").expect("apply");
    applier.apply("sub/b.bin", b"nested final").expect("apply");

    assert_eq!(std::fs::read(dir.join("a.bin")).expect("read"), b"resumed final content");
    assert_eq!(std::fs::read(dir.join("sub").join("b.bin")).expect("read"), b"nested final");
    assert!(!dir.join("a.bin.msync-tmp").exists(), "no temp sibling survives a finished apply");
    assert!(!dir.join("sub").join("b.bin.msync-tmp").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_repeat_sync_exchanges_no_map_frames() {
    // Second sync of an already-synchronized collection with every file
    // offered from the metadata cache: the whole exchange is the roster
    // plus the resume offer/verdict — zero map or delta traffic.
    let (_, new) = collection_pair(4, 7);
    let daemon =
        Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {}).expect("bind");
    let addr = daemon.local_addr().to_string();

    let mut plan = ResumePlan::new(&ProtocolConfig::default());
    for f in &new {
        plan.add(f.name.clone(), file_fingerprint(&f.data));
    }
    let opts = RemoteOptions { resume: Some(plan), ..RemoteOptions::default() };
    let got = sync_remote(&addr, &new, &opts).expect("warm run");
    daemon.shutdown();

    assert_collection(&got.outcome.files, &new, "warm run");
    assert_eq!(got.outcome.resumed, new.len(), "every cached file is confirmed");
    let t = &got.outcome.traffic;
    assert_eq!(
        t.c2s(Phase::Map) + t.s2c(Phase::Map),
        0,
        "a warm-cache repeat sync must exchange no per-file map frames"
    );
    assert_eq!(t.c2s(Phase::Delta) + t.s2c(Phase::Delta), 0, "and no delta frames");
    assert!(t.c2s(Phase::Resume) > 0, "the offer itself is charged to the Resume phase");
}

#[test]
fn resume_bench_gate() {
    // CI runs this with MSYNC_BENCH=1 and archives BENCH_resume.json;
    // the gates (resume < restart, warm run ≈ roster only) are asserted
    // here so a regression fails the suite, not just the artifact.
    if std::env::var_os("MSYNC_BENCH").is_none() {
        eprintln!("resume_bench: set MSYNC_BENCH=1 to run the resume byte gate");
        return;
    }
    let files = 6usize;
    let (old, new) = collection_pair(files, 99);
    let daemon =
        Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {}).expect("bind");
    let addr = daemon.local_addr().to_string();

    let restart = sync_remote(&addr, &old, &RemoteOptions::default()).expect("restart baseline");
    let restart_bytes = restart.socket_sent + restart.socket_received;

    // First kill point that lands mid-collection drives the measurement.
    let (cut, completed) = KILL_POINTS
        .iter()
        .find_map(|&cut| {
            killed_run(&addr, &old, &new, cut).filter(|c| !c.is_empty()).map(|c| (cut, c))
        })
        .expect("some kill point must produce a partial session");
    let (retry_old, plan) = resume_state(&old, &completed);
    let opts = RemoteOptions { resume: Some(plan), ..RemoteOptions::default() };
    let resumed = sync_remote(&addr, &retry_old, &opts).expect("resumed run");
    assert_collection(&resumed.outcome.files, &new, "resumed run");
    let resumed_bytes = resumed.socket_sent + resumed.socket_received;
    assert!(
        resumed_bytes < restart_bytes,
        "resumed sync must move fewer bytes than a restart: {resumed_bytes} vs {restart_bytes}"
    );

    // Warm repeat run: everything cached, roster + offer/verdict only.
    let mut plan = ResumePlan::new(&ProtocolConfig::default());
    for f in &new {
        plan.add(f.name.clone(), file_fingerprint(&f.data));
    }
    let opts = RemoteOptions { resume: Some(plan), ..RemoteOptions::default() };
    let warm = sync_remote(&addr, &new, &opts).expect("warm run");
    daemon.shutdown();
    let t = &warm.outcome.traffic;
    let warm_map = t.c2s(Phase::Map) + t.s2c(Phase::Map);
    let warm_delta = t.c2s(Phase::Delta) + t.s2c(Phase::Delta);
    assert_eq!(warm_map + warm_delta, 0, "warm run must be roster + resume traffic only");
    let warm_bytes = warm.socket_sent + warm.socket_received;

    let json = format!(
        "{{\n  \"bench\": \"resume\",\n  \"files\": {files},\n  \"disconnect_after_frames\": {cut},\n  \"completed_before_kill\": {},\n  \"restart_bytes\": {restart_bytes},\n  \"resumed_bytes\": {resumed_bytes},\n  \"resume_savings\": {:.3},\n  \"warm_bytes\": {warm_bytes},\n  \"warm_map_bytes\": {warm_map},\n  \"warm_delta_bytes\": {warm_delta}\n}}\n",
        completed.len(),
        1.0 - resumed_bytes as f64 / restart_bytes.max(1) as f64
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_resume.json");
    std::fs::write(out, &json).expect("write bench json");
    eprintln!("resume_bench: gate passed -> {out}");
}
