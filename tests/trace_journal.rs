//! Golden-journal and accounting tests for the tracing subsystem.
//!
//! Three invariants, checked end-to-end through the public facade:
//!
//! 1. **Determinism** — two runs of the single-threaded driver over the
//!    same inputs under the same [`ManualClock`] schedule produce
//!    byte-identical journals (so a journal can be diffed across
//!    commits like any other golden file).
//! 2. **Charge-point mirroring** — the journal's per-(direction, phase)
//!    frame-byte sums equal the returned [`TrafficStats`] exactly: the
//!    recorder emits its frame events at the same call sites where the
//!    stats are charged, never from a parallel estimate.
//! 3. **Schema** — every line round-trips through the strict v1 parser.

use std::sync::Arc;

use msync::core::{sync_file, sync_file_with, ProtocolConfig, SyncOptions};
use msync::corpus::Rng;
use msync::trace::{parse_line, ManualClock, Recorder, SCHEMA_VERSION};

/// A correlated old/new file pair big enough to drive several map rounds.
fn corpus_pair(seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut byte = move || (rng.next_u64() >> 56) as u8;
    let old: Vec<u8> = (0..96 * 1024).map(|_| byte()).collect();
    let mut new = old.clone();
    // Scatter edits: overwrite a run, splice an insertion, drop a chunk.
    for start in [3_000usize, 20_000, 41_000, 70_000] {
        for b in &mut new[start..start + 257] {
            *b = byte();
        }
    }
    let insert: Vec<u8> = (0..777).map(|_| byte()).collect();
    new.splice(55_000..55_000, insert);
    new.drain(10_000..10_400);
    (old, new)
}

fn traced_run(old: &[u8], new: &[u8]) -> (String, msync::core::SyncOutcome) {
    let clock = ManualClock::ticking(1_000, 7);
    let recorder = Recorder::with_clock(Arc::new(clock));
    let opts = SyncOptions { recorder: recorder.clone(), ..SyncOptions::default() };
    let outcome =
        sync_file_with(old, new, &ProtocolConfig::default(), &opts).expect("traced sync succeeds");
    (msync::trace::render_journal(&recorder.drain_events()), outcome)
}

#[test]
fn golden_journal_is_byte_identical_across_runs() {
    let (old, new) = corpus_pair(0xA11CE);
    let (j1, o1) = traced_run(&old, &new);
    let (j2, o2) = traced_run(&old, &new);
    assert_eq!(o1.reconstructed, new);
    assert_eq!(o1.stats.traffic, o2.stats.traffic);
    assert!(!j1.is_empty(), "traced run must emit events");
    assert_eq!(j1, j2, "same inputs + same clock schedule must replay byte-identically");
}

#[test]
fn tracing_does_not_change_the_protocol() {
    // The recorder observes; it must never perturb what goes on the wire.
    let (old, new) = corpus_pair(0xBEEF);
    let untraced = sync_file(&old, &new, &ProtocolConfig::default()).expect("untraced sync");
    let (_, traced) = traced_run(&old, &new);
    assert_eq!(untraced.reconstructed, traced.reconstructed);
    assert_eq!(untraced.stats.traffic, traced.stats.traffic);
    assert_eq!(untraced.stats.levels.len(), traced.stats.levels.len());
    assert_eq!(untraced.fell_back, traced.fell_back);
}

#[test]
fn journal_byte_sums_equal_traffic_stats() {
    let (old, new) = corpus_pair(0xC0FFEE);
    let (journal, outcome) = traced_run(&old, &new);

    // bytes[dir][phase], indexed by the journal's own string tags.
    let mut bytes = [[0u64; 3]; 2];
    let mut map_rounds = 0usize;
    for line in journal.lines() {
        let parsed = parse_line(line).expect("journal line parses");
        assert_eq!(parsed.v, u64::from(SCHEMA_VERSION), "schema version on {line}");
        match parsed.kind.as_str() {
            "frame_send" | "frame_recv" => {
                let d = match parsed.str_field("dir") {
                    Some("c2s") => 0,
                    Some("s2c") => 1,
                    other => panic!("bad dir {other:?} on {line}"),
                };
                let p = match parsed.str_field("phase") {
                    Some("setup") => 0,
                    Some("map") => 1,
                    Some("delta") => 2,
                    other => panic!("bad phase {other:?} on {line}"),
                };
                bytes[d][p] += parsed.u64_field("bytes").expect("bytes field");
            }
            "map_round" => map_rounds += 1,
            _ => {}
        }
    }

    use msync::protocol::{Direction, Phase};
    let t = &outcome.stats.traffic;
    for (p_idx, phase) in [Phase::Setup, Phase::Map, Phase::Delta].into_iter().enumerate() {
        assert_eq!(
            bytes[0][p_idx],
            t.c2s(phase),
            "journal c2s bytes must equal TrafficStats for {phase:?}"
        );
        assert_eq!(
            bytes[1][p_idx],
            t.s2c(phase),
            "journal s2c bytes must equal TrafficStats for {phase:?}"
        );
    }
    let _ = Direction::ClientToServer; // imported for the doc-reader: dirs map 0 = c2s, 1 = s2c
    assert_eq!(map_rounds, outcome.stats.levels.len(), "one map_round event per executed level");
}

#[test]
fn manual_clock_timestamps_are_monotone_and_scheduled() {
    let (old, new) = corpus_pair(0xD1CE);
    let (journal, _) = traced_run(&old, &new);
    let mut last = 0u64;
    for line in journal.lines() {
        let parsed = parse_line(line).expect("parses");
        assert!(parsed.t_us >= last, "t_us must be non-decreasing: {line}");
        assert!(parsed.t_us >= 1_000, "ticking clock starts at 1000: {line}");
        assert_eq!((parsed.t_us - 1_000) % 7, 0, "ticking clock steps by 7: {line}");
        last = parsed.t_us;
    }
}
