//! Live introspection plane over loopback: the `sessions` / `health` /
//! `stats` admin verbs scraped against a real daemon while sessions are
//! in flight, and the slow-session watchdog tripped by a deliberately
//! stalled client.
//!
//! The invariants under test:
//! * `sessions` shows a live session in a non-terminal protocol phase
//!   with monotonically increasing byte counters (status derives from
//!   the existing charge points, so it can only grow);
//! * `health` reports occupancy exactly: the admin scrape itself holds
//!   an admission slot, so `active_conns` counts it, while the status
//!   board de-lists it so `live_sessions` does not;
//! * a session parked in one phase past `--slow-session-ms` is flagged
//!   `slow=true` live and lands in `msync_slow_sessions_total` once it
//!   ends.
//!
//! (Root integration tests are outside the xtask clock-discipline scan,
//! so `Instant` deadlines are fine here.)

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use msync::core::{FileEntry, PipelineOptions, ProtocolConfig};
use msync::corpus::{web_collection, WebParams};
use msync::net::handshake::client_hello;
use msync::net::{
    admin_health, admin_sessions, admin_stats, sync_remote, Daemon, DaemonOptions, RemoteOptions,
    TcpTransport,
};

/// Same two-day web corpus as `net_loopback`: enough files that a
/// depth-1 sync spans many observable roundtrips.
fn corpus() -> (Vec<FileEntry>, Vec<FileEntry>) {
    let params = WebParams {
        pages: 120,
        median_size: 1_500,
        daily_change_prob: 0.35,
        rewrite_prob: 0.05,
        seed: 0x10_0b_ac_c5,
    };
    let versioned = web_collection(&params, 1);
    let (day0, day1) = versioned.pair(0, 1);
    let to_entries = |c: &msync::corpus::Collection| {
        c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
    };
    (to_entries(day0), to_entries(day1))
}

fn small_cfg() -> ProtocolConfig {
    ProtocolConfig { start_block: 1024, ..ProtocolConfig::default() }
}

const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// Parse a `health` payload into its `key=value` map.
fn parse_health(payload: &str) -> BTreeMap<String, String> {
    payload
        .lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.to_owned(), v.to_owned()))
        .collect()
}

/// Parse one `sessions` table line into its `key=value` map.
fn parse_session_line(line: &str) -> BTreeMap<String, String> {
    line.split_whitespace()
        .filter_map(|w| w.split_once('='))
        .map(|(k, v)| (k.to_owned(), v.to_owned()))
        .collect()
}

/// Open a connection, complete the hello, and then go silent: a live
/// session deterministically parked in its first protocol phase.
fn stalled_session(addr: &str) -> std::net::TcpStream {
    let stream = std::net::TcpStream::connect(addr).expect("connect stalled client");
    let mut t = TcpTransport::client(stream.try_clone().expect("clone stream"))
        .expect("transport for stalled client");
    let _cfg = client_hello(&mut t, &small_cfg(), Duration::from_secs(5))
        .expect("stalled client handshake");
    stream
}

/// `sessions` during a live sync: every scrape that catches a session
/// shows a non-terminal phase, and the byte counters for any one
/// session id only ever grow between scrapes.
#[test]
fn sessions_table_tracks_live_syncs_with_monotone_bytes() {
    let (old, new) = corpus();
    let daemon =
        Daemon::spawn("127.0.0.1:0", new, DaemonOptions::default(), |_| {}).expect("daemon spawn");
    let addr = daemon.local_addr().to_string();

    // A client loops depth-1 syncs (many roundtrips each) until the
    // scraper has seen enough; the scraper polls `sessions` flat out.
    let stop = Arc::new(AtomicBool::new(false));
    let client = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let opts = RemoteOptions {
                cfg: small_cfg(),
                pipeline: PipelineOptions { depth: 1, ..PipelineOptions::default() },
                ..RemoteOptions::default()
            };
            while !stop.load(Ordering::SeqCst) {
                let out = sync_remote(&addr, &old, &opts).expect("looped sync");
                assert!(!out.outcome.files.is_empty(), "sync did no work");
            }
        })
    };

    // Collect (bytes_in + bytes_out) observations per session id.
    let mut samples: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    let enough = |samples: &BTreeMap<u64, Vec<u64>>| {
        samples.values().any(|v| v.len() >= 3 && v.last() > v.first())
    };
    while !enough(&samples) {
        assert!(Instant::now() < deadline, "never caught a session growing: {samples:?}");
        let table = admin_sessions(&addr, SCRAPE_TIMEOUT).expect("sessions scrape");
        for line in table.lines() {
            let kv = parse_session_line(line);
            let id: u64 = kv["id"].parse().expect("session id");
            let phase = &kv["phase"];
            assert!(
                ["setup", "map", "delta", "resume"].contains(&phase.as_str()),
                "unexpected phase in live table: {line}"
            );
            let bytes: u64 =
                kv["bytes_in"].parse::<u64>().unwrap() + kv["bytes_out"].parse::<u64>().unwrap();
            samples.entry(id).or_default().push(bytes);
        }
    }
    stop.store(true, Ordering::SeqCst);
    client.join().expect("client thread");

    for (id, seen) in &samples {
        assert!(
            seen.windows(2).all(|w| w[0] <= w[1]),
            "session {id} bytes went backwards: {seen:?}"
        );
    }

    // `stats` stays scrapeable mid-daemon, in both renderings.
    let prom = admin_stats(&addr, false, SCRAPE_TIMEOUT).expect("prom stats");
    assert!(prom.contains("# TYPE msync_bytes_total counter"), "{prom}");
    assert!(prom.contains("msync_rate_bytes_per_sec{window=\"10s\"}"), "{prom}");
    let json = admin_stats(&addr, true, SCRAPE_TIMEOUT).expect("json stats");
    assert!(json.trim_start().starts_with('{'), "{json}");
    daemon.shutdown();
}

/// `health` occupancy accounting with a held session: the scrape conn
/// itself occupies a slot (`active_conns`, admission headroom) but is
/// de-listed from the live session table.
#[test]
fn health_reports_occupancy_and_admission_headroom() {
    let (_, new) = corpus();
    let opts = DaemonOptions { workers: 2, max_sessions: Some(4), ..DaemonOptions::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new, opts, |_| {}).expect("daemon spawn");
    let addr = daemon.local_addr().to_string();

    let held = stalled_session(&addr);

    // While the stalled session is held: it plus the scrape conn
    // occupy 2 of 4 slots; only the stalled one is a *session*.
    let health = parse_health(&admin_health(&addr, SCRAPE_TIMEOUT).expect("health scrape"));
    assert_eq!(health["workers"], "2");
    assert_eq!(health["active_conns"], "2");
    assert_eq!(health["live_sessions"], "1");
    assert_eq!(health["live_slow_sessions"], "0");
    assert_eq!(health["max_sessions"], "4");
    assert_eq!(health["admission_headroom"], "2");
    assert_eq!(health["watchdog_threshold_us"], "0");
    assert!(health.contains_key("uptime_us"));
    assert!(health.contains_key("trace_events_dropped"));

    let table = admin_sessions(&addr, SCRAPE_TIMEOUT).expect("sessions scrape");
    let lines: Vec<&str> = table.lines().collect();
    assert_eq!(lines.len(), 1, "exactly the stalled session: {table}");
    let kv = parse_session_line(lines[0]);
    assert_eq!(kv["collection"], "default");
    assert_eq!(kv["phase"], "setup");
    assert_eq!(kv["slow"], "false");

    // Release the session; the daemon notices the hangup and occupancy
    // returns to just the scrape itself.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = parse_health(&admin_health(&addr, SCRAPE_TIMEOUT).expect("health scrape"));
        if health["live_sessions"] == "0" && health["active_conns"] == "1" {
            assert_eq!(health["admission_headroom"], "3");
            break;
        }
        assert!(Instant::now() < deadline, "session never drained: {health:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.shutdown();
}

/// A session parked in one phase past `--slow-session-ms` trips the
/// watchdog: flagged `slow=true` while live, counted in
/// `msync_slow_sessions_total` once it ends.
#[test]
fn watchdog_flags_a_stalled_session() {
    let (_, new) = corpus();
    let opts =
        DaemonOptions { slow_session: Some(Duration::from_millis(50)), ..DaemonOptions::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new, opts, |_| {}).expect("daemon spawn");
    let addr = daemon.local_addr().to_string();

    let held = stalled_session(&addr);

    // The watchdog fires on the daemon's own poll loop; scrape until
    // the live table shows the flag.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let table = admin_sessions(&addr, SCRAPE_TIMEOUT).expect("sessions scrape");
        if table
            .lines()
            .any(|l| parse_session_line(l).get("slow").map(String::as_str) == Some("true"))
        {
            break;
        }
        assert!(Instant::now() < deadline, "watchdog never fired: {table}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let health = parse_health(&admin_health(&addr, SCRAPE_TIMEOUT).expect("health scrape"));
    assert_eq!(health["watchdog_threshold_us"], "50000");
    assert_eq!(health["live_slow_sessions"], "1");

    // End the session: the SlowSession event merges into the finished
    // aggregate and surfaces as the Prometheus counter.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    while daemon.metrics().slow_sessions == 0 {
        assert!(Instant::now() < deadline, "slow session never merged into the aggregate");
        std::thread::sleep(Duration::from_millis(10));
    }
    let prom = admin_stats(&addr, false, SCRAPE_TIMEOUT).expect("prom stats");
    assert!(prom.contains("msync_slow_sessions_total 1"), "{prom}");
    daemon.shutdown();
}
