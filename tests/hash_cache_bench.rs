//! Server hash-cache benchmark gate (ISSUE PR 8): with many clients
//! syncing one hot collection, the map-phase hashing for any file must
//! be paid once — by whichever session misses first — and never again
//! while the snapshot lives.
//!
//! Off by default (timing asserts don't belong in plain `cargo test`);
//! CI runs it with `MSYNC_BENCH=1` in release mode and archives the
//! measurement as `BENCH_hash_cache.json` in the repo root.
//!
//! Method: one cold client pays the whole map-phase hash bill
//! (`cold_miss_bytes`, all misses); then `CLIENTS` concurrent clients
//! re-sync the identical collection. The gate asserts the warm burst's
//! server-side hash work is exactly zero bytes — N sessions, zero
//! re-hashing — and records the cold-vs-warm wall-clock ratio per
//! session. (Root integration tests are outside the xtask
//! clock-discipline scan, so `Instant` is fine here.)
//!
//! The bench also gates the batched map phase (ISSUE PR 10): sibling
//! block digests are derived arithmetically from the previous round's
//! parents instead of rescanned, so even the cold session's scan bill
//! (`cold_miss_bytes`) must come in below the naive
//! every-range-scanned bill, with the difference visible as
//! `hash_cache_derived_bytes`. Derivation depends only on
//! session-local state, so warm sessions derive the exact same ranges
//! — asserted as `warm_derived == CLIENTS × cold_derived`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use msync::core::{FileEntry, PipelineOptions, ProtocolConfig};
use msync::corpus::{web_collection, WebParams};
use msync::net::{sync_remote, Daemon, DaemonOptions, RemoteOptions};

/// Concurrent clients in the warm burst.
const CLIENTS: usize = 8;

/// A corpus with enough changed bytes that map-phase hashing is real
/// work: ~150 pages around 20 KB, half touched between the two days.
fn hot_corpus() -> (Vec<FileEntry>, Vec<FileEntry>) {
    let params = WebParams {
        pages: 150,
        median_size: 20_000,
        daily_change_prob: 0.5,
        rewrite_prob: 0.02,
        seed: 0xCAC4_E001,
    };
    let versioned = web_collection(&params, 1);
    let (day0, day1) = versioned.pair(0, 1);
    let to_entries = |c: &msync::corpus::Collection| {
        c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
    };
    (to_entries(day0), to_entries(day1))
}

fn remote_opts() -> RemoteOptions {
    RemoteOptions {
        cfg: ProtocolConfig { start_block: 1024, ..ProtocolConfig::default() },
        pipeline: PipelineOptions::default(),
        ..RemoteOptions::default()
    }
}

#[test]
fn warm_cache_serves_n_sessions_with_zero_rehashing() {
    if std::env::var_os("MSYNC_BENCH").is_none() {
        eprintln!("hash_cache_bench: set MSYNC_BENCH=1 to run the hash-cache gate");
        return;
    }
    let (old, new) = hot_corpus();
    let nfiles = new.len();
    // The client returns before the daemon's session bookkeeping lands
    // in the aggregate; the log callback fires strictly after the
    // merge, so reading metrics behind this counter is race-free.
    let finished = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&finished);
    let daemon = Daemon::spawn("127.0.0.1:0", new, DaemonOptions::default(), move |r| {
        r.result.as_ref().expect("bench session succeeds");
        seen.fetch_add(1, Ordering::SeqCst);
    })
    .expect("bind loopback daemon");
    let addr = Arc::new(daemon.local_addr().to_string());
    let old = Arc::new(old);
    let settle = |want: usize| {
        let deadline = Instant::now() + Duration::from_secs(60);
        while finished.load(Ordering::SeqCst) < want {
            assert!(Instant::now() < deadline, "daemon reports never arrived");
            std::thread::sleep(Duration::from_millis(2));
        }
    };

    // Cold pass: one client, empty cache — every map-phase digest is
    // computed (and memoized) here.
    let t0 = Instant::now();
    let got = sync_remote(&addr, &old, &remote_opts()).expect("cold session");
    let cold_secs = t0.elapsed().as_secs_f64();
    assert_eq!(got.outcome.files.len(), nfiles, "cold session must fully sync");
    settle(1);
    let cold = daemon.metrics();
    assert!(cold.hash_cache_miss_bytes > 0, "cold session must hash map-phase bytes");
    assert_eq!(cold.hash_cache_hits, 0, "an empty cache cannot hit");
    assert!(
        cold.hash_cache_derived_bytes > 0,
        "sibling decomposition must replace part of the cold scan bill"
    );

    // Warm burst: N concurrent sessions on the now-hot collection.
    let t1 = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = Arc::clone(&addr);
            let old = Arc::clone(&old);
            std::thread::spawn(move || {
                let got = sync_remote(&addr, &old, &remote_opts()).expect("warm session");
                assert_eq!(got.outcome.files.len(), nfiles, "warm session must fully sync");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("warm client");
    }
    let warm_secs = t1.elapsed().as_secs_f64();
    settle(1 + CLIENTS);
    let warm = daemon.metrics();
    daemon.shutdown();

    let warm_miss_bytes = warm.hash_cache_miss_bytes - cold.hash_cache_miss_bytes;
    let warm_hits = warm.hash_cache_hits - cold.hash_cache_hits;
    let warm_derived_bytes = warm.hash_cache_derived_bytes - cold.hash_cache_derived_bytes;
    eprintln!(
        "hash_cache_bench: cold {} miss bytes + {} derived bytes in {cold_secs:.3}s; warm burst \
         of {CLIENTS} sessions {warm_miss_bytes} miss bytes, {warm_hits} hits, in {warm_secs:.3}s",
        cold.hash_cache_miss_bytes, cold.hash_cache_derived_bytes
    );

    // The gate: the hot collection is hashed once, not once per client.
    assert_eq!(
        warm_miss_bytes, 0,
        "{CLIENTS} warm sessions re-hashed {warm_miss_bytes} bytes; the cache must absorb all \
         map-phase hash work"
    );
    assert!(warm_hits > 0, "warm sessions must be served from the cache");
    // Derivation is a pure function of session-local protocol state,
    // so every warm session derives exactly the ranges the cold one
    // did — cache temperature must not change the arithmetic path.
    assert_eq!(
        warm_derived_bytes,
        CLIENTS as u64 * cold.hash_cache_derived_bytes,
        "warm sessions must derive the same sibling ranges as the cold one"
    );

    // Per-session wall clock, cold vs warm (ratio > 1 means the cache
    // also buys latency, but only the hash-work invariant is gated —
    // wall clock on a loopback CI box is dominated by the wire).
    let warm_per_session = warm_secs / CLIENTS as f64;
    let ratio = cold_secs / warm_per_session.max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"hash_cache\",\n  \"clients\": {CLIENTS},\n  \"files\": {nfiles},\n  \
         \"cold_miss_bytes\": {},\n  \"cold_derived_bytes\": {},\n  \
         \"warm_miss_bytes\": {warm_miss_bytes},\n  \"warm_hit_bytes\": {},\n  \
         \"warm_derived_bytes\": {warm_derived_bytes},\n  \"cold_secs\": {cold_secs:.4},\n  \
         \"warm_secs_per_session\": {warm_per_session:.4},\n  \
         \"cold_vs_warm_ratio\": {ratio:.3}\n}}\n",
        cold.hash_cache_miss_bytes,
        cold.hash_cache_derived_bytes,
        warm.hash_cache_hit_bytes - cold.hash_cache_hit_bytes,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_hash_cache.json");
    std::fs::write(out, &json).expect("write bench json");
    eprintln!("hash_cache_bench: gate passed -> {out}");
}
