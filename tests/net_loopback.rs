//! Loopback integration test for the real network transport (ISSUE PR 3,
//! satellite 4): a live `msync serve` daemon on 127.0.0.1, a remote
//! client syncing a multi-file corpus over genuine TCP, and the
//! accounting cross-checks that tie `TrafficStats` to socket reality.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use msync::core::{FileEntry, PipelineOptions, ProtocolConfig};
use msync::corpus::{web_collection, WebParams};
use msync::net::{sync_remote, Daemon, DaemonOptions, RemoteOptions, RemoteOutcome};
use msync::protocol::{Direction, Phase, TrafficStats};
use msync::trace::{DirTag, MetricsSnapshot, PhaseTag};

/// A two-day web corpus: the daemon serves day 1, the client holds
/// day 0. At least 100 files so the pipelined-vs-sequential comparison
/// below has enough in-flight work to show a schedule difference.
fn corpus() -> (Vec<FileEntry>, Vec<FileEntry>) {
    let params = WebParams {
        pages: 120,
        median_size: 1_500,
        daily_change_prob: 0.35,
        rewrite_prob: 0.05,
        seed: 0x10_0b_ac_c5,
    };
    let versioned = web_collection(&params, 1);
    let (day0, day1) = versioned.pair(0, 1);
    let to_entries = |c: &msync::corpus::Collection| {
        c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
    };
    (to_entries(day0), to_entries(day1))
}

fn small_cfg() -> ProtocolConfig {
    // Small blocks keep per-file rounds cheap on a 1.5 KB median corpus.
    ProtocolConfig { start_block: 1024, ..ProtocolConfig::default() }
}

fn run_remote(addr: &str, old: &[FileEntry], depth: usize) -> RemoteOutcome {
    let opts = RemoteOptions {
        cfg: small_cfg(),
        pipeline: PipelineOptions { depth, ..PipelineOptions::default() },
        ..RemoteOptions::default()
    };
    sync_remote(addr, old, &opts).expect("remote sync over loopback")
}

/// Byte-exact reconstruction over a real socket, with the socket's own
/// byte counters agreeing exactly with the protocol's `TrafficStats`.
#[test]
fn loopback_sync_is_byte_exact_and_fully_accounted() {
    let (old, new) = corpus();
    assert!(new.len() >= 100, "corpus too small to be interesting: {}", new.len());

    let sessions = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&sessions);
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), move |r| {
        if r.result.is_ok() {
            seen.fetch_add(1, Ordering::SeqCst);
        }
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let got = run_remote(&addr, &old, 32);
    daemon.shutdown();

    // Byte-exact: the client's mirror equals the served collection in
    // sorted-name order.
    let mut want: Vec<&FileEntry> = new.iter().collect();
    want.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(got.outcome.files.len(), want.len());
    for (have, want) in got.outcome.files.iter().zip(want) {
        assert_eq!(have.name, want.name);
        assert_eq!(have.data, want.data, "content mismatch for {}", want.name);
    }

    // Accounting: every byte that crossed the socket — handshake
    // included — is attributed somewhere in TrafficStats, and nothing
    // is attributed that never crossed.
    let accounted = got.outcome.traffic.total_bytes();
    let measured = got.socket_sent + got.socket_received;
    assert_eq!(measured, accounted, "socket bytes {measured} != TrafficStats {accounted}");
    assert!(got.socket_sent > 0 && got.socket_received > 0);

    // The daemon saw exactly one successful session.
    assert_eq!(sessions.load(Ordering::SeqCst), 1);
}

/// The pipelined schedule batches many in-flight files into one frame
/// per direction per round, so against the same daemon a deep window
/// must spend strictly fewer round-trip flushes than depth 1.
#[test]
fn pipelined_schedule_beats_sequential_roundtrips() {
    let (old, new) = corpus();
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {})
        .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let sequential = run_remote(&addr, &old, 1);
    let pipelined = run_remote(&addr, &old, 32);
    daemon.shutdown();

    // Both depths land on the identical mirror...
    assert_eq!(sequential.outcome.files.len(), pipelined.outcome.files.len());
    for (a, b) in sequential.outcome.files.iter().zip(&pipelined.outcome.files) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.data, b.data);
    }

    // ...but the deep window flushes far fewer times.
    let seq = sequential.outcome.traffic.roundtrips;
    let pipe = pipelined.outcome.traffic.roundtrips;
    assert!(pipe < seq, "pipelined roundtrips {pipe} not fewer than sequential {seq}");
}

/// Concurrency soak (ISSUE PR 5): 32 clients sync the same collection
/// against one multiplexed daemon at once. Every client lands on a
/// byte-exact mirror, and the daemon's aggregate metrics grid equals
/// the 32 summed per-session `TrafficStats` cell by cell — the
/// multiplexer's shared-nothing accounting holds under contention.
#[test]
fn soak_32_concurrent_clients_byte_exact_and_accounted() {
    let (old, new) = corpus();
    const CLIENTS: usize = 32;

    let reports: Arc<Mutex<Vec<(TrafficStats, MetricsSnapshot)>>> =
        Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reports);
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), move |r| {
        let outcome = r.result.as_ref().expect("soak session succeeds");
        sink.lock().expect("report sink").push((outcome.traffic, r.metrics.clone()));
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let mut want: Vec<FileEntry> = new.clone();
    want.sort_by(|a, b| a.name.cmp(&b.name));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let old = old.clone();
            std::thread::spawn(move || run_remote(&addr, &old, 16))
        })
        .collect();
    for handle in handles {
        let got = handle.join().expect("client thread");
        assert_eq!(got.outcome.files.len(), want.len());
        for (have, want) in got.outcome.files.iter().zip(&want) {
            assert_eq!(have.name, want.name);
            assert_eq!(have.data, want.data, "soak mirror mismatch for {}", want.name);
        }
    }

    // All 32 reports land (the log callback fires after the aggregate
    // merge, so 32 reports mean a settled aggregate).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while reports.lock().expect("report sink").len() < CLIENTS {
        assert!(std::time::Instant::now() < deadline, "daemon reports never arrived");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let aggregate = daemon.metrics();
    daemon.shutdown();

    let reports = reports.lock().expect("report sink");
    assert_eq!(reports.len(), CLIENTS);
    let dirs = [(DirTag::C2s, Direction::ClientToServer), (DirTag::S2c, Direction::ServerToClient)];
    let phases = [
        (PhaseTag::Setup, Phase::Setup),
        (PhaseTag::Map, Phase::Map),
        (PhaseTag::Delta, Phase::Delta),
    ];
    for (dtag, dir) in dirs {
        for (ptag, phase) in phases {
            let traffic_sum: u64 = reports
                .iter()
                .map(|(t, _)| match dir {
                    Direction::ClientToServer => t.c2s(phase),
                    Direction::ServerToClient => t.s2c(phase),
                })
                .sum();
            assert_eq!(
                aggregate.dir_phase_bytes(dtag, ptag),
                traffic_sum,
                "soak daemon grid cell ({dtag:?}, {ptag:?}) != summed session TrafficStats"
            );
        }
    }
    let mut merged = MetricsSnapshot::new();
    for (_, m) in reports.iter() {
        merged.merge(m);
    }
    assert_eq!(aggregate, merged, "daemon.metrics() must equal merged session snapshots");
    assert_eq!(aggregate.handshakes_ok, CLIENTS as u64);
    assert_eq!(aggregate.handshakes_failed, 0);
}

/// Admission control: a daemon at capacity answers the hello with a
/// typed `err server at capacity` refusal — the client learns *why* —
/// and the refusal is metered as a failed handshake. Freed capacity
/// admits the next client.
#[test]
fn admission_control_refuses_with_reason_and_frees_capacity() {
    let (old, new) = corpus();

    // Capacity zero: every connection is refused, with the reason.
    let reports = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&reports);
    let opts = DaemonOptions { max_sessions: Some(0), ..DaemonOptions::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), opts, move |r| {
        assert!(r.result.is_err(), "a refused session must report an error");
        seen.fetch_add(1, Ordering::SeqCst);
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();
    let remote_opts = RemoteOptions { cfg: small_cfg(), ..RemoteOptions::default() };
    let err = sync_remote(&addr, &old, &remote_opts);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while reports.load(Ordering::SeqCst) < 1 {
        assert!(std::time::Instant::now() < deadline, "refusal report never arrived");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let metrics = daemon.metrics();
    daemon.shutdown();
    match err {
        Err(msync::net::NetError::Handshake(reason)) => {
            assert!(reason.contains("capacity"), "refusal must name the reason: {reason}");
        }
        other => panic!("expected a typed handshake refusal, got {other:?}"),
    }
    assert_eq!(metrics.handshakes_failed, 1, "the refusal is metered");
    assert_eq!(metrics.handshakes_ok, 0);

    // Capacity one: sequential syncs each get the slot back.
    let finished = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&finished);
    let opts = DaemonOptions { max_sessions: Some(1), ..DaemonOptions::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), opts, move |_| {
        seen.fetch_add(1, Ordering::SeqCst);
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();
    for round in 1..=2 {
        let got = run_remote(&addr, &old, 8);
        assert_eq!(got.outcome.files.len(), new.len(), "round {round} must fully sync");
        // The report is delivered only after the admission slot is
        // released, so waiting for it makes the next round race-free.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while finished.load(Ordering::SeqCst) < round {
            assert!(std::time::Instant::now() < deadline, "session report never arrived");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    let metrics = daemon.metrics();
    daemon.shutdown();
    assert_eq!(metrics.handshakes_ok, 2, "both sequential sessions must be admitted");
}

/// The daemon's live metrics are the exact sum of its per-session
/// recorders: the aggregate byte grid equals the summed per-session
/// `TrafficStats` cell by cell, the handshake counter equals the
/// session count, and `--metrics-out` dumps parseable Prometheus text.
#[test]
fn daemon_metrics_equal_summed_session_stats() {
    let (old, new) = corpus();
    let metrics_path =
        std::env::temp_dir().join(format!("msync-loopback-metrics-{}.prom", std::process::id()));
    let _ = std::fs::remove_file(&metrics_path);

    let reports: Arc<Mutex<Vec<(TrafficStats, MetricsSnapshot)>>> =
        Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reports);
    let opts = DaemonOptions { metrics_out: Some(metrics_path.clone()), ..Default::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new, opts, move |r| {
        let outcome = r.result.as_ref().expect("loopback session succeeds");
        sink.lock().expect("report sink").push((outcome.traffic, r.metrics.clone()));
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    // Two sessions, so the aggregate genuinely sums (not just copies).
    run_remote(&addr, &old, 1);
    run_remote(&addr, &old, 32);
    // The client returns before the daemon's session thread finishes
    // its bookkeeping; the log callback fires strictly after the
    // aggregate merge, so two delivered reports mean a settled
    // aggregate.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while reports.lock().expect("report sink").len() < 2 {
        assert!(std::time::Instant::now() < deadline, "daemon reports never arrived");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let aggregate = daemon.metrics();
    daemon.shutdown();

    let reports = reports.lock().expect("report sink");
    assert_eq!(reports.len(), 2, "expected exactly two sessions");

    // Cell-by-cell: aggregate grid == sum of per-session TrafficStats.
    let dirs = [(DirTag::C2s, Direction::ClientToServer), (DirTag::S2c, Direction::ServerToClient)];
    let phases = [
        (PhaseTag::Setup, Phase::Setup),
        (PhaseTag::Map, Phase::Map),
        (PhaseTag::Delta, Phase::Delta),
    ];
    for (dtag, dir) in dirs {
        for (ptag, phase) in phases {
            let traffic_sum: u64 = reports
                .iter()
                .map(|(t, _)| match dir {
                    Direction::ClientToServer => t.c2s(phase),
                    Direction::ServerToClient => t.s2c(phase),
                })
                .sum();
            assert_eq!(
                aggregate.dir_phase_bytes(dtag, ptag),
                traffic_sum,
                "daemon grid cell ({dtag:?}, {ptag:?}) != summed session TrafficStats"
            );
        }
    }
    assert!(aggregate.total_bytes() > 0, "loopback sessions must move bytes");

    // The aggregate is also the merge of the per-session snapshots.
    let mut merged = MetricsSnapshot::new();
    for (_, m) in reports.iter() {
        merged.merge(m);
    }
    assert_eq!(aggregate, merged, "daemon.metrics() must equal merged session snapshots");

    // One successful handshake per session, none failed.
    assert_eq!(aggregate.handshakes_ok, 2);
    assert_eq!(aggregate.handshakes_failed, 0);

    // --metrics-out dumped the same aggregate as Prometheus text.
    let text = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    assert_eq!(text, aggregate.render_prometheus());
    assert!(text.contains("msync_bytes_total"), "metrics text missing byte series");
    let _ = std::fs::remove_file(&metrics_path);
}
