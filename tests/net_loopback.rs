//! Loopback integration test for the real network transport (ISSUE PR 3,
//! satellite 4): a live `msync serve` daemon on 127.0.0.1, a remote
//! client syncing a multi-file corpus over genuine TCP, and the
//! accounting cross-checks that tie `TrafficStats` to socket reality.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use msync::core::{FileEntry, PipelineOptions, ProtocolConfig};
use msync::corpus::{web_collection, WebParams};
use msync::net::{sync_remote, Daemon, DaemonOptions, RemoteOptions, RemoteOutcome};

/// A two-day web corpus: the daemon serves day 1, the client holds
/// day 0. At least 100 files so the pipelined-vs-sequential comparison
/// below has enough in-flight work to show a schedule difference.
fn corpus() -> (Vec<FileEntry>, Vec<FileEntry>) {
    let params = WebParams {
        pages: 120,
        median_size: 1_500,
        daily_change_prob: 0.35,
        rewrite_prob: 0.05,
        seed: 0x10_0b_ac_c5,
    };
    let versioned = web_collection(&params, 1);
    let (day0, day1) = versioned.pair(0, 1);
    let to_entries = |c: &msync::corpus::Collection| {
        c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
    };
    (to_entries(day0), to_entries(day1))
}

fn small_cfg() -> ProtocolConfig {
    // Small blocks keep per-file rounds cheap on a 1.5 KB median corpus.
    ProtocolConfig { start_block: 1024, ..ProtocolConfig::default() }
}

fn run_remote(addr: &str, old: &[FileEntry], depth: usize) -> RemoteOutcome {
    let opts = RemoteOptions {
        cfg: small_cfg(),
        pipeline: PipelineOptions { depth, ..PipelineOptions::default() },
        ..RemoteOptions::default()
    };
    sync_remote(addr, old, &opts).expect("remote sync over loopback")
}

/// Byte-exact reconstruction over a real socket, with the socket's own
/// byte counters agreeing exactly with the protocol's `TrafficStats`.
#[test]
fn loopback_sync_is_byte_exact_and_fully_accounted() {
    let (old, new) = corpus();
    assert!(new.len() >= 100, "corpus too small to be interesting: {}", new.len());

    let sessions = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&sessions);
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), move |r| {
        if r.result.is_ok() {
            seen.fetch_add(1, Ordering::SeqCst);
        }
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let got = run_remote(&addr, &old, 32);
    daemon.shutdown();

    // Byte-exact: the client's mirror equals the served collection in
    // sorted-name order.
    let mut want: Vec<&FileEntry> = new.iter().collect();
    want.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(got.outcome.files.len(), want.len());
    for (have, want) in got.outcome.files.iter().zip(want) {
        assert_eq!(have.name, want.name);
        assert_eq!(have.data, want.data, "content mismatch for {}", want.name);
    }

    // Accounting: every byte that crossed the socket — handshake
    // included — is attributed somewhere in TrafficStats, and nothing
    // is attributed that never crossed.
    let accounted = got.outcome.traffic.total_bytes();
    let measured = got.socket_sent + got.socket_received;
    assert_eq!(measured, accounted, "socket bytes {measured} != TrafficStats {accounted}");
    assert!(got.socket_sent > 0 && got.socket_received > 0);

    // The daemon saw exactly one successful session.
    assert_eq!(sessions.load(Ordering::SeqCst), 1);
}

/// The pipelined schedule batches many in-flight files into one frame
/// per direction per round, so against the same daemon a deep window
/// must spend strictly fewer round-trip flushes than depth 1.
#[test]
fn pipelined_schedule_beats_sequential_roundtrips() {
    let (old, new) = corpus();
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {})
        .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let sequential = run_remote(&addr, &old, 1);
    let pipelined = run_remote(&addr, &old, 32);
    daemon.shutdown();

    // Both depths land on the identical mirror...
    assert_eq!(sequential.outcome.files.len(), pipelined.outcome.files.len());
    for (a, b) in sequential.outcome.files.iter().zip(&pipelined.outcome.files) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.data, b.data);
    }

    // ...but the deep window flushes far fewer times.
    let seq = sequential.outcome.traffic.roundtrips;
    let pipe = pipelined.outcome.traffic.roundtrips;
    assert!(pipe < seq, "pipelined roundtrips {pipe} not fewer than sequential {seq}");
}
