//! Loopback integration test for the real network transport (ISSUE PR 3,
//! satellite 4): a live `msync serve` daemon on 127.0.0.1, a remote
//! client syncing a multi-file corpus over genuine TCP, and the
//! accounting cross-checks that tie `TrafficStats` to socket reality.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use msync::core::{sync_collection_client, FileEntry, PipelineOptions, ProtocolConfig};
use msync::corpus::{web_collection, WebParams};
use msync::net::handshake::client_hello_as;
use msync::net::{
    admin_reload, sync_remote, Daemon, DaemonOptions, NetError, RegistryBuilder, RemoteOptions,
    RemoteOutcome, TcpTransport,
};
use msync::protocol::{Direction, Phase, TrafficStats};
use msync::trace::{DirTag, MetricsSnapshot, PhaseTag};

/// A two-day web corpus: the daemon serves day 1, the client holds
/// day 0. At least 100 files so the pipelined-vs-sequential comparison
/// below has enough in-flight work to show a schedule difference.
fn corpus() -> (Vec<FileEntry>, Vec<FileEntry>) {
    let params = WebParams {
        pages: 120,
        median_size: 1_500,
        daily_change_prob: 0.35,
        rewrite_prob: 0.05,
        seed: 0x10_0b_ac_c5,
    };
    let versioned = web_collection(&params, 1);
    let (day0, day1) = versioned.pair(0, 1);
    let to_entries = |c: &msync::corpus::Collection| {
        c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
    };
    (to_entries(day0), to_entries(day1))
}

fn small_cfg() -> ProtocolConfig {
    // Small blocks keep per-file rounds cheap on a 1.5 KB median corpus.
    ProtocolConfig { start_block: 1024, ..ProtocolConfig::default() }
}

fn run_remote(addr: &str, old: &[FileEntry], depth: usize) -> RemoteOutcome {
    let opts = RemoteOptions {
        cfg: small_cfg(),
        pipeline: PipelineOptions { depth, ..PipelineOptions::default() },
        ..RemoteOptions::default()
    };
    sync_remote(addr, old, &opts).expect("remote sync over loopback")
}

/// Byte-exact reconstruction over a real socket, with the socket's own
/// byte counters agreeing exactly with the protocol's `TrafficStats`.
#[test]
fn loopback_sync_is_byte_exact_and_fully_accounted() {
    let (old, new) = corpus();
    assert!(new.len() >= 100, "corpus too small to be interesting: {}", new.len());

    let sessions = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&sessions);
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), move |r| {
        if r.result.is_ok() {
            seen.fetch_add(1, Ordering::SeqCst);
        }
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let got = run_remote(&addr, &old, 32);
    daemon.shutdown();

    // Byte-exact: the client's mirror equals the served collection in
    // sorted-name order.
    let mut want: Vec<&FileEntry> = new.iter().collect();
    want.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(got.outcome.files.len(), want.len());
    for (have, want) in got.outcome.files.iter().zip(want) {
        assert_eq!(have.name, want.name);
        assert_eq!(have.data, want.data, "content mismatch for {}", want.name);
    }

    // Accounting: every byte that crossed the socket — handshake
    // included — is attributed somewhere in TrafficStats, and nothing
    // is attributed that never crossed.
    let accounted = got.outcome.traffic.total_bytes();
    let measured = got.socket_sent + got.socket_received;
    assert_eq!(measured, accounted, "socket bytes {measured} != TrafficStats {accounted}");
    assert!(got.socket_sent > 0 && got.socket_received > 0);

    // The daemon saw exactly one successful session.
    assert_eq!(sessions.load(Ordering::SeqCst), 1);
}

/// The pipelined schedule batches many in-flight files into one frame
/// per direction per round, so against the same daemon a deep window
/// must spend strictly fewer round-trip flushes than depth 1.
#[test]
fn pipelined_schedule_beats_sequential_roundtrips() {
    let (old, new) = corpus();
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {})
        .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let sequential = run_remote(&addr, &old, 1);
    let pipelined = run_remote(&addr, &old, 32);
    daemon.shutdown();

    // Both depths land on the identical mirror...
    assert_eq!(sequential.outcome.files.len(), pipelined.outcome.files.len());
    for (a, b) in sequential.outcome.files.iter().zip(&pipelined.outcome.files) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.data, b.data);
    }

    // ...but the deep window flushes far fewer times.
    let seq = sequential.outcome.traffic.roundtrips;
    let pipe = pipelined.outcome.traffic.roundtrips;
    assert!(pipe < seq, "pipelined roundtrips {pipe} not fewer than sequential {seq}");
}

/// Concurrency soak (ISSUE PR 5): 32 clients sync the same collection
/// against one multiplexed daemon at once. Every client lands on a
/// byte-exact mirror, and the daemon's aggregate metrics grid equals
/// the 32 summed per-session `TrafficStats` cell by cell — the
/// multiplexer's shared-nothing accounting holds under contention.
#[test]
fn soak_32_concurrent_clients_byte_exact_and_accounted() {
    let (old, new) = corpus();
    const CLIENTS: usize = 32;

    let reports: Arc<Mutex<Vec<(TrafficStats, MetricsSnapshot)>>> =
        Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reports);
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), move |r| {
        let outcome = r.result.as_ref().expect("soak session succeeds");
        sink.lock().expect("report sink").push((outcome.traffic, r.metrics.clone()));
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let mut want: Vec<FileEntry> = new.clone();
    want.sort_by(|a, b| a.name.cmp(&b.name));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let old = old.clone();
            std::thread::spawn(move || run_remote(&addr, &old, 16))
        })
        .collect();

    // Introspection under contention: scrape `stats` / `sessions` /
    // `health` continuously while all 32 clients hammer the daemon.
    // The scrapes must never error or deadlock, and — since every
    // admin exchange is itself a reported, metered connection — they
    // land in the same accounting invariant checked below.
    let scrape_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let addr = addr.clone();
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            let timeout = Duration::from_secs(5);
            let mut admin_count = 0usize;
            let mut live_table = String::new();
            while !stop.load(Ordering::SeqCst) {
                let stats =
                    msync::net::admin_stats(&addr, false, timeout).expect("mid-soak stats scrape");
                assert!(stats.contains("# TYPE msync_bytes_total counter"), "{stats}");
                let table =
                    msync::net::admin_sessions(&addr, timeout).expect("mid-soak sessions scrape");
                if !table.is_empty() {
                    live_table = table;
                }
                let health =
                    msync::net::admin_health(&addr, timeout).expect("mid-soak health scrape");
                assert!(health.contains("live_sessions="), "{health}");
                admin_count += 3;
                std::thread::sleep(Duration::from_millis(2));
            }
            (admin_count, live_table)
        })
    };

    for handle in handles {
        let got = handle.join().expect("client thread");
        assert_eq!(got.outcome.files.len(), want.len());
        for (have, want) in got.outcome.files.iter().zip(&want) {
            assert_eq!(have.name, want.name);
            assert_eq!(have.data, want.data, "soak mirror mismatch for {}", want.name);
        }
    }
    scrape_stop.store(true, Ordering::SeqCst);
    let (admin_count, live_table) = scraper.join().expect("scraper thread");
    assert!(admin_count > 0, "scraper never completed a scrape");
    assert!(
        live_table.lines().any(|l| l.contains("phase=")),
        "scraper never caught a live session: {live_table:?}"
    );
    // Archive one mid-soak `sessions` scrape for CI.
    let artifact = concat!(env!("CARGO_MANIFEST_DIR"), "/ARTIFACT_sessions_scrape.txt");
    std::fs::write(artifact, &live_table).expect("write sessions artifact");

    // All reports land — 32 syncs plus every admin exchange (the log
    // callback fires after the aggregate merge, so a full count means
    // a settled aggregate).
    let expected_reports = CLIENTS + admin_count;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while reports.lock().expect("report sink").len() < expected_reports {
        assert!(std::time::Instant::now() < deadline, "daemon reports never arrived");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let aggregate = daemon.metrics();
    daemon.shutdown();

    let reports = reports.lock().expect("report sink");
    assert_eq!(reports.len(), expected_reports);
    let dirs = [(DirTag::C2s, Direction::ClientToServer), (DirTag::S2c, Direction::ServerToClient)];
    let phases = [
        (PhaseTag::Setup, Phase::Setup),
        (PhaseTag::Map, Phase::Map),
        (PhaseTag::Delta, Phase::Delta),
    ];
    for (dtag, dir) in dirs {
        for (ptag, phase) in phases {
            let traffic_sum: u64 = reports
                .iter()
                .map(|(t, _)| match dir {
                    Direction::ClientToServer => t.c2s(phase),
                    Direction::ServerToClient => t.s2c(phase),
                })
                .sum();
            assert_eq!(
                aggregate.dir_phase_bytes(dtag, ptag),
                traffic_sum,
                "soak daemon grid cell ({dtag:?}, {ptag:?}) != summed session TrafficStats"
            );
        }
    }
    let mut merged = MetricsSnapshot::new();
    for (_, m) in reports.iter() {
        merged.merge(m);
    }
    assert_eq!(aggregate, merged, "daemon.metrics() must equal merged session snapshots");
    // Admin exchanges answer `ok` and are metered as successful
    // handshakes alongside the 32 syncs.
    assert_eq!(aggregate.handshakes_ok, (CLIENTS + admin_count) as u64);
    assert_eq!(aggregate.handshakes_failed, 0);
}

/// Admission control: a daemon at capacity answers the hello with a
/// typed `err server at capacity` refusal — the client learns *why* —
/// and the refusal is metered as a failed handshake. Freed capacity
/// admits the next client.
#[test]
fn admission_control_refuses_with_reason_and_frees_capacity() {
    let (old, new) = corpus();

    // Capacity zero: every connection is refused, with the reason.
    let reports = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&reports);
    let opts = DaemonOptions { max_sessions: Some(0), ..DaemonOptions::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), opts, move |r| {
        assert!(r.result.is_err(), "a refused session must report an error");
        seen.fetch_add(1, Ordering::SeqCst);
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();
    let remote_opts = RemoteOptions { cfg: small_cfg(), ..RemoteOptions::default() };
    let err = sync_remote(&addr, &old, &remote_opts);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while reports.load(Ordering::SeqCst) < 1 {
        assert!(std::time::Instant::now() < deadline, "refusal report never arrived");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let metrics = daemon.metrics();
    daemon.shutdown();
    match err {
        Err(msync::net::NetError::Handshake(reason)) => {
            assert!(reason.contains("capacity"), "refusal must name the reason: {reason}");
        }
        other => panic!("expected a typed handshake refusal, got {other:?}"),
    }
    assert_eq!(metrics.handshakes_failed, 1, "the refusal is metered");
    assert_eq!(metrics.handshakes_ok, 0);

    // Capacity one: sequential syncs each get the slot back.
    let finished = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&finished);
    let opts = DaemonOptions { max_sessions: Some(1), ..DaemonOptions::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), opts, move |_| {
        seen.fetch_add(1, Ordering::SeqCst);
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();
    for round in 1..=2 {
        let got = run_remote(&addr, &old, 8);
        assert_eq!(got.outcome.files.len(), new.len(), "round {round} must fully sync");
        // The report is delivered only after the admission slot is
        // released, so waiting for it makes the next round race-free.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while finished.load(Ordering::SeqCst) < round {
            assert!(std::time::Instant::now() < deadline, "session report never arrived");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    let metrics = daemon.metrics();
    daemon.shutdown();
    assert_eq!(metrics.handshakes_ok, 2, "both sequential sessions must be admitted");
}

/// The daemon's live metrics are the exact sum of its per-session
/// recorders: the aggregate byte grid equals the summed per-session
/// `TrafficStats` cell by cell, the handshake counter equals the
/// session count, and `--metrics-out` dumps parseable Prometheus text.
#[test]
fn daemon_metrics_equal_summed_session_stats() {
    let (old, new) = corpus();
    let metrics_path =
        std::env::temp_dir().join(format!("msync-loopback-metrics-{}.prom", std::process::id()));
    let _ = std::fs::remove_file(&metrics_path);

    let reports: Arc<Mutex<Vec<(TrafficStats, MetricsSnapshot)>>> =
        Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reports);
    let opts = DaemonOptions { metrics_out: Some(metrics_path.clone()), ..Default::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new, opts, move |r| {
        let outcome = r.result.as_ref().expect("loopback session succeeds");
        sink.lock().expect("report sink").push((outcome.traffic, r.metrics.clone()));
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    // Two sessions, so the aggregate genuinely sums (not just copies).
    run_remote(&addr, &old, 1);
    run_remote(&addr, &old, 32);
    // The client returns before the daemon's session thread finishes
    // its bookkeeping; the log callback fires strictly after the
    // aggregate merge, so two delivered reports mean a settled
    // aggregate.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while reports.lock().expect("report sink").len() < 2 {
        assert!(std::time::Instant::now() < deadline, "daemon reports never arrived");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let aggregate = daemon.metrics();
    daemon.shutdown();

    let reports = reports.lock().expect("report sink");
    assert_eq!(reports.len(), 2, "expected exactly two sessions");

    // Cell-by-cell: aggregate grid == sum of per-session TrafficStats.
    let dirs = [(DirTag::C2s, Direction::ClientToServer), (DirTag::S2c, Direction::ServerToClient)];
    let phases = [
        (PhaseTag::Setup, Phase::Setup),
        (PhaseTag::Map, Phase::Map),
        (PhaseTag::Delta, Phase::Delta),
    ];
    for (dtag, dir) in dirs {
        for (ptag, phase) in phases {
            let traffic_sum: u64 = reports
                .iter()
                .map(|(t, _)| match dir {
                    Direction::ClientToServer => t.c2s(phase),
                    Direction::ServerToClient => t.s2c(phase),
                })
                .sum();
            assert_eq!(
                aggregate.dir_phase_bytes(dtag, ptag),
                traffic_sum,
                "daemon grid cell ({dtag:?}, {ptag:?}) != summed session TrafficStats"
            );
        }
    }
    assert!(aggregate.total_bytes() > 0, "loopback sessions must move bytes");

    // The aggregate is also the merge of the per-session snapshots.
    let mut merged = MetricsSnapshot::new();
    for (_, m) in reports.iter() {
        merged.merge(m);
    }
    assert_eq!(aggregate, merged, "daemon.metrics() must equal merged session snapshots");

    // One successful handshake per session, none failed.
    assert_eq!(aggregate.handshakes_ok, 2);
    assert_eq!(aggregate.handshakes_failed, 0);

    // --metrics-out dumped the aggregate as Prometheus text, followed
    // by the per-collection labeled blocks (both sessions bound the
    // default collection).
    let text = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    assert!(
        text.starts_with(&aggregate.render_prometheus()),
        "metrics text must open with the unlabeled aggregate"
    );
    assert!(text.contains("msync_bytes_total"), "metrics text missing byte series");
    assert!(
        text.contains("collection=\"default\""),
        "metrics text missing the default collection's labeled block"
    );
    let _ = std::fs::remove_file(&metrics_path);
}

/// Sort entries by name, as collection outcomes report them.
fn sorted(entries: &[FileEntry]) -> Vec<FileEntry> {
    let mut v = entries.to_vec();
    v.sort_by(|a, b| a.name.cmp(&b.name));
    v
}

fn assert_mirror(outcome: &msync::core::CollectionOutcome, want: &[FileEntry], label: &str) {
    let want = sorted(want);
    assert_eq!(outcome.files.len(), want.len(), "{label}: file count");
    for (have, want) in outcome.files.iter().zip(&want) {
        assert_eq!(have.name, want.name, "{label}: name order");
        assert_eq!(have.data, want.data, "{label}: content mismatch for {}", want.name);
    }
}

fn run_remote_collection(addr: &str, old: &[FileEntry], collection: &str) -> RemoteOutcome {
    let opts = RemoteOptions {
        cfg: small_cfg(),
        collection: Some(collection.to_string()),
        ..RemoteOptions::default()
    };
    sync_remote(addr, old, &opts).expect("remote sync over loopback")
}

/// The tentpole guarantee (ISSUE PR 8): a registry swap is atomic under
/// live traffic. A client that finished its handshake before the
/// `reload` admin verb ran keeps syncing — and lands byte-exact — on
/// the snapshot it bound, while a client handshaking after the reload
/// lands byte-exact on the new tree. The swap is driven over the wire
/// exactly as `msync` would: `admin_reload` against a registry whose
/// loader re-reads the collection's (here synthetic) source.
#[test]
fn snapshot_swap_is_atomic_under_live_traffic() {
    let (old, v1) = corpus();
    // The "recrawled" tree: most files unchanged, some rewritten, one
    // new — the shape the nightly-recrawl profile models.
    let mut v2: Vec<FileEntry> = v1.clone();
    for f in v2.iter_mut().take(12) {
        let mut data = f.data.clone();
        data.extend_from_slice(b"<!-- recrawled tonight -->");
        *f = FileEntry::new(f.name.clone(), data);
    }
    v2.push(FileEntry::new("www/page_new.html".to_string(), b"<html>new</html>".to_vec()));

    let source: Arc<Mutex<Vec<FileEntry>>> = Arc::new(Mutex::new(Vec::new()));
    let loader_src = Arc::clone(&source);
    let mut builder = RegistryBuilder::new();
    builder.add("crawl", v1.clone(), Some(std::path::PathBuf::from("/virtual/crawl"))).unwrap();
    builder.loader(move |_path| Ok(loader_src.lock().expect("loader source").clone()));
    let daemon = Daemon::spawn_registry(
        "127.0.0.1:0",
        Arc::new(builder.build()),
        DaemonOptions::default(),
        |_| {},
    )
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    // In-flight session: handshake now, sync later. Once the hello
    // reply arrives, the daemon has bound this session to the v1
    // snapshot Arc.
    let stream = std::net::TcpStream::connect(&addr).expect("connect in-flight client");
    let mut t = TcpTransport::client(stream).expect("wrap in-flight client");
    let cfg = client_hello_as(&mut t, &small_cfg(), Some("crawl"), Duration::from_secs(5))
        .expect("in-flight handshake");

    // Swap the collection over the wire while that session is open.
    *source.lock().expect("loader source") = v2.clone();
    let loaded = admin_reload(&addr, "crawl", Duration::from_secs(5)).expect("admin reload");
    assert_eq!(loaded, v2.len(), "reload reports the fresh tree's file count");

    // A fresh client sees the new tree...
    let fresh = run_remote_collection(&addr, &old, "crawl");
    assert_mirror(&fresh.outcome, &v2, "fresh client after swap");

    // ...while the in-flight session finishes byte-exact on the old
    // snapshot it started with.
    let outcome = sync_collection_client(&mut t, &old, &cfg, &PipelineOptions::default())
        .expect("in-flight session completes after the swap");
    assert_mirror(&outcome, &v1, "in-flight client across swap");

    // The old snapshot becomes garbage only once the last session
    // drops it; new handshakes keep getting the new tree.
    let again = run_remote_collection(&addr, &old, "crawl");
    daemon.shutdown();
    assert_mirror(&again.outcome, &v2, "post-swap client");
}

/// Unknown names are a *typed* refusal, and nameless (or v2) clients
/// degrade to the default collection rather than being turned away.
#[test]
fn unknown_collection_is_typed_and_nameless_clients_get_the_default() {
    let (old, new) = corpus();
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {})
        .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let err = run_remote_try(&addr, &old, Some("ghost"));
    match err {
        Err(NetError::UnknownCollection(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected the typed unknown-collection refusal, got {other:?}"),
    }

    // No name → the default collection (exactly what a v2 client gets).
    let got = run_remote(&addr, &old, 16);
    daemon.shutdown();
    assert_mirror(&got.outcome, &new, "nameless client on the default collection");
}

fn run_remote_try(
    addr: &str,
    old: &[FileEntry],
    collection: Option<&str>,
) -> Result<RemoteOutcome, NetError> {
    let opts = RemoteOptions {
        cfg: small_cfg(),
        collection: collection.map(str::to_owned),
        ..RemoteOptions::default()
    };
    sync_remote(addr, old, &opts)
}

/// Capacity check (ISSUE PR 8 satellite): with two collections served,
/// the per-collection metric grids sum cell-by-cell to the daemon's
/// aggregate — per-collection attribution loses nothing and invents
/// nothing.
#[test]
fn two_collections_metric_grids_sum_to_the_aggregate() {
    let (old, tree_a) = corpus();
    let mut tree_b: Vec<FileEntry> = tree_a.iter().take(40).cloned().collect();
    for f in tree_b.iter_mut() {
        let mut data = f.data.clone();
        data.extend_from_slice(b"tree b variant");
        *f = FileEntry::new(f.name.clone(), data);
    }

    let mut builder = RegistryBuilder::new();
    builder.add("alpha", tree_a.clone(), None).unwrap();
    builder.add("beta", tree_b.clone(), None).unwrap();
    let done = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&done);
    let daemon = Daemon::spawn_registry(
        "127.0.0.1:0",
        Arc::new(builder.build()),
        DaemonOptions::default(),
        move |r| {
            r.result.as_ref().expect("two-collection session succeeds");
            seen.fetch_add(1, Ordering::SeqCst);
        },
    )
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    let a1 = run_remote_collection(&addr, &old, "alpha");
    let a2 = run_remote_collection(&addr, &old, "alpha");
    let b1 = run_remote_collection(&addr, &old, "beta");
    assert_mirror(&a1.outcome, &tree_a, "alpha client 1");
    assert_mirror(&a2.outcome, &tree_a, "alpha client 2");
    assert_mirror(&b1.outcome, &tree_b, "beta client");

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while done.load(Ordering::SeqCst) < 3 {
        assert!(std::time::Instant::now() < deadline, "daemon reports never arrived");
        std::thread::sleep(Duration::from_millis(5));
    }
    let aggregate = daemon.metrics();
    let by_collection = daemon.metrics_by_collection();
    daemon.shutdown();

    assert_eq!(
        by_collection.keys().collect::<Vec<_>>(),
        vec!["alpha", "beta"],
        "exactly the two served collections have buckets"
    );
    let mut summed = MetricsSnapshot::new();
    for snap in by_collection.values() {
        summed.merge(snap);
    }
    // Every session bound a collection, so the buckets account for the
    // whole aggregate — grid cells, handshakes, session counts, all.
    assert_eq!(aggregate, summed, "per-collection buckets must sum to the aggregate");
    assert_eq!(by_collection["alpha"].handshakes_ok, 2);
    assert_eq!(by_collection["beta"].handshakes_ok, 1);
}

/// The cross-session hash cache: the first session on a collection pays
/// the map-phase hashing (all misses), and a second session syncing the
/// same files pays none of it (all hits) — a hot file is hashed once,
/// not once per client.
#[test]
fn second_session_on_a_hot_collection_hits_the_hash_cache() {
    let (old, new) = corpus();
    let reports: Arc<Mutex<Vec<MetricsSnapshot>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reports);
    let daemon = Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), move |r| {
        r.result.as_ref().expect("hot-collection session succeeds");
        sink.lock().expect("report sink").push(r.metrics.clone());
    })
    .expect("bind loopback daemon");
    let addr = daemon.local_addr().to_string();

    // Identical syncs: same old mirror, same config, same collection.
    run_remote(&addr, &old, 16);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while reports.lock().expect("report sink").len() < 1 {
        assert!(std::time::Instant::now() < deadline, "first report never arrived");
        std::thread::sleep(Duration::from_millis(5));
    }
    run_remote(&addr, &old, 16);
    while reports.lock().expect("report sink").len() < 2 {
        assert!(std::time::Instant::now() < deadline, "second report never arrived");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.shutdown();

    let reports = reports.lock().expect("report sink");
    let (first, second) = (&reports[0], &reports[1]);
    assert!(first.hash_cache_misses > 0, "first session must compute map-phase hashes");
    assert_eq!(first.hash_cache_hits, 0, "an empty cache cannot hit");
    assert_eq!(
        second.hash_cache_misses, 0,
        "second identical session must re-hash nothing (misses: {})",
        second.hash_cache_misses
    );
    assert!(second.hash_cache_hits > 0, "second session must be served from the cache");
    assert_eq!(
        second.hash_cache_hit_bytes, first.hash_cache_miss_bytes,
        "the second session's hits cover exactly the bytes the first session hashed"
    );
}
