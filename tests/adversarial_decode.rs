//! Adversarial decode tests: every decoder that reads wire bytes must
//! turn arbitrary garbage into a typed error — never a panic, a hang,
//! or an attempt to allocate unbounded memory.
//!
//! The fault-injection layer (see `tests/fault_injection.rs`) proves
//! the session recovers from *detected* damage; these tests attack the
//! decoders directly with truncations, bit flips, and hostile headers,
//! the inputs a CRC-evading or pre-checksum corruption would hand them.

use msync::compress::{decompress, delta_decode, vcdiff_decode, vcdiff_encode};
use msync::corpus::Rng;
use msync::hashes::{BitReader, BitWriter};
use msync::protocol::crc32;

fn sample(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| (rng.next_u64() >> 56) as u8).collect()
}

#[test]
fn bitreader_truncations_and_overreads_are_typed() {
    let mut w = BitWriter::new();
    w.write_varint(0xDEAD_BEEF_CAFE);
    w.write_bits(0b1011, 4);
    let bytes = w.into_bytes();

    // Every truncation either still decodes (prefix happens to be a
    // complete varint) or reports a typed error; no panics.
    for cut in 0..bytes.len() {
        let mut r = BitReader::new(&bytes[..cut]);
        let _ = r.read_varint();
        let mut r = BitReader::new(&bytes[..cut]);
        let _ = r.read_bits(64);
    }

    // Reading past the end is an error, not UB or a wrap.
    let mut r = BitReader::new(&[0x01]);
    assert!(r.read_bits(16).is_err());
    let mut r = BitReader::new(&[]);
    assert!(r.read_bit().is_err());
    assert!(r.read_varint().is_err());
}

#[test]
fn varint_with_endless_continuation_bits_terminates() {
    // 0xFF forever says "more bytes follow" indefinitely; the decoder
    // must stop with an error once the value exceeds 64 bits instead of
    // shifting forever or wrapping silently.
    let hostile = vec![0xFFu8; 64];
    let mut r = BitReader::new(&hostile);
    assert!(r.read_varint().is_err(), "unbounded varint must be rejected");
}

#[test]
fn vcdiff_decoder_survives_truncation_and_bit_flips() {
    let reference = sample(1, 4096);
    let target = {
        let mut t = reference.clone();
        t.splice(1000..1100, sample(2, 300));
        t
    };
    let delta = vcdiff_encode(&reference, &target);
    assert_eq!(vcdiff_decode(&reference, &delta).unwrap(), target);

    for cut in 0..delta.len().min(400) {
        let _ = vcdiff_decode(&reference, &delta[..cut]);
    }
    for i in 0..delta.len().min(400) {
        for bit in 0..8 {
            let mut mangled = delta.clone();
            mangled[i] ^= 1 << bit;
            // Either decodes to *something* or errors; must not panic.
            let _ = vcdiff_decode(&reference, &mangled);
        }
    }
}

#[test]
fn vcdiff_decoder_rejects_giant_headers_without_allocating() {
    // A target-length word of ~2^60 must be refused up front — a
    // decoder that trusts it would try to reserve an exabyte.
    let mut hostile = Vec::new();
    let mut v: u64 = 1 << 60;
    loop {
        let mut b = (v & 0x7F) as u8;
        v >>= 7;
        if v != 0 {
            b |= 0x80;
        }
        hostile.push(b);
        if v == 0 {
            break;
        }
    }
    hostile.extend_from_slice(&[0x00, 0x01, 0x02]);
    assert!(vcdiff_decode(b"ref", &hostile).is_err());

    // Plausible length, no body: must error after bounded work.
    let mut small = vec![0x80u8, 0x80, 0x04]; // LEB128 for 65536
    small.push(0x01);
    assert!(vcdiff_decode(b"ref", &small).is_err());
}

#[test]
fn lz_and_delta_decoders_survive_garbage() {
    let reference = sample(3, 2048);
    for seed in 0..50u64 {
        let garbage = sample(seed.wrapping_add(100), 256);
        let _ = decompress(&garbage);
        let _ = delta_decode(&reference, &garbage);
    }
    // Empty and tiny inputs.
    for input in [&[][..], &[0x00][..], &[0xFF][..], &[0xFF, 0xFF][..]] {
        let _ = decompress(input);
        let _ = delta_decode(&reference, input);
        let _ = vcdiff_decode(&reference, input);
    }
}

#[test]
fn frame_decode_garbage_is_typed_at_the_protocol_layer() {
    // Random byte strings thrown at the channel's frame decoder: the
    // CRC rejects essentially everything, and nothing panics or
    // allocates past the length guard.
    for seed in 0..100u64 {
        let garbage = sample(seed.wrapping_add(500), 64);
        let _ = msync::protocol::channel::decode_frame(&garbage);
    }
    // A frame claiming a multi-gigabyte payload is rejected before any
    // allocation happens.
    let mut hostile = Vec::new();
    let mut v: u64 = (1 << 32) + 5;
    loop {
        let mut b = (v & 0x7F) as u8;
        v >>= 7;
        if v != 0 {
            b |= 0x80;
        }
        hostile.push(b);
        if v == 0 {
            break;
        }
    }
    hostile.extend_from_slice(&crc32(&[]).to_le_bytes());
    assert!(msync::protocol::channel::decode_frame(&hostile).is_err());
}
