//! Daemon concurrency benchmark gate (ISSUE PR 5): the event-driven
//! multiplexer must sustain at least the sessions-per-second of the
//! original thread-per-session model on a burst of tiny sessions.
//!
//! Off by default (timing asserts don't belong in plain `cargo test`);
//! CI runs it with `MSYNC_BENCH=1` in release mode and archives the
//! measurement as `BENCH_daemon_concurrency.json` in the repo root.
//!
//! Method: `SESSIONS` tiny collection syncs are fired from a fixed
//! `CLIENT_THREADS`-thread client pool at one daemon; the wall clock
//! over the whole burst gives sessions/sec. Each attempt measures the
//! baseline and the multiplexer back to back on fresh daemons (same
//! corpus, same client pool shape), and the gate passes on the first
//! attempt where the multiplexer is at least as fast; the minimum over
//! attempts is never averaged, so one noisy neighbour is forgiven but
//! a real regression fails every attempt. (Root integration tests are
//! outside the xtask clock-discipline scan, so `Instant` is fine here.)

use std::sync::Arc;
use std::time::Instant;

use msync::core::{FileEntry, PipelineOptions, ProtocolConfig};
use msync::net::{sync_remote, Daemon, DaemonOptions, RemoteOptions, ServeModel};

/// Total sessions per measured burst.
const SESSIONS: usize = 200;
/// Client pool width: enough to keep the daemon saturated without
/// drowning a small CI box in client-side threads.
const CLIENT_THREADS: usize = 16;
/// Full-measurement retries before the gate fails.
const ATTEMPTS: usize = 3;

/// A deliberately tiny collection: per-session protocol work is a few
/// round trips, so session setup/teardown — the thing the two serve
/// models differ on — dominates the measurement.
fn tiny_corpus() -> (Vec<FileEntry>, Vec<FileEntry>) {
    let make = |tag: &str| -> Vec<FileEntry> {
        (0..4)
            .map(|i| {
                let body: Vec<u8> = format!("{tag} page {i} ").bytes().cycle().take(600).collect();
                FileEntry::new(format!("page{i}.html"), body)
            })
            .collect()
    };
    (make("old"), make("new"))
}

/// Run one burst of `SESSIONS` syncs against a daemon using `model`;
/// returns sessions per second over the burst's wall clock.
fn burst(model: ServeModel, old: &Arc<Vec<FileEntry>>, new: &[FileEntry]) -> f64 {
    let opts = DaemonOptions { model, ..DaemonOptions::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new.to_vec(), opts, |_| {}).expect("bind daemon");
    let addr = Arc::new(daemon.local_addr().to_string());

    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|worker| {
            let addr = Arc::clone(&addr);
            let old = Arc::clone(old);
            std::thread::spawn(move || {
                let share =
                    SESSIONS / CLIENT_THREADS + usize::from(worker < SESSIONS % CLIENT_THREADS);
                let opts = RemoteOptions {
                    cfg: ProtocolConfig { start_block: 256, ..ProtocolConfig::default() },
                    pipeline: PipelineOptions::default(),
                    ..RemoteOptions::default()
                };
                for _ in 0..share {
                    let got = sync_remote(&addr, &old, &opts).expect("bench session");
                    assert_eq!(got.outcome.files.len(), 4, "bench session must fully sync");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client worker");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    daemon.shutdown();
    SESSIONS as f64 / elapsed.max(1e-9)
}

#[test]
fn multiplexer_matches_thread_per_session_throughput() {
    if std::env::var_os("MSYNC_BENCH").is_none() {
        eprintln!("daemon_bench: set MSYNC_BENCH=1 to run the throughput gate");
        return;
    }
    let (old, new) = tiny_corpus();
    let old = Arc::new(old);

    // Warm-up burst so neither side pays first-touch costs.
    let _ = burst(ServeModel::Multiplex, &old, &new);

    let mut last = (0.0f64, 0.0f64);
    for attempt in 1..=ATTEMPTS {
        let baseline_sps = burst(ServeModel::ThreadPerSession, &old, &new);
        let mux_sps = burst(ServeModel::Multiplex, &old, &new);
        last = (baseline_sps, mux_sps);
        eprintln!(
            "daemon_bench attempt {attempt}: thread-per-session {baseline_sps:.1}/s, \
             multiplex {mux_sps:.1}/s"
        );
        if mux_sps >= baseline_sps {
            let json = format!(
                "{{\n  \"bench\": \"daemon_concurrency\",\n  \"sessions\": {SESSIONS},\n  \"client_threads\": {CLIENT_THREADS},\n  \"attempt\": {attempt},\n  \"thread_per_session_sps\": {baseline_sps:.2},\n  \"multiplex_sps\": {mux_sps:.2},\n  \"speedup\": {:.3}\n}}\n",
                mux_sps / baseline_sps.max(1e-9)
            );
            let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_daemon_concurrency.json");
            std::fs::write(out, &json).expect("write bench json");
            eprintln!("daemon_bench: gate passed -> {out}");
            return;
        }
    }
    let (baseline_sps, mux_sps) = last;
    panic!(
        "multiplexer slower than thread-per-session on all {ATTEMPTS} attempts: \
         last multiplex {mux_sps:.1}/s vs baseline {baseline_sps:.1}/s"
    );
}
