//! Daemon concurrency soak gate (ISSUE PR 5, extended to a 1k-session
//! soak with a memory ceiling in ISSUE PR 10): the event-driven
//! multiplexer must sustain at least the sessions-per-second of the
//! original thread-per-session model on a burst of tiny sessions, the
//! frame path must copy strictly fewer bytes per session than the
//! pre-refactor (owned `Vec<u8>`) implementation did, and the whole
//! soak must fit under a peak-RSS ceiling.
//!
//! Off by default (timing asserts don't belong in plain `cargo test`);
//! CI runs it with `MSYNC_BENCH=1` in release mode and archives the
//! measurement as `BENCH_daemon_concurrency.json` in the repo root.
//!
//! Method: `SESSIONS` tiny collection syncs are fired from a fixed
//! `CLIENT_THREADS`-thread client pool at one daemon; the wall clock
//! over the whole burst gives sessions/sec. Each attempt measures the
//! baseline and the multiplexer back to back on fresh daemons (same
//! corpus, same client pool shape), and the gate passes on the first
//! attempt where the multiplexer is at least as fast; the minimum over
//! attempts is never averaged, so one noisy neighbour is forgiven but
//! a real regression fails every attempt. Copied frame bytes come from
//! `msync_protocol::frame_copy_bytes()` (every wire-path memcpy is
//! metered), snapshotted around the multiplex burst; peak RSS is the
//! kernel's `VmHWM` for the whole test process. (Root integration
//! tests are outside the xtask clock-discipline scan, so `Instant` is
//! fine here.)

use std::sync::Arc;
use std::time::Instant;

use msync::core::{FileEntry, PipelineOptions, ProtocolConfig};
use msync::net::{sync_remote, Daemon, DaemonOptions, RemoteOptions, ServeModel};

/// Total sessions per measured burst — the 1k soak.
const SESSIONS: usize = 1000;
/// Client pool width: enough to keep the daemon saturated without
/// drowning a small CI box in client-side threads.
const CLIENT_THREADS: usize = 16;
/// Full-measurement retries before the gate fails.
const ATTEMPTS: usize = 3;

/// Pre-refactor frame bytes copied per multiplexed session, measured by
/// this same bench (same corpus, same counter) on the owned-`Vec<u8>`
/// frame path before the `FrameBuf` refactor. The gate requires the
/// current number to be strictly below this — the ratchet that keeps
/// the zero-copy path zero-copy.
const PRE_REFACTOR_COPIED_PER_SESSION: u64 = 5141;
/// Peak-RSS ceiling for the whole soak process (clients + both
/// daemons). Measured 13 MiB on the reference box; the ceiling leaves
/// ~5x headroom for allocator and platform variance while still
/// catching any per-session copy or leak regression at 1k sessions.
const PEAK_RSS_CEILING_BYTES: u64 = 64 * 1024 * 1024;

/// A deliberately tiny collection: per-session protocol work is a few
/// round trips, so session setup/teardown — the thing the two serve
/// models differ on — dominates the measurement.
fn tiny_corpus() -> (Vec<FileEntry>, Vec<FileEntry>) {
    let make = |tag: &str| -> Vec<FileEntry> {
        (0..4)
            .map(|i| {
                let body: Vec<u8> = format!("{tag} page {i} ").bytes().cycle().take(600).collect();
                FileEntry::new(format!("page{i}.html"), body)
            })
            .collect()
    };
    (make("old"), make("new"))
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// /proc/self/status). Returns 0 where procfs is unavailable, which
/// trivially passes the ceiling — the gate is meaningful on the Linux
/// CI boxes it runs on.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Run one burst of `SESSIONS` syncs against a daemon using `model`;
/// returns sessions per second over the burst's wall clock.
fn burst(model: ServeModel, old: &Arc<Vec<FileEntry>>, new: &[FileEntry]) -> f64 {
    let opts = DaemonOptions { model, ..DaemonOptions::default() };
    let daemon = Daemon::spawn("127.0.0.1:0", new.to_vec(), opts, |_| {}).expect("bind daemon");
    let addr = Arc::new(daemon.local_addr().to_string());

    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|worker| {
            let addr = Arc::clone(&addr);
            let old = Arc::clone(old);
            std::thread::spawn(move || {
                let share =
                    SESSIONS / CLIENT_THREADS + usize::from(worker < SESSIONS % CLIENT_THREADS);
                let opts = RemoteOptions {
                    cfg: ProtocolConfig { start_block: 256, ..ProtocolConfig::default() },
                    pipeline: PipelineOptions::default(),
                    ..RemoteOptions::default()
                };
                for _ in 0..share {
                    let got = sync_remote(&addr, &old, &opts).expect("bench session");
                    assert_eq!(got.outcome.files.len(), 4, "bench session must fully sync");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client worker");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    daemon.shutdown();
    SESSIONS as f64 / elapsed.max(1e-9)
}

#[test]
fn multiplexer_sustains_1k_session_soak() {
    if std::env::var_os("MSYNC_BENCH").is_none() {
        eprintln!("daemon_bench: set MSYNC_BENCH=1 to run the 1k-session soak gate");
        return;
    }
    let (old, new) = tiny_corpus();
    let old = Arc::new(old);

    // Warm-up burst so neither side pays first-touch costs.
    let _ = burst(ServeModel::Multiplex, &old, &new);

    let mut last = (0.0f64, 0.0f64);
    for attempt in 1..=ATTEMPTS {
        let baseline_sps = burst(ServeModel::ThreadPerSession, &old, &new);
        let copied_before = msync::protocol::frame_copy_bytes();
        let mux_sps = burst(ServeModel::Multiplex, &old, &new);
        let copied_per_session =
            (msync::protocol::frame_copy_bytes() - copied_before) / SESSIONS as u64;
        last = (baseline_sps, mux_sps);
        let rss = peak_rss_bytes();
        eprintln!(
            "daemon_bench attempt {attempt}: thread-per-session {baseline_sps:.1}/s, \
             multiplex {mux_sps:.1}/s, {copied_per_session} copied B/session, \
             peak RSS {} MiB",
            rss / (1024 * 1024)
        );
        assert!(
            copied_per_session < PRE_REFACTOR_COPIED_PER_SESSION,
            "frame path copies {copied_per_session} B/session — not below the \
             pre-refactor {PRE_REFACTOR_COPIED_PER_SESSION} B/session ratchet"
        );
        assert!(
            rss < PEAK_RSS_CEILING_BYTES,
            "soak peak RSS {rss} B exceeds the {PEAK_RSS_CEILING_BYTES} B ceiling"
        );
        if mux_sps >= baseline_sps {
            let json = format!(
                "{{\n  \"bench\": \"daemon_concurrency\",\n  \"sessions\": {SESSIONS},\n  \"client_threads\": {CLIENT_THREADS},\n  \"attempt\": {attempt},\n  \"thread_per_session_sps\": {baseline_sps:.2},\n  \"multiplex_sps\": {mux_sps:.2},\n  \"speedup\": {:.3},\n  \"bytes_copied_per_session\": {copied_per_session},\n  \"bytes_copied_per_session_pre_refactor\": {PRE_REFACTOR_COPIED_PER_SESSION},\n  \"peak_rss_bytes\": {rss}\n}}\n",
                mux_sps / baseline_sps.max(1e-9)
            );
            let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_daemon_concurrency.json");
            std::fs::write(out, &json).expect("write bench json");
            eprintln!("daemon_bench: gate passed -> {out}");
            return;
        }
    }
    let (baseline_sps, mux_sps) = last;
    panic!(
        "multiplexer slower than thread-per-session on all {ATTEMPTS} attempts: \
         last multiplex {mux_sps:.1}/s vs baseline {baseline_sps:.1}/s"
    );
}
