//! Machine-level tests of the sans-IO engine (ISSUE PR 5): drive
//! `ClientMachine` / `ServerMachine` by hand — no transport, no
//! threads, no real clock — and assert the protocol is a deterministic
//! function of its inputs: the same files and the same frame schedule
//! produce byte-identical output frames, and a dropped frame plus a
//! clock advance produces the same retransmission every run.

use msync::core::{ClientMachine, Machine, Output, ProtocolConfig, ServerMachine};
use msync::protocol::{BufferPool, FrameBuf, RetryPolicy};
use msync::trace::{Clock, ManualClock, Recorder};

/// An 80 KB old/new pair with a mid-file edit: enough content for a
/// multi-round map descent without making the test slow.
fn corpus() -> (Vec<u8>, Vec<u8>) {
    let old: Vec<u8> = b"the quick brown fox jumps over the lazy dog; "
        .iter()
        .copied()
        .cycle()
        .take(80_000)
        .collect();
    let mut new = old.clone();
    new.splice(40_000..40_100, b"EDITED SEGMENT ".iter().copied().cycle().take(250));
    (old, new)
}

fn cfg() -> ProtocolConfig {
    ProtocolConfig { start_block: 1024, ..ProtocolConfig::default() }
}

/// Drain one machine's queued effects, collecting transmissions.
/// Returns `(done, frames)`; stops at `Wait` or `Done`.
fn drain<M: Machine>(m: &mut M, now_us: u64) -> (bool, Vec<(FrameBuf, bool)>) {
    let mut frames = Vec::new();
    loop {
        match m.poll_output(now_us).expect("machine healthy") {
            Output::Transmit { frame, retransmit, .. } => frames.push((frame, retransmit)),
            Output::Attribute { .. } => {}
            Output::Wait { .. } => return (false, frames),
            Output::Done => return (true, frames),
        }
    }
}

/// Run one full client↔server session over a lossless in-test shuttle,
/// returning every frame in wire order plus the client's reconstruction.
/// With a pool, both machines draw their encoded frames from it.
fn run_session_with(old: &[u8], new: &[u8], pool: Option<&BufferPool>) -> (Vec<FrameBuf>, Vec<u8>) {
    let clock = ManualClock::fixed(0);
    let retry = RetryPolicy::default();
    let config = cfg();
    let now = clock.now_micros();
    let mut client =
        ClientMachine::new(old, &config, retry, Recorder::off(), 0, now).expect("client machine");
    let mut server = ServerMachine::new(&config, retry, Recorder::off(), now).expect("server");
    if let Some(pool) = pool {
        client.set_pool(pool.clone());
        server.set_pool(pool.clone());
    }
    let mut wire: Vec<FrameBuf> = Vec::new();

    for _ in 0..10_000 {
        let now = clock.now_micros();
        let (client_done, to_server) = drain(&mut client, now);
        for (frame, _) in to_server {
            server.on_frame(new, &frame, now).expect("server accepts frame");
            wire.push(frame);
        }
        if client_done {
            let done = client.take_done().expect("finished client yields a result");
            // The server saw the hang-up in the real deployment; here
            // the shuttle just stops driving it.
            server.on_disconnect().expect("server ends cleanly");
            return (wire, done.data);
        }
        let (_, to_client) = drain(&mut server, now);
        for (frame, _) in to_client {
            client.on_frame(&(), &frame, now).expect("client accepts frame");
            wire.push(frame);
        }
    }
    panic!("session did not converge within the frame budget");
}

fn run_session(old: &[u8], new: &[u8]) -> (Vec<FrameBuf>, Vec<u8>) {
    run_session_with(old, new, None)
}

/// Replaying the identical inputs through fresh machines yields the
/// byte-identical frame sequence — the protocol has no hidden state,
/// no ambient clock, no RNG.
#[test]
fn recorded_frame_sequence_replays_identically() {
    let (old, new) = corpus();
    let (wire_a, data_a) = run_session(&old, &new);
    let (wire_b, data_b) = run_session(&old, &new);
    assert_eq!(data_a, new, "client must reconstruct the new file exactly");
    assert_eq!(data_b, new);
    assert!(wire_a.len() >= 4, "a multi-round session crosses several frames: {}", wire_a.len());
    assert_eq!(wire_a.len(), wire_b.len(), "frame counts must match across runs");
    for (i, (a, b)) in wire_a.iter().zip(&wire_b).enumerate() {
        assert_eq!(a, b, "frame {i} differs between identical runs");
    }
}

/// Drop the opening request, advance the manual clock past the retry
/// deadline, and the client retransmits the byte-identical frame with
/// the retransmit flag set — deterministically, run after run.
#[test]
fn dropped_frame_retransmits_deterministically_under_manual_clock() {
    let (old, new) = corpus();
    let retry = RetryPolicy::default();
    let config = cfg();
    let timeout_us = u64::try_from(retry.timeout.as_micros()).expect("sane timeout");

    let mut retransmits: Vec<FrameBuf> = Vec::new();
    for _ in 0..2 {
        let clock = ManualClock::fixed(0);
        let mut client =
            ClientMachine::new(&old, &config, retry, Recorder::off(), 0, clock.now_micros())
                .expect("client machine");
        let mut server = ServerMachine::new(&config, retry, Recorder::off(), clock.now_micros())
            .expect("server");

        // The request is generated... and lost on the wire.
        let (_, lost) = drain(&mut client, clock.now_micros());
        assert_eq!(lost.len(), 1, "the opening request is one frame");
        assert!(!lost[0].1, "the first transmission is not a retransmit");

        // Nothing arrives; the deadline passes; the client retransmits.
        clock.advance(timeout_us + 1);
        let (_, resent) = drain(&mut client, clock.now_micros());
        assert_eq!(resent.len(), 1, "one retransmission after one deadline");
        assert!(resent[0].1, "the resend must be flagged as a retransmit");
        assert_eq!(resent[0].0, lost[0].0, "the resend is byte-identical to the lost frame");

        // Recovery completes: deliver the resend and run to the end.
        let now = clock.now_micros();
        server.on_frame(&new, &resent[0].0, now).expect("server accepts the resend");
        let mut done = false;
        for _ in 0..10_000 {
            let now = clock.now_micros();
            let (_, to_client) = drain(&mut server, now);
            for (frame, _) in to_client {
                client.on_frame(&(), &frame, now).expect("client accepts frame");
            }
            let (client_done, to_server) = drain(&mut client, now);
            for (frame, _) in to_server {
                server.on_frame(&new, &frame, now).expect("server accepts frame");
            }
            if client_done {
                done = true;
                break;
            }
        }
        assert!(done, "session completes after the retransmission");
        let outcome = client.take_done().expect("client result");
        assert_eq!(outcome.data, new, "reconstruction survives the lost frame");
        retransmits.push(resent[0].0.clone());
    }
    assert_eq!(retransmits[0], retransmits[1], "retransmission is deterministic across runs");
}

/// The ARQ resend path is a refcount bump, never a re-encode: the
/// retransmitted frame is pointer-identical (`FrameBuf::ptr_eq`) to the
/// allocation transmitted the first time, on every expiry.
#[test]
fn retransmission_shares_the_original_allocation() {
    let (old, _new) = corpus();
    let retry = RetryPolicy::default();
    let config = cfg();
    let timeout_us = u64::try_from(retry.timeout.as_micros()).expect("sane timeout");

    let clock = ManualClock::fixed(0);
    let mut client =
        ClientMachine::new(&old, &config, retry, Recorder::off(), 0, clock.now_micros())
            .expect("client machine");
    let (_, lost) = drain(&mut client, clock.now_micros());
    assert_eq!(lost.len(), 1, "the opening request is one frame");

    for round in 1..=2u64 {
        // Deadlines back off; a generous advance always crosses the next.
        clock.advance(round * 8 * (timeout_us + 1));
        let (_, resent) = drain(&mut client, clock.now_micros());
        assert_eq!(resent.len(), 1, "round {round}: one retransmission per expiry");
        assert!(
            FrameBuf::ptr_eq(&resent[0].0, &lost[0].0),
            "round {round}: the resend must share the original allocation, not re-encode"
        );
    }
}

/// Pooled frame buffers return to the pool at session teardown, and the
/// pool's working set (high-water mark of concurrently outstanding
/// buffers) stays flat across repeated sessions: steady-state service
/// recycles allocations instead of growing.
#[test]
fn pooled_buffers_return_and_high_water_stays_flat() {
    let (old, new) = corpus();
    let pool = BufferPool::new(64);
    let mut marks = Vec::new();
    for i in 0..4 {
        let (wire, data) = run_session_with(&old, &new, Some(&pool));
        drop(wire);
        assert_eq!(data, new, "session {i} reconstructs exactly");
        let s = pool.stats();
        assert_eq!(s.outstanding, 0, "session {i}: every pooled frame must return at teardown");
        marks.push(s.high_water);
    }
    let s = pool.stats();
    assert!(s.returned_total > 0, "pooled buffers must come back: {s:?}");
    assert!(s.reused_total > 0, "later sessions must reuse returned buffers: {s:?}");
    assert_eq!(
        marks[1], marks[3],
        "steady-state sessions must not grow the pool working set: {marks:?}"
    );
}
