//! Cross-crate integration: whole-collection synchronization, every
//! technique combination, exactness everywhere.

use msync::core::{sync_collection, sync_file, FileEntry, ProtocolConfig, VerifyStrategy};
use msync::corpus::{emacs_like, gcc_like, release_pair, web_collection, web_params, Collection};

fn entries(c: &Collection) -> Vec<FileEntry> {
    c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
}

fn assert_collection_syncs(old: &Collection, new: &Collection, cfg: &ProtocolConfig) -> u64 {
    let out = sync_collection(&entries(old), &entries(new), cfg).expect("sync succeeds");
    assert_eq!(out.files.len(), new.len());
    for (got, want) in out.files.iter().zip(new.files()) {
        assert_eq!(got.name, want.name);
        assert_eq!(got.data, want.data, "mismatch in {}", want.name);
    }
    out.traffic.total_bytes()
}

#[test]
fn gcc_like_release_syncs_exactly() {
    let pair = release_pair(&gcc_like(0.03));
    let (old, new) = pair.pair(0, 1);
    let bytes = assert_collection_syncs(old, new, &ProtocolConfig::default());
    // Cost far below retransmission.
    assert!(bytes < new.total_bytes() / 5, "cost {bytes} vs {} raw", new.total_bytes());
}

#[test]
fn emacs_like_release_syncs_exactly() {
    let pair = release_pair(&emacs_like(0.02));
    let (old, new) = pair.pair(0, 1);
    assert_collection_syncs(old, new, &ProtocolConfig::default());
}

#[test]
fn web_crawl_syncs_across_intervals() {
    let crawl = web_collection(&web_params(0.004), 7); // 40 pages
    let mut last = 0;
    for days in [1usize, 2, 7] {
        let (old, new) = crawl.pair(0, days);
        let bytes = assert_collection_syncs(old, new, &ProtocolConfig::default());
        assert!(bytes >= last, "cost should not shrink with longer intervals");
        last = bytes;
    }
}

#[test]
fn every_technique_combination_is_exact() {
    let pair = release_pair(&gcc_like(0.01));
    let (old, new) = pair.pair(0, 1);
    // One changed file is enough per combination.
    let changed = new
        .files()
        .iter()
        .find(|nf| old.get(&nf.name).is_some_and(|of| of.data != nf.data))
        .expect("some file changed");
    let old_data = &old.get(&changed.name).unwrap().data;

    for use_continuation in [false, true] {
        for use_decomposable in [false, true] {
            for use_local in [false, true] {
                for two_phase in [false, true] {
                    for skip_sibling in [false, true] {
                        for verify in [
                            VerifyStrategy::PerCandidate { bits: 16 },
                            VerifyStrategy::GroupTesting {
                                batches: vec![
                                    msync::core::BatchConfig { group_size: 4, bits: 14 },
                                    msync::core::BatchConfig { group_size: 1, bits: 16 },
                                ],
                            },
                        ] {
                            let cfg = ProtocolConfig {
                                use_continuation,
                                use_decomposable,
                                use_local,
                                skip_sibling_of_matched: skip_sibling,
                                cont_first_phase: two_phase,
                                verify,
                                min_block_cont: if use_continuation { 16 } else { 128 },
                                ..ProtocolConfig::default()
                            };
                            let out = sync_file(old_data, &changed.data, &cfg)
                                .unwrap_or_else(|e| panic!("cfg {cfg:?}: {e}"));
                            assert_eq!(
                            out.reconstructed, changed.data,
                            "wrong bytes with cont={use_continuation} dec={use_decomposable} local={use_local} skip={skip_sibling} two_phase={two_phase}"
                        );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn weak_verification_still_exact_via_fallback() {
    // 1-bit verification hashes make false confirmations near-certain;
    // the map goes wrong, the delta mismatches, and the file-fingerprint
    // fallback must still deliver exact bytes.
    let old: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect(); // highly repetitive
    let mut new = old.clone();
    for i in (0..new.len()).step_by(997) {
        new[i] ^= 0x55;
    }
    let cfg = ProtocolConfig {
        verify: VerifyStrategy::PerCandidate { bits: 1 },
        global_extra_bits: 0,
        ..ProtocolConfig::default()
    };
    let out = sync_file(&old, &new, &cfg).unwrap();
    assert_eq!(out.reconstructed, new, "fallback must guarantee exactness");
}

#[test]
fn rsync_and_msync_agree_on_every_file() {
    let pair = release_pair(&gcc_like(0.02));
    let (old, new) = pair.pair(0, 1);
    let cfg = ProtocolConfig::default();
    for nf in new.files() {
        let old_data = old.get(&nf.name).map(|f| f.data.clone()).unwrap_or_default();
        let m = sync_file(&old_data, &nf.data, &cfg).unwrap();
        let r = msync::rsync::sync(&old_data, &nf.data, 700);
        assert_eq!(m.reconstructed, nf.data);
        assert_eq!(r.reconstructed, nf.data);
    }
}

#[test]
fn degenerate_files() {
    let cfg = ProtocolConfig::default();
    let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
        (vec![], vec![]),
        (vec![], b"new content".to_vec()),
        (b"old content".to_vec(), vec![]),
        (b"x".to_vec(), b"y".to_vec()),
        (vec![0u8; 1_000_000], vec![0u8; 999_999]), // huge runs
        (b"abc".repeat(50_000), b"abd".repeat(50_000)), // heavy aliasing
    ];
    for (old, new) in cases {
        let out = sync_file(&old, &new, &cfg).unwrap();
        assert_eq!(out.reconstructed, new, "case old={} new={}", old.len(), new.len());
    }
}

#[test]
fn parameter_file_drives_sync() {
    let text = "min_block_global = 64\nverify = group 4x16, 1x16\ncont_bits = 3\n";
    let cfg = msync::core::params::parse(text).unwrap();
    let old = b"hello world, this is the old file contents ".repeat(500);
    let mut new = old.clone();
    new.extend_from_slice(b"plus an appendix");
    let out = sync_file(&old, &new, &cfg).unwrap();
    assert_eq!(out.reconstructed, new);
}
