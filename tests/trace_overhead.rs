//! Tracing overhead gate: a fully traced sync must cost < 5% wall
//! clock over an untraced one.
//!
//! Off by default (timing asserts don't belong in plain `cargo test`);
//! CI runs it with `MSYNC_BENCH=1` in release mode and archives the
//! measurement as `BENCH_trace_overhead.json` in the repo root.
//!
//! Method: the same deterministic workload — a multi-round single-file
//! sync over a seeded ~96 KiB edit pair — runs `REPS` times per
//! configuration, traced and untraced reps strictly interleaved so a
//! frequency ramp or a noisy neighbour biases both sides equally; the
//! minimum over reps is compared, which discards scheduler noise
//! instead of averaging it in. (Root integration tests are outside the
//! xtask clock-discipline scan, so `Instant` is fine here — this file
//! measures the clock readers, it is not one.)

use std::time::Instant;

use msync::core::{sync_file, sync_file_with, ProtocolConfig, SyncOptions};
use msync::corpus::Rng;
use msync::trace::{Recorder, StatusBoard, SystemClock};
use std::sync::Arc;

const REPS: usize = 10;
/// Absolute slack added to the 5% bound so a sub-millisecond workload
/// on a noisy box cannot fail on scheduler jitter alone.
const SLACK_US: u128 = 5_000;
/// Full-measurement retries before the gate fails: one noisy minimum
/// is forgiven, a real regression fails every attempt.
const ATTEMPTS: usize = 3;

fn corpus_pair(seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut byte = move || (rng.next_u64() >> 56) as u8;
    let old: Vec<u8> = (0..96 * 1024).map(|_| byte()).collect();
    let mut new = old.clone();
    for start in [5_000usize, 30_000, 62_000] {
        for b in &mut new[start..start + 400] {
            *b = byte();
        }
    }
    (old, new)
}

/// One timed call, in microseconds.
fn time_us(f: impl FnOnce()) -> u128 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_micros()
}

/// One full interleaved measurement: `(untraced_min_us, traced_min_us)`.
///
/// The traced side runs the *daemon-shaped* recorder: a live status
/// handle is attached (as the mux does for every session), so each
/// recorded event also pays the status fold and the bound stays honest
/// for the introspection plane, not just the bare ring.
fn measure(old: &[u8], new: &[u8], cfg: &ProtocolConfig) -> (u128, u128) {
    let recorder = Recorder::system();
    let board = StatusBoard::new(Arc::new(SystemClock::new()));
    recorder.set_status(board.register("bench"));
    let traced_opts = SyncOptions { recorder, ..SyncOptions::default() };
    let mut untraced_us = u128::MAX;
    let mut traced_us = u128::MAX;
    for _ in 0..REPS {
        untraced_us = untraced_us.min(time_us(|| {
            let out = sync_file(old, new, cfg).expect("untraced sync");
            assert_eq!(out.reconstructed, new);
        }));
        traced_us = traced_us.min(time_us(|| {
            let out = sync_file_with(old, new, cfg, &traced_opts).expect("traced sync");
            assert_eq!(out.reconstructed, new);
            // Drain between reps so the ring never saturates (a full
            // ring would make later reps artificially cheap).
            assert!(!traced_opts.recorder.drain_events().is_empty());
        }));
    }
    (untraced_us, traced_us)
}

#[test]
fn traced_sync_overhead_is_under_five_percent() {
    if std::env::var_os("MSYNC_BENCH").is_none() {
        eprintln!("trace_overhead: set MSYNC_BENCH=1 to run the timing gate");
        return;
    }
    let (old, new) = corpus_pair(0x0B5E55ED);
    let cfg = ProtocolConfig::default();

    // Warm-up run so neither side pays first-touch costs.
    let _ = sync_file(&old, &new, &cfg).expect("warm-up sync");

    let mut last = (0u128, u128::MAX);
    for attempt in 1..=ATTEMPTS {
        let (untraced_us, traced_us) = measure(&old, &new, &cfg);
        last = (untraced_us, traced_us);
        let bound = untraced_us + untraced_us / 20 + SLACK_US;
        let overhead_pct = if untraced_us == 0 {
            0.0
        } else {
            (traced_us as f64 - untraced_us as f64) * 100.0 / untraced_us as f64
        };
        eprintln!(
            "trace_overhead attempt {attempt}: untraced {untraced_us} us, \
             traced {traced_us} us ({overhead_pct:.2}%)"
        );
        if traced_us <= bound {
            let json = format!(
                "{{\n  \"bench\": \"trace_overhead\",\n  \"reps\": {REPS},\n  \"attempt\": {attempt},\n  \"untraced_us\": {untraced_us},\n  \"traced_us\": {traced_us},\n  \"overhead_pct\": {overhead_pct:.2},\n  \"bound_pct\": 5.0,\n  \"slack_us\": {SLACK_US}\n}}\n"
            );
            let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_trace_overhead.json");
            std::fs::write(out, &json).expect("write bench json");
            eprintln!("trace_overhead: gate passed -> {out}");
            return;
        }
    }
    let (untraced_us, traced_us) = last;
    panic!(
        "tracing overhead too high on all {ATTEMPTS} attempts: last traced {traced_us} us vs \
         untraced {untraced_us} us (bound: +5% + {SLACK_US} us slack)"
    );
}
