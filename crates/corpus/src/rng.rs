//! Vendored deterministic PRNG.
//!
//! The corpus generators must be reproducible byte-for-byte across
//! machines and builds *and* the workspace must build with no network
//! access, so instead of depending on the `rand` crate this module ships
//! a ~60-line xoshiro256** generator (Blackman & Vigna) seeded through
//! SplitMix64. The API mirrors the small slice of `rand` the generators
//! use: [`Rng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! and [`Rng::gen_f64`].
//!
//! This generator is for *synthetic data*, never for protocol logic:
//! the synchronization protocol itself must stay fully deterministic
//! given its inputs (the `xtask lint` determinism rule enforces that no
//! RNG is reachable from the protocol crates).

/// A small, fast, deterministic PRNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the generator from a single `u64` via SplitMix64, matching
    /// the common convention for expanding short seeds.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        // 2^-53 scaling of a 53-bit integer.
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform draw from a half-open or inclusive range.
    ///
    /// Empty ranges are a caller bug; to keep this module panic-free the
    /// draw degenerates to the range start.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, bound)` via 128-bit widening multiply
    /// (Lemire's unbiased-enough fast path; the tiny modulo bias of the
    /// plain multiply is irrelevant for corpus synthesis).
    fn bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by the draw.
    type Out;
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut Rng) -> Self::Out;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                if self.end <= self.start {
                    return self.start;
                }
                let span = u64::from(self.end as u64 - self.start as u64);
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if end <= start {
                    return start;
                }
                let span = (end as u64 - start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: any value.
                    return rng.next_u64() as $t;
                }
                start + rng.bounded(span) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Out = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        if self.end <= self.start {
            return self.start;
        }
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear: {seen:?}");
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(rng.gen_range(5..5usize), 5);
        assert_eq!(rng.gen_range(7..=7u32), 7);
        assert_eq!(rng.gen_range(1.0..1.0f64), 1.0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn known_answer_vector() {
        // Pin the stream so corpus regeneration stays byte-identical
        // across refactors of this module.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(first.len(), 4);
        let mut again = Rng::seed_from_u64(0);
        assert_eq!(first, (0..4).map(|_| again.next_u64()).collect::<Vec<_>>());
    }
}
