//! Loading real directory trees as collections.
//!
//! The synthetic data sets drive the reproduced experiments, but a user
//! adopting the library will want to point it at real version pairs
//! (e.g. two release trees unpacked side by side). This walks a
//! directory recursively and returns its regular files as a
//! [`Collection`], with paths relative to the root and sorted for
//! determinism.

use crate::versioned::Collection;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Load every regular file under `root` (recursively) into a collection.
/// Symlinks are not followed; non-UTF-8 file names are skipped.
pub fn load_dir(root: &Path) -> io::Result<Collection> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut out = Collection::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .expect("walk only yields paths under root")
            .to_string_lossy()
            .into_owned();
        out.push(rel, fs::read(&p)?);
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let ft = entry.file_type()?;
        let path = entry.path();
        if ft.is_dir() {
            walk(&path, out)?;
        } else if ft.is_file() {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_nested_tree() {
        let dir = std::env::temp_dir().join(format!("msync-fsload-{}", std::process::id()));
        let sub = dir.join("a/b");
        fs::create_dir_all(&sub).unwrap();
        fs::write(dir.join("top.txt"), b"top").unwrap();
        fs::write(sub.join("deep.txt"), b"deep").unwrap();
        let col = load_dir(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(col.len(), 2);
        assert_eq!(col.get("a/b/deep.txt").unwrap().data, b"deep");
        assert_eq!(col.get("top.txt").unwrap().data, b"top");
    }

    #[test]
    fn missing_dir_is_error() {
        assert!(load_dir(Path::new("/definitely/not/here-msync")).is_err());
    }
}
