//! Synthetic text generators.
//!
//! The paper's data sets are real artifacts we cannot ship (gcc/emacs
//! source trees, a 2001 web crawl); what the experiments *measure*,
//! though, depends only on the statistical texture of the data — token
//! vocabulary, line structure, local repetitiveness — and on the edit
//! process between versions. These generators reproduce that texture:
//! [`source_file`] emits C-like code (for the gcc/emacs stand-ins) and
//! [`html_page`] emits tag-soup web pages (for the crawl stand-in), both
//! fully deterministic given the seed.

use crate::rng::Rng;

const IDENTS: &[&str] = &[
    "buffer", "offset", "length", "result", "status", "index", "count", "state", "handle",
    "config", "cursor", "stream", "packet", "header", "record", "symbol", "token", "parser",
    "node", "tree", "hash", "table", "entry", "value", "block", "chunk", "frame", "queue", "cache",
    "flags",
];

const TYPES: &[&str] = &["int", "char", "long", "void", "unsigned", "size_t", "struct node *"];

const WORDS: &[&str] = &[
    "the", "of", "and", "to", "a", "in", "that", "is", "was", "for", "on", "are", "with", "as",
    "his", "they", "be", "at", "one", "have", "this", "from", "or", "had", "by", "word", "but",
    "what", "some", "we", "can", "out", "other", "were", "all", "there", "when", "up", "use",
    "your", "how", "said", "an", "each", "she", "which", "their", "time", "if", "will", "way",
    "about", "many", "then", "them", "would", "write", "like", "so", "these", "her", "long",
    "make", "thing", "see", "him", "two", "has", "look", "more", "day", "could", "go", "come",
    "did", "number", "sound", "no", "most", "people",
];

/// Generate one pseudo-C source line (used for whole files and for the
/// replacement lines of edits, so edits look like the surrounding text).
pub fn source_line(rng: &mut Rng, indent: usize) -> String {
    let pad = "    ".repeat(indent);
    match rng.gen_range(0..8u32) {
        0 => format!(
            "{pad}{} {}_{} = {};",
            pick(rng, TYPES),
            pick(rng, IDENTS),
            rng.gen_range(0..100u32),
            rng.gen_range(0..65536u32)
        ),
        1 => format!("{pad}if ({} > {}) {{", pick(rng, IDENTS), rng.gen_range(0..256u32)),
        2 => format!("{pad}{}({}, {});", pick(rng, IDENTS), pick(rng, IDENTS), pick(rng, IDENTS)),
        3 => format!("{pad}return {};", pick(rng, IDENTS)),
        4 => format!("{pad}/* {} {} {} */", pick(rng, WORDS), pick(rng, WORDS), pick(rng, WORDS)),
        5 => format!("{pad}{} += {}[{}];", pick(rng, IDENTS), pick(rng, IDENTS), pick(rng, IDENTS)),
        6 => format!("{pad}while ({}--) {{", pick(rng, IDENTS)),
        _ => format!("{pad}}}"),
    }
}

/// A C-like source file of roughly `target_bytes`.
pub fn source_file(rng: &mut Rng, target_bytes: usize) -> Vec<u8> {
    let mut out = String::with_capacity(target_bytes + 128);
    out.push_str("/* generated module */\n#include <stdio.h>\n#include <stdlib.h>\n\n");
    let mut indent = 0usize;
    while out.len() < target_bytes {
        if rng.gen_bool(0.05) {
            out.push_str(&format!(
                "\n{} {}_{}({} {}) {{\n",
                pick(rng, TYPES),
                pick(rng, IDENTS),
                rng.gen_range(0..1000u32),
                pick(rng, TYPES),
                pick(rng, IDENTS)
            ));
            indent = 1;
        }
        let line = source_line(rng, indent);
        if line.trim_end().ends_with('{') {
            indent = (indent + 1).min(5);
        } else if line.trim_end().ends_with('}') {
            indent = indent.saturating_sub(1);
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.into_bytes()
}

/// One line of prose-like HTML body text.
pub fn html_line(rng: &mut Rng) -> String {
    let n = rng.gen_range(6..14usize);
    let mut line = String::new();
    for i in 0..n {
        if i > 0 {
            line.push(' ');
        }
        line.push_str(pick(rng, WORDS));
    }
    line
}

/// An HTML-ish web page of roughly `target_bytes` (the paper's pages
/// average ~15 KB). Pages carry a date stamp and a counter — the fields
/// that typically change between recrawls.
pub fn html_page(rng: &mut Rng, target_bytes: usize, day: u32) -> Vec<u8> {
    let mut out = String::with_capacity(target_bytes + 256);
    out.push_str("<!DOCTYPE html>\n<html>\n<head>\n");
    out.push_str(&format!("<title>{} {}</title>\n", pick(rng, WORDS), pick(rng, WORDS)));
    out.push_str(&format!("<meta name=\"date\" content=\"2001-10-{:02}\">\n", day % 28 + 1));
    out.push_str("</head>\n<body>\n");
    out.push_str(&format!("<!-- visit counter: {} -->\n", rng.gen_range(0..100_000u32)));
    while out.len() < target_bytes {
        match rng.gen_range(0..6u32) {
            0 => out.push_str(&format!("<h2>{}</h2>\n", html_line(rng))),
            1 => out.push_str(&format!(
                "<a href=\"/{}/{}.html\">{}</a>\n",
                pick(rng, WORDS),
                pick(rng, IDENTS),
                html_line(rng)
            )),
            2 => out.push_str("<hr>\n<table><tr><td>\n"),
            3 => out.push_str("</td></tr></table>\n"),
            _ => out.push_str(&format!("<p>{}</p>\n", html_line(rng))),
        }
    }
    out.push_str("</body>\n</html>\n");
    out.into_bytes()
}

fn pick<'a>(rng: &mut Rng, table: &[&'a str]) -> &'a str {
    table[rng.gen_range(0..table.len())]
}

/// Log-normal-ish file size: `median` scaled by 2^N(0,sigma). Clamped to
/// `[min, max]`.
pub fn lognormal_size(rng: &mut Rng, median: usize, sigma: f64, min: usize, max: usize) -> usize {
    // Box-Muller from two uniforms.
    let u1: f64 = rng.gen_range(1e-9..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let factor = (z * sigma).exp2();
    ((median as f64 * factor) as usize).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_file_deterministic() {
        let a = source_file(&mut Rng::seed_from_u64(7), 5000);
        let b = source_file(&mut Rng::seed_from_u64(7), 5000);
        assert_eq!(a, b);
        let c = source_file(&mut Rng::seed_from_u64(8), 5000);
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_roughly_hit_target() {
        let f = source_file(&mut Rng::seed_from_u64(1), 20_000);
        assert!(f.len() >= 20_000 && f.len() < 21_000);
        let p = html_page(&mut Rng::seed_from_u64(2), 15_000, 3);
        assert!(p.len() >= 15_000 && p.len() < 16_000);
    }

    #[test]
    fn generated_text_is_compressible_but_not_trivial() {
        let f = source_file(&mut Rng::seed_from_u64(3), 30_000);
        let c = msync_compress_ratio(&f);
        assert!(c < 0.6, "source should compress below 60%, got {c}");
        assert!(c > 0.02, "source should not be degenerate, got {c}");
    }

    fn msync_compress_ratio(data: &[u8]) -> f64 {
        // Cheap entropy proxy: distinct 4-gram ratio.
        use std::collections::HashSet;
        let grams: HashSet<&[u8]> = data.windows(4).collect();
        grams.len() as f64 / data.len() as f64
    }

    #[test]
    fn lognormal_in_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let s = lognormal_size(&mut rng, 20_000, 1.2, 500, 300_000);
            assert!((500..=300_000).contains(&s));
        }
    }

    #[test]
    fn html_pages_share_structure_across_days() {
        // Same rng stream → different content; but two pages generated
        // with the same seed and different day differ only slightly in
        // the date line.
        let a = html_page(&mut Rng::seed_from_u64(5), 2000, 1);
        let b = html_page(&mut Rng::seed_from_u64(5), 2000, 2);
        let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(diff <= 4, "only the date should differ, got {diff} bytes");
    }
}
