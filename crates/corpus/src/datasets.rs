//! The three evaluation data sets, as synthetic stand-ins.
//!
//! Substitution rationale (DESIGN.md §5): the paper's artifacts are real
//! gcc/emacs releases and a 2001 web crawl; synchronization cost depends
//! only on the corpus *statistics* — file count, size distribution,
//! fraction of files changed, and the edit process — all of which these
//! constructors reproduce and document. Every generator is deterministic
//! given its seed.

use crate::edits::{apply_edits, EditProfile};
use crate::rng::Rng;
use crate::text::{html_page, lognormal_size, source_file};
use crate::versioned::{Collection, VersionedCollection};

/// Parameters of a source-tree release pair.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseParams {
    /// Number of files in the old release.
    pub files: usize,
    /// Median file size in bytes (sizes are log-normal around this).
    pub median_size: usize,
    /// Fraction of files touched by the release.
    pub change_fraction: f64,
    /// Edit process for touched files.
    pub profile: EditProfile,
    /// Fraction of files added in the new release.
    pub add_fraction: f64,
    /// Fraction of files removed in the new release.
    pub remove_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

/// gcc 2.7.0 → 2.7.1 stand-in: ~1000 files, ~27 MB, a *minor* release —
/// around half the files untouched and touched files edited lightly and
/// locally. `scale` shrinks the file count for quick runs (1.0 = full).
pub fn gcc_like(scale: f64) -> ReleaseParams {
    ReleaseParams {
        files: ((1002.0 * scale) as usize).max(2),
        median_size: 14_000, // log-normal with this median ≈ 27 KB mean
        change_fraction: 0.45,
        profile: EditProfile::minor_release(),
        add_fraction: 0.01,
        remove_fraction: 0.005,
        seed: 0xD00D_0001,
    }
}

/// emacs 19.28 → 19.29 stand-in: a *bigger* release — the paper's emacs
/// costs run ~5–8× its gcc costs — so more files touched, heavier and
/// more dispersed edits, more files added/removed.
pub fn emacs_like(scale: f64) -> ReleaseParams {
    ReleaseParams {
        files: ((1286.0 * scale) as usize).max(2),
        median_size: 12_000,
        change_fraction: 0.85,
        profile: EditProfile::major_release(),
        add_fraction: 0.04,
        remove_fraction: 0.02,
        seed: 0xD00D_0002,
    }
}

/// Build the (old, new) release pair.
pub fn release_pair(p: &ReleaseParams) -> VersionedCollection {
    let mut rng = Rng::seed_from_u64(p.seed);
    let mut old = Collection::new();
    for i in 0..p.files {
        let size = lognormal_size(&mut rng, p.median_size, 1.1, 400, 400_000);
        old.push(format!("src/file_{i:04}.c"), source_file(&mut rng, size));
    }
    let mut new = Collection::new();
    for f in old.files() {
        if rng.gen_bool(p.remove_fraction) {
            continue; // file deleted in the new release
        }
        let data = if rng.gen_bool(p.change_fraction) {
            apply_edits(&f.data, &p.profile, &mut rng)
        } else {
            f.data.clone()
        };
        new.push(f.name.clone(), data);
    }
    let added = (p.files as f64 * p.add_fraction) as usize;
    for i in 0..added {
        let size = lognormal_size(&mut rng, p.median_size, 1.1, 400, 400_000);
        new.push(format!("src/new_{i:04}.c"), source_file(&mut rng, size));
    }
    VersionedCollection { versions: vec![old, new] }
}

/// Parameters of the web-collection churn model.
#[derive(Debug, Clone, Copy)]
pub struct WebParams {
    /// Number of pages (paper: 10,000).
    pub pages: usize,
    /// Median page size (paper: ~15 KB mean).
    pub median_size: usize,
    /// Probability a page changes on a given day ("some of the files are
    /// not updated at all between crawls, while others change only
    /// slightly").
    pub daily_change_prob: f64,
    /// Probability a changing page is fully rewritten.
    pub rewrite_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The paper's crawl: 10,000 random pages, base + snapshots 1, 2 and 7
/// days later. `scale` shrinks the page count for quick runs.
pub fn web_params(scale: f64) -> WebParams {
    WebParams {
        pages: ((10_000.0 * scale) as usize).max(2),
        median_size: 11_000, // log-normal median giving ≈15 KB mean
        daily_change_prob: 0.16,
        rewrite_prob: 0.012,
        seed: 0xFEED_2001,
    }
}

/// Build the base crawl plus snapshots after each of `days` consecutive
/// days of churn (versions[0] = base, versions[k] = day k).
pub fn web_collection(p: &WebParams, days: u32) -> VersionedCollection {
    let mut rng = Rng::seed_from_u64(p.seed);
    let mut base = Collection::new();
    for i in 0..p.pages {
        let size = lognormal_size(&mut rng, p.median_size, 0.9, 600, 200_000);
        base.push(format!("www/page_{i:05}.html"), html_page(&mut rng, size, 0));
    }
    let mut versions = vec![base];
    for day in 1..=days {
        let prev = versions.last().expect("at least the base");
        let mut next = Collection::new();
        for f in prev.files() {
            let data = if rng.gen_bool(p.daily_change_prob) {
                if rng.gen_bool(p.rewrite_prob / p.daily_change_prob.max(1e-9)) {
                    // Full rewrite: a new page at the same URL.
                    let size = lognormal_size(&mut rng, p.median_size, 0.9, 600, 200_000);
                    html_page(&mut rng, size, day)
                } else {
                    apply_edits(&f.data, &EditProfile::web_touch(), &mut rng)
                }
            } else {
                f.data.clone()
            };
            next.push(f.name.clone(), data);
        }
        versions.push(next);
    }
    VersionedCollection { versions }
}

/// Parameters of the nightly-recrawl churn model: what a crawler's
/// output directory looks like night over night. Unlike the daily
/// [`web_collection`] drift (small in-place edits), a recrawl rewrites
/// a slice of pages wholesale — the crawler fetched a new copy — and
/// adds and drops a few URLs at the frontier.
#[derive(Debug, Clone, Copy)]
pub struct RecrawlParams {
    /// Number of pages in the base crawl.
    pub pages: usize,
    /// Median page size in bytes (sizes are log-normal around this).
    pub median_size: usize,
    /// Fraction of surviving pages fully rewritten each night (~10%).
    pub rewrite_fraction: f64,
    /// Fraction of pages newly discovered each night.
    pub add_fraction: f64,
    /// Fraction of pages that vanish each night.
    pub remove_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The nightly-recrawl defaults: ~10% of pages rewritten per night,
/// about 1% added and 1% removed — the profile the daemon's registry
/// reload is built for (most files byte-identical across a swap, so a
/// shared hash cache stays warm). `scale` shrinks the page count.
pub fn recrawl_params(scale: f64) -> RecrawlParams {
    RecrawlParams {
        pages: ((10_000.0 * scale) as usize).max(2),
        median_size: 11_000,
        rewrite_fraction: 0.10,
        add_fraction: 0.012,
        remove_fraction: 0.010,
        seed: 0xFEED_2002,
    }
}

/// Build the base crawl plus one snapshot per night (versions[0] =
/// base, versions[k] = after night k). Deterministic per seed.
pub fn nightly_recrawl(p: &RecrawlParams, nights: u32) -> VersionedCollection {
    let mut rng = Rng::seed_from_u64(p.seed);
    let mut base = Collection::new();
    for i in 0..p.pages {
        let size = lognormal_size(&mut rng, p.median_size, 0.9, 600, 200_000);
        base.push(format!("crawl/page_{i:05}.html"), html_page(&mut rng, size, 0));
    }
    let mut versions = vec![base];
    for night in 1..=nights {
        let prev = versions.last().expect("at least the base");
        let mut next = Collection::new();
        for f in prev.files() {
            if rng.gen_bool(p.remove_fraction) {
                continue; // URL gone from tonight's crawl
            }
            let data = if rng.gen_bool(p.rewrite_fraction) {
                // The crawler fetched a fresh copy: a whole new page
                // at the same URL, not an edit of the old bytes.
                let size = lognormal_size(&mut rng, p.median_size, 0.9, 600, 200_000);
                html_page(&mut rng, size, night)
            } else {
                f.data.clone()
            };
            next.push(f.name.clone(), data);
        }
        let added = ((p.pages as f64) * p.add_fraction) as usize;
        for i in 0..added {
            let size = lognormal_size(&mut rng, p.median_size, 0.9, 600, 200_000);
            next.push(
                format!("crawl/night{night}_new_{i:04}.html"),
                html_page(&mut rng, size, night),
            );
        }
        versions.push(next);
    }
    VersionedCollection { versions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edits::novelty;

    #[test]
    fn gcc_like_statistics() {
        let pair = release_pair(&gcc_like(0.05)); // 50 files
        let (old, new) = (&pair.versions[0], &pair.versions[1]);
        assert_eq!(old.files().len(), 50);
        // Roughly half unchanged.
        let unchanged = new
            .files()
            .iter()
            .filter(|f| old.get(&f.name).is_some_and(|o| o.data == f.data))
            .count();
        let frac = unchanged as f64 / new.files().len() as f64;
        assert!((0.3..0.8).contains(&frac), "unchanged fraction {frac}");
    }

    #[test]
    fn emacs_like_changes_more_than_gcc() {
        let g = release_pair(&gcc_like(0.05));
        let e = release_pair(&emacs_like(0.05));
        let total_novelty = |vc: &VersionedCollection| -> f64 {
            let (old, new) = (&vc.versions[0], &vc.versions[1]);
            new.files()
                .iter()
                .filter_map(|f| old.get(&f.name).map(|o| novelty(&o.data, &f.data)))
                .sum::<f64>()
        };
        assert!(total_novelty(&e) > total_novelty(&g) * 2.0);
    }

    #[test]
    fn web_collection_mostly_stable_daily() {
        let vc = web_collection(&web_params(0.01), 2); // 100 pages, 2 days
        assert_eq!(vc.versions.len(), 3);
        let (d0, d1) = (&vc.versions[0], &vc.versions[1]);
        let unchanged =
            d1.files().iter().filter(|f| d0.get(&f.name).is_some_and(|o| o.data == f.data)).count();
        let frac = unchanged as f64 / d1.files().len() as f64;
        assert!(frac > 0.7, "daily unchanged fraction {frac}");
    }

    #[test]
    fn multi_day_drift_accumulates() {
        let vc = web_collection(&web_params(0.01), 7);
        let changed_after = |k: usize| {
            vc.versions[k]
                .files()
                .iter()
                .filter(|f| vc.versions[0].get(&f.name).is_some_and(|o| o.data != f.data))
                .count()
        };
        assert!(changed_after(7) > changed_after(1));
    }

    #[test]
    fn deterministic_datasets() {
        let a = release_pair(&gcc_like(0.02));
        let b = release_pair(&gcc_like(0.02));
        assert_eq!(a.versions[1].files(), b.versions[1].files());
    }

    #[test]
    fn nightly_recrawl_rewrites_about_a_tenth() {
        let vc = nightly_recrawl(&recrawl_params(0.05), 1); // 500 pages
        let (base, night) = (&vc.versions[0], &vc.versions[1]);
        let survivors: Vec<_> =
            night.files().iter().filter(|f| base.get(&f.name).is_some()).collect();
        let rewritten = survivors
            .iter()
            .filter(|f| base.get(&f.name).is_some_and(|o| o.data != f.data))
            .count();
        let frac = rewritten as f64 / survivors.len() as f64;
        assert!((0.05..0.18).contains(&frac), "rewrite fraction {frac}");
        // Rewrites are replacements, not edits: every changed survivor
        // is near-total novelty against its old bytes.
        for f in survivors.iter().filter(|f| base.get(&f.name).is_some_and(|o| o.data != f.data)) {
            let old = &base.get(&f.name).expect("survivor").data;
            assert!(novelty(old, &f.data) > 0.5, "{} barely changed", f.name);
        }
    }

    #[test]
    fn nightly_recrawl_adds_and_removes_a_few() {
        let vc = nightly_recrawl(&recrawl_params(0.05), 1); // 500 pages
        let (base, night) = (&vc.versions[0], &vc.versions[1]);
        let added = night.files().iter().filter(|f| base.get(&f.name).is_none()).count();
        let removed = base.files().iter().filter(|f| night.get(&f.name).is_none()).count();
        assert!((1..=25).contains(&added), "added {added}");
        assert!((1..=25).contains(&removed), "removed {removed}");
    }

    #[test]
    fn nightly_recrawl_is_deterministic_across_nights() {
        let a = nightly_recrawl(&recrawl_params(0.02), 3);
        let b = nightly_recrawl(&recrawl_params(0.02), 3);
        assert_eq!(a.versions.len(), 4);
        for (va, vb) in a.versions.iter().zip(&b.versions) {
            assert_eq!(va.files(), vb.files());
        }
    }
}
