//! Versioned collections: a named set of files plus its later versions.

/// One named file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct File {
    /// Collection-relative path.
    pub name: String,
    /// Contents.
    pub data: Vec<u8>,
}

/// A set of named files (one version of a collection).
///
/// Lookups by name are O(1): the collection keeps a name index, so the
/// bench harness's per-file baseline loops stay linear in collection
/// size even at the paper's 10,000-page scale.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    files: Vec<File>,
    index: std::collections::HashMap<String, usize>,
}

impl PartialEq for Collection {
    fn eq(&self, other: &Self) -> bool {
        self.files == other.files
    }
}

impl Eq for Collection {}

impl Collection {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a file. A later push with the same name shadows the earlier
    /// file in lookups (but both remain in `files()`); generators never
    /// produce duplicates.
    pub fn push(&mut self, name: impl Into<String>, data: Vec<u8>) {
        let name = name.into();
        self.index.insert(name.clone(), self.files.len());
        self.files.push(File { name, data });
    }

    /// All files, in insertion order.
    pub fn files(&self) -> &[File] {
        &self.files
    }

    /// Find a file by name in O(1).
    pub fn get(&self, name: &str) -> Option<&File> {
        self.index.get(name).map(|&i| &self.files[i])
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.data.len() as u64).sum()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the collection has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// A base collection plus one entry per later snapshot.
#[derive(Debug, Clone)]
pub struct VersionedCollection {
    /// `versions[0]` is the base; `versions[k]` the k-th update.
    pub versions: Vec<Collection>,
}

impl VersionedCollection {
    /// The (old, new) pair for updating version `from` to version `to`.
    pub fn pair(&self, from: usize, to: usize) -> (&Collection, &Collection) {
        (&self.versions[from], &self.versions[to])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_basics() {
        let mut c = Collection::new();
        assert!(c.is_empty());
        c.push("a", vec![1, 2, 3]);
        c.push("b", vec![4]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_bytes(), 4);
        assert_eq!(c.get("a").unwrap().data, vec![1, 2, 3]);
        assert!(c.get("zzz").is_none());
    }

    #[test]
    fn versioned_pair() {
        let mut base = Collection::new();
        base.push("x", vec![0]);
        let mut next = Collection::new();
        next.push("x", vec![1]);
        let vc = VersionedCollection { versions: vec![base, next] };
        let (old, new) = vc.pair(0, 1);
        assert_eq!(old.get("x").unwrap().data, vec![0]);
        assert_eq!(new.get("x").unwrap().data, vec![1]);
    }
}
