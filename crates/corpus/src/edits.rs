//! Edit models: how one version becomes the next.
//!
//! The cost of file synchronization is governed by the *number, size, and
//! clustering* of edits between versions (paper §2.3: "the location of
//! changes in the file is also important ... if all changes are clustered
//! in a few areas of the file, rsync will do well even with a large block
//! size"). [`EditProfile`] parameterizes exactly those quantities and
//! [`apply_edits`] produces the next version, operating on lines so edits
//! look like real source/markup edits.

use crate::rng::Rng;
use crate::text::source_line;

/// Parameters of the per-file edit process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EditProfile {
    /// Expected number of edit clusters per file touched.
    pub clusters: f64,
    /// Lines affected per cluster, drawn from `1..=cluster_span`.
    pub cluster_span: usize,
    /// Probability a cluster inserts new lines instead of replacing.
    pub insert_prob: f64,
    /// Probability a cluster deletes lines instead of replacing.
    pub delete_prob: f64,
    /// Probability of one block move (cut a run of lines, paste
    /// elsewhere) per touched file.
    pub move_prob: f64,
}

impl EditProfile {
    /// Small, clustered edits typical of a minor release (gcc 2.7.0 →
    /// 2.7.1 changed few files, lightly).
    pub fn minor_release() -> Self {
        Self {
            clusters: 2.5,
            cluster_span: 6,
            insert_prob: 0.25,
            delete_prob: 0.2,
            move_prob: 0.05,
        }
    }

    /// Heavier, more dispersed edits (emacs 19.28 → 19.29 was a bigger
    /// release: the paper's emacs deltas are ~5–8× its gcc deltas).
    pub fn major_release() -> Self {
        Self {
            clusters: 14.0,
            cluster_span: 10,
            insert_prob: 0.3,
            delete_prob: 0.25,
            move_prob: 0.15,
        }
    }

    /// Web-page recrawl churn: a couple of tiny localized changes (date,
    /// counter, a rotated item).
    pub fn web_touch() -> Self {
        Self {
            clusters: 2.0,
            cluster_span: 3,
            insert_prob: 0.3,
            delete_prob: 0.25,
            move_prob: 0.02,
        }
    }
}

/// Apply one round of edits to `data`, producing the next version.
/// Deterministic given the RNG state.
///
/// The edit model is *textual*: input is interpreted as UTF-8 lines
/// (lossily — invalid sequences become U+FFFD), which is the right
/// model for the source/markup corpora this crate generates. Do not
/// feed binary files through it.
pub fn apply_edits(data: &[u8], profile: &EditProfile, rng: &mut Rng) -> Vec<u8> {
    let text = String::from_utf8_lossy(data);
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    if lines.is_empty() {
        lines.push(String::new());
    }

    // Poisson-ish cluster count: sum of Bernoulli trials is close enough
    // for our purposes and keeps the dependency surface small.
    let n_clusters = sample_count(rng, profile.clusters);
    for _ in 0..n_clusters {
        if lines.is_empty() {
            break;
        }
        let at = rng.gen_range(0..lines.len());
        let span = rng.gen_range(1..=profile.cluster_span).min(lines.len() - at);
        let roll: f64 = rng.gen_f64();
        if roll < profile.delete_prob {
            lines.drain(at..at + span);
        } else if roll < profile.delete_prob + profile.insert_prob {
            let fresh: Vec<String> = (0..span).map(|_| source_line(rng, 1)).collect();
            lines.splice(at..at, fresh);
        } else {
            for line in lines.iter_mut().skip(at).take(span) {
                *line = source_line(rng, 1);
            }
        }
    }

    if rng.gen_bool(profile.move_prob) && lines.len() > 8 {
        let span = rng.gen_range(2..=(lines.len() / 4).max(2));
        let from = rng.gen_range(0..lines.len() - span);
        let cut: Vec<String> = lines.drain(from..from + span).collect();
        let to = rng.gen_range(0..=lines.len());
        lines.splice(to..to, cut);
    }

    let mut out = lines.join("\n").into_bytes();
    out.push(b'\n');
    out
}

/// Expected-value `mean` count: `floor(mean)` plus one with the
/// fractional probability.
fn sample_count(rng: &mut Rng, mean: f64) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - mean.floor();
    base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

/// Byte-level edit distance proxy: fraction of the new version's 16-byte
/// shingles absent from the old version. Tests use this to check that
/// profiles have the intended intensity ordering.
pub fn novelty(old: &[u8], new: &[u8]) -> f64 {
    use std::collections::HashSet;
    if new.len() < 16 {
        return if old == new { 0.0 } else { 1.0 };
    }
    let old_shingles: HashSet<&[u8]> = old.windows(16).collect();
    let total = new.len() - 15;
    let fresh = new.windows(16).filter(|w| !old_shingles.contains(w)).count();
    fresh as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::source_file;

    #[test]
    fn edits_are_deterministic() {
        let base = source_file(&mut Rng::seed_from_u64(1), 10_000);
        let a = apply_edits(&base, &EditProfile::minor_release(), &mut Rng::seed_from_u64(2));
        let b = apply_edits(&base, &EditProfile::minor_release(), &mut Rng::seed_from_u64(2));
        assert_eq!(a, b);
    }

    #[test]
    fn minor_edits_are_small() {
        let base = source_file(&mut Rng::seed_from_u64(3), 30_000);
        let mut rng = Rng::seed_from_u64(4);
        let edited = apply_edits(&base, &EditProfile::minor_release(), &mut rng);
        let nov = novelty(&base, &edited);
        assert!(nov < 0.12, "minor release novelty too high: {nov}");
        assert!(nov > 0.0, "edit must change something");
    }

    #[test]
    fn major_edits_bigger_than_minor() {
        let base = source_file(&mut Rng::seed_from_u64(5), 30_000);
        let minor: f64 = (0..5)
            .map(|i| {
                novelty(
                    &base,
                    &apply_edits(
                        &base,
                        &EditProfile::minor_release(),
                        &mut Rng::seed_from_u64(100 + i),
                    ),
                )
            })
            .sum::<f64>()
            / 5.0;
        let major: f64 = (0..5)
            .map(|i| {
                novelty(
                    &base,
                    &apply_edits(
                        &base,
                        &EditProfile::major_release(),
                        &mut Rng::seed_from_u64(200 + i),
                    ),
                )
            })
            .sum::<f64>()
            / 5.0;
        assert!(major > minor * 2.0, "major {major} should dwarf minor {minor}");
    }

    #[test]
    fn empty_input_survives() {
        let out = apply_edits(b"", &EditProfile::minor_release(), &mut Rng::seed_from_u64(6));
        // Must produce something valid, not panic.
        assert!(out.ends_with(b"\n"));
    }

    #[test]
    fn novelty_bounds() {
        assert_eq!(novelty(b"same", b"same"), 0.0);
        assert_eq!(novelty(b"a", b"b"), 1.0);
        let base = source_file(&mut Rng::seed_from_u64(7), 5000);
        assert_eq!(novelty(&base, &base), 0.0);
    }
}
