//! Synthetic data sets with the statistical shape of the paper's
//! evaluation corpora.
//!
//! The paper evaluates on gcc 2.7.0→2.7.1 and emacs 19.28→19.29 source
//! trees and on 10,000 web pages recrawled nightly in Fall 2001 — real
//! artifacts this reproduction cannot ship. Synchronization cost is a
//! function of corpus statistics (file count, size distribution, change
//! fraction, edit clustering), so [`datasets`] regenerates corpora with
//! those statistics, deterministic per seed; DESIGN.md §5 documents each
//! substitution. [`fsload`] loads real directory pairs for users who
//! have them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod datasets;
pub mod edits;
pub mod fsload;
pub mod rng;
pub mod text;
pub mod versioned;

pub use datasets::{
    emacs_like, gcc_like, nightly_recrawl, recrawl_params, release_pair, web_collection,
    web_params, RecrawlParams, ReleaseParams, WebParams,
};
pub use edits::{apply_edits, novelty, EditProfile};
pub use rng::Rng;
pub use versioned::{Collection, File, VersionedCollection};
