//! End-to-end synchronization throughput: msync (all techniques and
//! basic) against the rsync baseline on one minor-release file pair.
//! Wire costs are the experiments' business (`exp` binary); these
//! benches track raw protocol CPU speed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use msync_core::{sync_file, ProtocolConfig};
use msync_corpus::{apply_edits, EditProfile};
use msync_corpus::Rng;
use std::hint::black_box;

fn pair(n: usize) -> (Vec<u8>, Vec<u8>) {
    let old = msync_corpus::text::source_file(&mut Rng::seed_from_u64(11), n);
    let new = apply_edits(&old, &EditProfile::minor_release(), &mut Rng::seed_from_u64(12));
    (old, new)
}

fn bench_sync(c: &mut Criterion) {
    let (old, new) = pair(1 << 17);
    let mut group = c.benchmark_group("sync_128KiB_minor_edit");
    group.throughput(Throughput::Bytes(new.len() as u64));
    group.sample_size(20);
    let full = ProtocolConfig::default();
    group.bench_function("msync_all_techniques", |b| {
        b.iter(|| black_box(sync_file(&old, &new, &full).unwrap()))
    });
    let basic = ProtocolConfig::basic(64);
    group.bench_function("msync_basic", |b| {
        b.iter(|| black_box(sync_file(&old, &new, &basic).unwrap()))
    });
    group.bench_function("rsync_700", |b| b.iter(|| black_box(msync_rsync::sync(&old, &new, 700))));
    group.finish();
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);
