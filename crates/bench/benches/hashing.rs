//! Throughput of the hash primitives — the CPU-side cost the paper's §7
//! flags as the next bottleneck ("for faster networks and highly
//! redundant data sets, CPU performance would currently be a
//! bottleneck").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msync_hash::rolling::scan_rolling;
use msync_hash::{DecomposableAdler, Md4, Md5, RabinHash, RsyncRolling};
use std::hint::black_box;

fn data(n: usize) -> Vec<u8> {
    let mut state = 0x0123_4567_89AB_CDEFu64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 56) as u8
        })
        .collect()
}

fn bench_rolling_scan(c: &mut Criterion) {
    let input = data(1 << 20);
    let mut group = c.benchmark_group("rolling_scan_1MiB_window256");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("rsync_adler", |b| {
        b.iter(|| {
            let mut h = RsyncRolling::new();
            let mut acc = 0u64;
            scan_rolling(&mut h, &input, 256, |_, v| acc ^= v);
            black_box(acc)
        })
    });
    group.bench_function("decomposable_adler", |b| {
        b.iter(|| {
            let mut h = DecomposableAdler::new();
            let mut acc = 0u64;
            scan_rolling(&mut h, &input, 256, |_, v| acc ^= v);
            black_box(acc)
        })
    });
    group.bench_function("rabin_karp", |b| {
        b.iter(|| {
            let mut h = RabinHash::new();
            let mut acc = 0u64;
            scan_rolling(&mut h, &input, 256, |_, v| acc ^= v);
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_strong_digests(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_digest");
    for size in [64usize, 4096, 1 << 16] {
        let input = data(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("md4", size), &input, |b, input| {
            b.iter(|| black_box(Md4::digest(input)))
        });
        group.bench_with_input(BenchmarkId::new("md5", size), &input, |b, input| {
            b.iter(|| black_box(Md5::digest(input)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rolling_scan, bench_strong_digests);
criterion_main!(benches);
