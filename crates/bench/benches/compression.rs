//! Compression substrate throughput and ratios: the gzip-like stream
//! coder and both delta coders.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use msync_corpus::{apply_edits, EditProfile};
use msync_corpus::Rng;
use std::hint::black_box;

fn source(n: usize, seed: u64) -> Vec<u8> {
    msync_corpus::text::source_file(&mut Rng::seed_from_u64(seed), n)
}

fn bench_stream_compress(c: &mut Criterion) {
    let input = source(1 << 18, 1);
    let mut group = c.benchmark_group("lz_stream_256KiB_source");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("compress", |b| b.iter(|| black_box(msync_compress::compress(&input))));
    let compressed = msync_compress::compress(&input);
    group.bench_function("decompress", |b| {
        b.iter(|| black_box(msync_compress::decompress(&compressed).unwrap()))
    });
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let reference = source(1 << 17, 2);
    let target = apply_edits(&reference, &EditProfile::minor_release(), &mut Rng::seed_from_u64(3));
    let mut group = c.benchmark_group("delta_128KiB_minor_edit");
    group.throughput(Throughput::Bytes(target.len() as u64));
    group.bench_function("zdelta_encode", |b| {
        b.iter(|| black_box(msync_compress::delta_encode(&reference, &target)))
    });
    let delta = msync_compress::delta_encode(&reference, &target);
    group.bench_function("zdelta_decode", |b| {
        b.iter(|| black_box(msync_compress::delta_decode(&reference, &delta).unwrap()))
    });
    group.bench_function("vcdiff_encode", |b| {
        b.iter(|| black_box(msync_compress::vcdiff_encode(&reference, &target)))
    });
    group.finish();
}

criterion_group!(benches, bench_stream_compress, bench_delta);
criterion_main!(benches);
