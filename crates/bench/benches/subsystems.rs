//! Throughput of the extension subsystems: CDC chunking and sync,
//! in-place reconstruction, and changed-file reconciliation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use msync_cdc::ChunkParams;
use msync_corpus::{apply_edits, EditProfile};
use msync_corpus::Rng;
use std::hint::black_box;

fn source(n: usize, seed: u64) -> Vec<u8> {
    msync_corpus::text::source_file(&mut Rng::seed_from_u64(seed), n)
}

fn bench_cdc(c: &mut Criterion) {
    let data = source(1 << 20, 21);
    let params = ChunkParams::default();
    let mut group = c.benchmark_group("cdc_1MiB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("chunk", |b| b.iter(|| black_box(msync_cdc::chunk(&data, &params))));
    let old = source(1 << 18, 22);
    let new = apply_edits(&old, &EditProfile::minor_release(), &mut Rng::seed_from_u64(23));
    group.throughput(Throughput::Bytes(new.len() as u64));
    group.bench_function("sync_256KiB_minor_edit", |b| {
        b.iter(|| black_box(msync_cdc::sync(&old, &new, &params)))
    });
    group.finish();
}

fn bench_inplace(c: &mut Criterion) {
    let old = source(1 << 18, 31);
    // Swap the halves: worst case, every copy is in a cycle.
    let half = old.len() / 2;
    let new = [&old[half..], &old[..half]].concat();
    let sigs = msync_rsync::Signatures::compute(&old, 2048);
    let tokens = msync_rsync::matcher::match_tokens(&new, &sigs);
    let mut group = c.benchmark_group("inplace_256KiB_half_swap");
    group.throughput(Throughput::Bytes(new.len() as u64));
    // NOTE: each iteration clones the 256 KiB buffer; the reported
    // throughput includes that memcpy.
    group.bench_function("clone_plus_apply_inplace", |b| {
        b.iter(|| {
            let mut buf = old.clone();
            msync_rsync::inplace::apply_inplace(&mut buf, &sigs, &tokens).unwrap();
            black_box(buf)
        })
    });
    group.finish();
}

fn bench_recon(c: &mut Criterion) {
    use msync_recon::{canonicalize, Item};
    let mut a: Vec<Item> = (0..4096)
        .map(|i| Item {
            name: format!("dir{:02}/f{i:05}", i % 31),
            fp: msync_hash::file_fingerprint(format!("c{i}").as_bytes()),
        })
        .collect();
    canonicalize(&mut a);
    let mut b = a.clone();
    b[1000].fp = msync_hash::file_fingerprint(b"changed");
    let mut group = c.benchmark_group("recon_4096_files_1_change");
    group.bench_function("merkle", |bch| {
        bch.iter(|| black_box(msync_recon::merkle::reconcile(&a, &b)))
    });
    group.bench_function("group_testing", |bch| {
        bch.iter(|| black_box(msync_recon::group_testing::reconcile(&a, &b)))
    });
    group.finish();
}

criterion_group!(benches, bench_cdc, bench_inplace, bench_recon);
criterion_main!(benches);
