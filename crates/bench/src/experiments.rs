//! The paper's evaluation, experiment by experiment.
//!
//! Each function regenerates one figure or table as a generic
//! [`Report`] (rows × columns of costs) that the `exp` binary prints.
//! Costs are in KB like the paper's; absolute values differ from the
//! 2003 testbed (synthetic corpora, different compressor builds) but the
//! *shapes* — who wins, by what factor, where the optima sit — are the
//! reproduction targets, recorded in EXPERIMENTS.md.

use crate::cost::{measure, Method};
use msync_core::{BatchConfig, ProtocolConfig, VerifyStrategy};
use msync_corpus::{
    emacs_like, gcc_like, release_pair, web_collection, web_params, Collection,
};
use serde::Serialize;

/// A rendered experiment: a title, column headers, and labeled rows.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Which figure/table this regenerates.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Rows: label + one cell per column.
    pub rows: Vec<ReportRow>,
    /// Free-form notes (corpus scale, shape checks).
    pub notes: Vec<String>,
}

/// One labeled row.
#[derive(Debug, Clone, Serialize)]
pub struct ReportRow {
    /// Row label.
    pub label: String,
    /// Cell values.
    pub cells: Vec<String>,
}

impl Report {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in std::iter::once(&row.label).chain(&row.cells).enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("== {}: {} ==\n", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = std::iter::once(&row.label)
                .chain(&row.cells)
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// The minimum block sizes Figures 6.1/6.2 sweep.
pub const MIN_BLOCK_SWEEP: &[usize] = &[8, 16, 32, 64, 128, 256];

/// Figures 6.1 and 6.2: the basic protocol (recursive halving +
/// decomposable hashes + per-candidate verification) vs minimum block
/// size, against rsync (default and optimal) and zdelta.
pub fn fig6_basic(which: &str, scale: f64) -> Report {
    let (params, id, name) = match which {
        "gcc" => (gcc_like(scale), "fig6-1", "gcc data set"),
        _ => (emacs_like(scale), "fig6-2", "emacs data set"),
    };
    let pair = release_pair(&params);
    let (old, new) = pair.pair(0, 1);

    let mut rows = Vec::new();
    let mut best: Option<(usize, u64)> = None;
    for &min_block in MIN_BLOCK_SWEEP {
        let cfg = ProtocolConfig::basic(min_block);
        let c = measure(old, new, &Method::Msync(cfg));
        if best.is_none_or(|(_, b)| c.total() < b) {
            best = Some((min_block, c.total()));
        }
        rows.push(ReportRow {
            label: format!("msync basic, min={min_block}"),
            cells: vec![kb(c.map_s2c), kb(c.map_c2s), kb(c.delta + c.setup), kb(c.total()), c.roundtrips.to_string()],
        });
    }
    for method in [Method::Rsync(None), Method::RsyncOptimal, Method::Zdelta] {
        let c = measure(old, new, &method);
        rows.push(ReportRow {
            label: method.label(),
            cells: vec![kb(c.map_s2c), kb(c.map_c2s), kb(c.delta + c.setup), kb(c.total()), c.roundtrips.to_string()],
        });
    }
    let (best_min, _) = best.expect("sweep non-empty");
    Report {
        id: id.into(),
        title: format!("basic protocol vs minimum block size, {name}"),
        columns: ["config", "map s→c KB", "map c→s KB", "delta+setup KB", "total KB", "rt"]
            .map(String::from)
            .to_vec(),
        rows,
        notes: vec![
            format!("corpus scale {scale} ({} files, {} KB)", new.len(), new.total_bytes() / 1024),
            format!("best minimum block size: {best_min}"),
        ],
    }
}

/// The continuation-hash minimum block sizes Figure 6.3 sweeps.
pub const CONT_SWEEP: &[usize] = &[64, 32, 16, 8];

/// Figure 6.3: adding continuation hashes of various minimum block
/// sizes; the leftmost bar is group verification without continuation.
pub fn fig6_3(scale: f64) -> Report {
    let pair = release_pair(&gcc_like(scale));
    let (old, new) = pair.pair(0, 1);

    let group_verify = VerifyStrategy::GroupTesting {
        batches: vec![BatchConfig { group_size: 4, bits: 20 }, BatchConfig { group_size: 1, bits: 20 }],
    };
    let mut rows = Vec::new();
    for &min_global in &[64usize, 128] {
        let mut cells = Vec::new();
        // Leftmost bar: no continuation, group verification.
        let cfg = ProtocolConfig {
            min_block_global: min_global,
            min_block_cont: min_global,
            use_continuation: false,
            verify: group_verify.clone(),
            ..ProtocolConfig::default()
        };
        cells.push(kb(measure(old, new, &Method::Msync(cfg)).total()));
        for &min_cont in CONT_SWEEP {
            let cfg = ProtocolConfig {
                min_block_global: min_global,
                min_block_cont: min_cont,
                use_continuation: true,
                verify: group_verify.clone(),
                ..ProtocolConfig::default()
            };
            cells.push(kb(measure(old, new, &Method::Msync(cfg)).total()));
        }
        rows.push(ReportRow { label: format!("global min={min_global}"), cells });
    }
    Report {
        id: "fig6-3".into(),
        title: "continuation hashes vs their minimum block size (gcc), total KB".into(),
        columns: ["config", "no cont", "cont=64", "cont=32", "cont=16", "cont=8"]
            .map(String::from)
            .to_vec(),
        rows,
        notes: vec![format!("corpus scale {scale}")],
    }
}

/// Figure 6.4: match-verification strategies on gcc.
pub fn fig6_4(scale: f64) -> Report {
    let pair = release_pair(&gcc_like(scale));
    let (old, new) = pair.pair(0, 1);

    let strategies: Vec<(&str, VerifyStrategy)> = vec![
        ("trivial 32-bit per candidate", VerifyStrategy::PerCandidate { bits: 32 }),
        ("16-bit per candidate", VerifyStrategy::PerCandidate { bits: 16 }),
        (
            "groups, 1 verify roundtrip",
            VerifyStrategy::GroupTesting { batches: vec![BatchConfig { group_size: 4, bits: 16 }] },
        ),
        (
            "groups, 2 verify roundtrips",
            VerifyStrategy::GroupTesting {
                batches: vec![
                    BatchConfig { group_size: 4, bits: 14 },
                    BatchConfig { group_size: 1, bits: 16 },
                ],
            },
        ),
        (
            "groups, 3 verify roundtrips",
            VerifyStrategy::GroupTesting {
                batches: vec![
                    BatchConfig { group_size: 6, bits: 12 },
                    BatchConfig { group_size: 3, bits: 14 },
                    BatchConfig { group_size: 1, bits: 16 },
                ],
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, verify) in strategies {
        let cfg = ProtocolConfig { verify, ..ProtocolConfig::default() };
        let c = measure(old, new, &Method::Msync(cfg));
        rows.push(ReportRow {
            label: label.into(),
            cells: vec![kb(c.map_c2s), kb(c.total()), c.roundtrips.to_string()],
        });
    }
    Report {
        id: "fig6-4".into(),
        title: "match verification strategies (gcc)".into(),
        columns: ["strategy", "verify c→s KB", "total KB", "rt"].map(String::from).to_vec(),
        rows,
        notes: vec![format!("corpus scale {scale}")],
    }
}

/// Table 6.1: best results for gcc and emacs using all techniques.
pub fn table6_1(scale: f64) -> Report {
    let gcc = release_pair(&gcc_like(scale));
    let emacs = release_pair(&emacs_like(scale));
    let corpora: Vec<(&str, &Collection, &Collection)> = vec![
        ("gcc", &gcc.versions[0], &gcc.versions[1]),
        ("emacs", &emacs.versions[0], &emacs.versions[1]),
    ];

    let methods: Vec<(String, Method)> = vec![
        ("rsync (default 700B)".into(), Method::Rsync(None)),
        ("rsync (optimal per file)".into(), Method::RsyncOptimal),
        ("msync basic (best min)".into(), Method::Msync(ProtocolConfig::basic(64))),
        ("msync all techniques".into(), Method::Msync(ProtocolConfig::all_techniques())),
        ("vcdiff (local bound)".into(), Method::Vcdiff),
        ("zdelta (local bound)".into(), Method::Zdelta),
    ];

    let mut rows: Vec<ReportRow> = methods
        .iter()
        .map(|(label, _)| ReportRow { label: label.clone(), cells: Vec::new() })
        .collect();
    let mut notes = Vec::new();
    for (name, old, new) in corpora {
        for (row, (_, method)) in rows.iter_mut().zip(&methods) {
            let c = measure(old, new, method);
            row.cells.push(kb(c.total()));
        }
        notes.push(format!(
            "{name}: {} files, {} KB total",
            new.len(),
            new.total_bytes() / 1024
        ));
    }
    notes.push(format!("corpus scale {scale}"));
    Report {
        id: "table6-1".into(),
        title: "best results, all techniques (total KB)".into(),
        columns: ["method", "gcc KB", "emacs KB"].map(String::from).to_vec(),
        rows,
        notes,
    }
}

/// The update intervals (days) of Table 6.2.
pub const WEB_INTERVALS: &[usize] = &[1, 2, 7];

/// Table 6.2: cost of updating the web collection after 1, 2 and 7 days,
/// for every method.
pub fn table6_2(scale: f64) -> Report {
    let params = web_params(scale);
    let vc = web_collection(&params, 7);

    let methods: Vec<Method> = vec![
        Method::Uncompressed,
        Method::Gzip,
        Method::Rsync(None),
        Method::RsyncOptimal,
        Method::Msync(ProtocolConfig::all_techniques()),
        Method::Zdelta,
    ];
    let mut rows: Vec<ReportRow> = methods
        .iter()
        .map(|m| ReportRow { label: m.label(), cells: Vec::new() })
        .collect();
    for &days in WEB_INTERVALS {
        let (old, new) = vc.pair(0, days);
        for (row, method) in rows.iter_mut().zip(&methods) {
            let c = measure(old, new, method);
            // Report scaled up to the paper's 10,000 pages.
            let scaled = (c.total() as f64 / scale) as u64;
            row.cells.push(kb(scaled));
        }
    }
    Report {
        id: "table6-2".into(),
        title: "web collection update cost, KB per 10,000 pages".into(),
        columns: ["method", "1 day", "2 days", "7 days"].map(String::from).to_vec(),
        rows,
        notes: vec![format!(
            "measured on {} pages (scale {scale}), scaled to 10,000; collection {} KB",
            params.pages,
            vc.versions[0].total_bytes() / 1024
        )],
    }
}

/// Extension (DESIGN.md §8): ablation of individual techniques on gcc —
/// what each one buys on top of / removed from the full configuration.
pub fn ablation(scale: f64) -> Report {
    let pair = release_pair(&gcc_like(scale));
    let (old, new) = pair.pair(0, 1);
    let full = ProtocolConfig::all_techniques();
    let variants: Vec<(&str, ProtocolConfig)> = vec![
        ("all techniques", full.clone()),
        ("− decomposable hashes", ProtocolConfig { use_decomposable: false, ..full.clone() }),
        ("− continuation hashes", ProtocolConfig { use_continuation: false, min_block_cont: full.min_block_global, ..full.clone() }),
        ("− sibling skip", ProtocolConfig { skip_sibling_of_matched: false, ..full.clone() }),
        ("+ local hashes", ProtocolConfig { use_local: true, ..full.clone() }),
        ("+ two-phase rounds (§5.4)", ProtocolConfig { cont_first_phase: true, ..full.clone() }),
        (
            "− group testing (16-bit per cand.)",
            ProtocolConfig { verify: VerifyStrategy::PerCandidate { bits: 16 }, ..full.clone() },
        ),
    ];
    let base_total = measure(old, new, &Method::Msync(full)).total();
    let mut rows = Vec::new();
    for (label, cfg) in variants {
        let c = measure(old, new, &Method::Msync(cfg));
        let delta_pct = 100.0 * (c.total() as f64 - base_total as f64) / base_total as f64;
        rows.push(ReportRow {
            label: label.into(),
            cells: vec![kb(c.total()), format!("{delta_pct:+.1}%"), c.roundtrips.to_string()],
        });
    }
    Report {
        id: "ablation".into(),
        title: "per-technique ablation (gcc), total KB".into(),
        columns: ["variant", "total KB", "vs full", "rt"].map(String::from).to_vec(),
        rows,
        notes: vec![format!("corpus scale {scale}")],
    }
}

/// Extension: the bandwidth/latency trade-off of roundtrip-restricted
/// protocols (paper §7: "how to improve file synchronization if we are
/// restricted to just one or two round-trips ... it seems difficult to
/// improve significantly over rsync in practice").
pub fn restricted(scale: f64) -> Report {
    let pair = release_pair(&gcc_like(scale));
    let (old, new) = pair.pair(0, 1);
    let link = msync_protocol::LinkModel::dsl();

    let stats_for = |c: &crate::cost::Cost| {
        let mut t = msync_protocol::TrafficStats::new();
        t.record(msync_protocol::Direction::ClientToServer, msync_protocol::Phase::Map, c.map_c2s);
        t.record(
            msync_protocol::Direction::ServerToClient,
            msync_protocol::Phase::Delta,
            c.map_s2c + c.delta + c.setup,
        );
        t.roundtrips = c.roundtrips;
        t
    };
    let mut rows = Vec::new();
    for &levels in &[1u32, 2, 3, 5, 7, 9] {
        let cfg = ProtocolConfig::restricted(levels);
        let c = measure(old, new, &Method::Msync(cfg));
        let t = stats_for(&c);
        rows.push(ReportRow {
            label: format!("msync, {levels} level(s)"),
            cells: vec![kb(c.total()), c.roundtrips.to_string(), format!("{:.1}s", link.estimate(&t).as_secs_f64())],
        });
    }
    for method in [Method::Rsync(None), Method::RsyncOptimal] {
        let c = measure(old, new, &method);
        let t = stats_for(&c);
        rows.push(ReportRow {
            label: method.label(),
            cells: vec![kb(c.total()), c.roundtrips.to_string(), format!("{:.1}s", link.estimate(&t).as_secs_f64())],
        });
    }
    Report {
        id: "restricted".into(),
        title: "roundtrip-restricted protocols (gcc): bytes vs latency".into(),
        columns: ["config", "total KB", "rt", "est. DSL time"].map(String::from).to_vec(),
        rows,
        notes: vec![
            format!("corpus scale {scale}"),
            "time = bytes at DSL bandwidth + 40 ms per roundtrip (all files batched)".into(),
        ],
    }
}

/// Extension: the adaptive mode (paper §7: "ideally, such a tool would
/// be adaptive") vs the fixed presets, across all three corpora.
pub fn adaptive(scale: f64) -> Report {
    use msync_core::adaptive::sync_collection_adaptive;
    use msync_core::FileEntry;

    let gcc = release_pair(&gcc_like(scale));
    let emacs = release_pair(&emacs_like(scale));
    let web = web_collection(&web_params(scale / 5.0), 2);
    let corpora: Vec<(&str, &Collection, &Collection)> = vec![
        ("gcc", &gcc.versions[0], &gcc.versions[1]),
        ("emacs", &emacs.versions[0], &emacs.versions[1]),
        ("web 2d", &web.versions[0], &web.versions[2]),
    ];

    let entries = |c: &Collection| -> Vec<FileEntry> {
        c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
    };

    let mut rows = Vec::new();
    for (name, old, new) in corpora {
        let fixed = measure(old, new, &Method::Msync(ProtocolConfig::default())).total();
        let out = sync_collection_adaptive(&entries(old), &entries(new), 3)
            .expect("adaptive sync succeeds");
        let adaptive_total = out.outcome.traffic.total_bytes() + out.probe_overhead;
        rows.push(ReportRow {
            label: name.into(),
            cells: vec![
                kb(fixed),
                kb(adaptive_total),
                out.chosen.into(),
                kb(out.probe_overhead),
            ],
        });
    }
    Report {
        id: "adaptive".into(),
        title: "adaptive parameter choice vs the fixed default (total KB)".into(),
        columns: ["corpus", "fixed KB", "adaptive KB", "chosen", "probe KB"]
            .map(String::from)
            .to_vec(),
        rows,
        notes: vec![format!("corpus scale {scale} (web at {})", scale / 5.0)],
    }
}

/// Extension: the full baseline spectrum on one corpus, adding the
/// LBFS-style CDC synchronizer between rsync and msync.
pub fn baselines(scale: f64) -> Report {
    let pair = release_pair(&gcc_like(scale));
    let (old, new) = pair.pair(0, 1);
    let web = web_collection(&web_params(scale / 5.0), 1);
    let (wold, wnew) = web.pair(0, 1);

    let methods: Vec<Method> = vec![
        Method::Gzip,
        Method::Rsync(None),
        Method::RsyncOptimal,
        Method::Cdc(msync_cdc::ChunkParams::default()),
        Method::Msync(ProtocolConfig::all_techniques()),
        Method::Zdelta,
    ];
    let mut rows = Vec::new();
    for method in &methods {
        let g = measure(old, new, method);
        let w = measure(wold, wnew, method);
        rows.push(ReportRow {
            label: method.label(),
            cells: vec![kb(g.total()), kb(w.total()), g.roundtrips.to_string()],
        });
    }
    Report {
        id: "baselines".into(),
        title: "baseline spectrum incl. CDC (total KB)".into(),
        columns: ["method", "gcc KB", "web 1d KB", "rt"].map(String::from).to_vec(),
        rows,
        notes: vec![format!("corpus scale {scale} (web at {})", scale / 5.0)],
    }
}

/// Extension: broadcast synchronization (paper §7's asymmetric case) —
/// cost vs client count when all clients are stale on the same region
/// (the CDN-fill scenario), broadcast downlink vs N unicast sessions.
pub fn broadcast(scale: f64) -> Report {
    use msync_core::broadcast::sync_broadcast;
    use msync_corpus::Rng;

    let size = ((600_000.0 * scale) as usize).max(20_000);
    let new = msync_corpus::text::source_file(&mut Rng::seed_from_u64(71), size);
    let cfg = ProtocolConfig { min_block_global: 64, ..ProtocolConfig::default() };

    let mut rows = Vec::new();
    for &n_clients in &[1usize, 2, 4, 8, 16] {
        let mut olds: Vec<Vec<u8>> = Vec::new();
        for i in 0..n_clients as u64 {
            let mut o = new.clone();
            let at = size / 3;
            o.splice(
                at..at + 600,
                msync_corpus::text::source_file(&mut Rng::seed_from_u64(500 + i), 500),
            );
            olds.push(o);
        }
        let refs: Vec<&[u8]> = olds.iter().map(|o| o.as_slice()).collect();
        let out = sync_broadcast(&new, &refs, &cfg).expect("broadcast sync succeeds");
        for r in &out.reconstructed {
            assert_eq!(r, &new);
        }
        rows.push(ReportRow {
            label: format!("{n_clients} client(s)"),
            cells: vec![
                kb(out.shared_s2c),
                kb(out.individual_s2c + out.c2s),
                kb(out.broadcast_total()),
                kb(out.unicast_total),
                format!("{:.2}x", out.unicast_total as f64 / out.broadcast_total() as f64),
            ],
        });
    }
    Report {
        id: "broadcast".into(),
        title: "broadcast vs N-way unicast, common stale region (one file)".into(),
        columns: ["clients", "shared KB", "individual KB", "broadcast KB", "unicast KB", "saving"]
            .map(String::from)
            .to_vec(),
        rows,
        notes: vec![format!("file {} KB (scale {scale})", size / 1024)],
    }
}

/// Extension: changed-file identification strategies (paper §4 related
/// work, which the paper sidesteps with a flat fingerprint exchange) —
/// setup cost vs number of changed files in a 10,000-page collection.
pub fn recon(scale: f64) -> Report {
    use msync_core::{sync_collection_with, FileEntry, ReconStrategy};
    use msync_corpus::Rng;

    let n = ((10_000.0 * scale) as usize).max(64);
    let mut old: Vec<FileEntry> = Vec::new();
    for i in 0..n {
        let data = msync_corpus::text::html_page(&mut Rng::seed_from_u64(3_000 + i as u64), 4_000, 1);
        old.push(FileEntry::new(format!("www/p{i:05}.html"), data));
    }
    let cfg = ProtocolConfig { start_block: 1 << 12, ..ProtocolConfig::default() };

    let mut rows = Vec::new();
    for &d in &[0usize, 1, 8, 64] {
        let d = d.min(n);
        let mut new = old.clone();
        for k in 0..d {
            let idx = (k * n) / d.max(1) + 1;
            let f = &mut new[idx % n];
            let at = f.data.len() / 2;
            f.data[at] ^= 0x5A;
        }
        let mut cells = Vec::new();
        for strategy in [ReconStrategy::Flat, ReconStrategy::Merkle, ReconStrategy::GroupTesting] {
            let out = sync_collection_with(&old, &new, &cfg, strategy).expect("sync succeeds");
            let setup =
                out.traffic.c2s(msync_protocol::Phase::Setup) + out.traffic.s2c(msync_protocol::Phase::Setup);
            cells.push(kb(setup));
        }
        let out = sync_collection_with(&old, &new, &cfg, ReconStrategy::Merkle).expect("sync succeeds");
        cells.push(kb(out.traffic.total_bytes()));
        rows.push(ReportRow { label: format!("{d} changed"), cells });
    }
    Report {
        id: "recon".into(),
        title: format!("changed-file identification over {n} files (setup KB)"),
        columns: ["changes", "flat KB", "merkle KB", "group-test KB", "merkle total KB"]
            .map(String::from)
            .to_vec(),
        rows,
        notes: vec![format!("collection scale {scale}; 4 KB pages")],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shape tests run at very small scale; the full-scale shapes are
    // asserted by `exp` runs recorded in EXPERIMENTS.md.

    #[test]
    fn fig6_1_beats_rsync_and_has_interior_structure() {
        let r = fig6_basic("gcc", 0.02);
        assert_eq!(r.rows.len(), MIN_BLOCK_SWEEP.len() + 3);
        let total = |row: &ReportRow| row.cells[3].parse::<f64>().unwrap();
        let best_msync = r.rows[..MIN_BLOCK_SWEEP.len()].iter().map(&total).fold(f64::MAX, f64::min);
        let rsync_default = total(&r.rows[MIN_BLOCK_SWEEP.len()]);
        let zdelta = total(&r.rows[MIN_BLOCK_SWEEP.len() + 2]);
        assert!(best_msync < rsync_default, "msync {best_msync} vs rsync {rsync_default}");
        assert!(zdelta <= best_msync);
    }

    #[test]
    fn table6_2_msync_beats_rsync_on_web() {
        let r = table6_2(0.005); // 50 pages
        let row = |label: &str| {
            r.rows
                .iter()
                .find(|row| row.label.starts_with(label))
                .unwrap_or_else(|| panic!("row {label}"))
                .cells
                .iter()
                .map(|c| c.parse::<f64>().unwrap())
                .collect::<Vec<_>>()
        };
        let msync = row("msync");
        let rsync = row("rsync (700B)");
        let raw = row("uncompressed");
        for day in 0..3 {
            assert!(msync[day] < rsync[day], "day {day}: msync {} rsync {}", msync[day], rsync[day]);
            assert!(msync[day] < raw[day] / 4.0);
        }
        // Cost grows with the interval but sublinearly.
        assert!(msync[2] > msync[0]);
        assert!(msync[2] < msync[0] * 7.0);
    }

    #[test]
    fn report_renders() {
        let r = fig6_4(0.01);
        let text = r.render();
        assert!(text.contains("fig6-4"));
        assert!(text.lines().count() > 6);
    }
}
