//! Wire-cost measurement of every method the paper compares.

use msync_core::{sync_collection, FileEntry, ProtocolConfig};
use msync_corpus::Collection;
use msync_protocol::Phase;

/// Byte cost of synchronizing one collection pair, split the way the
/// paper's stacked bars are (map-phase traffic per direction, the final
/// delta, and setup fingerprints).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Server→client map-construction bytes (candidate hashes, results).
    pub map_s2c: u64,
    /// Client→server map-construction bytes (bitmaps, verification).
    pub map_c2s: u64,
    /// Delta-phase bytes (rsync: the token stream; msync: the delta).
    pub delta: u64,
    /// Setup bytes (fingerprints, name lists, rsync signatures' header).
    pub setup: u64,
    /// Batched roundtrip count.
    pub roundtrips: u32,
}

impl Cost {
    /// Total bytes — the number every figure plots.
    pub fn total(&self) -> u64 {
        self.map_s2c + self.map_c2s + self.delta + self.setup
    }

    /// Total in KB (the paper's unit), rounded.
    pub fn kb(&self) -> u64 {
        self.total().div_ceil(1024)
    }
}

/// A synchronization/transfer method from the paper's comparisons.
#[derive(Debug, Clone)]
pub enum Method {
    /// Send every file raw.
    Uncompressed,
    /// Send every changed file gzip-compressed (no old version used).
    Gzip,
    /// rsync with a fixed block size (`None` = the 700-byte default).
    Rsync(Option<usize>),
    /// Idealized rsync with the optimal per-file block size.
    RsyncOptimal,
    /// The multi-round protocol with the given configuration.
    Msync(ProtocolConfig),
    /// zdelta-style delta compression with both files local (lower
    /// bound).
    Zdelta,
    /// vcdiff-style delta compression with both files local.
    Vcdiff,
    /// LBFS-style content-defined-chunking sync (two roundtrips).
    Cdc(msync_cdc::ChunkParams),
}

impl Method {
    /// Short label for table rows.
    pub fn label(&self) -> String {
        match self {
            Method::Uncompressed => "uncompressed".into(),
            Method::Gzip => "gzip".into(),
            Method::Rsync(None) => "rsync (700B)".into(),
            Method::Rsync(Some(b)) => format!("rsync ({b}B)"),
            Method::RsyncOptimal => "rsync (optimal)".into(),
            Method::Msync(_) => "msync".into(),
            Method::Zdelta => "zdelta (bound)".into(),
            Method::Vcdiff => "vcdiff".into(),
            Method::Cdc(_) => "cdc (lbfs-style)".into(),
        }
    }
}

fn entries(c: &Collection) -> Vec<FileEntry> {
    c.files()
        .iter()
        .map(|f| FileEntry::new(f.name.clone(), f.data.clone()))
        .collect()
}

/// Measure `method` updating `old` to `new`.
///
/// For the local delta compressors (zdelta/vcdiff) the "cost" is the sum
/// of delta sizes for changed files plus raw transfer of new files — the
/// lower-bound accounting the paper uses. For gzip/uncompressed,
/// unchanged files are still skipped (any such tool would be driven by a
/// file-level change detector; the paper's Table 6.2 assumes the same).
pub fn measure(old: &Collection, new: &Collection, method: &Method) -> Cost {
    match method {
        Method::Msync(cfg) => {
            let out = sync_collection(&entries(old), &entries(new), cfg)
                .expect("collection sync succeeds");
            for (got, want) in out.files.iter().zip(new.files()) {
                assert_eq!(got.data, want.data, "reconstruction mismatch for {}", want.name);
            }
            let t = &out.traffic;
            Cost {
                map_s2c: t.s2c(Phase::Map),
                map_c2s: t.c2s(Phase::Map),
                delta: t.s2c(Phase::Delta) + t.c2s(Phase::Delta),
                setup: t.s2c(Phase::Setup) + t.c2s(Phase::Setup),
                roundtrips: t.roundtrips,
            }
        }
        Method::Rsync(bs) => per_file_rsync(old, new, |o, n| {
            msync_rsync::sync(o, n, bs.unwrap_or(msync_rsync::DEFAULT_BLOCK_SIZE))
        }),
        Method::RsyncOptimal => per_file_rsync(old, new, |o, n| msync_rsync::optimal::sync_optimal(o, n).0),
        Method::Zdelta => delta_cost(old, new, |o, n| msync_compress::delta_encode(o, n).len() as u64),
        Method::Vcdiff => delta_cost(old, new, |o, n| msync_compress::vcdiff_encode(o, n).len() as u64),
        Method::Cdc(params) => {
            let mut cost = Cost::default();
            let empty: Vec<u8> = Vec::new();
            for nf in new.files() {
                let old_data = old.get(&nf.name).map_or(empty.as_slice(), |f| f.data.as_slice());
                let out = msync_cdc::sync(old_data, &nf.data, params);
                assert_eq!(out.reconstructed, nf.data, "cdc mismatch for {}", nf.name);
                let t = &out.stats;
                cost.map_s2c += t.s2c(Phase::Map);
                cost.map_c2s += t.c2s(Phase::Map);
                cost.delta += t.s2c(Phase::Delta) + t.c2s(Phase::Delta);
                cost.setup += t.s2c(Phase::Setup) + t.c2s(Phase::Setup);
                cost.roundtrips = cost.roundtrips.max(t.roundtrips);
            }
            cost
        }
        Method::Gzip => delta_cost(old, new, |_, n| msync_compress::compress(n).len() as u64),
        Method::Uncompressed => delta_cost(old, new, |_, n| n.len() as u64),
    }
}

fn per_file_rsync(
    old: &Collection,
    new: &Collection,
    run: impl Fn(&[u8], &[u8]) -> msync_rsync::RsyncOutcome,
) -> Cost {
    let mut cost = Cost::default();
    let empty: Vec<u8> = Vec::new();
    for nf in new.files() {
        let old_data = old.get(&nf.name).map_or(empty.as_slice(), |f| f.data.as_slice());
        let out = run(old_data, &nf.data);
        assert_eq!(out.reconstructed, nf.data, "rsync mismatch for {}", nf.name);
        let t = &out.stats;
        cost.map_s2c += t.s2c(Phase::Map);
        cost.map_c2s += t.c2s(Phase::Map);
        cost.delta += t.s2c(Phase::Delta) + t.c2s(Phase::Delta);
        cost.setup += t.s2c(Phase::Setup) + t.c2s(Phase::Setup);
        cost.roundtrips = cost.roundtrips.max(t.roundtrips);
    }
    cost
}

fn delta_cost(old: &Collection, new: &Collection, size: impl Fn(&[u8], &[u8]) -> u64) -> Cost {
    let mut cost = Cost::default();
    let empty: Vec<u8> = Vec::new();
    for nf in new.files() {
        let old_data = old.get(&nf.name).map(|f| f.data.as_slice());
        // 16-byte fingerprint to detect unchanged files, as everywhere.
        cost.setup += 17;
        if old_data == Some(nf.data.as_slice()) {
            continue;
        }
        cost.delta += size(old_data.unwrap_or(&empty), &nf.data);
    }
    cost.roundtrips = 1;
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use msync_corpus::{gcc_like, release_pair};

    #[test]
    fn method_ordering_holds_on_tiny_corpus() {
        let pair = release_pair(&gcc_like(0.01)); // 10 files
        let (old, new) = pair.pair(0, 1);
        let uncompressed = measure(old, new, &Method::Uncompressed).total();
        let gzip = measure(old, new, &Method::Gzip).total();
        let rsync = measure(old, new, &Method::Rsync(None)).total();
        let msync = measure(old, new, &Method::Msync(ProtocolConfig::default())).total();
        let zdelta = measure(old, new, &Method::Zdelta).total();
        assert!(gzip < uncompressed);
        assert!(rsync < gzip, "rsync {rsync} vs gzip {gzip}");
        assert!(msync < rsync, "msync {msync} vs rsync {rsync}");
        assert!(zdelta < msync, "zdelta {zdelta} vs msync {msync}");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            Method::Uncompressed,
            Method::Gzip,
            Method::Rsync(None),
            Method::Rsync(Some(512)),
            Method::RsyncOptimal,
            Method::Zdelta,
            Method::Vcdiff,
        ]
        .iter()
        .map(Method::label)
        .collect();
        let set: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
