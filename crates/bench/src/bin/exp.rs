//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! exp <id> [--scale S] [--json]
//! ids: fig6-1 fig6-2 fig6-3 fig6-4 table6-1 table6-2 ablation restricted adaptive baselines broadcast recon all
//! ```

use msync_bench::experiments as exp;
use msync_bench::experiments::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut scale: Option<f64> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--scale needs a number")),
                );
            }
            "--json" => json = true,
            "--help" | "-h" => {
                usage();
                return;
            }
            other if id.is_none() => id = Some(other.to_string()),
            other => die(&format!("unexpected argument `{other}`")),
        }
        i += 1;
    }
    let id = id.unwrap_or_else(|| {
        usage();
        std::process::exit(2)
    });

    let reports = run(&id, scale);
    for r in reports {
        if json {
            println!("{}", serde_json::to_string(&r));
        } else {
            println!("{}", r.render());
        }
    }
}

fn run(id: &str, scale: Option<f64>) -> Vec<Report> {
    // Default scales keep full runs in tens of seconds while staying
    // large enough (dozens of files / megabytes) for stable shapes.
    let s_src = scale.unwrap_or(0.10);
    let s_web = scale.unwrap_or(0.02);
    match id {
        "fig6-1" => vec![exp::fig6_basic("gcc", s_src)],
        "fig6-2" => vec![exp::fig6_basic("emacs", s_src)],
        "fig6-3" => vec![exp::fig6_3(s_src)],
        "fig6-4" => vec![exp::fig6_4(s_src)],
        "table6-1" => vec![exp::table6_1(s_src)],
        "table6-2" => vec![exp::table6_2(s_web)],
        "ablation" => vec![exp::ablation(s_src)],
        "restricted" => vec![exp::restricted(s_src)],
        "adaptive" => vec![exp::adaptive(s_src)],
        "baselines" => vec![exp::baselines(s_src)],
        "broadcast" => vec![exp::broadcast(s_src)],
        "recon" => vec![exp::recon(s_web * 5.0)],
        "all" => vec![
            exp::fig6_basic("gcc", s_src),
            exp::fig6_basic("emacs", s_src),
            exp::fig6_3(s_src),
            exp::fig6_4(s_src),
            exp::table6_1(s_src),
            exp::table6_2(s_web),
            exp::ablation(s_src),
            exp::restricted(s_src),
            exp::adaptive(s_src),
            exp::baselines(s_src),
            exp::broadcast(s_src),
            exp::recon(s_web * 5.0),
        ],
        other => {
            die(&format!("unknown experiment `{other}`"));
        }
    }
}

fn usage() {
    eprintln!(
        "usage: exp <id> [--scale S] [--json]\n\
         ids: fig6-1 fig6-2 fig6-3 fig6-4 table6-1 table6-2 ablation restricted adaptive baselines broadcast recon all\n\
         scale: corpus size fraction (1.0 = the paper's full size)"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

// Minimal hand-rolled JSON to avoid pulling serde_json: reports are
// simple enough that serde's derive plus this shim covers the need.
mod serde_json {
    use super::Report;

    pub fn to_string(r: &Report) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        write!(
            out,
            "{{\"id\":{},\"title\":{},\"columns\":[{}],\"rows\":[",
            quote(&r.id),
            quote(&r.title),
            r.columns.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )
        .expect("writing to String cannot fail");
        for (i, row) in r.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"label\":{},\"cells\":[{}]}}",
                quote(&row.label),
                row.cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            )
            .expect("writing to String cannot fail");
        }
        write!(
            out,
            "],\"notes\":[{}]}}",
            r.notes.iter().map(|n| quote(n)).collect::<Vec<_>>().join(",")
        )
        .expect("writing to String cannot fail");
        out
    }

    fn quote(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}
