//! Experiment harness: the code that regenerates every table and figure
//! of the paper's evaluation (§6).
//!
//! [`cost`] measures the wire cost of each synchronization method on a
//! collection pair; [`experiments`] drives the parameter sweeps of
//! Figures 6.1–6.4 and Tables 6.1–6.2 and renders them as the same rows
//! and series the paper reports. Run them via the `exp` binary:
//!
//! ```text
//! cargo run --release -p msync-bench --bin exp -- fig6-1
//! cargo run --release -p msync-bench --bin exp -- all --scale 0.1
//! ```

pub mod cost;
pub mod experiments;

pub use cost::{measure, Cost, Method};
