//! The typed span-event taxonomy.
//!
//! Every observable protocol moment is one [`EventKind`] variant with
//! flat `u64`/`bool`/tag fields — no payload bytes, no strings — so an
//! event is cheap to record and renders to one self-describing JSONL
//! line ([`crate::journal`]). The byte-carrying variants
//! ([`EventKind::FrameSend`]/[`EventKind::FrameRecv`]) are emitted at
//! exactly the call sites that charge `TrafficStats`, which is what
//! makes a journal's per-direction-per-phase byte sums equal the run's
//! traffic accounting on clean links.

/// Traffic direction, mirroring `msync_protocol::Direction` without
/// depending on it (this crate is dependency-free; the protocol crate
/// provides the conversions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirTag {
    /// Client → server.
    C2s,
    /// Server → client.
    S2c,
}

impl DirTag {
    /// Stable journal token.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DirTag::C2s => "c2s",
            DirTag::S2c => "s2c",
        }
    }

    /// Index into `[dir][phase]` metric grids.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            DirTag::C2s => 0,
            DirTag::S2c => 1,
        }
    }
}

/// Protocol phase, mirroring `msync_protocol::Phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseTag {
    /// Handshake / metadata exchange.
    Setup,
    /// Map construction rounds.
    Map,
    /// Delta transfer.
    Delta,
    /// Resume offers and verdicts (crash-recovery extension).
    Resume,
}

impl PhaseTag {
    /// Stable journal token.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseTag::Setup => "setup",
            PhaseTag::Map => "map",
            PhaseTag::Delta => "delta",
            PhaseTag::Resume => "resume",
        }
    }

    /// Index into `[dir][phase]` metric grids.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            PhaseTag::Setup => 0,
            PhaseTag::Map => 1,
            PhaseTag::Delta => 2,
            PhaseTag::Resume => 3,
        }
    }
}

/// Why a server turned a resume offer down, as journal tokens. The
/// client falls back to a full sync on any rejection; the reason only
/// explains the extra traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResumeRejectTag {
    /// The offer's protocol-config digest differs from the server's.
    ConfigMismatch,
    /// The offer payload did not parse.
    MalformedOffer,
    /// The offer listed more entries than the collection cap allows.
    TooLarge,
}

impl ResumeRejectTag {
    /// Stable journal token.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ResumeRejectTag::ConfigMismatch => "config_mismatch",
            ResumeRejectTag::MalformedOffer => "malformed_offer",
            ResumeRejectTag::TooLarge => "too_large",
        }
    }
}

/// The fault classes of `msync_protocol::fault`, as journal tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Frame silently lost.
    Drop,
    /// One bit flipped.
    Corrupt,
    /// Cut to a proper prefix.
    Truncate,
    /// Delivered twice.
    Duplicate,
    /// Held past the next same-direction frame.
    Delay,
    /// Link cut starting with this frame.
    Disconnect,
}

impl FaultKind {
    /// Stable journal token.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Truncate => "truncate",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
            FaultKind::Disconnect => "disconnect",
        }
    }
}

/// One traced protocol moment. `file_id` is the session's index in its
/// collection roster (0 for single-file syncs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A per-file sync session began.
    SessionStart {
        /// Roster index of the file.
        file_id: u64,
    },
    /// A per-file sync session finished.
    SessionEnd {
        /// Roster index of the file.
        file_id: u64,
        /// Whether the session completed without error.
        ok: bool,
        /// Whether it fell back to a full transfer.
        fell_back: bool,
    },
    /// One map-construction round (one block size) completed.
    MapRound {
        /// Roster index of the file.
        file_id: u64,
        /// Block size of the round.
        block_size: u64,
        /// Items hashed this round.
        items: u64,
        /// Items whose hash found a candidate position.
        candidates: u64,
    },
    /// One verification batch resolved.
    VerifyBatch {
        /// Roster index of the file.
        file_id: u64,
        /// Candidates entering verification.
        candidates: u64,
        /// Candidates confirmed as matches.
        confirmed: u64,
    },
    /// The delta phase delivered its payload.
    DeltaPhase {
        /// Roster index of the file.
        file_id: u64,
        /// Size of the delta the server sent.
        delta_bytes: u64,
    },
    /// Wire bytes charged on send, with phase attribution.
    FrameSend {
        /// Direction the bytes travel.
        dir: DirTag,
        /// Phase the bytes are charged to.
        phase: PhaseTag,
        /// Full wire size charged.
        bytes: u64,
    },
    /// Received wire bytes attributed to a phase.
    FrameRecv {
        /// Direction the bytes traveled.
        dir: DirTag,
        /// Phase the bytes are charged to.
        phase: PhaseTag,
        /// Full wire size charged.
        bytes: u64,
    },
    /// The ARQ layer re-sent cached frames.
    Retransmit {
        /// Frames retransmitted in this burst.
        frames: u64,
    },
    /// A receive deadline expired and the timeout was grown.
    Backoff {
        /// 1-based retry attempt number.
        attempt: u64,
        /// The deadline that just expired, in microseconds.
        timeout_us: u64,
    },
    /// The deterministic fault injector assigned a frame a fate.
    FaultInjected {
        /// Direction of the afflicted frame.
        dir: DirTag,
        /// Which fault class fired.
        kind: FaultKind,
        /// 1-based frame index within this direction's injector.
        seq: u64,
    },
    /// A network handshake concluded.
    Handshake {
        /// Whether both sides agreed on a configuration.
        ok: bool,
    },
    /// The pipelined collection scheduler moved its window.
    WindowAdvance {
        /// Sessions currently in flight.
        in_flight: u64,
        /// Files admitted so far.
        admitted: u64,
        /// Files finished so far.
        done: u64,
    },
    /// A resume offer was presented (client) or received (server).
    ResumeOffer {
        /// Entries (files) the offer covers.
        files: u64,
    },
    /// A resume offer was accepted; the listed files skip their
    /// sessions entirely.
    ResumeAccept {
        /// Offered entries the server confirmed.
        accepted: u64,
        /// Offered entries the server declined (stale digests).
        declined: u64,
    },
    /// A resume offer was rejected with a typed reason; the client
    /// falls back to a full sync.
    ResumeReject {
        /// Why the server turned the offer down.
        reason: ResumeRejectTag,
    },
    /// The client metadata cache satisfied one file: its digest was
    /// offered without rehashing, and on acceptance the file skips
    /// even the per-file map exchange.
    CacheHit {
        /// Roster index of the file.
        file_id: u64,
    },
    /// The server's cross-session hash cache already held a map-phase
    /// artifact (block hash tree or verification hash); no bytes were
    /// rehashed for it.
    HashCacheHit {
        /// Source bytes the cached artifact covers (work avoided).
        bytes: u64,
    },
    /// The server's cross-session hash cache missed; the artifact was
    /// computed from the file data and inserted for later sessions.
    HashCacheMiss {
        /// Source bytes actually hashed to build the artifact.
        bytes: u64,
    },
    /// A map-phase block digest was obtained by sibling decomposition —
    /// parent digest minus the other child — instead of scanning the
    /// bytes; the result was inserted into the cache for later
    /// sessions.
    HashCacheDerived {
        /// Source bytes the derivation covered without scanning.
        bytes: u64,
    },
    /// The slow-session watchdog found a session stuck in one protocol
    /// phase past the configured threshold. Fires at most once per
    /// phase entry, so a journal shows each distinct stall, not a
    /// repeating alarm.
    SlowSession {
        /// The phase the session has been stuck in.
        phase: PhaseTag,
        /// Microseconds spent in that phase when the watchdog fired.
        waited_us: u64,
    },
}

impl EventKind {
    /// Stable journal token naming this variant.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SessionStart { .. } => "session_start",
            EventKind::SessionEnd { .. } => "session_end",
            EventKind::MapRound { .. } => "map_round",
            EventKind::VerifyBatch { .. } => "verify_batch",
            EventKind::DeltaPhase { .. } => "delta_phase",
            EventKind::FrameSend { .. } => "frame_send",
            EventKind::FrameRecv { .. } => "frame_recv",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::Backoff { .. } => "backoff",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::Handshake { .. } => "handshake",
            EventKind::WindowAdvance { .. } => "window_advance",
            EventKind::ResumeOffer { .. } => "resume_offer",
            EventKind::ResumeAccept { .. } => "resume_accept",
            EventKind::ResumeReject { .. } => "resume_reject",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::HashCacheHit { .. } => "hash_cache_hit",
            EventKind::HashCacheMiss { .. } => "hash_cache_miss",
            EventKind::HashCacheDerived { .. } => "hash_cache_derived",
            EventKind::SlowSession { .. } => "slow_session",
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the recorder's clock epoch.
    pub t_us: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_stable() {
        assert_eq!(DirTag::C2s.as_str(), "c2s");
        assert_eq!(PhaseTag::Delta.as_str(), "delta");
        assert_eq!(FaultKind::Disconnect.as_str(), "disconnect");
        assert_eq!(PhaseTag::Resume.as_str(), "resume");
        assert_eq!(ResumeRejectTag::ConfigMismatch.as_str(), "config_mismatch");
        assert_eq!(EventKind::Handshake { ok: true }.name(), "handshake");
        assert_eq!(EventKind::ResumeOffer { files: 3 }.name(), "resume_offer");
        assert_eq!(EventKind::CacheHit { file_id: 0 }.name(), "cache_hit");
        assert_eq!(EventKind::HashCacheHit { bytes: 9 }.name(), "hash_cache_hit");
        assert_eq!(EventKind::HashCacheMiss { bytes: 9 }.name(), "hash_cache_miss");
        assert_eq!(EventKind::HashCacheDerived { bytes: 9 }.name(), "hash_cache_derived");
        assert_eq!(
            EventKind::SlowSession { phase: PhaseTag::Map, waited_us: 5_000_000 }.name(),
            "slow_session"
        );
        assert_eq!(
            EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Map, bytes: 1 }.name(),
            "frame_send"
        );
    }

    #[test]
    fn grid_indices_cover_the_grid() {
        assert_eq!(DirTag::C2s.index(), 0);
        assert_eq!(DirTag::S2c.index(), 1);
        assert_eq!(PhaseTag::Setup.index(), 0);
        assert_eq!(PhaseTag::Map.index(), 1);
        assert_eq!(PhaseTag::Delta.index(), 2);
        assert_eq!(PhaseTag::Resume.index(), 3);
    }
}
