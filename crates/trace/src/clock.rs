//! The clock model: one trait, two implementations.
//!
//! Instrumented code never touches `std::time` directly (the xtask
//! `clock-discipline` rule bans `Instant::now`/`SystemTime::now`
//! outside this crate). Instead it reads microseconds through a
//! [`Clock`], which is either the monotonic [`SystemClock`] on live
//! runs or the fully deterministic [`ManualClock`] in tests — the
//! golden-journal test is byte-identical across runs precisely because
//! its timestamps come from a `ManualClock`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond source.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since this clock's epoch.
    fn now_micros(&self) -> u64;
}

/// The real monotonic clock, anchored at construction time so values
/// start near zero and never go backwards. This is the sole user of
/// `std::time::Instant` in the workspace.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    #[must_use]
    pub fn new() -> Self {
        SystemClock { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests: starts at `start` and advances by
/// a fixed `step` on every read, so the Nth timestamp a run observes
/// is a pure function of N. `step = 0` freezes time entirely.
#[derive(Debug)]
pub struct ManualClock {
    now: AtomicU64,
    step: u64,
}

impl ManualClock {
    /// A frozen clock pinned at `start`.
    #[must_use]
    pub fn fixed(start: u64) -> Self {
        ManualClock { now: AtomicU64::new(start), step: 0 }
    }

    /// A clock that returns `start`, `start + step`, `start + 2*step`,
    /// … on successive reads.
    #[must_use]
    pub fn ticking(start: u64, step: u64) -> Self {
        ManualClock { now: AtomicU64::new(start), step }
    }

    /// Manually advance the clock by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_ticks_deterministically() {
        let c = ManualClock::ticking(100, 7);
        assert_eq!(c.now_micros(), 100);
        assert_eq!(c.now_micros(), 107);
        assert_eq!(c.now_micros(), 114);
        c.advance(1000);
        assert_eq!(c.now_micros(), 1121);
    }

    #[test]
    fn fixed_clock_never_moves() {
        let c = ManualClock::fixed(42);
        assert_eq!(c.now_micros(), 42);
        assert_eq!(c.now_micros(), 42);
    }
}
