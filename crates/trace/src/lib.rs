//! # msync-trace — first-party tracing and metrics
//!
//! The paper's evaluation is stated in bytes per direction per phase,
//! and the workspace accounts those exactly (`TrafficStats`). This
//! crate adds the *time and behavior* axis — per-round latency,
//! retransmit timelines, pipeline window occupancy, fault timelines —
//! without taking any dependency: the build is hermetically offline,
//! so `tracing`/`metrics` from crates.io are not options.
//!
//! Four pieces, all deliberately small:
//!
//! * [`clock`] — a [`Clock`] trait with a monotonic [`SystemClock`] and
//!   a deterministic [`ManualClock`] for golden tests. This crate is
//!   the **only** place in the workspace allowed to touch
//!   `std::time::Instant` (enforced by the `clock-discipline` xtask
//!   rule); everything else reads time through a [`Recorder`].
//! * [`event`] — the typed span-event taxonomy ([`EventKind`]): session
//!   start/end, map rounds, verification batches, delta phases, frame
//!   sends/receives with phase attribution, retransmits, backoffs,
//!   injected faults, handshakes, pipeline window advances.
//! * [`hist`] — fixed-bucket log2 [`Histogram`]s (frame RTT, round
//!   duration, session duration, bytes per round). Log2 buckets cover
//!   nine decades in 64 counters with zero allocation, which is the
//!   right trade for latencies spanning loopback to dial-up.
//! * Two sinks: a schema-versioned JSONL [`journal`] (one
//!   self-describing event per line) and a [`MetricsSnapshot`] of
//!   process-wide counters/histograms rendered as Prometheus-style
//!   text for `msync serve --metrics-out`.
//!
//! The live-introspection layer builds on the same event stream:
//! [`status`] derives per-session live state ([`StatusBoard`]) from
//! events already recorded, [`rates`] turns periodic snapshot samples
//! into windowed bytes/sec-style gauges, and [`chrome`] re-renders a
//! journal as Chrome `trace_event` JSON for flamegraph viewers.
//!
//! The [`Recorder`] is the only handle the instrumented crates see. A
//! disabled recorder (`Recorder::off()`, the `Default`) is a `None`
//! inside and every call is a cheap no-op, so untraced runs pay
//! nothing and stay byte-identical to pre-tracing behavior.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod event;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod rates;
pub mod recorder;
pub mod status;

pub use chrome::render_chrome_trace;
pub use clock::{Clock, ManualClock, SystemClock};
pub use event::{DirTag, EventKind, FaultKind, PhaseTag, ResumeRejectTag, TraceEvent};
pub use hist::{HistKind, Histogram};
pub use journal::{
    parse_flat_object, parse_line, render_journal, render_line, FieldValue, JournalLine,
    SCHEMA_VERSION,
};
pub use metrics::MetricsSnapshot;
pub use rates::{RateWindows, WindowRates};
pub use recorder::Recorder;
pub use status::{render_sessions, SessionStatus, StatusBoard, StatusHandle};
