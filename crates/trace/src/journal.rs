//! The JSONL journal sink: schema v5.
//!
//! One event per line, each line a flat JSON object that is fully
//! self-describing: `{"v":3,"t_us":<clock>,"kind":"<token>",...}` with
//! the kind-specific fields flattened alongside. Field values are only
//! unsigned integers, booleans, and fixed enum tokens — never free
//! text — so the first-party parser below is complete for everything
//! the renderer can emit, and `scripts/ci.sh` can verify journals
//! without `jq`.
//!
//! Schema stability contract: any change to field names, field order,
//! kind tokens, or value types bumps [`SCHEMA_VERSION`].

use crate::event::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// Version stamped into every line's `"v"` field. v2 added the resume
/// kind tokens (`resume_offer`/`resume_accept`/`resume_reject`/
/// `cache_hit`); v3 added the server hash-cache tokens
/// (`hash_cache_hit`/`hash_cache_miss`); v4 added the watchdog token
/// (`slow_session`); v5 added the sibling-decomposition token
/// (`hash_cache_derived`).
pub const SCHEMA_VERSION: u32 = 5;

/// Render one event as its JSONL line (no trailing newline).
#[must_use]
pub fn render_line(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ =
        write!(s, "{{\"v\":{SCHEMA_VERSION},\"t_us\":{},\"kind\":\"{}\"", ev.t_us, ev.kind.name());
    match ev.kind {
        EventKind::SessionStart { file_id } => {
            let _ = write!(s, ",\"file_id\":{file_id}");
        }
        EventKind::SessionEnd { file_id, ok, fell_back } => {
            let _ = write!(s, ",\"file_id\":{file_id},\"ok\":{ok},\"fell_back\":{fell_back}");
        }
        EventKind::MapRound { file_id, block_size, items, candidates } => {
            let _ = write!(
                s,
                ",\"file_id\":{file_id},\"block_size\":{block_size},\"items\":{items},\"candidates\":{candidates}"
            );
        }
        EventKind::VerifyBatch { file_id, candidates, confirmed } => {
            let _ = write!(
                s,
                ",\"file_id\":{file_id},\"candidates\":{candidates},\"confirmed\":{confirmed}"
            );
        }
        EventKind::DeltaPhase { file_id, delta_bytes } => {
            let _ = write!(s, ",\"file_id\":{file_id},\"delta_bytes\":{delta_bytes}");
        }
        EventKind::FrameSend { dir, phase, bytes } | EventKind::FrameRecv { dir, phase, bytes } => {
            let _ = write!(
                s,
                ",\"dir\":\"{}\",\"phase\":\"{}\",\"bytes\":{bytes}",
                dir.as_str(),
                phase.as_str()
            );
        }
        EventKind::Retransmit { frames } => {
            let _ = write!(s, ",\"frames\":{frames}");
        }
        EventKind::Backoff { attempt, timeout_us } => {
            let _ = write!(s, ",\"attempt\":{attempt},\"timeout_us\":{timeout_us}");
        }
        EventKind::FaultInjected { dir, kind, seq } => {
            let _ = write!(
                s,
                ",\"dir\":\"{}\",\"fault\":\"{}\",\"seq\":{seq}",
                dir.as_str(),
                kind.as_str()
            );
        }
        EventKind::Handshake { ok } => {
            let _ = write!(s, ",\"ok\":{ok}");
        }
        EventKind::WindowAdvance { in_flight, admitted, done } => {
            let _ = write!(s, ",\"in_flight\":{in_flight},\"admitted\":{admitted},\"done\":{done}");
        }
        EventKind::ResumeOffer { files } => {
            let _ = write!(s, ",\"files\":{files}");
        }
        EventKind::ResumeAccept { accepted, declined } => {
            let _ = write!(s, ",\"accepted\":{accepted},\"declined\":{declined}");
        }
        EventKind::ResumeReject { reason } => {
            let _ = write!(s, ",\"reason\":\"{}\"", reason.as_str());
        }
        EventKind::CacheHit { file_id } => {
            let _ = write!(s, ",\"file_id\":{file_id}");
        }
        EventKind::HashCacheHit { bytes }
        | EventKind::HashCacheMiss { bytes }
        | EventKind::HashCacheDerived { bytes } => {
            let _ = write!(s, ",\"bytes\":{bytes}");
        }
        EventKind::SlowSession { phase, waited_us } => {
            let _ = write!(s, ",\"phase\":\"{}\",\"waited_us\":{waited_us}", phase.as_str());
        }
    }
    s.push('}');
    s
}

/// Render a whole journal: one line per event, trailing newline.
#[must_use]
pub fn render_journal(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&render_line(ev));
        out.push('\n');
    }
    out
}

/// A parsed journal field value. The schema only ever emits these
/// three shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A boolean.
    Bool(bool),
    /// A fixed enum token (dir, phase, kind, fault).
    Str(String),
}

/// One parsed journal line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalLine {
    /// Schema version (`"v"`).
    pub v: u64,
    /// Timestamp (`"t_us"`).
    pub t_us: u64,
    /// Event kind token (`"kind"`).
    pub kind: String,
    /// Remaining fields, in line order.
    pub fields: Vec<(String, FieldValue)>,
}

impl JournalLine {
    /// Look up an integer field by name.
    #[must_use]
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| match v {
            FieldValue::U64(n) => Some(*n),
            _ => None,
        })
    }

    /// Look up a string field by name.
    #[must_use]
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| match v {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// Look up a boolean field by name.
    #[must_use]
    pub fn bool_field(&self, name: &str) -> Option<bool> {
        self.fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| match v {
            FieldValue::Bool(b) => Some(*b),
            _ => None,
        })
    }
}

/// Parse one flat JSON object into its `(key, value)` fields, in line
/// order. Accepts exactly the subset the journal renderer emits —
/// string/integer/boolean values, no nesting, no floats, no escapes —
/// which also makes it the shared line parser for the other JSONL
/// state files in the workspace (metadata cache, checkpoints).
///
/// # Errors
/// A human-readable description of the first malformation found.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, FieldValue)>, String> {
    let mut p = Parser { bytes: line.trim().as_bytes(), pos: 0 };
    p.expect(b'{')?;
    let mut fields = Vec::new();
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        let value = p.value()?;
        fields.push((key, value));
        match p.next_byte()? {
            b',' => continue,
            b'}' => break,
            other => return Err(format!("expected `,` or `}}`, found `{}`", other as char)),
        }
    }
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after the closing brace".to_owned());
    }
    Ok(fields)
}

/// Parse one journal line. Accepts exactly the flat-object subset of
/// JSON the renderer emits; anything else (nesting, floats, escapes,
/// missing `v`/`t_us`/`kind`) is an error.
///
/// # Errors
/// A human-readable description of the first malformation found.
pub fn parse_line(line: &str) -> Result<JournalLine, String> {
    let parsed = parse_flat_object(line)?;
    let mut v: Option<u64> = None;
    let mut t_us: Option<u64> = None;
    let mut kind: Option<String> = None;
    let mut fields = Vec::new();
    for (key, value) in parsed {
        match (key.as_str(), &value) {
            ("v", FieldValue::U64(n)) => v = Some(*n),
            ("t_us", FieldValue::U64(n)) => t_us = Some(*n),
            ("kind", FieldValue::Str(s)) => kind = Some(s.clone()),
            ("v" | "t_us" | "kind", _) => {
                return Err(format!("field `{key}` has the wrong type"));
            }
            _ => fields.push((key, value)),
        }
    }
    Ok(JournalLine {
        v: v.ok_or("missing `v` field")?,
        t_us: t_us.ok_or("missing `t_us` field")?,
        kind: kind.ok_or("missing `kind` field")?,
        fields,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn next_byte(&mut self) -> Result<u8, String> {
        let b = self.bytes.get(self.pos).copied().ok_or("unexpected end of line")?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next_byte()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected `{}`, found `{}`", want as char, got as char))
        }
    }

    /// A `"token"` string; escapes are out of schema and rejected.
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.next_byte()? {
                b'"' => {
                    return Ok(
                        String::from_utf8_lossy(&self.bytes[start..self.pos - 1]).into_owned()
                    )
                }
                b'\\' => return Err("escape sequences are not in the journal schema".to_owned()),
                _ => {}
            }
        }
    }

    fn value(&mut self) -> Result<FieldValue, String> {
        match self.bytes.get(self.pos).copied().ok_or("unexpected end of line")? {
            b'"' => Ok(FieldValue::Str(self.string()?)),
            b't' => self.literal(b"true").map(|()| FieldValue::Bool(true)),
            b'f' => self.literal(b"false").map(|()| FieldValue::Bool(false)),
            b'0'..=b'9' => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-UTF-8 number".to_owned())?;
                text.parse::<u64>()
                    .map(FieldValue::U64)
                    .map_err(|e| format!("bad integer `{text}`: {e}"))
            }
            other => Err(format!("unexpected value start `{}`", other as char)),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected `{}`", String::from_utf8_lossy(word)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DirTag, FaultKind, PhaseTag, ResumeRejectTag};

    #[test]
    fn every_kind_roundtrips_through_the_parser() {
        let events = [
            EventKind::SessionStart { file_id: 3 },
            EventKind::SessionEnd { file_id: 3, ok: true, fell_back: false },
            EventKind::MapRound { file_id: 0, block_size: 32768, items: 9, candidates: 4 },
            EventKind::VerifyBatch { file_id: 0, candidates: 4, confirmed: 4 },
            EventKind::DeltaPhase { file_id: 0, delta_bytes: 120 },
            EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Map, bytes: 105 },
            EventKind::FrameRecv { dir: DirTag::S2c, phase: PhaseTag::Delta, bytes: 33 },
            EventKind::Retransmit { frames: 2 },
            EventKind::Backoff { attempt: 1, timeout_us: 500_000 },
            EventKind::FaultInjected { dir: DirTag::S2c, kind: FaultKind::Corrupt, seq: 17 },
            EventKind::Handshake { ok: false },
            EventKind::WindowAdvance { in_flight: 32, admitted: 40, done: 8 },
            EventKind::ResumeOffer { files: 12 },
            EventKind::ResumeAccept { accepted: 10, declined: 2 },
            EventKind::ResumeReject { reason: ResumeRejectTag::ConfigMismatch },
            EventKind::CacheHit { file_id: 7 },
            EventKind::HashCacheHit { bytes: 16384 },
            EventKind::HashCacheMiss { bytes: 512 },
            EventKind::HashCacheDerived { bytes: 2048 },
            EventKind::SlowSession { phase: PhaseTag::Delta, waited_us: 2_000_000 },
        ];
        for (i, kind) in events.into_iter().enumerate() {
            let ev = TraceEvent { t_us: i as u64 * 10, kind };
            let line = render_line(&ev);
            let parsed = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(parsed.v, u64::from(SCHEMA_VERSION), "{line}");
            assert_eq!(parsed.t_us, ev.t_us, "{line}");
            assert_eq!(parsed.kind, kind.name(), "{line}");
        }
    }

    #[test]
    fn field_accessors_find_values() {
        let ev = TraceEvent {
            t_us: 5,
            kind: EventKind::FaultInjected { dir: DirTag::C2s, kind: FaultKind::Drop, seq: 9 },
        };
        let parsed = parse_line(&render_line(&ev)).unwrap();
        assert_eq!(parsed.str_field("dir"), Some("c2s"));
        assert_eq!(parsed.str_field("fault"), Some("drop"));
        assert_eq!(parsed.u64_field("seq"), Some(9));
        assert_eq!(parsed.bool_field("seq"), None);
        assert_eq!(parsed.u64_field("missing"), None);
    }

    #[test]
    fn malformed_lines_are_rejected_with_reasons() {
        for bad in [
            "",
            "{}",
            "not json",
            "{\"v\":1,\"t_us\":2}",                         // missing kind
            "{\"t_us\":2,\"kind\":\"handshake\"}",          // missing v
            "{\"v\":1,\"t_us\":2,\"kind\":\"x\"} trailing", // trailing bytes
            "{\"v\":\"1\",\"t_us\":2,\"kind\":\"x\"}",      // v wrong type
            "{\"v\":1,\"t_us\":2,\"kind\":\"x\",\"s\":\"a\\\"b\"}", // escape
            "{\"v\":1,\"t_us\":2,\"kind\":\"x\",\"n\":-3}", // negative
            "{\"v\":1,\"t_us\":2,\"kind\":\"x\",\"o\":{}}", // nesting
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn journal_is_one_line_per_event() {
        let evs = [
            TraceEvent { t_us: 0, kind: EventKind::SessionStart { file_id: 0 } },
            TraceEvent {
                t_us: 1,
                kind: EventKind::SessionEnd { file_id: 0, ok: true, fell_back: false },
            },
        ];
        let text = render_journal(&evs);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        for line in text.lines() {
            parse_line(line).unwrap();
        }
    }
}
