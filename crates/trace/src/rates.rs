//! Windowed rate estimation over cumulative metric snapshots.
//!
//! Prometheus counters only become rates after a scraper applies
//! `rate()`; an operator staring at `msync top` has no scraper. A
//! [`RateWindows`] keeps a short ring of timestamped *cumulative*
//! counter samples and answers "bytes/sec, sessions/sec, hash-cache
//! hit-rate over the last 10s/60s" directly, by differencing the
//! newest sample against the oldest one still inside each window. The
//! ring is fed from the daemon's existing aggregate snapshot — no new
//! counters, just periodic sampling of ones already maintained.

use crate::metrics::MetricsSnapshot;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One cumulative sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RateSample {
    t_us: u64,
    bytes: u64,
    sessions: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// The reporting windows, widest last.
const WINDOWS: [(&str, u64); 2] = [("10s", 10_000_000), ("60s", 60_000_000)];

/// Minimum spacing between retained samples; closer submissions are
/// ignored so several worker threads can sample unconditionally.
const MIN_SPACING_US: u64 = 500_000;

/// A bounded ring of cumulative samples with windowed differencing.
#[derive(Debug, Default)]
pub struct RateWindows {
    samples: VecDeque<RateSample>,
}

/// Rates over one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRates {
    /// Window label (`"10s"` / `"60s"`).
    pub window: &'static str,
    /// Wire bytes per second.
    pub bytes_per_sec: f64,
    /// Sessions finished per second.
    pub sessions_per_sec: f64,
    /// Hash-cache hit ratio in `[0, 1]` (0 with no lookups).
    pub hash_cache_hit_ratio: f64,
}

impl RateWindows {
    /// An empty estimator.
    #[must_use]
    pub fn new() -> Self {
        RateWindows { samples: VecDeque::new() }
    }

    /// Submit one cumulative sample taken from the daemon aggregate at
    /// clock reading `t_us`. Out-of-order or too-frequent submissions
    /// are dropped; the ring is trimmed to the widest window.
    pub fn sample(&mut self, t_us: u64, snap: &MetricsSnapshot) {
        if let Some(last) = self.samples.back() {
            if t_us < last.t_us + MIN_SPACING_US {
                return;
            }
        }
        self.samples.push_back(RateSample {
            t_us,
            bytes: snap.total_bytes(),
            sessions: snap.sessions_ended,
            cache_hits: snap.hash_cache_hits,
            cache_misses: snap.hash_cache_misses,
        });
        let horizon = WINDOWS[WINDOWS.len() - 1].1;
        // Keep one sample older than the horizon as the diff base.
        while self.samples.len() > 2 && self.samples[1].t_us + horizon < t_us {
            self.samples.pop_front();
        }
    }

    /// Number of retained samples (tests / debugging).
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been retained yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Rates for every window as of `now_us`. With fewer than two
    /// samples in a window every rate is 0.
    #[must_use]
    pub fn rates(&self, now_us: u64) -> Vec<WindowRates> {
        WINDOWS
            .iter()
            .map(|&(window, width_us)| {
                let newest = self.samples.back();
                let oldest = self.samples.iter().find(|s| s.t_us + width_us >= now_us).or(newest);
                match (oldest, newest) {
                    (Some(a), Some(b)) if b.t_us > a.t_us => {
                        let dt_secs = (b.t_us - a.t_us) as f64 / 1e6;
                        let lookups =
                            (b.cache_hits - a.cache_hits) + (b.cache_misses - a.cache_misses);
                        WindowRates {
                            window,
                            bytes_per_sec: (b.bytes - a.bytes) as f64 / dt_secs,
                            sessions_per_sec: (b.sessions - a.sessions) as f64 / dt_secs,
                            hash_cache_hit_ratio: if lookups == 0 {
                                0.0
                            } else {
                                (b.cache_hits - a.cache_hits) as f64 / lookups as f64
                            },
                        }
                    }
                    _ => WindowRates {
                        window,
                        bytes_per_sec: 0.0,
                        sessions_per_sec: 0.0,
                        hash_cache_hit_ratio: 0.0,
                    },
                }
            })
            .collect()
    }

    /// Render the windowed rates as Prometheus gauge series, appended
    /// to the counter exposition by the `stats` admin verb.
    #[must_use]
    pub fn render_gauges(&self, now_us: u64) -> String {
        let rates = self.rates(now_us);
        let mut out = String::new();
        for (name, pick) in [
            ("msync_rate_bytes_per_sec", 0usize),
            ("msync_rate_sessions_per_sec", 1),
            ("msync_rate_hash_cache_hit_ratio", 2),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for r in &rates {
                let v = match pick {
                    0 => r.bytes_per_sec,
                    1 => r.sessions_per_sec,
                    _ => r.hash_cache_hit_ratio,
                };
                let _ = writeln!(out, "{name}{{window=\"{}\"}} {v:.3}", r.window);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DirTag, EventKind, PhaseTag};

    fn snap_with(bytes: u64, sessions: u64, hits: u64, misses: u64) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.apply(&EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Delta, bytes });
        m.sessions_ended = sessions;
        m.hash_cache_hits = hits;
        m.hash_cache_misses = misses;
        m
    }

    #[test]
    fn differencing_yields_per_second_rates() {
        let mut rw = RateWindows::new();
        rw.sample(0, &snap_with(0, 0, 0, 0));
        rw.sample(2_000_000, &snap_with(1_000_000, 4, 3, 1));
        let rates = rw.rates(2_000_000);
        assert_eq!(rates.len(), 2);
        let ten = &rates[0];
        assert_eq!(ten.window, "10s");
        assert!((ten.bytes_per_sec - 500_000.0).abs() < 1e-6, "{ten:?}");
        assert!((ten.sessions_per_sec - 2.0).abs() < 1e-9, "{ten:?}");
        assert!((ten.hash_cache_hit_ratio - 0.75).abs() < 1e-9, "{ten:?}");
    }

    #[test]
    fn narrow_window_ignores_old_samples() {
        let mut rw = RateWindows::new();
        // A burst long ago, then silence.
        rw.sample(0, &snap_with(0, 0, 0, 0));
        rw.sample(1_000_000, &snap_with(9_000_000, 1, 0, 0));
        // 50s later, one more idle sample.
        rw.sample(51_000_000, &snap_with(9_000_000, 1, 0, 0));
        let rates = rw.rates(51_000_000);
        // 10s window: only the idle tail → 0. 60s window: sees the burst.
        assert!((rates[0].bytes_per_sec).abs() < 1e-9, "{rates:?}");
        assert!(rates[1].bytes_per_sec > 0.0, "{rates:?}");
    }

    #[test]
    fn too_frequent_and_out_of_order_samples_are_dropped() {
        let mut rw = RateWindows::new();
        rw.sample(1_000_000, &snap_with(10, 0, 0, 0));
        rw.sample(1_100_000, &snap_with(20, 0, 0, 0)); // < MIN_SPACING_US later
        rw.sample(900_000, &snap_with(30, 0, 0, 0)); // out of order
        assert_eq!(rw.len(), 1);
    }

    #[test]
    fn ring_is_trimmed_to_the_widest_window() {
        let mut rw = RateWindows::new();
        for i in 0..300u64 {
            rw.sample(i * 1_000_000, &snap_with(i * 100, i, 0, 0));
        }
        // ~60s of 1s-spaced samples plus one older diff base.
        assert!(rw.len() <= 63, "{}", rw.len());
        let rates = rw.rates(299 * 1_000_000);
        // Steady 100 bytes per second in both windows.
        assert!((rates[0].bytes_per_sec - 100.0).abs() < 1.0, "{rates:?}");
        assert!((rates[1].bytes_per_sec - 100.0).abs() < 1.0, "{rates:?}");
    }

    #[test]
    fn gauges_render_every_window() {
        let mut rw = RateWindows::new();
        rw.sample(0, &snap_with(0, 0, 0, 0));
        rw.sample(1_000_000, &snap_with(500, 1, 1, 1));
        let text = rw.render_gauges(1_000_000);
        assert!(text.contains("# TYPE msync_rate_bytes_per_sec gauge"), "{text}");
        assert!(text.contains("msync_rate_bytes_per_sec{window=\"10s\"} 500.000"), "{text}");
        assert!(text.contains("msync_rate_bytes_per_sec{window=\"60s\"} 500.000"), "{text}");
        assert!(text.contains("msync_rate_sessions_per_sec{window=\"10s\"} 1.000"), "{text}");
        assert!(text.contains("msync_rate_hash_cache_hit_ratio{window=\"10s\"} 0.500"), "{text}");
    }
}
