//! Second journal renderer: Chrome `trace_event` JSON.
//!
//! A JSONL journal already carries everything a flamegraph needs —
//! timestamps and per-file phase completion markers — it is just in
//! the wrong shape for `chrome://tracing` / Perfetto. This module
//! re-renders a captured journal as an array of complete (`"ph":"X"`)
//! trace events on three levels: one *session* span covering the whole
//! run (track 0), one *file* span per roster file (track `file_id+1`,
//! from its `session_start` to its `session_end`), and *phase*
//! sub-spans inside each file derived from the completion markers the
//! engine already emits: a `map_round`/`verify_batch`/`delta_phase`
//! event at time `t` closes a span that opened when the file's
//! previous marker fired (or when the file started).
//!
//! Output discipline: the array is rendered one flat object per line,
//! values restricted to unsigned integers and plain strings, so every
//! line (minus its trailing comma) parses with the same strict
//! [`crate::journal::parse_flat_object`] parser the journal uses —
//! the export is verifiable by the workspace's own tooling, not just
//! by a browser.

use crate::journal::{parse_line, FieldValue, JournalLine};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rendered span.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Span {
    name: String,
    cat: &'static str,
    ts: u64,
    dur: u64,
    tid: u64,
}

fn file_id_of(line: &JournalLine) -> Option<u64> {
    line.fields.iter().find(|(k, _)| k == "file_id").and_then(|(_, v)| match v {
        FieldValue::U64(n) => Some(*n),
        _ => None,
    })
}

/// Convert a JSONL journal into Chrome `trace_event` JSON.
///
/// # Errors
/// A description naming the first unparseable line, or an error for a
/// journal with no events.
pub fn render_chrome_trace(journal: &str) -> Result<String, String> {
    let mut lines = Vec::new();
    for (i, raw) in journal.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let line = parse_line(raw).map_err(|e| format!("journal line {}: {e}", i + 1))?;
        lines.push(line);
    }
    if lines.is_empty() {
        return Err("journal has no events".to_owned());
    }

    let first_t = lines.iter().map(|l| l.t_us).min().unwrap_or(0);
    let last_t = lines.iter().map(|l| l.t_us).max().unwrap_or(0);
    let mut spans = vec![Span {
        name: "session".to_owned(),
        cat: "session",
        ts: first_t,
        dur: last_t - first_t,
        tid: 0,
    }];

    // Per-file bounds and the rolling "previous marker" for sub-spans.
    struct FileTrack {
        start: u64,
        end: u64,
        prev_marker: u64,
        phases: Vec<Span>,
    }
    let mut files: BTreeMap<u64, FileTrack> = BTreeMap::new();
    for line in &lines {
        let Some(fid) = file_id_of(line) else { continue };
        let track = files.entry(fid).or_insert(FileTrack {
            start: line.t_us,
            end: line.t_us,
            prev_marker: line.t_us,
            phases: Vec::new(),
        });
        track.end = track.end.max(line.t_us);
        if matches!(line.kind.as_str(), "map_round" | "verify_batch" | "delta_phase") {
            track.phases.push(Span {
                name: line.kind.clone(),
                cat: "phase",
                ts: track.prev_marker,
                dur: line.t_us - track.prev_marker,
                tid: fid + 1,
            });
            track.prev_marker = line.t_us;
        }
    }
    for (fid, track) in files {
        spans.push(Span {
            name: format!("file_{fid}"),
            cat: "file",
            ts: track.start,
            dur: track.end - track.start,
            tid: fid + 1,
        });
        spans.extend(track.phases);
    }

    let mut out = String::with_capacity(spans.len() * 96 + 4);
    out.push_str("[\n");
    for (i, s) in spans.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            s.name, s.cat, s.ts, s.dur, s.tid
        );
        out.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DirTag, EventKind, PhaseTag, TraceEvent};
    use crate::journal::{parse_flat_object, render_journal};

    fn sample_journal() -> String {
        let evs = [
            TraceEvent { t_us: 1_000, kind: EventKind::Handshake { ok: true } },
            TraceEvent { t_us: 1_100, kind: EventKind::SessionStart { file_id: 0 } },
            TraceEvent {
                t_us: 1_150,
                kind: EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Map, bytes: 64 },
            },
            TraceEvent {
                t_us: 1_400,
                kind: EventKind::MapRound { file_id: 0, block_size: 1024, items: 4, candidates: 2 },
            },
            TraceEvent {
                t_us: 1_700,
                kind: EventKind::VerifyBatch { file_id: 0, candidates: 2, confirmed: 2 },
            },
            TraceEvent { t_us: 2_100, kind: EventKind::DeltaPhase { file_id: 0, delta_bytes: 40 } },
            TraceEvent {
                t_us: 2_200,
                kind: EventKind::SessionEnd { file_id: 0, ok: true, fell_back: false },
            },
            TraceEvent { t_us: 2_300, kind: EventKind::SessionStart { file_id: 1 } },
            TraceEvent { t_us: 2_800, kind: EventKind::DeltaPhase { file_id: 1, delta_bytes: 9 } },
            TraceEvent {
                t_us: 3_000,
                kind: EventKind::SessionEnd { file_id: 1, ok: true, fell_back: true },
            },
        ];
        render_journal(&evs)
    }

    /// Parse the rendered array back into flat objects via the strict
    /// journal-subset parser.
    fn parse_spans(text: &str) -> Vec<Vec<(String, crate::journal::FieldValue)>> {
        let mut spans = Vec::new();
        for line in text.lines() {
            if line == "[" || line == "]" {
                continue;
            }
            let obj = line.strip_suffix(',').unwrap_or(line);
            spans.push(parse_flat_object(obj).unwrap_or_else(|e| panic!("{line}: {e}")));
        }
        spans
    }

    fn field_u64(span: &[(String, FieldValue)], name: &str) -> u64 {
        span.iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                FieldValue::U64(n) => Some(*n),
                _ => None,
            })
            .unwrap_or_else(|| panic!("missing {name}"))
    }

    fn field_str<'a>(span: &'a [(String, FieldValue)], name: &str) -> &'a str {
        span.iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                FieldValue::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("missing {name}"))
    }

    #[test]
    fn export_round_trips_through_the_strict_parser() {
        let text = render_chrome_trace(&sample_journal()).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"), "{text}");
        let spans = parse_spans(&text);
        // 1 session + 2 files + 3 + 1 phase markers.
        assert_eq!(spans.len(), 7, "{text}");
        for span in &spans {
            assert_eq!(field_str(span, "ph"), "X");
            assert_eq!(field_u64(span, "pid"), 1);
        }
    }

    #[test]
    fn span_hierarchy_and_durations_are_consistent() {
        let text = render_chrome_trace(&sample_journal()).unwrap();
        let spans = parse_spans(&text);
        let session = &spans[0];
        assert_eq!(field_str(session, "name"), "session");
        let (s_ts, s_dur) = (field_u64(session, "ts"), field_u64(session, "dur"));
        assert_eq!((s_ts, s_dur), (1_000, 2_000));
        for span in &spans[1..] {
            let (ts, dur) = (field_u64(span, "ts"), field_u64(span, "dur"));
            // Every child span is contained in the session span.
            assert!(ts >= s_ts && ts + dur <= s_ts + s_dur, "{span:?}");
        }
        // File 0: starts at session_start, ends at session_end, and its
        // phase sub-spans tile it exactly (markers close back-to-back).
        let file0 = spans.iter().find(|s| field_str(s, "name") == "file_0").expect("file_0 span");
        assert_eq!(field_str(file0, "cat"), "file");
        assert_eq!(field_u64(file0, "ts"), 1_100);
        assert_eq!(field_u64(file0, "dur"), 1_100);
        let tid0 = field_u64(file0, "tid");
        let phase_dur: u64 = spans
            .iter()
            .filter(|s| field_str(s, "cat") == "phase" && field_u64(s, "tid") == tid0)
            .map(|s| field_u64(s, "dur"))
            .sum();
        // map_round (300) + verify_batch (300) + delta_phase (400).
        assert_eq!(phase_dur, 1_000);
        assert!(phase_dur <= field_u64(file0, "dur"));
    }

    #[test]
    fn bad_input_is_rejected_with_line_numbers() {
        assert!(render_chrome_trace("").unwrap_err().contains("no events"));
        let err =
            render_chrome_trace("{\"v\":4,\"t_us\":1,\"kind\":\"x\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
