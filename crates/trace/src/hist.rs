//! Fixed-bucket log2 histograms.
//!
//! Why log2: the latencies this workspace observes span loopback frame
//! round-trips (tens of microseconds) to dial-up session durations
//! (minutes) — six orders of magnitude. Sixty-four power-of-two
//! buckets cover the entire `u64` range with constant memory, no
//! allocation, and a bucket lookup that is one `leading_zeros`
//! instruction, so observation is cheap enough to leave on in
//! production paths. Bucket `0` holds exactly the value `0`; bucket
//! `b ≥ 1` holds values in `[2^(b-1), 2^b)`; the last bucket saturates
//! (holds everything from `2^62` up).

/// A 64-bucket log2 histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

/// Number of buckets in every [`Histogram`].
pub const BUCKETS: usize = 64;

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram { counts: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Bucket index for a value: `0 → 0`, else `min(63, 64 - clz(v))`,
    /// i.e. one plus the position of the highest set bit, saturating.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Inclusive-exclusive value range `[lo, hi)` covered by bucket
    /// `i`; the final bucket's `hi` is `u64::MAX` (saturating).
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            _ if i >= BUCKETS - 1 => (1u64 << (BUCKETS - 2), u64::MAX),
            _ => (1u64 << (i - 1), 1u64 << i),
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Observations in bucket `i` (0 for out-of-range `i`).
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Mean observation, or 0 with no data.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`, clamped).
    ///
    /// Bucket-bound guarantee: the returned estimate lies in the same
    /// bucket as the true quantile of the observed values, because the
    /// bucket is located by exact rank arithmetic over exact per-bucket
    /// counts — only the position *within* the bucket is approximated.
    /// The estimate is the bucket's inclusive upper bound, except in
    /// the saturating top bucket where the tracked maximum (which is
    /// exact) is returned. Returns 0 with no data.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target observation in sorted order.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i >= BUCKETS - 1 {
                    return self.max;
                }
                let (_, hi) = Self::bucket_bounds(i);
                return hi - 1;
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The four histograms every recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistKind {
    /// Microseconds between an ARQ message send and its reply.
    FrameRtt,
    /// Microseconds one map-construction round took.
    RoundDuration,
    /// Microseconds one per-file session took.
    SessionDuration,
    /// Wire bytes moved per protocol round.
    BytesPerRound,
}

impl HistKind {
    /// All kinds, in snapshot-array order.
    pub const ALL: [HistKind; 4] = [
        HistKind::FrameRtt,
        HistKind::RoundDuration,
        HistKind::SessionDuration,
        HistKind::BytesPerRound,
    ];

    /// Stable metric name (unit suffix included where applicable).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HistKind::FrameRtt => "frame_rtt_us",
            HistKind::RoundDuration => "round_duration_us",
            HistKind::SessionDuration => "session_duration_us",
            HistKind::BytesPerRound => "bytes_per_round",
        }
    }

    /// Index into the snapshot's histogram array.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            HistKind::FrameRtt => 0,
            HistKind::RoundDuration => 1,
            HistKind::SessionDuration => 2,
            HistKind::BytesPerRound => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Bucket 0 is exactly {0}; bucket b ≥ 1 is [2^(b-1), 2^b).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        for b in 1..BUCKETS - 1 {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_index(lo), b, "low edge of bucket {b}");
            assert_eq!(Histogram::bucket_index(hi - 1), b, "high edge of bucket {b}");
        }
    }

    #[test]
    fn top_bucket_saturates() {
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(1u64 << 63), BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(1u64 << 62), BUCKETS - 1);
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.bucket_count(BUCKETS - 1), 2);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn observe_and_merge_accumulate() {
        let mut a = Histogram::new();
        a.observe(0);
        a.observe(5);
        a.observe(5);
        let mut b = Histogram::new();
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 110);
        assert_eq!(a.max(), 100);
        assert_eq!(a.bucket_count(0), 1);
        assert_eq!(a.bucket_count(Histogram::bucket_index(5)), 2);
        assert_eq!(a.bucket_count(Histogram::bucket_index(100)), 1);
        assert!((a.mean() - 27.5).abs() < 1e-12);
    }

    /// True quantile of a sorted sample at 1-based rank `ceil(q * n)`.
    fn true_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn assert_same_bucket(h: &Histogram, sorted: &[u64], q: f64, label: &str) {
        let truth = true_quantile(sorted, q);
        let est = h.quantile(q);
        assert_eq!(
            Histogram::bucket_index(est),
            Histogram::bucket_index(truth),
            "{label}: q={q} estimate {est} not in the bucket of true value {truth}"
        );
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn quantiles_fall_in_the_true_bucket_for_uniform_input() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=1000).collect();
        for &v in &values {
            h.observe(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_same_bucket(&h, &values, q, "uniform");
        }
    }

    #[test]
    fn quantiles_fall_in_the_true_bucket_for_bimodal_input() {
        // Two tight modes far apart: fast loopback RTTs vs dial-up.
        let mut values = Vec::new();
        values.extend(std::iter::repeat(40u64).take(900));
        values.extend(std::iter::repeat(5_000_000u64).take(100));
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        for q in [0.5, 0.89, 0.91, 0.99] {
            assert_same_bucket(&h, &values, q, "bimodal");
        }
        // p50 sits in the low mode, p99 in the high mode.
        assert!(h.quantile(0.5) < 64);
        assert!(h.quantile(0.99) >= 1 << 22);
    }

    #[test]
    fn quantiles_fall_in_the_true_bucket_for_saturating_input() {
        let mut values = vec![0u64; 10];
        values.extend(std::iter::repeat(u64::MAX - 3).take(90));
        values.sort_unstable();
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        for q in [0.05, 0.5, 0.99] {
            assert_same_bucket(&h, &values, q, "saturating");
        }
        // In the top bucket the tracked max is returned exactly.
        assert_eq!(h.quantile(0.99), u64::MAX - 3);
    }

    #[test]
    fn hist_kind_indices_match_all_order() {
        for (i, k) in HistKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
