//! Live per-session status, derived from the events a session already
//! records.
//!
//! The daemon needs a *live* answer to "what is this session doing
//! right now" without adding instrumentation: every interesting moment
//! already flows through [`crate::Recorder::record`]. A
//! [`StatusHandle`] is attached to a session's recorder
//! ([`crate::Recorder::set_status`]) and folds each recorded event into
//! a small [`SessionStatus`] struct under the recorder's existing
//! lock discipline — no new charge points, no second source of truth.
//! The [`StatusBoard`] holds only weak references, so a session that
//! finishes (dropping its connection, recorder, and handle) vanishes
//! from the board on the next snapshot without explicit deregistration.
//!
//! The same struct powers the slow-session watchdog:
//! [`StatusHandle::check_slow`] compares the time spent in the current
//! protocol phase against a threshold and fires at most once per phase
//! entry, so a stalled session produces one alarm per stall, not a
//! repeating klaxon.

use crate::clock::Clock;
use crate::event::{EventKind, PhaseTag};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError, Weak};

/// A point-in-time view of one live session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStatus {
    /// Board-assigned session id (monotonic per daemon).
    pub id: u64,
    /// Collection bound at handshake; empty until the hello resolves.
    pub collection: String,
    /// Peer address as reported by the socket.
    pub peer: String,
    /// The protocol phase of the most recent wire activity.
    pub phase: PhaseTag,
    /// Files confirmed finished (session ends + resume accepts).
    pub files_done: u64,
    /// Files known to be in play (0 when the roster size is unknown,
    /// e.g. server-side sessions before any window report).
    pub files_total: u64,
    /// Wire bytes received from the peer.
    pub bytes_in: u64,
    /// Wire bytes sent to the peer.
    pub bytes_out: u64,
    /// Frames retransmitted by the ARQ layer.
    pub retransmits: u64,
    /// Client metadata-cache plus server hash-cache hits.
    pub cache_hits: u64,
    /// Clock reading when the session registered.
    pub started_us: u64,
    /// Clock reading when the current phase was entered.
    pub phase_entered_us: u64,
    /// Clock reading of the most recent event.
    pub last_event_us: u64,
    /// Whether the watchdog already fired for the current phase entry.
    pub slow_flagged: bool,
}

impl SessionStatus {
    fn new(id: u64, peer: String, now_us: u64) -> Self {
        SessionStatus {
            id,
            collection: String::new(),
            peer,
            phase: PhaseTag::Setup,
            files_done: 0,
            files_total: 0,
            bytes_in: 0,
            bytes_out: 0,
            retransmits: 0,
            cache_hits: 0,
            started_us: now_us,
            phase_entered_us: now_us,
            last_event_us: now_us,
            slow_flagged: false,
        }
    }

    fn enter_phase(&mut self, phase: PhaseTag, t_us: u64) {
        if self.phase != phase {
            self.phase = phase;
            self.phase_entered_us = t_us;
            self.slow_flagged = false;
        }
    }

    /// Fold one recorded event in. Only fields derivable from the
    /// existing event stream move; everything else is metadata set at
    /// registration.
    fn apply(&mut self, t_us: u64, kind: &EventKind) {
        self.last_event_us = t_us;
        match *kind {
            EventKind::FrameSend { phase, bytes, .. } => {
                self.bytes_out += bytes;
                self.enter_phase(phase, t_us);
            }
            EventKind::FrameRecv { phase, bytes, .. } => {
                self.bytes_in += bytes;
                self.enter_phase(phase, t_us);
            }
            EventKind::Retransmit { frames } => self.retransmits += frames,
            EventKind::SessionStart { file_id } => {
                self.files_total = self.files_total.max(file_id + 1);
            }
            EventKind::SessionEnd { .. } => self.files_done += 1,
            EventKind::WindowAdvance { admitted, done, .. } => {
                self.files_total = self.files_total.max(admitted);
                self.files_done = self.files_done.max(done);
            }
            EventKind::ResumeAccept { accepted, .. } => self.files_done += accepted,
            EventKind::CacheHit { .. } | EventKind::HashCacheHit { .. } => self.cache_hits += 1,
            _ => {}
        }
    }
}

/// A cheap clonable handle onto one session's live status slot.
#[derive(Clone)]
pub struct StatusHandle {
    slot: Arc<Mutex<SessionStatus>>,
}

impl StatusHandle {
    fn lock(&self) -> std::sync::MutexGuard<'_, SessionStatus> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fold one recorded event into the status (called by the
    /// recorder, under its own lock, at every existing charge point).
    pub fn apply(&self, t_us: u64, kind: &EventKind) {
        self.lock().apply(t_us, kind);
    }

    /// Record which collection the session bound at handshake.
    pub fn set_collection(&self, name: &str) {
        self.lock().collection = name.to_owned();
    }

    /// Copy of the current status.
    #[must_use]
    pub fn snapshot(&self) -> SessionStatus {
        self.lock().clone()
    }

    /// Watchdog check: if the session has sat in its current phase
    /// longer than `threshold_us` and no alarm fired for this phase
    /// entry yet, flag it and return `(phase, waited_us)`. Subsequent
    /// calls return `None` until the session changes phase.
    #[must_use]
    pub fn check_slow(&self, now_us: u64, threshold_us: u64) -> Option<(PhaseTag, u64)> {
        let mut st = self.lock();
        let waited = now_us.saturating_sub(st.phase_entered_us);
        if !st.slow_flagged && waited > threshold_us {
            st.slow_flagged = true;
            Some((st.phase, waited))
        } else {
            None
        }
    }
}

impl std::fmt::Debug for StatusHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("StatusHandle").field("id", &st.id).field("phase", &st.phase).finish()
    }
}

struct BoardInner {
    next_id: u64,
    slots: Vec<Weak<Mutex<SessionStatus>>>,
}

/// The daemon-wide registry of live session statuses.
pub struct StatusBoard {
    clock: Arc<dyn Clock>,
    inner: Mutex<BoardInner>,
}

impl StatusBoard {
    /// A new empty board stamping registrations with `clock` — the
    /// same clock the sessions' recorders use, so ages and phase
    /// durations share one epoch.
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        StatusBoard { clock, inner: Mutex::new(BoardInner { next_id: 1, slots: Vec::new() }) }
    }

    /// Register a new session, returning its live handle. Dead slots
    /// (sessions whose handles were all dropped) are pruned on the way.
    pub fn register(&self, peer: &str) -> StatusHandle {
        let now_us = self.clock.now_micros();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.slots.retain(|w| w.strong_count() > 0);
        let id = inner.next_id;
        inner.next_id += 1;
        let slot = Arc::new(Mutex::new(SessionStatus::new(id, peer.to_owned(), now_us)));
        inner.slots.push(Arc::downgrade(&slot));
        StatusHandle { slot }
    }

    /// Snapshot every live session, sorted by id. Dead slots are pruned.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SessionStatus> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.slots.retain(|w| w.strong_count() > 0);
        let mut out: Vec<SessionStatus> = inner
            .slots
            .iter()
            .filter_map(Weak::upgrade)
            .map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Number of live sessions.
    #[must_use]
    pub fn active(&self) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.slots.retain(|w| w.strong_count() > 0);
        inner.slots.len()
    }

    /// The board's clock reading (shared with its sessions).
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }
}

impl std::fmt::Debug for StatusBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatusBoard").field("active", &self.active()).finish()
    }
}

/// Render a session table as the `sessions` admin payload: one
/// `key=value` line per session, whitespace-splittable (no value the
/// daemon emits contains spaces), sorted by id.
#[must_use]
pub fn render_sessions(sessions: &[SessionStatus], now_us: u64) -> String {
    let mut out = String::new();
    for s in sessions {
        let _ = writeln!(
            out,
            "id={} collection={} peer={} phase={} files_done={} files_total={} bytes_in={} \
             bytes_out={} retransmits={} cache_hits={} age_us={} phase_age_us={} slow={}",
            s.id,
            if s.collection.is_empty() { "-" } else { &s.collection },
            if s.peer.is_empty() { "-" } else { &s.peer },
            s.phase.as_str(),
            s.files_done,
            s.files_total,
            s.bytes_in,
            s.bytes_out,
            s.retransmits,
            s.cache_hits,
            now_us.saturating_sub(s.started_us),
            now_us.saturating_sub(s.phase_entered_us),
            s.slow_flagged,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::event::DirTag;

    fn board() -> (StatusBoard, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::fixed(1_000));
        (StatusBoard::new(clock.clone()), clock)
    }

    #[test]
    fn events_drive_the_status_fields() {
        let (board, _clock) = board();
        let h = board.register("127.0.0.1:9");
        h.set_collection("crawl");
        h.apply(
            1_010,
            &EventKind::FrameRecv { dir: DirTag::C2s, phase: PhaseTag::Setup, bytes: 40 },
        );
        h.apply(1_020, &EventKind::FrameSend { dir: DirTag::S2c, phase: PhaseTag::Map, bytes: 70 });
        h.apply(1_030, &EventKind::Retransmit { frames: 2 });
        h.apply(1_040, &EventKind::HashCacheHit { bytes: 4096 });
        h.apply(1_050, &EventKind::ResumeAccept { accepted: 3, declined: 1 });
        let s = h.snapshot();
        assert_eq!(s.collection, "crawl");
        assert_eq!(s.peer, "127.0.0.1:9");
        assert_eq!(s.phase, PhaseTag::Map);
        assert_eq!(s.phase_entered_us, 1_020);
        assert_eq!(s.bytes_in, 40);
        assert_eq!(s.bytes_out, 70);
        assert_eq!(s.retransmits, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.files_done, 3);
        assert_eq!(s.last_event_us, 1_050);
    }

    #[test]
    fn board_assigns_ids_and_prunes_dropped_sessions() {
        let (board, _clock) = board();
        let a = board.register("peer-a");
        let b = board.register("peer-b");
        assert_eq!(board.active(), 2);
        let snap = board.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!((snap[0].id, snap[1].id), (1, 2));
        drop(a);
        assert_eq!(board.active(), 1);
        assert_eq!(board.snapshot()[0].peer, "peer-b");
        drop(b);
        assert!(board.snapshot().is_empty());
        // Ids keep counting up; no reuse after pruning.
        assert_eq!(board.register("peer-c").snapshot().id, 3);
    }

    #[test]
    fn watchdog_fires_once_per_phase_entry() {
        let (board, _clock) = board();
        let h = board.register("p");
        // Registered at t=1000, Setup phase. Threshold 500µs.
        assert_eq!(h.check_slow(1_400, 500), None);
        assert_eq!(h.check_slow(1_600, 500), Some((PhaseTag::Setup, 600)));
        // Flagged: no refire while still in Setup.
        assert_eq!(h.check_slow(9_999, 500), None);
        // Entering a new phase rearms the watchdog.
        h.apply(10_000, &EventKind::FrameSend { dir: DirTag::S2c, phase: PhaseTag::Map, bytes: 1 });
        assert_eq!(h.check_slow(10_100, 500), None);
        assert_eq!(h.check_slow(10_700, 500), Some((PhaseTag::Map, 700)));
    }

    #[test]
    fn session_table_renders_one_line_per_session() {
        let (board, _clock) = board();
        let h = board.register("127.0.0.1:5000");
        h.set_collection("docs");
        h.apply(1_500, &EventKind::FrameSend { dir: DirTag::S2c, phase: PhaseTag::Map, bytes: 9 });
        let text = render_sessions(&board.snapshot(), 2_000);
        assert_eq!(text.lines().count(), 1);
        let line = text.lines().next().unwrap();
        assert!(line.contains("id=1"), "{line}");
        assert!(line.contains("collection=docs"), "{line}");
        assert!(line.contains("peer=127.0.0.1:5000"), "{line}");
        assert!(line.contains("phase=map"), "{line}");
        assert!(line.contains("bytes_out=9"), "{line}");
        assert!(line.contains("age_us=1000"), "{line}");
        assert!(line.contains("phase_age_us=500"), "{line}");
    }
}
