//! The per-session event recorder.
//!
//! A [`Recorder`] is a cheap clonable handle; clones share one bounded
//! ring of events and one incrementally-maintained
//! [`MetricsSnapshot`]. The default recorder is *off*: it holds no
//! allocation, and every operation on it is a no-op that compiles down
//! to an `Option` check, so instrumentation can be left in place on
//! every hot path and cost nothing when tracing is not requested.

use crate::clock::{Clock, SystemClock};
use crate::event::{EventKind, TraceEvent};
use crate::hist::HistKind;
use crate::metrics::MetricsSnapshot;
use crate::status::StatusHandle;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Maximum events kept in the ring; older events are evicted (and
/// counted as dropped) beyond this.
const RING_CAPACITY: usize = 65_536;

struct State {
    ring: VecDeque<TraceEvent>,
    dropped: u64,
    snap: MetricsSnapshot,
    /// Live session-status slot fed at every recorded event; the
    /// derivation point for the daemon's `sessions` admin verb.
    status: Option<StatusHandle>,
}

struct Inner {
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
}

/// A shared handle for recording trace events and histogram
/// observations. `Recorder::off()` (the default) disables everything.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A disabled recorder: all operations are no-ops.
    #[must_use]
    pub fn off() -> Self {
        Recorder { inner: None }
    }

    /// An enabled recorder on the monotonic [`SystemClock`].
    #[must_use]
    pub fn system() -> Self {
        Self::with_clock(Arc::new(SystemClock::new()))
    }

    /// An enabled recorder on the given clock (tests pass a
    /// [`crate::ManualClock`] for deterministic timestamps).
    #[must_use]
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                clock,
                state: Mutex::new(State {
                    ring: VecDeque::new(),
                    dropped: 0,
                    snap: MetricsSnapshot::new(),
                    status: None,
                }),
            })),
        }
    }

    /// Whether this recorder actually records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current clock reading, or 0 when disabled. Instrumented code
    /// uses this to measure durations without touching `std::time`.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.clock.now_micros(),
            None => 0,
        }
    }

    /// Record one event, stamped with the current clock reading.
    pub fn record(&self, kind: EventKind) {
        let Some(inner) = &self.inner else { return };
        let t_us = inner.clock.now_micros();
        let mut st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.snap.apply(&kind);
        if let Some(status) = &st.status {
            status.apply(t_us, &kind);
        }
        st.snap.events_recorded += 1;
        if st.ring.len() >= RING_CAPACITY {
            st.ring.pop_front();
            st.dropped += 1;
            st.snap.events_dropped += 1;
        }
        st.ring.push_back(TraceEvent { t_us, kind });
    }

    /// Attach a live status slot: every subsequently recorded event is
    /// also folded into it (status derivation happens at the existing
    /// record calls — no extra instrumentation sites). No-op when
    /// disabled.
    pub fn set_status(&self, handle: StatusHandle) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.status = Some(handle);
    }

    /// Detach the status slot (admin connections de-list themselves
    /// from the session board this way).
    pub fn clear_status(&self) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.status = None;
    }

    /// Record one histogram observation.
    pub fn observe(&self, kind: HistKind, v: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.snap.observe(kind, v);
    }

    /// Take all buffered events out of the ring (metrics are kept).
    #[must_use]
    pub fn drain_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => {
                let mut st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.ring.drain(..).collect()
            }
            None => Vec::new(),
        }
    }

    /// Copy of the currently buffered events.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => {
                let st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.ring.iter().copied().collect()
            }
            None => Vec::new(),
        }
    }

    /// Copy of the aggregated metrics so far.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => {
                let st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.snap.clone()
            }
            None => MetricsSnapshot::new(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => {
                let st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
                f.debug_struct("Recorder")
                    .field("enabled", &true)
                    .field("buffered", &st.ring.len())
                    .field("dropped", &st.dropped)
                    .finish()
            }
            None => f.debug_struct("Recorder").field("enabled", &false).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::event::{DirTag, PhaseTag};

    #[test]
    fn off_recorder_is_a_no_op() {
        let r = Recorder::off();
        assert!(!r.is_enabled());
        assert_eq!(r.now_micros(), 0);
        r.record(EventKind::Handshake { ok: true });
        r.observe(HistKind::FrameRtt, 10);
        assert!(r.events().is_empty());
        assert!(r.drain_events().is_empty());
        assert_eq!(r.snapshot(), MetricsSnapshot::new());
    }

    #[test]
    fn clones_share_state_and_stamp_the_clock() {
        let r = Recorder::with_clock(Arc::new(ManualClock::ticking(100, 10)));
        let r2 = r.clone();
        r.record(EventKind::SessionStart { file_id: 0 });
        r2.record(EventKind::SessionEnd { file_id: 0, ok: true, fell_back: false });
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].t_us, 100);
        assert_eq!(evs[1].t_us, 110);
        let snap = r2.snapshot();
        assert_eq!(snap.sessions_started, 1);
        assert_eq!(snap.sessions_ended, 1);
        assert_eq!(snap.events_recorded, 2);
    }

    #[test]
    fn drain_empties_the_ring_but_keeps_metrics() {
        let r = Recorder::with_clock(Arc::new(ManualClock::fixed(0)));
        r.record(EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Map, bytes: 7 });
        assert_eq!(r.drain_events().len(), 1);
        assert!(r.events().is_empty());
        assert_eq!(r.snapshot().dir_phase_bytes(DirTag::C2s, PhaseTag::Map), 7);
    }

    #[test]
    fn attached_status_follows_recorded_events() {
        use crate::status::StatusBoard;
        let clock: Arc<ManualClock> = Arc::new(ManualClock::ticking(1_000, 10));
        let board = StatusBoard::new(clock.clone());
        let r = Recorder::with_clock(clock);
        let handle = board.register("peer");
        r.set_status(handle.clone());
        r.record(EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Map, bytes: 64 });
        r.record(EventKind::Retransmit { frames: 3 });
        let s = handle.snapshot();
        assert_eq!(s.bytes_out, 64);
        assert_eq!(s.retransmits, 3);
        assert_eq!(s.phase, PhaseTag::Map);
        r.clear_status();
        r.record(EventKind::Retransmit { frames: 1 });
        assert_eq!(handle.snapshot().retransmits, 3);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let r = Recorder::with_clock(Arc::new(ManualClock::ticking(0, 1)));
        let extra = 10u64;
        for i in 0..(RING_CAPACITY as u64 + extra) {
            r.record(EventKind::SessionStart { file_id: i });
        }
        let evs = r.events();
        assert_eq!(evs.len(), RING_CAPACITY);
        // The oldest `extra` events were evicted.
        assert_eq!(evs[0].kind, EventKind::SessionStart { file_id: extra });
        let snap = r.snapshot();
        assert_eq!(snap.events_dropped, extra);
        assert_eq!(snap.events_recorded, RING_CAPACITY as u64 + extra);
        // Counters still reflect every recorded event, dropped or not.
        assert_eq!(snap.sessions_started, RING_CAPACITY as u64 + extra);
    }
}
