//! Process-wide metric aggregation and the Prometheus-style text sink.
//!
//! A [`MetricsSnapshot`] is what a [`crate::Recorder`] maintains
//! incrementally as events arrive, and what the serve daemon merges
//! across sessions into its live process totals. The byte grid is the
//! same `[direction][phase]` shape as `TrafficStats`, which is what
//! lets tests assert `daemon metrics totals == summed per-session
//! TrafficStats` exactly.

use crate::event::{DirTag, EventKind, PhaseTag};
use crate::hist::{HistKind, Histogram, BUCKETS};
use std::fmt::Write as _;

/// Counters and histograms aggregated from a stream of events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Wire bytes by `[direction][phase]` (indices from
    /// [`DirTag::index`] / [`PhaseTag::index`]).
    pub bytes: [[u64; 4]; 2],
    /// `FrameSend` events seen.
    pub frames_sent: u64,
    /// `FrameRecv` events seen (attribution batches, not raw frames).
    pub frames_recv: u64,
    /// Frames retransmitted by the ARQ layer.
    pub retransmits: u64,
    /// Backoff (deadline-growth) events.
    pub backoffs: u64,
    /// Faults injected by the deterministic fault layer.
    pub faults: u64,
    /// Handshakes that agreed on a configuration.
    pub handshakes_ok: u64,
    /// Handshakes that were refused.
    pub handshakes_failed: u64,
    /// Per-file sessions started.
    pub sessions_started: u64,
    /// Per-file sessions ended.
    pub sessions_ended: u64,
    /// Sessions that fell back to a full transfer.
    pub fallbacks: u64,
    /// Events recorded (including any later evicted from the ring).
    pub events_recorded: u64,
    /// Events evicted from the bounded ring.
    pub events_dropped: u64,
    /// Resume offers presented or received.
    pub resume_offers: u64,
    /// Files confirmed by resume accept verdicts.
    pub resume_accepted_files: u64,
    /// Resume offers rejected outright.
    pub resume_rejects: u64,
    /// Files satisfied by the client metadata cache.
    pub cache_hits: u64,
    /// Server hash-cache lookups satisfied from memory.
    pub hash_cache_hits: u64,
    /// Server hash-cache lookups that had to hash file data.
    pub hash_cache_misses: u64,
    /// Source bytes whose rehash the server hash cache avoided.
    pub hash_cache_hit_bytes: u64,
    /// Source bytes the server actually hashed on cache misses — the
    /// map-phase hash work; ≈ 0 on a warm cache.
    pub hash_cache_miss_bytes: u64,
    /// Map-phase digests obtained by sibling decomposition (parent
    /// digest minus the other child) instead of a scan or a hit.
    pub hash_cache_derived: u64,
    /// Source bytes those derivations covered without scanning.
    pub hash_cache_derived_bytes: u64,
    /// Slow-session watchdog firings (one per phase a session stalled
    /// in past the configured threshold).
    pub slow_sessions: u64,
    /// The four latency/size histograms, indexed by [`HistKind::index`].
    pub hists: [Histogram; 4],
}

impl MetricsSnapshot {
    /// An all-zero snapshot.
    #[must_use]
    pub fn new() -> Self {
        MetricsSnapshot {
            bytes: [[0; 4]; 2],
            frames_sent: 0,
            frames_recv: 0,
            retransmits: 0,
            backoffs: 0,
            faults: 0,
            handshakes_ok: 0,
            handshakes_failed: 0,
            sessions_started: 0,
            sessions_ended: 0,
            fallbacks: 0,
            events_recorded: 0,
            events_dropped: 0,
            resume_offers: 0,
            resume_accepted_files: 0,
            resume_rejects: 0,
            cache_hits: 0,
            hash_cache_hits: 0,
            hash_cache_misses: 0,
            hash_cache_hit_bytes: 0,
            hash_cache_miss_bytes: 0,
            hash_cache_derived: 0,
            hash_cache_derived_bytes: 0,
            slow_sessions: 0,
            hists: [Histogram::new(), Histogram::new(), Histogram::new(), Histogram::new()],
        }
    }

    /// Tally one event into the counters. (Histograms are fed through
    /// [`MetricsSnapshot::observe`], not through events.)
    pub fn apply(&mut self, kind: &EventKind) {
        match *kind {
            EventKind::SessionStart { .. } => self.sessions_started += 1,
            EventKind::SessionEnd { fell_back, .. } => {
                self.sessions_ended += 1;
                self.fallbacks += u64::from(fell_back);
            }
            EventKind::FrameSend { dir, phase, bytes } => {
                self.bytes[dir.index()][phase.index()] += bytes;
                self.frames_sent += 1;
            }
            EventKind::FrameRecv { dir, phase, bytes } => {
                self.bytes[dir.index()][phase.index()] += bytes;
                self.frames_recv += 1;
            }
            EventKind::Retransmit { frames } => self.retransmits += frames,
            EventKind::Backoff { .. } => self.backoffs += 1,
            EventKind::FaultInjected { .. } => self.faults += 1,
            EventKind::Handshake { ok } => {
                if ok {
                    self.handshakes_ok += 1;
                } else {
                    self.handshakes_failed += 1;
                }
            }
            EventKind::ResumeOffer { .. } => self.resume_offers += 1,
            EventKind::ResumeAccept { accepted, .. } => self.resume_accepted_files += accepted,
            EventKind::ResumeReject { .. } => self.resume_rejects += 1,
            EventKind::CacheHit { .. } => self.cache_hits += 1,
            EventKind::HashCacheHit { bytes } => {
                self.hash_cache_hits += 1;
                self.hash_cache_hit_bytes += bytes;
            }
            EventKind::HashCacheMiss { bytes } => {
                self.hash_cache_misses += 1;
                self.hash_cache_miss_bytes += bytes;
            }
            EventKind::HashCacheDerived { bytes } => {
                self.hash_cache_derived += 1;
                self.hash_cache_derived_bytes += bytes;
            }
            EventKind::SlowSession { .. } => self.slow_sessions += 1,
            EventKind::MapRound { .. }
            | EventKind::VerifyBatch { .. }
            | EventKind::DeltaPhase { .. }
            | EventKind::WindowAdvance { .. } => {}
        }
    }

    /// Record one histogram observation.
    pub fn observe(&mut self, kind: HistKind, v: u64) {
        self.hists[kind.index()].observe(v);
    }

    /// Bytes charged to one direction+phase cell.
    #[must_use]
    pub fn dir_phase_bytes(&self, dir: DirTag, phase: PhaseTag) -> u64 {
        self.bytes[dir.index()][phase.index()]
    }

    /// Total wire bytes across the grid.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }

    /// Fold another snapshot into this one (daemon-wide aggregation).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (row, orow) in self.bytes.iter_mut().zip(&other.bytes) {
            for (cell, ocell) in row.iter_mut().zip(orow) {
                *cell += ocell;
            }
        }
        self.frames_sent += other.frames_sent;
        self.frames_recv += other.frames_recv;
        self.retransmits += other.retransmits;
        self.backoffs += other.backoffs;
        self.faults += other.faults;
        self.handshakes_ok += other.handshakes_ok;
        self.handshakes_failed += other.handshakes_failed;
        self.sessions_started += other.sessions_started;
        self.sessions_ended += other.sessions_ended;
        self.fallbacks += other.fallbacks;
        self.events_recorded += other.events_recorded;
        self.events_dropped += other.events_dropped;
        self.resume_offers += other.resume_offers;
        self.resume_accepted_files += other.resume_accepted_files;
        self.resume_rejects += other.resume_rejects;
        self.cache_hits += other.cache_hits;
        self.hash_cache_hits += other.hash_cache_hits;
        self.hash_cache_misses += other.hash_cache_misses;
        self.hash_cache_hit_bytes += other.hash_cache_hit_bytes;
        self.hash_cache_miss_bytes += other.hash_cache_miss_bytes;
        self.hash_cache_derived += other.hash_cache_derived;
        self.hash_cache_derived_bytes += other.hash_cache_derived_bytes;
        self.slow_sessions += other.slow_sessions;
        for (h, oh) in self.hists.iter_mut().zip(&other.hists) {
            h.merge(oh);
        }
    }

    /// Render as Prometheus-style exposition text (counters with
    /// `dir`/`phase` labels, histograms with cumulative `le` buckets).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.render_prometheus_inner(None)
    }

    /// [`MetricsSnapshot::render_prometheus`] with an extra
    /// `collection="<name>"` label on every series — the per-collection
    /// blocks of the multi-collection daemon's metrics dump. Only
    /// counter/byte series are emitted (no `# TYPE` comments, which the
    /// unlabeled aggregate already declared).
    #[must_use]
    pub fn render_prometheus_collection(&self, collection: &str) -> String {
        self.render_prometheus_inner(Some(collection))
    }

    fn render_prometheus_inner(&self, collection: Option<&str>) -> String {
        let mut out = String::new();
        // `{dir=...}` with no collection, `{dir=...,collection=...}` with.
        let suffix = collection.map_or(String::new(), |c| format!(",collection=\"{c}\""));
        if collection.is_none() {
            let _ = writeln!(out, "# TYPE msync_bytes_total counter");
        }
        for dir in [DirTag::C2s, DirTag::S2c] {
            for phase in [PhaseTag::Setup, PhaseTag::Map, PhaseTag::Delta, PhaseTag::Resume] {
                let _ = writeln!(
                    out,
                    "msync_bytes_total{{dir=\"{}\",phase=\"{}\"{suffix}}} {}",
                    dir.as_str(),
                    phase.as_str(),
                    self.dir_phase_bytes(dir, phase)
                );
            }
        }
        // Bare counters grow `{collection=...}` when labeled.
        let bare = collection.map_or(String::new(), |c| format!("{{collection=\"{c}\"}}"));
        for (name, v) in [
            ("msync_frames_sent_total", self.frames_sent),
            ("msync_frame_recv_batches_total", self.frames_recv),
            ("msync_retransmits_total", self.retransmits),
            ("msync_backoffs_total", self.backoffs),
            ("msync_faults_injected_total", self.faults),
            ("msync_handshakes_ok_total", self.handshakes_ok),
            ("msync_handshakes_failed_total", self.handshakes_failed),
            ("msync_sessions_started_total", self.sessions_started),
            ("msync_sessions_ended_total", self.sessions_ended),
            ("msync_session_fallbacks_total", self.fallbacks),
            ("msync_trace_events_total", self.events_recorded),
            ("msync_trace_events_dropped_total", self.events_dropped),
            ("msync_resume_offers_total", self.resume_offers),
            ("msync_resume_accepted_files_total", self.resume_accepted_files),
            ("msync_resume_rejects_total", self.resume_rejects),
            ("msync_cache_hits_total", self.cache_hits),
            ("msync_hash_cache_hits_total", self.hash_cache_hits),
            ("msync_hash_cache_misses_total", self.hash_cache_misses),
            ("msync_hash_cache_hit_bytes_total", self.hash_cache_hit_bytes),
            ("msync_hash_cache_miss_bytes_total", self.hash_cache_miss_bytes),
            ("msync_hash_cache_derived_total", self.hash_cache_derived),
            ("msync_hash_cache_derived_bytes_total", self.hash_cache_derived_bytes),
            ("msync_slow_sessions_total", self.slow_sessions),
        ] {
            if collection.is_none() {
                let _ = writeln!(out, "# TYPE {name} counter");
            }
            let _ = writeln!(out, "{name}{bare} {v}");
        }
        // The ring-eviction alarm series: present only when events were
        // actually lost, so scrapes can alert on mere existence.
        if self.events_dropped > 0 {
            if collection.is_none() {
                let _ = writeln!(out, "# TYPE msync_trace_dropped_events_total counter");
            }
            let _ = writeln!(out, "msync_trace_dropped_events_total{bare} {}", self.events_dropped);
        }
        if collection.is_some() {
            return out;
        }
        for kind in HistKind::ALL {
            let h = &self.hists[kind.index()];
            let name = format!("msync_{}", kind.as_str());
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for b in 0..BUCKETS {
                let n = h.bucket_count(b);
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let (_, hi) = Histogram::bucket_bounds(b);
                let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// Render as one flat JSON object — the `stats json` admin answer.
    /// Every value is an unsigned integer, so the output parses with
    /// [`crate::journal::parse_flat_object`] (the same strict subset
    /// the journal uses); histograms are summarized as
    /// `count`/`sum`/`max`/`p50`/`p99` per kind.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        for dir in [DirTag::C2s, DirTag::S2c] {
            for phase in [PhaseTag::Setup, PhaseTag::Map, PhaseTag::Delta, PhaseTag::Resume] {
                let _ = write!(
                    out,
                    "\"bytes_{}_{}\":{},",
                    dir.as_str(),
                    phase.as_str(),
                    self.dir_phase_bytes(dir, phase)
                );
            }
        }
        for (name, v) in [
            ("bytes_total", self.total_bytes()),
            ("frames_sent", self.frames_sent),
            ("frame_recv_batches", self.frames_recv),
            ("retransmits", self.retransmits),
            ("backoffs", self.backoffs),
            ("faults_injected", self.faults),
            ("handshakes_ok", self.handshakes_ok),
            ("handshakes_failed", self.handshakes_failed),
            ("sessions_started", self.sessions_started),
            ("sessions_ended", self.sessions_ended),
            ("session_fallbacks", self.fallbacks),
            ("trace_events", self.events_recorded),
            ("trace_events_dropped", self.events_dropped),
            ("resume_offers", self.resume_offers),
            ("resume_accepted_files", self.resume_accepted_files),
            ("resume_rejects", self.resume_rejects),
            ("cache_hits", self.cache_hits),
            ("hash_cache_hits", self.hash_cache_hits),
            ("hash_cache_misses", self.hash_cache_misses),
            ("hash_cache_hit_bytes", self.hash_cache_hit_bytes),
            ("hash_cache_miss_bytes", self.hash_cache_miss_bytes),
            ("hash_cache_derived", self.hash_cache_derived),
            ("hash_cache_derived_bytes", self.hash_cache_derived_bytes),
            ("slow_sessions", self.slow_sessions),
        ] {
            let _ = write!(out, "\"{name}\":{v},");
        }
        for kind in HistKind::ALL {
            let h = &self.hists[kind.index()];
            let base = kind.as_str();
            let _ = write!(
                out,
                "\"{base}_count\":{},\"{base}_sum\":{},\"{base}_max\":{},\"{base}_p50\":{},\"{base}_p99\":{},",
                h.count(),
                h.sum(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99)
            );
        }
        out.pop(); // the trailing comma; the arrays above are never empty
        out.push('}');
        out
    }
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ResumeRejectTag;

    #[test]
    fn apply_tallies_the_grid_and_counters() {
        let mut m = MetricsSnapshot::new();
        m.apply(&EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Map, bytes: 100 });
        m.apply(&EventKind::FrameRecv { dir: DirTag::S2c, phase: PhaseTag::Delta, bytes: 50 });
        m.apply(&EventKind::Retransmit { frames: 3 });
        m.apply(&EventKind::Handshake { ok: true });
        m.apply(&EventKind::Handshake { ok: false });
        m.apply(&EventKind::SessionStart { file_id: 0 });
        m.apply(&EventKind::SessionEnd { file_id: 0, ok: true, fell_back: true });
        m.apply(&EventKind::ResumeOffer { files: 5 });
        m.apply(&EventKind::ResumeAccept { accepted: 4, declined: 1 });
        m.apply(&EventKind::ResumeReject { reason: ResumeRejectTag::ConfigMismatch });
        m.apply(&EventKind::CacheHit { file_id: 2 });
        m.apply(&EventKind::HashCacheHit { bytes: 4096 });
        m.apply(&EventKind::HashCacheMiss { bytes: 512 });
        m.apply(&EventKind::HashCacheDerived { bytes: 256 });
        m.apply(&EventKind::SlowSession { phase: PhaseTag::Map, waited_us: 2_000_000 });
        assert_eq!(m.dir_phase_bytes(DirTag::C2s, PhaseTag::Map), 100);
        assert_eq!(m.dir_phase_bytes(DirTag::S2c, PhaseTag::Delta), 50);
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.frames_sent, 1);
        assert_eq!(m.frames_recv, 1);
        assert_eq!(m.retransmits, 3);
        assert_eq!(m.handshakes_ok, 1);
        assert_eq!(m.handshakes_failed, 1);
        assert_eq!(m.sessions_started, 1);
        assert_eq!(m.sessions_ended, 1);
        assert_eq!(m.fallbacks, 1);
        assert_eq!(m.resume_offers, 1);
        assert_eq!(m.resume_accepted_files, 4);
        assert_eq!(m.resume_rejects, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.hash_cache_hits, 1);
        assert_eq!(m.hash_cache_misses, 1);
        assert_eq!(m.hash_cache_hit_bytes, 4096);
        assert_eq!(m.hash_cache_miss_bytes, 512);
        assert_eq!(m.hash_cache_derived, 1);
        assert_eq!(m.hash_cache_derived_bytes, 256);
        assert_eq!(m.slow_sessions, 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = MetricsSnapshot::new();
        a.apply(&EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Setup, bytes: 10 });
        a.observe(HistKind::FrameRtt, 500);
        let mut b = MetricsSnapshot::new();
        b.apply(&EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Setup, bytes: 5 });
        b.observe(HistKind::FrameRtt, 700);
        a.apply(&EventKind::HashCacheMiss { bytes: 30 });
        b.apply(&EventKind::HashCacheMiss { bytes: 12 });
        a.apply(&EventKind::SlowSession { phase: PhaseTag::Delta, waited_us: 9 });
        b.apply(&EventKind::SlowSession { phase: PhaseTag::Setup, waited_us: 7 });
        a.merge(&b);
        assert_eq!(a.dir_phase_bytes(DirTag::C2s, PhaseTag::Setup), 15);
        assert_eq!(a.frames_sent, 2);
        assert_eq!(a.hash_cache_misses, 2);
        assert_eq!(a.hash_cache_miss_bytes, 42);
        assert_eq!(a.slow_sessions, 2);
        assert_eq!(a.hists[HistKind::FrameRtt.index()].count(), 2);
        assert_eq!(a.hists[HistKind::FrameRtt.index()].sum(), 1200);
    }

    #[test]
    fn prometheus_text_has_the_expected_series() {
        let mut m = MetricsSnapshot::new();
        m.apply(&EventKind::FrameSend { dir: DirTag::S2c, phase: PhaseTag::Map, bytes: 123 });
        m.observe(HistKind::SessionDuration, 42);
        let text = m.render_prometheus();
        assert!(text.contains("msync_bytes_total{dir=\"s2c\",phase=\"map\"} 123"), "{text}");
        assert!(text.contains("msync_frames_sent_total 1"), "{text}");
        assert!(text.contains("msync_session_duration_us_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("msync_session_duration_us_sum 42"), "{text}");
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(line.starts_with('#') || line.rsplit_once(' ').is_some(), "{line}");
        }
        // No drops → no alarm series.
        assert!(!text.contains("msync_trace_dropped_events_total"), "{text}");
    }

    #[test]
    fn drop_alarm_series_appears_only_after_drops() {
        let mut m = MetricsSnapshot::new();
        m.events_dropped = 17;
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE msync_trace_dropped_events_total counter"), "{text}");
        assert!(text.contains("msync_trace_dropped_events_total 17"), "{text}");
        let labeled = m.render_prometheus_collection("docs");
        assert!(
            labeled.contains("msync_trace_dropped_events_total{collection=\"docs\"} 17"),
            "{labeled}"
        );
    }

    #[test]
    fn json_rendering_is_flat_and_parses_with_the_journal_parser() {
        let mut m = MetricsSnapshot::new();
        m.apply(&EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Delta, bytes: 99 });
        m.apply(&EventKind::SlowSession { phase: PhaseTag::Map, waited_us: 1 });
        m.observe(HistKind::FrameRtt, 250);
        let json = m.render_json();
        let fields = crate::journal::parse_flat_object(&json).unwrap();
        let get = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| match v {
                    crate::journal::FieldValue::U64(n) => Some(*n),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("missing {name} in {json}"))
        };
        assert_eq!(get("bytes_c2s_delta"), 99);
        assert_eq!(get("bytes_total"), 99);
        assert_eq!(get("frames_sent"), 1);
        assert_eq!(get("slow_sessions"), 1);
        assert_eq!(get("frame_rtt_us_count"), 1);
        assert_eq!(get("frame_rtt_us_sum"), 250);
    }

    #[test]
    fn collection_labeled_text_labels_every_series() {
        let mut m = MetricsSnapshot::new();
        m.apply(&EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Map, bytes: 7 });
        m.apply(&EventKind::HashCacheHit { bytes: 100 });
        let text = m.render_prometheus_collection("docs");
        assert!(
            text.contains("msync_bytes_total{dir=\"c2s\",phase=\"map\",collection=\"docs\"} 7"),
            "{text}"
        );
        assert!(text.contains("msync_hash_cache_hits_total{collection=\"docs\"} 1"), "{text}");
        // No TYPE comments and no histograms in the labeled block; the
        // aggregate section already declared both.
        assert!(!text.contains("# TYPE"), "{text}");
        assert!(!text.contains("_bucket"), "{text}");
        for line in text.lines() {
            assert!(line.contains("collection=\"docs\""), "{line}");
        }
    }
}
