//! Command implementations. Everything returns its report as a `String`
//! so the logic is unit-testable without capturing stdout.

use crate::args::{preset_config, Cli, Command, ConfigSource, USAGE};
use msync_core::{
    atomic_write_file, load_checkpoint, sync_collection_traced, sync_file, AtomicApplier,
    CacheEntry, CheckpointLog, FileEntry, MetadataCache, ProtocolConfig, ResumePlan,
};
use msync_corpus::fsload::load_dir;
use msync_corpus::Collection;
use msync_hash::file_fingerprint;
use msync_protocol::LinkModel;
use msync_trace::{render_chrome_trace, render_journal, Recorder};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Run a parsed invocation; returns the text to print.
pub fn run(cli: &Cli) -> Result<String, String> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Params { preset } => {
            let cfg = preset_config(preset)?;
            Ok(msync_core::params::render(&cfg))
        }
        Command::Chunks { file, avg } => chunks(file, *avg),
        Command::Sync {
            old,
            new,
            config,
            compare,
            write,
            fault_profile,
            fault_seed,
            remote,
            pipeline_depth,
            fault_wrap,
            trace_out,
            state_dir,
            resume,
            no_cache,
            collection,
        } => match (new, remote) {
            (_, Some(addr)) => {
                let faults = if *fault_wrap { fault_profile.as_deref() } else { None };
                let durability = state_dir.as_deref().map(|dir| DurabilityFlags {
                    state_dir: dir,
                    resume: *resume,
                    no_cache: *no_cache,
                });
                remote_sync_cmd(
                    old,
                    addr,
                    config,
                    *pipeline_depth,
                    faults,
                    *fault_seed,
                    write.as_deref(),
                    trace_out.as_deref(),
                    durability.as_ref(),
                    collection.as_deref(),
                )
            }
            (Some(new), None) => match fault_profile {
                Some(profile) => {
                    faulty_sync_cmd(old, new, config, profile, *fault_seed, trace_out.as_deref())
                }
                None => {
                    sync_cmd(old, new, config, *compare, write.as_deref(), trace_out.as_deref())
                }
            },
            // parse_args guarantees one of the two is present.
            (None, None) => Err("missing <NEW> path (or --remote ADDR)".into()),
        },
        Command::Serve {
            root,
            listen,
            metrics_out,
            workers,
            max_sessions,
            collections,
            registry_dir,
            slow_session_ms,
        } => serve_cmd(
            root.as_deref(),
            listen,
            metrics_out.as_deref(),
            *workers,
            *max_sessions,
            collections,
            registry_dir.as_deref(),
            *slow_session_ms,
        ),
        Command::Reload { name, remote } => reload_cmd(name, remote),
        Command::Stats { remote, json } => stats_cmd(remote, *json),
        Command::Top { remote, interval_ms } => top_cmd(remote, *interval_ms),
        Command::TraceExport { input, output } => trace_export_cmd(input, output.as_deref()),
        Command::Inspect { old, new, config } => inspect(old, new, config),
    }
}

/// `msync reload NAME --remote ADDR`: ask the daemon to re-read one
/// collection's source tree and swap it in atomically.
fn reload_cmd(name: &str, remote: &str) -> Result<String, String> {
    let timeout = std::time::Duration::from_secs(10);
    let nfiles = msync_net::admin_reload(remote, name, timeout)
        .map_err(|e| format!("reload failed: {e}"))?;
    Ok(format!("reloaded collection `{name}` on {remote}: {nfiles} files\n"))
}

/// `msync stats --remote ADDR`: one scrape of the daemon's metrics
/// exposition, printed verbatim.
fn stats_cmd(remote: &str, json: bool) -> Result<String, String> {
    let timeout = std::time::Duration::from_secs(10);
    msync_net::admin_stats(remote, json, timeout).map_err(|e| format!("stats failed: {e}"))
}

/// One `msync top` frame. Pure so the layout is unit-testable; the
/// live loop only adds the fetch and the screen clear.
fn render_top(remote: &str, sessions: &str, health: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "msync top — {remote}");
    let _ = writeln!(out, "\nsessions:");
    if sessions.trim().is_empty() {
        let _ = writeln!(out, "  (none in flight)");
    } else {
        for line in sessions.lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    let _ = writeln!(out, "\nhealth:");
    for line in health.lines() {
        let _ = writeln!(out, "  {line}");
    }
    out
}

/// One refresh against a live daemon: the `sessions` and `health`
/// admin verbs, rendered as a `top` frame.
fn fetch_top(remote: &str) -> Result<String, String> {
    let timeout = std::time::Duration::from_secs(10);
    let sessions =
        msync_net::admin_sessions(remote, timeout).map_err(|e| format!("top failed: {e}"))?;
    let health =
        msync_net::admin_health(remote, timeout).map_err(|e| format!("top failed: {e}"))?;
    Ok(render_top(remote, &sessions, &health))
}

/// `msync top --remote ADDR`: refresh the live view until interrupted
/// (ctrl-c) or the daemon goes away.
fn top_cmd(remote: &str, interval_ms: u64) -> Result<String, String> {
    loop {
        let frame = fetch_top(remote)?;
        // Home + clear-to-end keeps refreshes from scrolling the
        // terminal while leaving scrollback alone.
        print!("\x1b[H\x1b[J{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `msync trace-export`: re-render a JSONL trace journal as Chrome
/// `trace_event` JSON (chrome://tracing, Perfetto).
fn trace_export_cmd(input: &Path, output: Option<&Path>) -> Result<String, String> {
    let journal =
        fs::read_to_string(input).map_err(|e| format!("cannot read {}: {e}", input.display()))?;
    let trace = render_chrome_trace(&journal).map_err(|e| format!("{}: {e}", input.display()))?;
    match output {
        Some(path) => {
            atomic_write_file(path, trace.as_bytes())?;
            // The array renders one span per line between `[` and `]`.
            let spans = trace.lines().count().saturating_sub(2);
            Ok(format!("chrome trace: {spans} span(s) → {}\n", path.display()))
        }
        None => Ok(trace),
    }
}

/// Load one directory into registry-ready entries.
fn load_collection_dir(dir: &Path) -> Result<Vec<FileEntry>, String> {
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    let col = load_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    Ok(entries(&col))
}

/// Build the daemon's collection registry from the three CLI sources:
/// a bare ROOT (the default collection), repeated `--collection
/// name=path` flags, and a `--registry-dir` whose immediate
/// subdirectories each become a collection named after the
/// subdirectory. Name collisions across sources are typed
/// [`msync_net::RegistryError`]s, and every entry remembers its source
/// directory so the `reload` admin verb can re-read it.
fn build_registry(
    root: Option<&Path>,
    collections: &[(String, std::path::PathBuf)],
    registry_dir: Option<&Path>,
) -> Result<msync_net::CollectionRegistry, String> {
    let mut builder = msync_net::RegistryBuilder::new();
    builder.loader(load_collection_dir);
    if let Some(root) = root {
        let files = load_collection_dir(root)?;
        builder
            .add(msync_net::DEFAULT_COLLECTION, files, Some(root.to_path_buf()))
            .map_err(|e| e.to_string())?;
    }
    for (name, path) in collections {
        let files = load_collection_dir(path)?;
        builder.add(name, files, Some(path.clone())).map_err(|e| e.to_string())?;
    }
    if let Some(dir) = registry_dir {
        if !dir.is_dir() {
            return Err(format!("{} is not a directory", dir.display()));
        }
        let mut subdirs: Vec<std::path::PathBuf> = fs::read_dir(dir)
            .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        for sub in subdirs {
            let Some(name) = sub.file_name().and_then(|n| n.to_str()) else {
                return Err(format!("{}: subdirectory name is not UTF-8", sub.display()));
            };
            let files = load_collection_dir(&sub)?;
            builder.add(name, files, Some(sub.clone())).map_err(|e| e.to_string())?;
        }
    }
    Ok(builder.build())
}

/// `serve`: load every collection once, then serve them to every
/// connection until killed. Never returns on success.
#[allow(clippy::too_many_arguments)]
fn serve_cmd(
    root: Option<&Path>,
    listen: &str,
    metrics_out: Option<&Path>,
    workers: usize,
    max_sessions: Option<usize>,
    collections: &[(String, std::path::PathBuf)],
    registry_dir: Option<&Path>,
    slow_session_ms: Option<u64>,
) -> Result<String, String> {
    let registry = std::sync::Arc::new(build_registry(root, collections, registry_dir)?);
    let mut summary = String::new();
    for name in registry.names() {
        let snap = registry.snapshot(name).expect("listed name resolves");
        let bytes: u64 = snap.files().iter().map(|f| f.data.len() as u64).sum();
        let _ = writeln!(
            summary,
            "serving collection {name}{}: {} file(s), {}",
            if name == registry.default_name() { " (default)" } else { "" },
            snap.len(),
            human(bytes)
        );
    }
    let opts = msync_net::DaemonOptions {
        metrics_out: metrics_out.map(Path::to_path_buf),
        workers,
        max_sessions,
        slow_session: slow_session_ms.map(std::time::Duration::from_millis),
        ..Default::default()
    };
    let daemon = msync_net::Daemon::spawn_registry(
        listen,
        registry,
        opts,
        |report: msync_net::daemon::SessionReport| {
            let peer =
                report.peer.map_or_else(|| "<unknown peer>".to_string(), |addr| addr.to_string());
            let coll = report.collection.as_deref().unwrap_or("-");
            match report.result {
                Ok(outcome) => println!(
                    "session {peer} [{coll}]: {} of {} file(s) engaged, {}",
                    outcome.sessions, outcome.files, outcome.traffic,
                ),
                Err(e) => println!("session {peer} [{coll}]: failed: {e}"),
            }
        },
    )
    .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    print!("{summary}");
    if let Some(path) = metrics_out {
        println!("metrics → {} (rewritten after every session)", path.display());
    }
    if let Some(ms) = slow_session_ms {
        println!("slow-session watchdog armed at {ms} ms per protocol phase");
    }
    println!("listening on {} (ctrl-c to stop)", daemon.local_addr());
    daemon.wait();
    Ok(String::new())
}

/// A live recorder when `--trace-out` was given, otherwise off (so the
/// untraced path pays nothing).
fn trace_recorder(trace_out: Option<&Path>) -> Recorder {
    if trace_out.is_some() {
        Recorder::system()
    } else {
        Recorder::off()
    }
}

/// Drain a recorder into its JSONL journal file, if one was requested.
fn write_journal(
    report: &mut String,
    recorder: &Recorder,
    path: Option<&Path>,
) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    let events = recorder.drain_events();
    let dropped = recorder.snapshot().events_dropped;
    atomic_write_file(path, render_journal(&events).as_bytes())?;
    let _ = writeln!(report, "trace journal: {} event(s) → {}", events.len(), path.display());
    if dropped > 0 {
        let _ = writeln!(
            report,
            "warning: trace ring dropped {dropped} event(s); the journal is incomplete"
        );
    }
    Ok(())
}

/// The `--state-dir` flag family, present only on durable syncs.
struct DurabilityFlags<'a> {
    state_dir: &'a Path,
    resume: bool,
    no_cache: bool,
}

/// Microseconds since the epoch of a file's mtime (0 if unreadable —
/// which can only produce a cache miss, never a wrong hit).
fn mtime_micros(md: &fs::Metadata) -> u64 {
    md.modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

/// Build the resume offer for a durable sync: the interrupted run's
/// checkpoint entries (under `--resume`) plus every old file whose
/// size+mtime still match the metadata cache. Entries are re-verified
/// against the local data before going on the wire, so stale state can
/// only shrink the offer.
fn build_resume_plan(
    cfg: &ProtocolConfig,
    old: &Path,
    old_entries: &[FileEntry],
    flags: &DurabilityFlags<'_>,
    cache: &MetadataCache,
) -> Result<ResumePlan, String> {
    let mut plan = ResumePlan::new(cfg);
    if flags.resume {
        if let Some(cp) = load_checkpoint(&flags.state_dir.join("checkpoint.jsonl"))? {
            if cp.config_digest == plan.config_digest {
                for (name, digest, _round) in cp.files {
                    plan.add(name, digest);
                }
            }
        }
    }
    if !flags.no_cache && !cache.is_empty() {
        for f in old_entries {
            let Ok(md) = fs::metadata(old.join(&f.name)) else { continue };
            if let Some(digest) = cache.lookup(&f.name, md.len(), mtime_micros(&md)) {
                plan.add(f.name.clone(), digest);
            }
        }
    }
    Ok(plan)
}

/// `sync --remote`: pipelined collection sync against a live daemon.
#[allow(clippy::too_many_arguments)]
fn remote_sync_cmd(
    old: &Path,
    addr: &str,
    config: &ConfigSource,
    pipeline_depth: usize,
    fault_profile: Option<&str>,
    fault_seed: u64,
    write: Option<&Path>,
    trace_out: Option<&Path>,
    durability: Option<&DurabilityFlags<'_>>,
    collection: Option<&str>,
) -> Result<String, String> {
    let cfg = load_config(config)?;
    let old_entries: Vec<FileEntry> = if old.exists() {
        if !old.is_dir() {
            return Err("--remote syncs directories; OLD must be a directory".into());
        }
        entries(&load_dir(old).map_err(|e| format!("cannot read {}: {e}", old.display()))?)
    } else {
        // A missing OLD is an empty mirror: everything transfers.
        Vec::new()
    };

    let recorder = trace_recorder(trace_out);
    let mut opts = msync_net::RemoteOptions { cfg, ..Default::default() };
    opts.pipeline.depth = pipeline_depth;
    opts.recorder = recorder.clone();
    opts.collection = collection.map(str::to_owned);
    if let Some(profile) = fault_profile {
        let plan = msync_protocol::FaultPlan::profile(profile).ok_or_else(|| {
            format!(
                "unknown fault profile `{profile}` (try: {})",
                msync_protocol::fault::PROFILE_NAMES.join(", ")
            )
        })?;
        opts.fault_wrap = Some((plan, fault_seed));
    }

    // Durable mode: clean up temp orphans from a crashed run, read the
    // checkpoint and cache, offer what they prove, and journal every
    // completed file through an atomic applier as the session runs.
    let mut orphans = 0usize;
    let mut cache = MetadataCache::new();
    let mut sink: Option<(AtomicApplier, CheckpointLog)> = None;
    let mut report = String::new();
    if let Some(flags) = durability {
        // parse_args guarantees --state-dir comes with --write.
        let write_dir = write.ok_or("--state-dir needs --write DIR")?;
        fs::create_dir_all(flags.state_dir)
            .map_err(|e| format!("cannot create {}: {e}", flags.state_dir.display()))?;
        let applier = AtomicApplier::new(write_dir);
        orphans = applier.clean_orphans()?;
        if !flags.no_cache {
            cache = MetadataCache::load(&flags.state_dir.join("cache.jsonl"))?;
        }
        let plan = build_resume_plan(&opts.cfg, old, &old_entries, flags, &cache)?;
        let digest = plan.config_digest;
        if !plan.is_empty() {
            let _ = writeln!(
                report,
                "offering {} file(s) from {}",
                plan.entries.len(),
                if flags.resume { "checkpoint + cache" } else { "cache" }
            );
            opts.resume = Some(plan);
        }
        let log = CheckpointLog::create(&flags.state_dir.join("checkpoint.jsonl"), digest)?;
        sink = Some((applier, log));
    }

    let mut applied = 0usize;
    let got = msync_net::sync_remote_with(addr, &old_entries, &opts, &mut |f| {
        let Some((applier, log)) = sink.as_mut() else { return Ok(()) };
        // Resumed files are already on disk byte-exact; rewriting them
        // would only churn mtimes and defeat the metadata cache.
        if !f.resumed {
            applier.apply(&f.name, &f.data)?;
            applied += 1;
        }
        log.append(&f.name, file_fingerprint(&f.data), f.round)
    })
    .map_err(|e| e.to_string())?;
    let out = &got.outcome;
    let t = &out.traffic;
    let raw: u64 = out.files.iter().map(|f| f.data.len() as u64).sum();

    let _ = writeln!(
        report,
        "synchronized {} file(s), {} total, against {addr} (pipeline depth {pipeline_depth})",
        out.files.len(),
        human(raw)
    );
    let changed = out.files.len().saturating_sub(out.unchanged + out.created + out.resumed);
    let _ = writeln!(
        report,
        "  unchanged {} · changed {} · created {} · deleted {} · resumed {}",
        out.unchanged, changed, out.created, out.deleted, out.resumed
    );
    let _ = writeln!(
        report,
        "wire: {} total ({:.2}% of raw), {} roundtrips, {} retransmitted frame(s)",
        human(t.total_bytes()),
        100.0 * t.total_bytes() as f64 / raw.max(1) as f64,
        t.roundtrips,
        t.retransmits,
    );
    let _ = writeln!(
        report,
        "socket: {} sent + {} received = {} ({} accounted)",
        human(got.socket_sent),
        human(got.socket_received),
        human(got.socket_sent + got.socket_received),
        human(t.total_bytes()),
    );
    let _ = writeln!(report, "estimated transfer time:");
    for (name, link) in [
        ("dial-up", LinkModel::dialup()),
        ("dsl    ", LinkModel::dsl()),
        ("cable  ", LinkModel::cable()),
    ] {
        let _ = writeln!(report, "  {name}  {:.1?}", link.estimate(t));
    }

    match (write, sink) {
        // Durable mode already applied everything incrementally; the
        // session finished, so the checkpoint has served its purpose.
        (Some(dir), Some(_)) => {
            let flags = durability.ok_or("durable sink without flags")?;
            let _ = writeln!(
                report,
                "\nwrote {applied} file(s) under {} ({} resumed in place{})",
                dir.display(),
                out.resumed,
                if orphans > 0 {
                    format!(", {orphans} orphaned temp file(s) removed")
                } else {
                    String::new()
                },
            );
            let checkpoint_path = flags.state_dir.join("checkpoint.jsonl");
            fs::remove_file(&checkpoint_path)
                .map_err(|e| format!("cannot remove {}: {e}", checkpoint_path.display()))?;
            if !flags.no_cache {
                for f in &out.files {
                    let Ok(md) = fs::metadata(dir.join(&f.name)) else { continue };
                    cache.record(
                        f.name.clone(),
                        CacheEntry {
                            size: md.len(),
                            mtime_us: mtime_micros(&md),
                            digest: file_fingerprint(&f.data),
                        },
                    );
                }
                let cache_path = flags.state_dir.join("cache.jsonl");
                cache.save(&cache_path)?;
                let _ = writeln!(
                    report,
                    "state: {} file(s) cached in {}",
                    cache.len(),
                    flags.state_dir.display()
                );
            }
        }
        (Some(dir), None) => {
            let applier = AtomicApplier::new(dir);
            for f in &out.files {
                applier.apply(&f.name, &f.data)?;
            }
            let _ = writeln!(report, "\nwrote {} file(s) under {}", out.files.len(), dir.display());
        }
        (None, _) => {}
    }
    write_journal(&mut report, &recorder, trace_out)?;
    Ok(report)
}

fn load_config(source: &ConfigSource) -> Result<ProtocolConfig, String> {
    match source {
        ConfigSource::Preset(name) => preset_config(name),
        ConfigSource::File(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            msync_core::params::parse(&text)
        }
    }
}

/// Load OLD/NEW as collections: both files or both directories.
fn load_pair(old: &Path, new: &Path) -> Result<(Collection, Collection), String> {
    let err = |p: &Path, e: std::io::Error| format!("cannot read {}: {e}", p.display());
    let old_is_dir = old.is_dir();
    let new_is_dir = new.is_dir();
    if old_is_dir != new_is_dir {
        return Err("OLD and NEW must both be files or both be directories".into());
    }
    if old_is_dir {
        Ok((load_dir(old).map_err(|e| err(old, e))?, load_dir(new).map_err(|e| err(new, e))?))
    } else {
        let mut a = Collection::new();
        a.push("file", fs::read(old).map_err(|e| err(old, e))?);
        let mut b = Collection::new();
        b.push("file", fs::read(new).map_err(|e| err(new, e))?);
        Ok((a, b))
    }
}

fn entries(c: &Collection) -> Vec<FileEntry> {
    c.files().iter().map(|f| FileEntry::new(f.name.clone(), f.data.clone())).collect()
}

fn human(bytes: u64) -> String {
    if bytes < 4 * 1024 {
        format!("{bytes} B")
    } else if bytes < 4 * 1024 * 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    }
}

fn sync_cmd(
    old: &Path,
    new: &Path,
    config: &ConfigSource,
    compare: bool,
    write: Option<&Path>,
    trace_out: Option<&Path>,
) -> Result<String, String> {
    let cfg = load_config(config)?;
    let (old_col, new_col) = load_pair(old, new)?;
    let recorder = trace_recorder(trace_out);
    let out = sync_collection_traced(&entries(&old_col), &entries(&new_col), &cfg, &recorder)
        .map_err(|e| e.to_string())?;

    let mut report = String::new();
    let raw = new_col.total_bytes();
    let t = &out.traffic;
    let _ = writeln!(report, "synchronized {} file(s), {} total", out.files.len(), human(raw));
    let changed = out.files.len().saturating_sub(out.unchanged + out.created);
    let _ = writeln!(
        report,
        "  unchanged {} · changed {} · created {} ({} renamed) · deleted {}",
        out.unchanged, changed, out.created, out.renamed, out.deleted
    );
    let _ = writeln!(
        report,
        "wire: {} total ({:.2}% of raw), {} roundtrips",
        human(t.total_bytes()),
        100.0 * t.total_bytes() as f64 / raw.max(1) as f64,
        t.roundtrips
    );
    report.push_str(&t.render_table());
    let _ = writeln!(report, "estimated transfer time:");
    for (name, link) in [
        ("dial-up", LinkModel::dialup()),
        ("dsl    ", LinkModel::dsl()),
        ("cable  ", LinkModel::cable()),
    ] {
        let _ = writeln!(report, "  {name}  {:.1?}", link.estimate(t));
    }

    if compare {
        let _ = writeln!(report, "\nbaselines:");
        let mut rsync_total = 0u64;
        let mut cdc_total = 0u64;
        let mut zdelta_total = 0u64;
        for nf in new_col.files() {
            let old_data = old_col.get(&nf.name).map(|f| f.data.clone()).unwrap_or_default();
            rsync_total += msync_rsync::sync(&old_data, &nf.data, msync_rsync::DEFAULT_BLOCK_SIZE)
                .stats
                .total_bytes();
            cdc_total += msync_cdc::sync(&old_data, &nf.data, &msync_cdc::ChunkParams::default())
                .stats
                .total_bytes();
            if old_data != nf.data {
                zdelta_total += msync_compress::delta_encode(&old_data, &nf.data).len() as u64 + 17;
            } else {
                zdelta_total += 17;
            }
        }
        let _ = writeln!(report, "  rsync (700B)     {}", human(rsync_total));
        let _ = writeln!(report, "  cdc (lbfs-style) {}", human(cdc_total));
        let _ = writeln!(report, "  zdelta (bound)   {}", human(zdelta_total));
        let _ = writeln!(report, "  msync            {}", human(t.total_bytes()));
    }

    if let Some(dir) = write {
        let applier = AtomicApplier::new(dir);
        for f in &out.files {
            applier.apply(&f.name, &f.data)?;
        }
        let _ = writeln!(report, "\nwrote {} file(s) under {}", out.files.len(), dir.display());
    }
    write_journal(&mut report, &recorder, trace_out)?;
    Ok(report)
}

/// `sync --fault-profile`: run each file pair over a deterministically
/// faulty channel and report what the recovery machinery did — the
/// operational view of the soak tests.
fn faulty_sync_cmd(
    old: &Path,
    new: &Path,
    config: &ConfigSource,
    profile: &str,
    seed: u64,
    trace_out: Option<&Path>,
) -> Result<String, String> {
    let cfg = load_config(config)?;
    let plan = msync_protocol::FaultPlan::profile(profile).ok_or_else(|| {
        format!(
            "unknown fault profile `{profile}` (try: {})",
            msync_protocol::fault::PROFILE_NAMES.join(", ")
        )
    })?;
    let (old_col, new_col) = load_pair(old, new)?;

    let mut report = String::new();
    let _ = writeln!(report, "fault profile `{profile}`, seed {seed}:");
    let recorder = trace_recorder(trace_out);
    let mut total = msync_protocol::TrafficStats::new();
    let mut failures = 0usize;
    let mut fallbacks = 0usize;
    for (i, nf) in new_col.files().iter().enumerate() {
        let old_data = old_col.get(&nf.name).map(|f| f.data.clone()).unwrap_or_default();
        let opts = msync_core::ChannelOptions {
            fault_plan: Some(plan),
            fault_seed: seed.wrapping_add(i as u64),
            ..Default::default()
        };
        let sync_opts = msync_core::SyncOptions {
            recorder: recorder.clone(),
            file_id: i as u64,
            channel: Some(opts),
        };
        match msync_core::sync_file_with(&old_data, &nf.data, &cfg, &sync_opts) {
            Ok(out) => {
                let verified = if out.reconstructed == nf.data { "exact" } else { "MISMATCH" };
                fallbacks += usize::from(out.fell_back);
                let _ = writeln!(
                    report,
                    "  {}: {} on the wire, {} retransmitted frame(s), {verified}{}",
                    nf.name,
                    human(out.stats.total_bytes()),
                    out.stats.traffic.retransmits,
                    if out.fell_back { " (fell back to full transfer)" } else { "" },
                );
                total.merge(&out.stats.traffic);
            }
            Err(e) => {
                failures += 1;
                let _ = writeln!(report, "  {}: FAILED: {e}", nf.name);
            }
        }
    }
    let _ = writeln!(
        report,
        "{} file(s): {} failed, {} fell back; {} total, {} retransmitted frame(s)",
        new_col.len(),
        failures,
        fallbacks,
        human(total.total_bytes()),
        total.retransmits,
    );
    write_journal(&mut report, &recorder, trace_out)?;
    Ok(report)
}

fn inspect(old: &Path, new: &Path, config: &ConfigSource) -> Result<String, String> {
    let cfg = load_config(config)?;
    let (old_col, new_col) = load_pair(old, new)?;
    if old_col.len() != 1 || new_col.len() != 1 {
        return Err("inspect works on single files, not directories".into());
    }
    let out = sync_file(&old_col.files()[0].data, &new_col.files()[0].data, &cfg)
        .map_err(|e| e.to_string())?;

    let mut report = String::new();
    let stats = &out.stats;
    let _ = writeln!(
        report,
        "{} → {} : {} on the wire, {} roundtrips{}",
        human(old_col.total_bytes()),
        human(new_col.total_bytes()),
        human(stats.total_bytes()),
        stats.traffic.roundtrips,
        if out.fell_back { " (FELL BACK to full transfer)" } else { "" },
    );
    let _ = writeln!(
        report,
        "map covered {} of {} bytes; final delta {}",
        stats.known_bytes,
        new_col.total_bytes(),
        human(stats.delta_bytes)
    );
    let _ = writeln!(
        report,
        "\n{:>9}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>8}",
        "block", "items", "cont", "suppr", "cand", "conf", "harvest"
    );
    for l in &stats.levels {
        let _ = writeln!(
            report,
            "{:>9}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>7.1}%",
            l.block_size,
            l.items,
            l.cont_items,
            l.suppressed,
            l.candidates,
            l.confirmed,
            100.0 * l.harvest_rate(),
        );
    }
    Ok(report)
}

fn chunks(file: &Path, avg: usize) -> Result<String, String> {
    let data = fs::read(file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    let params =
        msync_cdc::ChunkParams { avg_size: avg, min_size: (avg / 8).max(64), max_size: avg * 8 };
    let chunks = msync_cdc::chunk(&data, &params);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{}: {} bytes in {} chunk(s), average {}",
        file.display(),
        data.len(),
        chunks.len(),
        human(if chunks.is_empty() { 0 } else { (data.len() / chunks.len()) as u64 })
    );
    for (i, c) in chunks.iter().enumerate() {
        let digest = msync_hash::Md5::digest(&data[c.offset..c.offset + c.len]);
        let hex: String = digest[..8].iter().map(|b| format!("{b:02x}")).collect();
        let _ = writeln!(report, "  #{i:<4} offset {:>9}  len {:>7}  {hex}", c.offset, c.len);
        if i >= 63 && chunks.len() > 65 {
            let _ = writeln!(report, "  … {} more chunks", chunks.len() - i - 1);
            break;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("msync-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn run_words(words: &[&str]) -> Result<String, String> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        run(&parse_args(&v)?)
    }

    #[test]
    fn sync_files_end_to_end() {
        let d = tmpdir("sync");
        let old = d.join("old.txt");
        let new = d.join("new.txt");
        fs::write(&old, b"hello world ".repeat(2000)).unwrap();
        fs::write(
            &new,
            b"hello world ".repeat(2000).iter().chain(b"tail").copied().collect::<Vec<u8>>(),
        )
        .unwrap();
        let report =
            run_words(&["sync", old.to_str().unwrap(), new.to_str().unwrap(), "--compare"])
                .unwrap();
        assert!(report.contains("synchronized 1 file(s)"));
        assert!(report.contains("baselines:"));
        assert!(report.contains("rsync (700B)"));
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn sync_directories_with_write() {
        let d = tmpdir("dirs");
        let old_dir = d.join("v1");
        let new_dir = d.join("v2");
        let out_dir = d.join("out");
        fs::create_dir_all(old_dir.join("sub")).unwrap();
        fs::create_dir_all(new_dir.join("sub")).unwrap();
        fs::write(old_dir.join("a.txt"), b"alpha version one").unwrap();
        fs::write(new_dir.join("a.txt"), b"alpha version two").unwrap();
        fs::write(new_dir.join("sub/b.txt"), b"brand new").unwrap();
        let report = run_words(&[
            "sync",
            old_dir.to_str().unwrap(),
            new_dir.to_str().unwrap(),
            "--write",
            out_dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("synchronized 2 file(s)"), "{report}");
        assert_eq!(fs::read(out_dir.join("a.txt")).unwrap(), b"alpha version two");
        assert_eq!(fs::read(out_dir.join("sub/b.txt")).unwrap(), b"brand new");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn inspect_prints_rounds() {
        let d = tmpdir("inspect");
        let old = d.join("o");
        let new = d.join("n");
        fs::write(&old, b"abcdefgh".repeat(4000)).unwrap();
        let mut edited = b"abcdefgh".repeat(4000);
        edited[9000] = b'X';
        fs::write(&new, edited).unwrap();
        let report = run_words(&["inspect", old.to_str().unwrap(), new.to_str().unwrap()]).unwrap();
        assert!(report.contains("harvest"), "{report}");
        assert!(report.contains("32768"), "{report}");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn chunks_lists_chunks() {
        let d = tmpdir("chunks");
        let f = d.join("data.bin");
        let data: Vec<u8> =
            (0..40_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
        fs::write(&f, &data).unwrap();
        let report = run_words(&["chunks", f.to_str().unwrap(), "--avg", "1024"]).unwrap();
        assert!(report.contains("chunk(s)"));
        assert!(report.contains("#0"));
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn params_roundtrip_through_config_file() {
        let d = tmpdir("params");
        let text = run_words(&["params", "--preset", "basic"]).unwrap();
        let cfg_file = d.join("msync.conf");
        fs::write(&cfg_file, &text).unwrap();
        // Use the emitted file as --config for a sync.
        let old = d.join("o");
        let new = d.join("n");
        fs::write(&old, b"text ".repeat(1000)).unwrap();
        fs::write(&new, b"text ".repeat(1001)).unwrap();
        let report = run_words(&[
            "sync",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--config",
            cfg_file.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("wire:"));
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn sync_over_faulty_channel_reports_recovery() {
        let d = tmpdir("fault");
        let old = d.join("old.txt");
        let new = d.join("new.txt");
        fs::write(&old, b"payload ".repeat(3000)).unwrap();
        fs::write(
            &new,
            b"payload ".repeat(3000).iter().chain(b"suffix").copied().collect::<Vec<u8>>(),
        )
        .unwrap();
        let report = run_words(&[
            "sync",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--fault-profile",
            "lossy",
            "--fault-seed",
            "7",
        ])
        .unwrap();
        assert!(report.contains("fault profile `lossy`, seed 7"), "{report}");
        assert!(report.contains("retransmitted frame(s)"), "{report}");
        assert!(report.contains("0 failed"), "{report}");
        assert!(!report.contains("MISMATCH"), "{report}");
        // Unknown profiles are a parse-time error with the menu.
        let err = run_words(&[
            "sync",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--fault-profile",
            "gremlins",
        ])
        .unwrap_err();
        assert!(err.contains("unknown fault profile"), "{err}");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn remote_sync_with_durable_state_and_warm_cache() {
        let d = tmpdir("durable");
        let server_dir = d.join("srv");
        let mirror = d.join("mirror");
        let state = d.join("state");
        fs::create_dir_all(&server_dir).unwrap();
        fs::create_dir_all(&mirror).unwrap();
        fs::write(server_dir.join("a.txt"), b"alpha server body ".repeat(200)).unwrap();
        fs::write(server_dir.join("b.txt"), b"beta server body ".repeat(300)).unwrap();
        // A stale temp file from a "crashed" earlier apply.
        fs::write(mirror.join("a.txt.msync-tmp"), b"torn").unwrap();

        let files = entries(&load_dir(&server_dir).unwrap());
        let daemon = msync_net::Daemon::spawn(
            "127.0.0.1:0",
            files,
            msync_net::DaemonOptions::default(),
            |_| {},
        )
        .unwrap();
        let addr = daemon.local_addr().to_string();

        let sync_words = |extra: &[&str]| {
            let mut words = vec![
                "sync",
                mirror.to_str().unwrap(),
                "--remote",
                &addr,
                "--write",
                mirror.to_str().unwrap(),
                "--state-dir",
                state.to_str().unwrap(),
            ];
            words.extend_from_slice(extra);
            run_words(&words)
        };

        // Cold run: everything transfers, orphan cleaned, cache written.
        let report = sync_words(&[]).unwrap();
        assert!(report.contains("wrote 2 file(s)"), "{report}");
        assert!(report.contains("orphaned temp file(s) removed"), "{report}");
        assert!(report.contains("2 file(s) cached"), "{report}");
        assert!(!mirror.join("a.txt.msync-tmp").exists());
        assert_eq!(fs::read(mirror.join("a.txt")).unwrap(), b"alpha server body ".repeat(200));
        assert!(state.join("cache.jsonl").exists());
        assert!(!state.join("checkpoint.jsonl").exists(), "removed on success");

        // Warm run: the cache offers both files; both resume.
        let report = sync_words(&[]).unwrap();
        assert!(report.contains("offering 2 file(s)"), "{report}");
        assert!(report.contains("resumed 2"), "{report}");

        // --no-cache suppresses the offer.
        let report = sync_words(&["--no-cache"]).unwrap();
        assert!(!report.contains("offering"), "{report}");
        assert!(report.contains("resumed 0"), "{report}");
        daemon.shutdown();
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn error_paths() {
        assert!(run_words(&["sync", "/no/such/file", "/other/missing"]).is_err());
        assert!(run_words(&["params", "--preset", "bogus"]).is_err());
        let d = tmpdir("mixed");
        let f = d.join("f");
        fs::write(&f, b"x").unwrap();
        let e = run_words(&["sync", f.to_str().unwrap(), d.to_str().unwrap()]).unwrap_err();
        assert!(e.contains("both"), "{e}");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn help_is_usage() {
        let report = run_words(&["help"]).unwrap();
        assert!(report.contains("USAGE"));
    }

    #[test]
    fn stats_and_top_scrape_a_live_daemon() {
        let files = vec![FileEntry::new("a.txt", b"served body ".repeat(100))];
        let daemon = msync_net::Daemon::spawn(
            "127.0.0.1:0",
            files,
            msync_net::DaemonOptions::default(),
            |_| {},
        )
        .unwrap();
        let addr = daemon.local_addr().to_string();

        let prom = run_words(&["stats", "--remote", &addr]).unwrap();
        assert!(prom.contains("# TYPE msync_"), "{prom}");
        assert!(prom.contains("msync_rate_bytes_per_sec"), "{prom}");
        let json = run_words(&["stats", "--remote", &addr, "--json"]).unwrap();
        assert!(json.trim_start().starts_with('{'), "{json}");

        let frame = fetch_top(&addr).unwrap();
        assert!(frame.contains(&format!("msync top — {addr}")), "{frame}");
        assert!(frame.contains("(none in flight)"), "{frame}");
        assert!(frame.contains("uptime_us="), "{frame}");
        assert!(frame.contains("workers="), "{frame}");
        daemon.shutdown();

        // A dead daemon is a typed failure, not a hang or a panic.
        assert!(run_words(&["stats", "--remote", &addr]).unwrap_err().contains("stats failed"));
    }

    #[test]
    fn render_top_formats_sessions_and_health() {
        let frame = render_top("h:1", "id=1 phase=map\nid=2 phase=delta\n", "uptime_us=5\n");
        assert!(frame.contains("msync top — h:1"), "{frame}");
        assert!(frame.contains("  id=1 phase=map"), "{frame}");
        assert!(frame.contains("  id=2 phase=delta"), "{frame}");
        assert!(frame.contains("  uptime_us=5"), "{frame}");
        assert!(render_top("h:1", "", "uptime_us=5\n").contains("(none in flight)"));
    }

    #[test]
    fn trace_export_renders_chrome_json() {
        let d = tmpdir("chrome");
        let old = d.join("old.txt");
        let new = d.join("new.txt");
        fs::write(&old, b"spanful body ".repeat(2000)).unwrap();
        fs::write(
            &new,
            b"spanful body ".repeat(2000).iter().chain(b"tail").copied().collect::<Vec<u8>>(),
        )
        .unwrap();
        let journal = d.join("run.jsonl");
        run_words(&[
            "sync",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--trace-out",
            journal.to_str().unwrap(),
        ])
        .unwrap();

        // Stdout mode returns the array itself.
        let text = run_words(&["trace-export", journal.to_str().unwrap()]).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"), "{text}");
        assert!(text.contains("\"ph\":\"X\""), "{text}");

        // --out writes the file and reports the span count.
        let out = d.join("run.trace.json");
        let report =
            run_words(&["trace-export", journal.to_str().unwrap(), "--out", out.to_str().unwrap()])
                .unwrap();
        assert!(report.contains("span(s)"), "{report}");
        assert_eq!(fs::read_to_string(&out).unwrap(), text);

        // A journal that is not a journal names the offending line.
        let bad = d.join("bad.jsonl");
        fs::write(&bad, "nonsense\n").unwrap();
        assert!(run_words(&["trace-export", bad.to_str().unwrap()]).is_err());
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn write_journal_warns_when_the_ring_dropped_events() {
        use msync_trace::{DirTag, EventKind, PhaseTag};
        let d = tmpdir("dropwarn");
        let rec = Recorder::system();
        // Overfill the ring so the tail falls off.
        for _ in 0..70_000 {
            rec.record(EventKind::FrameSend { dir: DirTag::C2s, phase: PhaseTag::Map, bytes: 1 });
        }
        let mut report = String::new();
        write_journal(&mut report, &rec, Some(&d.join("j.jsonl"))).unwrap();
        assert!(report.contains("dropped"), "{report}");
        assert!(report.contains("incomplete"), "{report}");
        fs::remove_dir_all(&d).unwrap();
    }
}
