//! Argument parsing (hand-rolled; the dependency set is fixed).

use std::path::PathBuf;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
}

/// The tool's subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Synchronize `old` to `new`, reporting wire costs.
    Sync {
        /// Outdated file or directory (the client side).
        old: PathBuf,
        /// Current file or directory (the server side).
        new: PathBuf,
        /// Configuration source.
        config: ConfigSource,
        /// Also run rsync / CDC / zdelta for comparison.
        compare: bool,
        /// Write the reconstructed files under this directory.
        write: Option<PathBuf>,
        /// Run over a deterministically faulty channel with this
        /// profile (see `msync_protocol::fault::PROFILE_NAMES`).
        fault_profile: Option<String>,
        /// Seed for the fault injector (reproduces a faulty run).
        fault_seed: u64,
    },
    /// Per-round protocol trace for one file pair.
    Inspect {
        /// Outdated file.
        old: PathBuf,
        /// Current file.
        new: PathBuf,
        /// Configuration source.
        config: ConfigSource,
    },
    /// Show the content-defined chunking of a file.
    Chunks {
        /// File to chunk.
        file: PathBuf,
        /// Average chunk size (power of two).
        avg: usize,
    },
    /// Print a parameter file for a preset.
    Params {
        /// Preset name.
        preset: String,
    },
    /// Print usage.
    Help,
}

/// Where the protocol configuration comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigSource {
    /// A named preset: `default`, `basic`, or `restricted:<levels>`.
    Preset(String),
    /// A parameter file on disk (the paper's configuration mechanism).
    File(PathBuf),
}

impl Default for ConfigSource {
    fn default() -> Self {
        ConfigSource::Preset("default".into())
    }
}

/// Usage text.
pub const USAGE: &str = "\
msync — multi-round file synchronization over slow links

USAGE:
    msync sync <OLD> <NEW> [--config FILE | --preset NAME] [--compare] [--write DIR]
               [--fault-profile NAME] [--fault-seed N]
    msync inspect <OLD> <NEW> [--config FILE | --preset NAME]
    msync chunks <FILE> [--avg BYTES]
    msync params [--preset NAME]
    msync help

OLD/NEW may both be files or both be directories.
Presets: default, basic, restricted:<levels> (e.g. restricted:3).
--config takes a parameter file (see `msync params` for the syntax).
--fault-profile runs the sync over a deterministically faulty channel
(profiles: none, drop, corrupt, truncate, duplicate, delay, disconnect,
lossy, evil); --fault-seed reproduces a specific run.
";

/// Parse `argv[1..]`.
pub fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter().peekable();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    let command = match sub {
        "help" | "--help" | "-h" => Command::Help,
        "sync" | "inspect" => {
            let old = PathBuf::from(it.next().ok_or("missing <OLD> path")?);
            let new = PathBuf::from(it.next().ok_or("missing <NEW> path")?);
            let mut config = ConfigSource::default();
            let mut compare = false;
            let mut write = None;
            let mut fault_profile = None;
            let mut fault_seed = 0u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--config" => {
                        config = ConfigSource::File(PathBuf::from(
                            it.next().ok_or("--config needs a file path")?,
                        ))
                    }
                    "--preset" => {
                        config =
                            ConfigSource::Preset(it.next().ok_or("--preset needs a name")?.clone())
                    }
                    "--compare" if sub == "sync" => compare = true,
                    "--write" if sub == "sync" => {
                        write = Some(PathBuf::from(it.next().ok_or("--write needs a directory")?))
                    }
                    "--fault-profile" if sub == "sync" => {
                        fault_profile =
                            Some(it.next().ok_or("--fault-profile needs a name")?.clone())
                    }
                    "--fault-seed" if sub == "sync" => {
                        fault_seed = it
                            .next()
                            .ok_or("--fault-seed needs an integer")?
                            .parse()
                            .map_err(|_| "--fault-seed needs an integer".to_string())?
                    }
                    other => return Err(format!("unknown flag `{other}` for `{sub}`")),
                }
            }
            if sub == "sync" {
                Command::Sync { old, new, config, compare, write, fault_profile, fault_seed }
            } else {
                Command::Inspect { old, new, config }
            }
        }
        "chunks" => {
            let file = PathBuf::from(it.next().ok_or("missing <FILE> path")?);
            let mut avg = 2048usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--avg" => {
                        avg = it
                            .next()
                            .ok_or("--avg needs a byte count")?
                            .parse()
                            .map_err(|_| "--avg needs an integer".to_string())?
                    }
                    other => return Err(format!("unknown flag `{other}` for `chunks`")),
                }
            }
            if !avg.is_power_of_two() || avg < 64 {
                return Err("--avg must be a power of two ≥ 64".into());
            }
            Command::Chunks { file, avg }
        }
        "params" => {
            let mut preset = "default".to_string();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--preset" => preset = it.next().ok_or("--preset needs a name")?.clone(),
                    other => return Err(format!("unknown flag `{other}` for `params`")),
                }
            }
            Command::Params { preset }
        }
        other => return Err(format!("unknown subcommand `{other}`")),
    };
    Ok(Cli { command })
}

/// Resolve a preset name into a configuration.
pub fn preset_config(name: &str) -> Result<msync_core::ProtocolConfig, String> {
    if let Some(levels) = name.strip_prefix("restricted:") {
        let levels: u32 = levels.parse().map_err(|_| "restricted:<levels> needs an integer")?;
        return Ok(msync_core::ProtocolConfig::restricted(levels));
    }
    match name {
        "default" | "all" => Ok(msync_core::ProtocolConfig::default()),
        "basic" => Ok(msync_core::ProtocolConfig::basic(64)),
        other => {
            Err(format!("unknown preset `{other}` (try: default, basic, restricted:<levels>)"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Cli, String> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn sync_with_flags() {
        let cli = parse(&["sync", "a", "b", "--preset", "basic", "--compare"]).unwrap();
        match cli.command {
            Command::Sync { old, new, config, compare, write, fault_profile, fault_seed } => {
                assert_eq!(old, PathBuf::from("a"));
                assert_eq!(new, PathBuf::from("b"));
                assert_eq!(config, ConfigSource::Preset("basic".into()));
                assert!(compare);
                assert!(write.is_none());
                assert!(fault_profile.is_none());
                assert_eq!(fault_seed, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn sync_fault_flags() {
        let cli =
            parse(&["sync", "a", "b", "--fault-profile", "lossy", "--fault-seed", "42"]).unwrap();
        match cli.command {
            Command::Sync { fault_profile, fault_seed, .. } => {
                assert_eq!(fault_profile.as_deref(), Some("lossy"));
                assert_eq!(fault_seed, 42);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["sync", "a", "b", "--fault-seed", "x"]).is_err());
        assert!(parse(&["inspect", "a", "b", "--fault-profile", "lossy"]).is_err());
    }

    #[test]
    fn inspect_rejects_sync_only_flags() {
        assert!(parse(&["inspect", "a", "b", "--compare"]).is_err());
    }

    #[test]
    fn chunks_validation() {
        assert!(parse(&["chunks", "f", "--avg", "1000"]).is_err()); // not pow2
        assert!(parse(&["chunks", "f", "--avg", "32"]).is_err()); // too small
        let cli = parse(&["chunks", "f", "--avg", "4096"]).unwrap();
        assert_eq!(cli.command, Command::Chunks { file: PathBuf::from("f"), avg: 4096 });
    }

    #[test]
    fn missing_args_reported() {
        assert!(parse(&["sync"]).unwrap_err().contains("OLD"));
        assert!(parse(&["sync", "a"]).unwrap_err().contains("NEW"));
        assert!(parse(&["bogus"]).unwrap_err().contains("unknown subcommand"));
        assert!(parse(&[]).is_ok()); // → help
    }

    #[test]
    fn presets_resolve() {
        assert!(preset_config("default").is_ok());
        assert!(preset_config("basic").is_ok());
        let r = preset_config("restricted:3").unwrap();
        assert_eq!(r.global_levels(), 3);
        assert!(preset_config("nope").is_err());
        assert!(preset_config("restricted:x").is_err());
    }
}
