//! Argument parsing (hand-rolled; the dependency set is fixed).

use std::path::PathBuf;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
}

/// The tool's subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Synchronize `old` to `new`, reporting wire costs.
    Sync {
        /// Outdated file or directory (the client side).
        old: PathBuf,
        /// Current file or directory (the server side). `None` when the
        /// server side is a remote daemon (`--remote`).
        new: Option<PathBuf>,
        /// Configuration source.
        config: ConfigSource,
        /// Also run rsync / CDC / zdelta for comparison.
        compare: bool,
        /// Write the reconstructed files under this directory.
        write: Option<PathBuf>,
        /// Run over a deterministically faulty channel with this
        /// profile (see `msync_protocol::fault::PROFILE_NAMES`).
        fault_profile: Option<String>,
        /// Seed for the fault injector (reproduces a faulty run).
        fault_seed: u64,
        /// Address of an `msync serve` daemon to sync against.
        remote: Option<String>,
        /// Files in flight per batched flush when syncing remotely.
        pipeline_depth: usize,
        /// Explicit opt-in to wrapping the *real socket* in the fault
        /// injector; required to combine `--remote` with
        /// `--fault-profile`.
        fault_wrap: bool,
        /// Write a JSONL trace journal of the run to this file.
        trace_out: Option<PathBuf>,
        /// Keep durable session state (checkpoint journal + metadata
        /// cache) in this directory across remote syncs.
        state_dir: Option<PathBuf>,
        /// Offer the last interrupted run's checkpoint to the daemon
        /// so confirmed files skip their sessions.
        resume: bool,
        /// Ignore the metadata cache when building the resume offer.
        no_cache: bool,
        /// Which of the daemon's collections to sync (remote only);
        /// `None` means the daemon's default collection.
        collection: Option<String>,
    },
    /// Serve one or more directories to remote sync clients over TCP.
    Serve {
        /// Directory served as the default collection. Optional when
        /// `--collection` or `--registry-dir` names the collections.
        root: Option<PathBuf>,
        /// Listen address (e.g. `127.0.0.1:9631`, port 0 for ephemeral).
        listen: String,
        /// Rewrite this file with Prometheus-style aggregate metrics
        /// after every finished session.
        metrics_out: Option<PathBuf>,
        /// Multiplexer worker threads (0 = one per core).
        workers: usize,
        /// Cap on concurrently admitted sessions; excess connections
        /// get a typed capacity refusal.
        max_sessions: Option<usize>,
        /// Named collections (`--collection name=path`, repeatable).
        /// Names are validated and deduplicated at parse time.
        collections: Vec<(String, PathBuf)>,
        /// Directory whose immediate subdirectories each become a
        /// collection named after the subdirectory.
        registry_dir: Option<PathBuf>,
        /// Slow-session watchdog threshold in milliseconds; a session
        /// stuck in one protocol phase longer than this gets one trace
        /// event and one WARN line per stall. `None` disables it.
        slow_session_ms: Option<u64>,
    },
    /// Ask a running daemon to atomically reload one collection from
    /// its source tree.
    Reload {
        /// Name of the collection to reload.
        name: String,
        /// Address of the `msync serve` daemon.
        remote: String,
    },
    /// Fetch a running daemon's metrics exposition (the `stats` admin
    /// verb).
    Stats {
        /// Address of the `msync serve` daemon.
        remote: String,
        /// Print the flat JSON rendering instead of Prometheus text.
        json: bool,
    },
    /// Live session/health view of a running daemon, refreshed until
    /// interrupted (the `sessions` + `health` admin verbs).
    Top {
        /// Address of the `msync serve` daemon.
        remote: String,
        /// Refresh interval in milliseconds.
        interval_ms: u64,
    },
    /// Re-render a JSONL trace journal as Chrome `trace_event` JSON.
    TraceExport {
        /// The journal file (from `msync sync --trace-out`).
        input: PathBuf,
        /// Where to write the trace JSON; stdout when omitted.
        output: Option<PathBuf>,
    },
    /// Per-round protocol trace for one file pair.
    Inspect {
        /// Outdated file.
        old: PathBuf,
        /// Current file.
        new: PathBuf,
        /// Configuration source.
        config: ConfigSource,
    },
    /// Show the content-defined chunking of a file.
    Chunks {
        /// File to chunk.
        file: PathBuf,
        /// Average chunk size (power of two).
        avg: usize,
    },
    /// Print a parameter file for a preset.
    Params {
        /// Preset name.
        preset: String,
    },
    /// Print usage.
    Help,
}

/// Where the protocol configuration comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigSource {
    /// A named preset: `default`, `basic`, or `restricted:<levels>`.
    Preset(String),
    /// A parameter file on disk (the paper's configuration mechanism).
    File(PathBuf),
}

impl Default for ConfigSource {
    fn default() -> Self {
        ConfigSource::Preset("default".into())
    }
}

/// Usage text.
pub const USAGE: &str = "\
msync — multi-round file synchronization over slow links

USAGE:
    msync sync <OLD> <NEW> [--config FILE | --preset NAME] [--compare] [--write DIR]
               [--fault-profile NAME] [--fault-seed N] [--trace-out FILE]
    msync sync <OLD> --remote ADDR [--collection NAME]
               [--config FILE | --preset NAME] [--write DIR]
               [--pipeline-depth N] [--fault-profile NAME --fault-wrap] [--fault-seed N]
               [--trace-out FILE] [--state-dir DIR [--resume] [--no-cache]]
    msync serve [ROOT] [--collection NAME=PATH]... [--registry-dir DIR]
                [--listen ADDR] [--metrics-out FILE] [--workers N]
                [--max-sessions N] [--slow-session-ms N]
    msync reload <NAME> --remote ADDR
    msync stats --remote ADDR [--json]
    msync top --remote ADDR [--interval MS]
    msync trace-export <JOURNAL> [--out FILE]
    msync inspect <OLD> <NEW> [--config FILE | --preset NAME]
    msync chunks <FILE> [--avg BYTES]
    msync params [--preset NAME]
    msync help

OLD/NEW may both be files or both be directories.
Presets: default, basic, restricted:<levels> (e.g. restricted:3).
--config takes a parameter file (see `msync params` for the syntax).
--fault-profile runs the sync over a deterministically faulty channel
(profiles: none, drop, corrupt, truncate, duplicate, delay, disconnect,
lossy, evil); --fault-seed reproduces a specific run.

Remote mode: `msync serve <ROOT> --listen ADDR` starts a daemon serving
<ROOT> (default 127.0.0.1:9631; sessions multiplexed over --workers
event-loop threads, default available parallelism; --max-sessions N
refuses clients over the cap with a typed capacity error), and `msync
sync <OLD> --remote ADDR` updates the local directory against it over
real TCP, batching up to --pipeline-depth files (default 32) into one
frame per direction per round. --compare needs both sides locally and
cannot combine with --remote. Injecting faults into a real socket is
opt-in: --remote with --fault-profile additionally requires
--fault-wrap.

Collections: one daemon serves many named trees. A bare <ROOT> is the
collection `default`; `--collection name=path` (repeatable) adds named
trees, and `--registry-dir DIR` registers every immediate subdirectory
of DIR under its own name. Repeated or invalid names are refused when
the command line is parsed, not silently last-one-wins. Clients pick a
tree with `msync sync <OLD> --remote ADDR --collection NAME`; clients
that name nothing (including all v2 clients) get the default
collection, and an unknown name gets a typed unknown-collection
refusal. `msync reload NAME --remote ADDR` asks a running daemon to
re-read that collection's source tree from disk and swap it in
atomically: in-flight sessions finish against the snapshot they
started with, new sessions see the new tree.

Durability: --state-dir DIR (remote syncs with --write) keeps a
checkpoint journal and a file-metadata cache in DIR. Every completed
file is applied atomically (temp + fsync + rename) and checkpointed
before the session moves on; after a crash, rerun with --resume to
offer the checkpoint to the daemon — confirmed files skip their
sessions entirely. The metadata cache makes repeat syncs of an
unchanged tree exchange only the roster; --no-cache disables it for
one run.

Observability: `msync sync ... --trace-out run.jsonl` writes one JSON
object per trace event (frame charges, map rounds, faults, sessions —
validate with `cargo run -p xtask -- check-journal`), and `msync serve
... --metrics-out metrics.prom` keeps a Prometheus-style rendering of
the daemon's aggregate counters and latency histograms fresh after
every session.

Introspection: a running daemon answers admin verbs without disturbing
live sessions. `msync stats --remote ADDR` fetches the full metrics
exposition (Prometheus text plus 10s/60s windowed rate gauges; --json
for the flat JSON rendering), `msync top --remote ADDR` refreshes a
live table of in-flight sessions plus daemon vitals every --interval
(default 1000 ms, Ctrl-C to quit). `msync serve ... --slow-session-ms
N` arms a watchdog: a session stuck in one protocol phase longer than
N ms gets a slow_session trace event and a WARN line, once per phase.
`msync trace-export run.jsonl --out run.trace.json` re-renders a trace
journal as Chrome trace_event JSON (load in chrome://tracing or
Perfetto).
";

/// Parse `argv[1..]`.
pub fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter().peekable();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    let command = match sub {
        "help" | "--help" | "-h" => Command::Help,
        "sync" | "inspect" => {
            let old = PathBuf::from(it.next().ok_or("missing <OLD> path")?);
            // NEW is optional for `sync` (a remote daemon can stand in
            // for it); anything that looks like a flag is not a path.
            let new = match it.peek() {
                Some(word) if !word.starts_with("--") => it.next().map(PathBuf::from),
                _ => None,
            };
            let mut config = ConfigSource::default();
            let mut compare = false;
            let mut write = None;
            let mut fault_profile = None;
            let mut fault_seed = 0u64;
            let mut remote: Option<String> = None;
            let mut pipeline_depth: Option<usize> = None;
            let mut fault_wrap = false;
            let mut trace_out: Option<PathBuf> = None;
            let mut state_dir: Option<PathBuf> = None;
            let mut resume = false;
            let mut no_cache = false;
            let mut collection: Option<String> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--config" => {
                        config = ConfigSource::File(PathBuf::from(
                            it.next().ok_or("--config needs a file path")?,
                        ))
                    }
                    "--preset" => {
                        config =
                            ConfigSource::Preset(it.next().ok_or("--preset needs a name")?.clone())
                    }
                    "--compare" if sub == "sync" => compare = true,
                    "--write" if sub == "sync" => {
                        write = Some(PathBuf::from(it.next().ok_or("--write needs a directory")?))
                    }
                    "--fault-profile" if sub == "sync" => {
                        fault_profile =
                            Some(it.next().ok_or("--fault-profile needs a name")?.clone())
                    }
                    "--fault-seed" if sub == "sync" => {
                        fault_seed = it
                            .next()
                            .ok_or("--fault-seed needs an integer")?
                            .parse()
                            .map_err(|_| "--fault-seed needs an integer".to_string())?
                    }
                    "--remote" if sub == "sync" => {
                        remote = Some(it.next().ok_or("--remote needs an address")?.clone())
                    }
                    "--pipeline-depth" if sub == "sync" => {
                        let depth: usize = it
                            .next()
                            .ok_or("--pipeline-depth needs an integer")?
                            .parse()
                            .map_err(|_| "--pipeline-depth needs an integer".to_string())?;
                        if depth == 0 {
                            return Err("--pipeline-depth must be at least 1".into());
                        }
                        pipeline_depth = Some(depth);
                    }
                    "--fault-wrap" if sub == "sync" => fault_wrap = true,
                    "--trace-out" if sub == "sync" => {
                        trace_out =
                            Some(PathBuf::from(it.next().ok_or("--trace-out needs a file path")?))
                    }
                    "--state-dir" if sub == "sync" => {
                        state_dir =
                            Some(PathBuf::from(it.next().ok_or("--state-dir needs a directory")?))
                    }
                    "--resume" if sub == "sync" => resume = true,
                    "--no-cache" if sub == "sync" => no_cache = true,
                    "--collection" if sub == "sync" => {
                        let name = it.next().ok_or("--collection needs a name")?.clone();
                        msync_net::validate_collection_name(&name).map_err(|reason| {
                            msync_net::RegistryError::InvalidName { name: name.clone(), reason }
                                .to_string()
                        })?;
                        collection = Some(name);
                    }
                    other => return Err(format!("unknown flag `{other}` for `{sub}`")),
                }
            }
            if sub == "sync" {
                match (&new, &remote) {
                    (Some(_), Some(_)) => {
                        return Err("give either <NEW> or --remote ADDR, not both".into())
                    }
                    (None, None) => return Err("missing <NEW> path (or --remote ADDR)".into()),
                    _ => {}
                }
                if remote.is_none() {
                    if pipeline_depth.is_some() {
                        return Err("--pipeline-depth only applies to --remote syncs".into());
                    }
                    if fault_wrap {
                        return Err("--fault-wrap only applies to --remote syncs".into());
                    }
                    if collection.is_some() {
                        return Err("--collection names a daemon collection; it only \
                                    applies to --remote syncs"
                            .into());
                    }
                } else {
                    if compare {
                        return Err(
                            "--compare needs both sides locally; it cannot combine with --remote"
                                .into(),
                        );
                    }
                    if fault_profile.is_some() && !fault_wrap {
                        return Err("--fault-profile on a real socket is opt-in: \
                                    add --fault-wrap to inject faults into the --remote link"
                            .into());
                    }
                }
                if fault_wrap && fault_profile.is_none() {
                    return Err("--fault-wrap needs a --fault-profile to wrap".into());
                }
                if state_dir.is_some() {
                    if remote.is_none() {
                        return Err("--state-dir only applies to --remote syncs".into());
                    }
                    if write.is_none() {
                        return Err("--state-dir needs --write DIR: durable state \
                                    checkpoints files applied to disk"
                            .into());
                    }
                } else {
                    if resume {
                        return Err(
                            "--resume needs --state-dir DIR to read the checkpoint from".into()
                        );
                    }
                    if no_cache {
                        return Err("--no-cache only matters with --state-dir DIR".into());
                    }
                }
                Command::Sync {
                    old,
                    new,
                    config,
                    compare,
                    write,
                    fault_profile,
                    fault_seed,
                    remote,
                    pipeline_depth: pipeline_depth.unwrap_or(32),
                    fault_wrap,
                    trace_out,
                    state_dir,
                    resume,
                    no_cache,
                    collection,
                }
            } else {
                let new = new.ok_or("missing <NEW> path")?;
                Command::Inspect { old, new, config }
            }
        }
        "serve" => {
            // ROOT is optional: --collection / --registry-dir can name
            // every served tree. Anything flag-shaped is not a path.
            let root = match it.peek() {
                Some(word) if !word.starts_with("--") => it.next().map(PathBuf::from),
                _ => None,
            };
            let mut listen = "127.0.0.1:9631".to_string();
            let mut metrics_out: Option<PathBuf> = None;
            let mut workers = 0usize;
            let mut max_sessions: Option<usize> = None;
            let mut collections: Vec<(String, PathBuf)> = Vec::new();
            let mut registry_dir: Option<PathBuf> = None;
            let mut slow_session_ms: Option<u64> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--listen" => listen = it.next().ok_or("--listen needs an address")?.clone(),
                    "--metrics-out" => {
                        metrics_out =
                            Some(PathBuf::from(it.next().ok_or("--metrics-out needs a file path")?))
                    }
                    "--workers" => {
                        workers = it
                            .next()
                            .ok_or("--workers needs a thread count")?
                            .parse()
                            .map_err(|_| "--workers needs an integer".to_string())?
                    }
                    "--max-sessions" => {
                        max_sessions = Some(
                            it.next()
                                .ok_or("--max-sessions needs a session count")?
                                .parse()
                                .map_err(|_| "--max-sessions needs an integer".to_string())?,
                        )
                    }
                    "--collection" => {
                        let spec = it.next().ok_or("--collection needs NAME=PATH")?;
                        let (name, path) = spec
                            .split_once('=')
                            .ok_or_else(|| format!("--collection `{spec}`: expected NAME=PATH"))?;
                        if path.is_empty() {
                            return Err(format!("--collection `{spec}`: empty PATH"));
                        }
                        msync_net::validate_collection_name(name).map_err(|reason| {
                            msync_net::RegistryError::InvalidName { name: name.to_owned(), reason }
                                .to_string()
                        })?;
                        // Repeated names are a conflict, never
                        // last-one-wins — each name maps to one tree.
                        if collections.iter().any(|(n, _)| n == name) {
                            return Err(
                                msync_net::RegistryError::Duplicate(name.to_owned()).to_string()
                            );
                        }
                        collections.push((name.to_owned(), PathBuf::from(path)));
                    }
                    "--registry-dir" => {
                        registry_dir = Some(PathBuf::from(
                            it.next().ok_or("--registry-dir needs a directory")?,
                        ))
                    }
                    "--slow-session-ms" => {
                        let ms: u64 = it
                            .next()
                            .ok_or("--slow-session-ms needs a threshold in milliseconds")?
                            .parse()
                            .map_err(|_| "--slow-session-ms needs an integer".to_string())?;
                        if ms == 0 {
                            return Err("--slow-session-ms must be at least 1".into());
                        }
                        slow_session_ms = Some(ms);
                    }
                    other => return Err(format!("unknown flag `{other}` for `serve`")),
                }
            }
            if root.is_none() && collections.is_empty() && registry_dir.is_none() {
                return Err("serve needs something to serve: a ROOT directory, \
                            --collection NAME=PATH, or --registry-dir DIR"
                    .into());
            }
            // A bare ROOT is registered as the default collection, so a
            // --collection entry under that name would collide with it.
            if root.is_some() && collections.iter().any(|(n, _)| n == msync_net::DEFAULT_COLLECTION)
            {
                return Err(format!(
                    "{} (ROOT already serves as the default collection)",
                    msync_net::RegistryError::Duplicate(msync_net::DEFAULT_COLLECTION.to_owned())
                ));
            }
            Command::Serve {
                root,
                listen,
                metrics_out,
                workers,
                max_sessions,
                collections,
                registry_dir,
                slow_session_ms,
            }
        }
        "reload" => {
            let name = it.next().ok_or("missing collection NAME")?.clone();
            msync_net::validate_collection_name(&name).map_err(|reason| {
                msync_net::RegistryError::InvalidName { name: name.clone(), reason }.to_string()
            })?;
            let mut remote: Option<String> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--remote" => {
                        remote = Some(it.next().ok_or("--remote needs an address")?.clone())
                    }
                    other => return Err(format!("unknown flag `{other}` for `reload`")),
                }
            }
            let remote = remote.ok_or("reload needs --remote ADDR (the daemon to ask)")?;
            Command::Reload { name, remote }
        }
        "stats" => {
            let mut remote: Option<String> = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--remote" => {
                        remote = Some(it.next().ok_or("--remote needs an address")?.clone())
                    }
                    "--json" => json = true,
                    other => return Err(format!("unknown flag `{other}` for `stats`")),
                }
            }
            let remote = remote.ok_or("stats needs --remote ADDR (the daemon to scrape)")?;
            Command::Stats { remote, json }
        }
        "top" => {
            let mut remote: Option<String> = None;
            let mut interval_ms = 1000u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--remote" => {
                        remote = Some(it.next().ok_or("--remote needs an address")?.clone())
                    }
                    "--interval" => {
                        interval_ms = it
                            .next()
                            .ok_or("--interval needs milliseconds")?
                            .parse()
                            .map_err(|_| "--interval needs an integer".to_string())?;
                        if interval_ms == 0 {
                            return Err("--interval must be at least 1".into());
                        }
                    }
                    other => return Err(format!("unknown flag `{other}` for `top`")),
                }
            }
            let remote = remote.ok_or("top needs --remote ADDR (the daemon to watch)")?;
            Command::Top { remote, interval_ms }
        }
        "trace-export" => {
            let input = PathBuf::from(it.next().ok_or("missing <JOURNAL> path")?);
            let mut output: Option<PathBuf> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => {
                        output = Some(PathBuf::from(it.next().ok_or("--out needs a file path")?))
                    }
                    other => return Err(format!("unknown flag `{other}` for `trace-export`")),
                }
            }
            Command::TraceExport { input, output }
        }
        "chunks" => {
            let file = PathBuf::from(it.next().ok_or("missing <FILE> path")?);
            let mut avg = 2048usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--avg" => {
                        avg = it
                            .next()
                            .ok_or("--avg needs a byte count")?
                            .parse()
                            .map_err(|_| "--avg needs an integer".to_string())?
                    }
                    other => return Err(format!("unknown flag `{other}` for `chunks`")),
                }
            }
            if !avg.is_power_of_two() || avg < 64 {
                return Err("--avg must be a power of two ≥ 64".into());
            }
            Command::Chunks { file, avg }
        }
        "params" => {
            let mut preset = "default".to_string();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--preset" => preset = it.next().ok_or("--preset needs a name")?.clone(),
                    other => return Err(format!("unknown flag `{other}` for `params`")),
                }
            }
            Command::Params { preset }
        }
        other => return Err(format!("unknown subcommand `{other}`")),
    };
    Ok(Cli { command })
}

/// Resolve a preset name into a configuration.
pub fn preset_config(name: &str) -> Result<msync_core::ProtocolConfig, String> {
    if let Some(levels) = name.strip_prefix("restricted:") {
        let levels: u32 = levels.parse().map_err(|_| "restricted:<levels> needs an integer")?;
        return Ok(msync_core::ProtocolConfig::restricted(levels));
    }
    match name {
        "default" | "all" => Ok(msync_core::ProtocolConfig::default()),
        "basic" => Ok(msync_core::ProtocolConfig::basic(64)),
        other => {
            Err(format!("unknown preset `{other}` (try: default, basic, restricted:<levels>)"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Cli, String> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn sync_with_flags() {
        let cli = parse(&["sync", "a", "b", "--preset", "basic", "--compare"]).unwrap();
        match cli.command {
            Command::Sync {
                old,
                new,
                config,
                compare,
                write,
                fault_profile,
                fault_seed,
                remote,
                pipeline_depth,
                fault_wrap,
                trace_out,
                state_dir,
                resume,
                no_cache,
                collection,
            } => {
                assert_eq!(old, PathBuf::from("a"));
                assert_eq!(new, Some(PathBuf::from("b")));
                assert_eq!(config, ConfigSource::Preset("basic".into()));
                assert!(compare);
                assert!(write.is_none());
                assert!(fault_profile.is_none());
                assert_eq!(fault_seed, 0);
                assert!(remote.is_none());
                assert_eq!(pipeline_depth, 32);
                assert!(!fault_wrap);
                assert!(trace_out.is_none());
                assert!(state_dir.is_none());
                assert!(!resume);
                assert!(!no_cache);
                assert!(collection.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn durability_flags_parse_and_validate() {
        let cli = parse(&[
            "sync",
            "m",
            "--remote",
            "h:1",
            "--write",
            "out",
            "--state-dir",
            ".msync",
            "--resume",
            "--no-cache",
        ])
        .unwrap();
        match cli.command {
            Command::Sync { state_dir, resume, no_cache, .. } => {
                assert_eq!(state_dir, Some(PathBuf::from(".msync")));
                assert!(resume);
                assert!(no_cache);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Durable state is a remote-sync feature and needs a write dir.
        assert!(parse(&["sync", "a", "b", "--state-dir", "s"]).unwrap_err().contains("--remote"));
        assert!(parse(&["sync", "m", "--remote", "h:1", "--state-dir", "s"])
            .unwrap_err()
            .contains("--write"));
        // --resume / --no-cache without state are meaningless.
        assert!(parse(&["sync", "m", "--remote", "h:1", "--resume"])
            .unwrap_err()
            .contains("--state-dir"));
        assert!(parse(&["sync", "m", "--remote", "h:1", "--no-cache"])
            .unwrap_err()
            .contains("--state-dir"));
        assert!(parse(&["inspect", "a", "b", "--resume"]).is_err());
    }

    #[test]
    fn serve_parses_with_default_and_explicit_listen() {
        let cli = parse(&["serve", "/srv/tree"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                root: Some(PathBuf::from("/srv/tree")),
                listen: "127.0.0.1:9631".into(),
                metrics_out: None,
                workers: 0,
                max_sessions: None,
                collections: Vec::new(),
                registry_dir: None,
                slow_session_ms: None,
            }
        );
        let cli = parse(&["serve", "/srv/tree", "--listen", "0.0.0.0:7777"]).unwrap();
        match cli.command {
            Command::Serve { listen, .. } => assert_eq!(listen, "0.0.0.0:7777"),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["serve"]).unwrap_err().contains("ROOT"));
        assert!(parse(&["serve", "/srv", "--compare"]).is_err());
    }

    #[test]
    fn serve_collections_parse_and_conflicts_are_refused_at_parse_time() {
        let cli = parse(&[
            "serve",
            "--collection",
            "photos=/srv/photos",
            "--collection",
            "docs=/srv/docs",
        ])
        .unwrap();
        match cli.command {
            Command::Serve { root, collections, .. } => {
                assert!(root.is_none());
                assert_eq!(
                    collections,
                    vec![
                        ("photos".to_string(), PathBuf::from("/srv/photos")),
                        ("docs".to_string(), PathBuf::from("/srv/docs")),
                    ]
                );
            }
            other => panic!("wrong command {other:?}"),
        }
        // The same name twice is a conflict, not last-one-wins.
        let err = parse(&["serve", "--collection", "a=/x", "--collection", "a=/y"]).unwrap_err();
        assert!(err.contains("registered more than once"), "{err}");
        // ROOT already occupies the default collection's name.
        let err = parse(&["serve", "/srv", "--collection", "default=/other"]).unwrap_err();
        assert!(err.contains("registered more than once"), "{err}");
        // Bad names are caught before the daemon ever starts.
        for bad in ["../etc=/x", "a/b=/x", "=/x", "..=/x"] {
            assert!(parse(&["serve", "--collection", bad]).is_err(), "{bad}");
        }
        assert!(parse(&["serve", "--collection", "noequals"]).unwrap_err().contains("NAME=PATH"));
        assert!(parse(&["serve", "--collection", "a="]).unwrap_err().contains("empty PATH"));
    }

    #[test]
    fn serve_registry_dir_parses() {
        let cli = parse(&["serve", "--registry-dir", "/srv/registry"]).unwrap();
        match cli.command {
            Command::Serve { root, registry_dir, .. } => {
                assert!(root.is_none());
                assert_eq!(registry_dir, Some(PathBuf::from("/srv/registry")));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["serve", "--registry-dir"]).unwrap_err().contains("directory"));
    }

    #[test]
    fn sync_collection_flag_is_remote_only_and_validated() {
        let cli = parse(&["sync", "m", "--remote", "h:1", "--collection", "photos"]).unwrap();
        match cli.command {
            Command::Sync { collection, .. } => assert_eq!(collection.as_deref(), Some("photos")),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["sync", "a", "b", "--collection", "x"]).unwrap_err().contains("--remote"));
        assert!(parse(&["sync", "m", "--remote", "h:1", "--collection", "../up"]).is_err());
        assert!(parse(&["sync", "m", "--remote", "h:1", "--collection"]).is_err());
    }

    #[test]
    fn reload_parses_and_validates() {
        let cli = parse(&["reload", "crawl", "--remote", "h:1"]).unwrap();
        assert_eq!(cli.command, Command::Reload { name: "crawl".into(), remote: "h:1".into() });
        assert!(parse(&["reload", "crawl"]).unwrap_err().contains("--remote"));
        assert!(parse(&["reload"]).unwrap_err().contains("NAME"));
        assert!(parse(&["reload", "../up", "--remote", "h:1"]).is_err());
    }

    #[test]
    fn serve_slow_session_flag_parses_and_validates() {
        let cli = parse(&["serve", "/srv", "--slow-session-ms", "2500"]).unwrap();
        match cli.command {
            Command::Serve { slow_session_ms, .. } => assert_eq!(slow_session_ms, Some(2500)),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["serve", "/srv", "--slow-session-ms", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["serve", "/srv", "--slow-session-ms", "soon"]).is_err());
        assert!(parse(&["serve", "/srv", "--slow-session-ms"]).is_err());
    }

    #[test]
    fn stats_and_top_parse_and_require_remote() {
        let cli = parse(&["stats", "--remote", "h:1"]).unwrap();
        assert_eq!(cli.command, Command::Stats { remote: "h:1".into(), json: false });
        let cli = parse(&["stats", "--remote", "h:1", "--json"]).unwrap();
        assert_eq!(cli.command, Command::Stats { remote: "h:1".into(), json: true });
        assert!(parse(&["stats"]).unwrap_err().contains("--remote"));
        assert!(parse(&["stats", "--remote", "h:1", "--yaml"]).is_err());

        let cli = parse(&["top", "--remote", "h:1"]).unwrap();
        assert_eq!(cli.command, Command::Top { remote: "h:1".into(), interval_ms: 1000 });
        let cli = parse(&["top", "--remote", "h:1", "--interval", "250"]).unwrap();
        assert_eq!(cli.command, Command::Top { remote: "h:1".into(), interval_ms: 250 });
        assert!(parse(&["top"]).unwrap_err().contains("--remote"));
        assert!(parse(&["top", "--remote", "h:1", "--interval", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["top", "--remote", "h:1", "--interval", "x"]).is_err());
    }

    #[test]
    fn trace_export_parses() {
        let cli = parse(&["trace-export", "run.jsonl"]).unwrap();
        assert_eq!(
            cli.command,
            Command::TraceExport { input: PathBuf::from("run.jsonl"), output: None }
        );
        let cli = parse(&["trace-export", "run.jsonl", "--out", "run.trace.json"]).unwrap();
        assert_eq!(
            cli.command,
            Command::TraceExport {
                input: PathBuf::from("run.jsonl"),
                output: Some(PathBuf::from("run.trace.json")),
            }
        );
        assert!(parse(&["trace-export"]).unwrap_err().contains("JOURNAL"));
        assert!(parse(&["trace-export", "run.jsonl", "--out"]).unwrap_err().contains("file path"));
        assert!(parse(&["trace-export", "run.jsonl", "--format", "x"]).is_err());
    }

    #[test]
    fn serve_concurrency_flags_parse() {
        let cli = parse(&["serve", "/srv", "--workers", "4", "--max-sessions", "64"]).unwrap();
        match cli.command {
            Command::Serve { workers, max_sessions, .. } => {
                assert_eq!(workers, 4);
                assert_eq!(max_sessions, Some(64));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["serve", "/srv", "--workers"]).unwrap_err().contains("thread count"));
        assert!(parse(&["serve", "/srv", "--workers", "x"]).unwrap_err().contains("integer"));
        assert!(parse(&["serve", "/srv", "--max-sessions", "no"]).is_err());
    }

    #[test]
    fn observability_flags_parse() {
        let cli = parse(&["sync", "a", "b", "--trace-out", "run.jsonl"]).unwrap();
        match cli.command {
            Command::Sync { trace_out, .. } => {
                assert_eq!(trace_out, Some(PathBuf::from("run.jsonl")));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Remote syncs trace too.
        let cli = parse(&["sync", "a", "--remote", "h:1", "--trace-out", "t.jsonl"]).unwrap();
        match cli.command {
            Command::Sync { trace_out, .. } => assert!(trace_out.is_some()),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["sync", "a", "b", "--trace-out"]).unwrap_err().contains("file path"));
        assert!(parse(&["inspect", "a", "b", "--trace-out", "x"]).is_err());

        let cli = parse(&["serve", "/srv", "--metrics-out", "m.prom"]).unwrap();
        match cli.command {
            Command::Serve { metrics_out, .. } => {
                assert_eq!(metrics_out, Some(PathBuf::from("m.prom")));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["serve", "/srv", "--metrics-out"]).unwrap_err().contains("file path"));
    }

    #[test]
    fn remote_replaces_the_new_path() {
        let cli =
            parse(&["sync", "mirror", "--remote", "host:9631", "--pipeline-depth", "64"]).unwrap();
        match cli.command {
            Command::Sync { old, new, remote, pipeline_depth, .. } => {
                assert_eq!(old, PathBuf::from("mirror"));
                assert!(new.is_none());
                assert_eq!(remote.as_deref(), Some("host:9631"));
                assert_eq!(pipeline_depth, 64);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Both NEW and --remote, or neither, is a contradiction.
        assert!(parse(&["sync", "a", "b", "--remote", "h:1"]).unwrap_err().contains("not both"));
        assert!(parse(&["sync", "a"]).unwrap_err().contains("--remote"));
    }

    #[test]
    fn pipeline_depth_validation() {
        assert!(parse(&["sync", "a", "--remote", "h:1", "--pipeline-depth", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["sync", "a", "--remote", "h:1", "--pipeline-depth", "x"]).is_err());
        // Depth is meaningless without a remote link.
        assert!(parse(&["sync", "a", "b", "--pipeline-depth", "8"])
            .unwrap_err()
            .contains("--remote"));
    }

    #[test]
    fn remote_conflicts_rejected() {
        // Comparison baselines need the server's files locally.
        assert!(parse(&["sync", "a", "--remote", "h:1", "--compare"])
            .unwrap_err()
            .contains("--compare"));
        // Faults on a real socket require the explicit wrap opt-in...
        assert!(parse(&["sync", "a", "--remote", "h:1", "--fault-profile", "lossy"])
            .unwrap_err()
            .contains("--fault-wrap"));
        // ...and with it, the combination parses.
        let cli =
            parse(&["sync", "a", "--remote", "h:1", "--fault-profile", "lossy", "--fault-wrap"])
                .unwrap();
        match cli.command {
            Command::Sync { fault_profile, fault_wrap, .. } => {
                assert_eq!(fault_profile.as_deref(), Some("lossy"));
                assert!(fault_wrap);
            }
            other => panic!("wrong command {other:?}"),
        }
        // --fault-wrap alone wraps nothing.
        assert!(parse(&["sync", "a", "--remote", "h:1", "--fault-wrap"])
            .unwrap_err()
            .contains("--fault-profile"));
        // Local syncs have no socket to wrap.
        assert!(parse(&["sync", "a", "b", "--fault-wrap", "--fault-profile", "lossy"])
            .unwrap_err()
            .contains("--remote"));
    }

    #[test]
    fn sync_fault_flags() {
        let cli =
            parse(&["sync", "a", "b", "--fault-profile", "lossy", "--fault-seed", "42"]).unwrap();
        match cli.command {
            Command::Sync { fault_profile, fault_seed, .. } => {
                assert_eq!(fault_profile.as_deref(), Some("lossy"));
                assert_eq!(fault_seed, 42);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["sync", "a", "b", "--fault-seed", "x"]).is_err());
        assert!(parse(&["inspect", "a", "b", "--fault-profile", "lossy"]).is_err());
    }

    #[test]
    fn inspect_rejects_sync_only_flags() {
        assert!(parse(&["inspect", "a", "b", "--compare"]).is_err());
    }

    #[test]
    fn chunks_validation() {
        assert!(parse(&["chunks", "f", "--avg", "1000"]).is_err()); // not pow2
        assert!(parse(&["chunks", "f", "--avg", "32"]).is_err()); // too small
        let cli = parse(&["chunks", "f", "--avg", "4096"]).unwrap();
        assert_eq!(cli.command, Command::Chunks { file: PathBuf::from("f"), avg: 4096 });
    }

    #[test]
    fn missing_args_reported() {
        assert!(parse(&["sync"]).unwrap_err().contains("OLD"));
        assert!(parse(&["sync", "a"]).unwrap_err().contains("NEW"));
        assert!(parse(&["bogus"]).unwrap_err().contains("unknown subcommand"));
        assert!(parse(&[]).is_ok()); // → help
    }

    #[test]
    fn presets_resolve() {
        assert!(preset_config("default").is_ok());
        assert!(preset_config("basic").is_ok());
        let r = preset_config("restricted:3").unwrap();
        assert_eq!(r.global_levels(), 3);
        assert!(preset_config("nope").is_err());
        assert!(preset_config("restricted:x").is_err());
    }
}
