//! The `msync` command-line tool.
//!
//! The paper's §7: "we intend to use the presented techniques as the
//! basis for a new general purpose tool for file synchronization over
//! slow links that we plan to release." This is that tool, as a local
//! analyzer/simulator: point it at an (old, new) pair of files or
//! directory trees and it runs the full protocol, reports exactly what
//! would cross the wire, compares against rsync/CDC/delta baselines,
//! and estimates transfer times over standard slow links.
//!
//! ```text
//! msync sync OLD NEW [--config FILE | --preset NAME] [--compare] [--write DIR]
//! msync inspect OLD NEW [--config FILE | --preset NAME]
//! msync chunks FILE [--avg N]
//! msync params [--preset NAME]
//! msync help
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse_args, Cli, Command};
pub use commands::run;

/// Process exit codes.
pub mod exit {
    /// Success.
    pub const OK: i32 = 0;
    /// Operational failure (I/O, sync error).
    pub const FAILURE: i32 = 1;
    /// Usage error.
    pub const USAGE: i32 = 2;
}
