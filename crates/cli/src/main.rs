//! `msync` binary entry point.

use msync_cli::{exit, parse_args, run};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", msync_cli::args::USAGE);
            std::process::exit(exit::USAGE);
        }
    };
    match run(&cli) {
        Ok(report) => print!("{report}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(exit::FAILURE);
        }
    }
}
