//! In-memory duplex channel with exact byte accounting.
//!
//! The two protocol endpoints (synchronization client and server) run as
//! two threads connected by a pair of message queues. Every frame sent is
//! charged to a `(direction, phase)` counter, including the framing
//! overhead a real transport would pay (a varint length prefix), so the
//! reported numbers correspond to bytes a TCP connection would carry.
//! Roundtrips are counted as direction reversals observed at the channel,
//! matching how the paper counts "one or more roundtrips of
//! communication" per round.

use crate::stats::{Direction, Phase, TrafficStats};
use std::sync::mpsc::{channel, Receiver, RecvError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A single frame on the wire.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Bit-packed payload produced by the protocol layer.
    pub payload: Vec<u8>,
}

/// Size in bytes a length-prefixed frame occupies on the wire.
pub fn frame_wire_size(payload_len: usize) -> u64 {
    let varint_len = (64 - (payload_len as u64 | 1).leading_zeros() as u64).div_ceil(7);
    varint_len + payload_len as u64
}

#[derive(Debug, Default)]
struct Shared {
    stats: TrafficStats,
    last_dir: Option<Direction>,
    half_trips: u32,
}

/// One side of a duplex channel.
pub struct Endpoint {
    dir: Direction,
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    shared: Arc<Mutex<Shared>>,
    phase: Phase,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("dir", &self.dir).finish()
    }
}

/// Error returned by [`Endpoint::recv`] when the peer hung up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer disconnected")
    }
}

impl std::error::Error for Disconnected {}

impl Endpoint {
    /// Create a connected pair: `(client_end, server_end)`. Frames sent
    /// from the client end are attributed to [`Direction::ClientToServer`]
    /// and vice versa.
    pub fn pair() -> (Endpoint, Endpoint) {
        let (tx_c2s, rx_c2s) = channel();
        let (tx_s2c, rx_s2c) = channel();
        let shared = Arc::new(Mutex::new(Shared::default()));
        let client = Endpoint {
            dir: Direction::ClientToServer,
            tx: tx_c2s,
            rx: rx_s2c,
            shared: Arc::clone(&shared),
            phase: Phase::Setup,
        };
        let server = Endpoint {
            dir: Direction::ServerToClient,
            tx: tx_s2c,
            rx: rx_c2s,
            shared,
            phase: Phase::Setup,
        };
        (client, server)
    }

    /// Set the phase subsequent sends from this endpoint are charged to.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Lock the shared statistics. A poisoned mutex (a peer thread that
    /// panicked while holding it) is recovered rather than propagated:
    /// traffic counters stay well-formed and the channel must never add
    /// a second panic on top of the original failure.
    fn lock_shared(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Send a frame to the peer, charging its wire size.
    pub fn send(&self, payload: Vec<u8>) {
        {
            let mut shared = self.lock_shared();
            shared.stats.record(self.dir, self.phase, frame_wire_size(payload.len()));
            if shared.last_dir != Some(self.dir) {
                shared.half_trips += 1;
                shared.last_dir = Some(self.dir);
                shared.stats.roundtrips = shared.half_trips.div_ceil(2);
            }
        }
        // A send can only fail if the receiver was dropped; the session
        // driver treats that as a protocol bug, surfaced on recv instead.
        let _ = self.tx.send(Frame { payload });
    }

    /// Receive the next frame from the peer.
    pub fn recv(&self) -> Result<Vec<u8>, Disconnected> {
        match self.rx.recv() {
            Ok(frame) => Ok(frame.payload),
            Err(RecvError) => Err(Disconnected),
        }
    }

    /// Snapshot of the traffic statistics shared by both endpoints.
    pub fn stats(&self) -> TrafficStats {
        self.lock_shared().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_roundtrip() {
        let (client, server) = Endpoint::pair();
        client.send(vec![1, 2, 3]);
        assert_eq!(server.recv().unwrap(), vec![1, 2, 3]);
        server.send(vec![4]);
        assert_eq!(client.recv().unwrap(), vec![4]);
    }

    #[test]
    fn byte_accounting_includes_framing() {
        let (client, server) = Endpoint::pair();
        client.send(vec![0; 100]);
        let _ = server.recv();
        let stats = client.stats();
        assert_eq!(stats.total_c2s(), frame_wire_size(100));
        assert_eq!(frame_wire_size(100), 101);
        assert_eq!(frame_wire_size(0), 1);
        assert_eq!(frame_wire_size(128), 130);
    }

    #[test]
    fn roundtrip_counting() {
        let (mut client, mut server) = Endpoint::pair();
        client.set_phase(Phase::Map);
        server.set_phase(Phase::Map);
        // request → reply → request → reply = 2 roundtrips
        client.send(vec![1]);
        server.send(vec![2]);
        client.send(vec![3]);
        server.send(vec![4]);
        assert_eq!(client.stats().roundtrips, 2);
        // Two sends in a row in the same direction are one half-trip.
        client.send(vec![5]);
        client.send(vec![6]);
        assert_eq!(client.stats().roundtrips, 3);
    }

    #[test]
    fn disconnect_detected() {
        let (client, server) = Endpoint::pair();
        drop(server);
        assert_eq!(client.recv(), Err(Disconnected));
    }

    #[test]
    fn threaded_echo() {
        let (client, server) = Endpoint::pair();
        let h = thread::spawn(move || {
            for _ in 0..100 {
                let m = server.recv().unwrap();
                server.send(m);
            }
        });
        for i in 0..100u32 {
            client.send(i.to_le_bytes().to_vec());
            assert_eq!(client.recv().unwrap(), i.to_le_bytes().to_vec());
        }
        h.join().unwrap();
        assert_eq!(client.stats().roundtrips, 100);
    }

    #[test]
    fn phase_attribution() {
        let (mut client, server) = Endpoint::pair();
        client.send(vec![0; 10]);
        client.set_phase(Phase::Map);
        client.send(vec![0; 20]);
        client.set_phase(Phase::Delta);
        client.send(vec![0; 30]);
        for _ in 0..3 {
            let _ = server.recv();
        }
        let stats = client.stats();
        assert_eq!(stats.c2s(Phase::Setup), 11);
        assert_eq!(stats.c2s(Phase::Map), 21);
        assert_eq!(stats.c2s(Phase::Delta), 31);
    }
}
