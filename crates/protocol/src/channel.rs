//! In-memory duplex channel with exact byte accounting and link faults.
//!
//! The two protocol endpoints (synchronization client and server) run as
//! two threads connected by a pair of message queues. Every frame is
//! *charged* at the wire size a real transport would carry it at —
//!
//! ```text
//! [LEB128 payload length][CRC32 of payload, little-endian][payload]
//! ```
//!
//! — against a `(direction, phase)` counter, so the reported numbers
//! correspond to bytes a TCP connection would carry, checksums included.
//! Roundtrips are counted as direction reversals observed at the
//! channel, matching how the paper counts "one or more roundtrips of
//! communication" per round.
//!
//! The bytes themselves, however, are **never copied on the clean
//! path**: a clean frame travels as a refcounted share of the sender's
//! [`FrameBuf`] payload ([`Frame::Clean`]). Wire encoding exists to
//! make damage detectable, so the channel materializes an encoded image
//! only when a fault actually mutates a frame — via the one sanctioned
//! copy site, [`crate::fault::copy_for_mutation`] — and the receiver
//! rejects that [`Frame::Damaged`] image through the same CRC/length
//! checks a real socket would apply.
//!
//! A channel built with [`Endpoint::pair_with_faults`] additionally runs
//! every sent frame through a deterministic [`FaultInjector`]: frames
//! may be dropped, bit-flipped, truncated, duplicated, delayed past the
//! next frame, or the link may be cut mid-round. Receivers observe these
//! as typed [`ChannelError`]s — corruption is caught by the CRC/length
//! checks, loss by [`Endpoint::recv_timeout`]'s deadline, disconnects as
//! [`ChannelError::Disconnected`]. There is no blocking `recv` without a
//! deadline: a peer that dies must surface as an error, never a hang.

use crate::bufpool::FrameBuf;
use crate::crc::crc32;
use crate::fault::{copy_for_mutation, FaultInjector, FaultPlan};
use crate::stats::{Direction, Phase, TrafficStats};
use crate::transport::record_fate;
use msync_trace::{EventKind, Recorder};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A single frame in flight on the in-memory channel.
#[derive(Debug)]
pub enum Frame {
    /// An intact frame: a refcounted share of the sender's payload
    /// allocation. No wire image is built — framing exists to make
    /// damage detectable, and this frame is undamaged by construction.
    Clean(FrameBuf),
    /// A frame a fault mutated: the injector's private encoded wire
    /// image (length word + CRC32 + payload) after the bit flip or
    /// truncation, which the receiver decodes — and rejects — exactly
    /// as a real link would.
    Damaged(FrameBuf),
}

impl Frame {
    /// Another handle to the same frame: a refcount bump, never a byte
    /// copy.
    #[must_use]
    pub fn share(&self) -> Frame {
        match self {
            Frame::Clean(b) => Frame::Clean(b.share()),
            Frame::Damaged(b) => Frame::Damaged(b.share()),
        }
    }
}

/// Bytes of CRC32 carried by every frame.
const CRC_LEN: u64 = 4;

/// Frames larger than this are rejected as corrupt before any
/// allocation: no real payload approaches it, so an inflated length
/// word from a bit flip cannot demand unbounded memory.
const MAX_FRAME_PAYLOAD: u64 = 1 << 32;

/// Size in bytes a frame occupies on the wire: LEB128 length word +
/// 4-byte CRC32 + payload. This is the documented fixed per-frame
/// header overhead relative to a raw payload.
pub fn frame_wire_size(payload_len: usize) -> u64 {
    let varint_len = (64 - (payload_len as u64 | 1).leading_zeros() as u64).div_ceil(7);
    varint_len + CRC_LEN + payload_len as u64
}

/// Encode just the wire header (LEB128 length word + CRC32) for
/// `payload`. The vectored write paths send `[header, payload]` as two
/// I/O slices so the contiguous image [`encode_frame`] returns never
/// has to exist.
pub fn frame_header(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(14);
    let mut v = payload.len() as u64;
    loop {
        let low = u8::try_from(v & 0x7F).unwrap_or(0);
        v >>= 7;
        if v == 0 {
            out.push(low);
            break;
        }
        out.push(low | 0x80);
    }
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Encode a payload into its contiguous wire form (one metered payload
/// copy — prefer [`frame_header`] plus a vectored write where the
/// backend allows it).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    crate::bufpool::note_frame_copy(payload.len());
    let mut out = frame_header(payload);
    out.reserve(payload.len());
    out.extend_from_slice(payload);
    out
}

/// Why a received frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The frame ended before the header said it would.
    Truncated,
    /// The length word is inconsistent with the bytes received.
    Length,
    /// The CRC32 over the payload does not match the header.
    Checksum,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated"),
            Self::Length => write!(f, "frame length mismatch"),
            Self::Checksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Decode and verify a wire frame, returning the payload as a view
/// into `bytes` — validation allocates and copies nothing.
pub fn decode_frame(bytes: &[u8]) -> Result<&[u8], FrameError> {
    let mut len = 0u64;
    let mut shift = 0u32;
    let mut pos = 0usize;
    loop {
        let &b = bytes.get(pos).ok_or(FrameError::Truncated)?;
        pos += 1;
        if shift >= 64 {
            return Err(FrameError::Length);
        }
        len |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Length);
    }
    let body = &bytes[pos..];
    if body.len() < 4 {
        return Err(FrameError::Truncated);
    }
    let (crc_bytes, payload) = body.split_at(4);
    if u64::try_from(payload.len()).ok() != Some(len) {
        return Err(FrameError::Length);
    }
    let mut crc = [0u8; 4];
    crc.copy_from_slice(crc_bytes);
    if crc32(payload) != u32::from_le_bytes(crc) {
        return Err(FrameError::Checksum);
    }
    Ok(payload)
}

/// Decode a refcounted wire image into a zero-copy payload view: the
/// returned [`FrameBuf`] is a slice of `wire`'s allocation.
pub fn decode_frame_shared(wire: &FrameBuf) -> Result<FrameBuf, FrameError> {
    let payload_len = decode_frame(wire)?.len();
    Ok(wire.slice(wire.len() - payload_len, wire.len()))
}

/// Error returned by [`Endpoint::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// No frame arrived within the deadline.
    Timeout,
    /// The peer hung up (or the link was cut by a fault) and the queue
    /// is drained.
    Disconnected,
    /// A frame arrived but failed integrity checks.
    Corrupt(FrameError),
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Timeout => write!(f, "receive timed out"),
            Self::Disconnected => write!(f, "peer disconnected"),
            Self::Corrupt(e) => write!(f, "corrupt frame: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Timeout and bounded-retry policy for a session running over a real
/// channel: how long one receive may wait, how many retransmission
/// attempts are made after consecutive timeouts, and the exponential
/// backoff cap. Protocol logic never reads a clock — the policy is
/// applied per receive call, so runs stay deterministic given the frame
/// sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Deadline for a single receive attempt.
    pub timeout: Duration,
    /// Retransmissions attempted after consecutive timeouts before the
    /// session gives up with a typed error.
    pub max_retries: u32,
    /// Upper bound for the doubled per-attempt timeout.
    pub backoff_cap: Duration,
}

impl RetryPolicy {
    /// Timeout of the attempt after one that waited `current`:
    /// exponential backoff, doubled and capped.
    #[must_use]
    pub fn backoff(&self, current: Duration) -> Duration {
        current.saturating_mul(2).min(self.backoff_cap)
    }
}

impl Default for RetryPolicy {
    /// Generous interactive defaults: 500 ms per attempt, 5 retries,
    /// backoff capped at 2 s (worst-case ≈ 8 s before `Timeout`).
    fn default() -> Self {
        RetryPolicy {
            timeout: Duration::from_millis(500),
            max_retries: 5,
            backoff_cap: Duration::from_secs(2),
        }
    }
}

#[derive(Debug, Default)]
struct Shared {
    stats: TrafficStats,
    last_dir: Option<Direction>,
    half_trips: u32,
    /// Set when a disconnect fault cut the link: subsequent sends are
    /// lost and receivers see `Disconnected` once their queue drains.
    cut: bool,
    c2s_faults: Option<FaultInjector>,
    s2c_faults: Option<FaultInjector>,
    /// Frame held back by a delay fault, per direction; delivered ahead
    /// of the next frame sent in the same direction.
    held_c2s: Option<Frame>,
    held_s2c: Option<Frame>,
    /// Trace recorder shared by both endpoints (disabled by default).
    recorder: Recorder,
}

impl Shared {
    fn injector_mut(&mut self, dir: Direction) -> Option<&mut FaultInjector> {
        match dir {
            Direction::ClientToServer => self.c2s_faults.as_mut(),
            Direction::ServerToClient => self.s2c_faults.as_mut(),
        }
    }

    fn held_mut(&mut self, dir: Direction) -> &mut Option<Frame> {
        match dir {
            Direction::ClientToServer => &mut self.held_c2s,
            Direction::ServerToClient => &mut self.held_s2c,
        }
    }

    /// Charge one transmission of a `payload_len`-byte frame. This is
    /// the single point where wire bytes enter the stats, so the
    /// matching `FrameSend` trace event is emitted here too — a
    /// journal's per-(direction, phase) byte sums therefore equal the
    /// run's `TrafficStats` by construction.
    fn charge(&mut self, dir: Direction, phase: Phase, payload_len: usize) {
        let wire = frame_wire_size(payload_len);
        self.stats.record(dir, phase, wire);
        self.stats.frames += 1;
        self.recorder.record(EventKind::FrameSend {
            dir: dir.into(),
            phase: phase.into(),
            bytes: wire,
        });
        if self.last_dir != Some(dir) {
            self.half_trips += 1;
            self.last_dir = Some(dir);
            self.stats.roundtrips = self.half_trips.div_ceil(2);
        }
    }
}

/// One side of a duplex channel.
pub struct Endpoint {
    dir: Direction,
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    shared: Arc<Mutex<Shared>>,
    phase: Phase,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("dir", &self.dir).finish()
    }
}

impl Endpoint {
    /// Create a connected pair: `(client_end, server_end)`. Frames sent
    /// from the client end are attributed to [`Direction::ClientToServer`]
    /// and vice versa.
    pub fn pair() -> (Endpoint, Endpoint) {
        Self::pair_shared(Shared::default())
    }

    /// Create a connected pair whose link injects faults per `plan`,
    /// driven deterministically by `seed` (each direction derives its
    /// own stream, so the two sides' faults are decorrelated but the
    /// whole run is reproducible from `(plan, seed)`).
    pub fn pair_with_faults(plan: &FaultPlan, seed: u64) -> (Endpoint, Endpoint) {
        Self::pair_shared(Shared {
            c2s_faults: Some(FaultInjector::new(plan.c2s, seed)),
            s2c_faults: Some(FaultInjector::new(plan.s2c, seed ^ 0x9E37_79B9_7F4A_7C15)),
            ..Shared::default()
        })
    }

    fn pair_shared(shared: Shared) -> (Endpoint, Endpoint) {
        let (tx_c2s, rx_c2s) = channel();
        let (tx_s2c, rx_s2c) = channel();
        let shared = Arc::new(Mutex::new(shared));
        let client = Endpoint {
            dir: Direction::ClientToServer,
            tx: tx_c2s,
            rx: rx_s2c,
            shared: Arc::clone(&shared),
            phase: Phase::Setup,
        };
        let server = Endpoint {
            dir: Direction::ServerToClient,
            tx: tx_s2c,
            rx: rx_c2s,
            shared,
            phase: Phase::Setup,
        };
        (client, server)
    }

    /// Set the phase subsequent sends from this endpoint are charged to.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Lock the shared statistics. A poisoned mutex (a peer thread that
    /// panicked while holding it) is recovered rather than propagated:
    /// traffic counters stay well-formed and the channel must never add
    /// a second panic on top of the original failure.
    fn lock_shared(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Send a frame to the peer, charging its wire size (every actual
    /// transmission is charged — including duplicates and frames the
    /// link then loses, because the sender paid for them either way).
    ///
    /// Clean frames are delivered as refcounted shares of `payload`; an
    /// encoded wire image is built (and paid for) only when a fault
    /// actually mutates the frame.
    pub fn send(&self, payload: impl Into<FrameBuf>) {
        let payload = payload.into();
        let mut deliveries: Vec<Frame> = Vec::new();
        {
            let mut shared = self.lock_shared();
            if shared.cut {
                return;
            }
            let fate = shared.injector_mut(self.dir).map(FaultInjector::next_fate);
            if let Some(f) = &fate {
                let seq = shared.injector_mut(self.dir).map_or(0, |i| i.frames_seen());
                let rec = shared.recorder.clone();
                record_fate(&rec, self.dir.into(), f, seq);
            }
            if fate.is_some_and(|f| f.disconnect) {
                shared.cut = true;
                return;
            }
            shared.charge(self.dir, self.phase, payload.len());
            // A previously delayed frame is released by the next send in
            // the same direction: it travels ahead of the new frame.
            if let Some(held) = shared.held_mut(self.dir).take() {
                deliveries.push(held);
            }
            let fate = fate.unwrap_or_default();
            let frame = if fate.corrupt || fate.truncate {
                // Damage needs a private wire image: the injector's
                // sanctioned copy, mutated below the CRC.
                let mut wire = copy_for_mutation(&frame_header(&payload), &payload);
                if fate.corrupt {
                    if let Some(inj) = shared.injector_mut(self.dir) {
                        inj.corrupt_frame(&mut wire);
                    }
                }
                if fate.truncate {
                    if let Some(inj) = shared.injector_mut(self.dir) {
                        inj.truncate_frame(&mut wire);
                    }
                }
                Frame::Damaged(FrameBuf::from(wire))
            } else {
                Frame::Clean(payload.share())
            };
            if fate.duplicate {
                shared.charge(self.dir, self.phase, payload.len());
                deliveries.push(frame.share());
            }
            if fate.drop {
                // Transmitted (and charged) but lost in transit.
            } else if fate.delay {
                *shared.held_mut(self.dir) = Some(frame);
            } else {
                deliveries.push(frame);
            }
        }
        for frame in deliveries {
            // A send can only fail if the receiver was dropped; the
            // session layer surfaces that on its next receive instead.
            let _ = self.tx.send(frame);
        }
    }

    /// Unwrap a received [`Frame`]: a clean frame's payload share is
    /// handed over as-is; a damaged wire image goes through the same
    /// CRC/length validation a real link applies, and fails there.
    fn open_frame(frame: Frame) -> Result<FrameBuf, ChannelError> {
        match frame {
            Frame::Clean(payload) => Ok(payload),
            Frame::Damaged(wire) => decode_frame_shared(&wire).map_err(ChannelError::Corrupt),
        }
    }

    /// Receive the next frame from the peer, waiting at most `timeout`.
    /// Integrity failures surface as [`ChannelError::Corrupt`]; a dead
    /// peer or cut link as [`ChannelError::Disconnected`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<FrameBuf, ChannelError> {
        if self.lock_shared().cut {
            // The link is gone: drain what already arrived, then report
            // the disconnect immediately instead of burning the timeout.
            return match self.rx.try_recv() {
                Ok(frame) => Self::open_frame(frame),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => {
                    Err(ChannelError::Disconnected)
                }
            };
        }
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Self::open_frame(frame),
            Err(RecvTimeoutError::Timeout) => {
                if self.lock_shared().cut {
                    Err(ChannelError::Disconnected)
                } else {
                    Err(ChannelError::Timeout)
                }
            }
            Err(RecvTimeoutError::Disconnected) => Err(ChannelError::Disconnected),
        }
    }

    /// Record `frames` retransmitted frames in the shared stats. The
    /// bytes themselves are charged by [`Endpoint::send`] like any other
    /// transmission; this counter makes the recovery cost visible.
    pub fn note_retransmits(&self, frames: u64) {
        self.lock_shared().stats.retransmits += frames;
    }

    /// Snapshot of the traffic statistics shared by both endpoints.
    pub fn stats(&self) -> TrafficStats {
        self.lock_shared().stats
    }

    /// Attach a trace recorder to the channel. Both endpoints share
    /// it: the channel emits `FrameSend` events at its charge points
    /// and `FaultInjected` events for every fate the injector assigns.
    pub fn set_recorder(&self, recorder: Recorder) {
        self.lock_shared().recorder = recorder;
    }

    /// The trace recorder shared by both endpoints (disabled unless
    /// [`Endpoint::set_recorder`] was called).
    pub fn recorder(&self) -> Recorder {
        self.lock_shared().recorder.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRates;
    use std::thread;

    const TICK: Duration = Duration::from_millis(200);

    #[test]
    fn send_recv_roundtrip() {
        let (client, server) = Endpoint::pair();
        client.send(vec![1, 2, 3]);
        assert_eq!(server.recv_timeout(TICK).unwrap(), vec![1, 2, 3]);
        server.send(vec![4]);
        assert_eq!(client.recv_timeout(TICK).unwrap(), vec![4]);
    }

    #[test]
    fn byte_accounting_includes_framing() {
        let (client, server) = Endpoint::pair();
        client.send(vec![0; 100]);
        let _ = server.recv_timeout(TICK);
        let stats = client.stats();
        assert_eq!(stats.total_c2s(), frame_wire_size(100));
        // LEB128 length word + 4-byte CRC32 + payload.
        assert_eq!(frame_wire_size(100), 105);
        assert_eq!(frame_wire_size(0), 5);
        assert_eq!(frame_wire_size(128), 134);
        assert_eq!(stats.frames, 1);
    }

    #[test]
    fn frame_encoding_roundtrips() {
        for payload in [vec![], vec![7u8], vec![0xAB; 300], vec![1; 20_000]] {
            let encoded = encode_frame(&payload);
            assert_eq!(encoded.len() as u64, frame_wire_size(payload.len()));
            assert_eq!(decode_frame(&encoded).unwrap(), &payload[..]);
        }
    }

    #[test]
    fn frame_decode_rejects_damage() {
        let encoded = encode_frame(&vec![0x5A; 64]);
        // Truncation at every prefix length.
        for cut in 0..encoded.len() {
            assert!(decode_frame(&encoded[..cut]).is_err(), "prefix {cut} accepted");
        }
        // Single bit flips anywhere in the frame.
        for byte in 0..encoded.len() {
            for bit in 0..8 {
                let mut bad = encoded.clone();
                bad[byte] ^= 1 << bit;
                assert!(decode_frame(&bad).is_err(), "flip at {byte}.{bit} accepted");
            }
        }
        // Empty input.
        assert_eq!(decode_frame(&[]), Err(FrameError::Truncated));
    }

    #[test]
    fn oversized_length_word_rejected_without_allocation() {
        // A length word claiming ~2^62 bytes must be rejected up front.
        let huge = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x3F, 0, 0, 0, 0];
        assert_eq!(decode_frame(&huge), Err(FrameError::Length));
    }

    #[test]
    fn roundtrip_counting() {
        let (mut client, mut server) = Endpoint::pair();
        client.set_phase(Phase::Map);
        server.set_phase(Phase::Map);
        // request → reply → request → reply = 2 roundtrips
        client.send(vec![1]);
        server.send(vec![2]);
        client.send(vec![3]);
        server.send(vec![4]);
        assert_eq!(client.stats().roundtrips, 2);
        // Two sends in a row in the same direction are one half-trip.
        client.send(vec![5]);
        client.send(vec![6]);
        assert_eq!(client.stats().roundtrips, 3);
    }

    #[test]
    fn dead_peer_surfaces_within_deadline() {
        // The satellite regression: a peer that dies must surface as a
        // typed error within the deadline, never a hang.
        let (client, server) = Endpoint::pair();
        let killer = thread::spawn(move || drop(server));
        killer.join().unwrap();
        assert_eq!(client.recv_timeout(Duration::from_secs(5)), Err(ChannelError::Disconnected));

        // A silent (alive but mute) peer surfaces as Timeout instead.
        let (client, _server) = Endpoint::pair();
        assert_eq!(client.recv_timeout(Duration::from_millis(10)), Err(ChannelError::Timeout));
    }

    #[test]
    fn threaded_echo() {
        let (client, server) = Endpoint::pair();
        let h = thread::spawn(move || {
            for _ in 0..100 {
                let m = server.recv_timeout(Duration::from_secs(5)).unwrap();
                server.send(m);
            }
        });
        for i in 0..100u32 {
            client.send(i.to_le_bytes().to_vec());
            assert_eq!(client.recv_timeout(Duration::from_secs(5)).unwrap(), i.to_le_bytes());
        }
        h.join().unwrap();
        assert_eq!(client.stats().roundtrips, 100);
    }

    #[test]
    fn phase_attribution() {
        let (mut client, server) = Endpoint::pair();
        client.send(vec![0; 10]);
        client.set_phase(Phase::Map);
        client.send(vec![0; 20]);
        client.set_phase(Phase::Delta);
        client.send(vec![0; 30]);
        for _ in 0..3 {
            let _ = server.recv_timeout(TICK);
        }
        let stats = client.stats();
        assert_eq!(stats.c2s(Phase::Setup), 15);
        assert_eq!(stats.c2s(Phase::Map), 25);
        assert_eq!(stats.c2s(Phase::Delta), 35);
    }

    #[test]
    fn clean_fault_plan_is_transparent() {
        let (faulty_c, faulty_s) = Endpoint::pair_with_faults(&FaultPlan::none(), 42);
        let (plain_c, plain_s) = Endpoint::pair();
        for ep in [&faulty_c, &plain_c] {
            ep.send(vec![9; 50]);
        }
        assert_eq!(faulty_s.recv_timeout(TICK).unwrap(), plain_s.recv_timeout(TICK).unwrap());
        assert_eq!(faulty_c.stats(), plain_c.stats());
    }

    #[test]
    fn dropped_frames_still_charged() {
        let rates = FaultRates { drop: 1.0, ..FaultRates::none() };
        let (client, server) = Endpoint::pair_with_faults(&FaultPlan::symmetric(rates), 1);
        client.send(vec![0; 10]);
        assert_eq!(server.recv_timeout(Duration::from_millis(10)), Err(ChannelError::Timeout));
        assert_eq!(client.stats().total_c2s(), frame_wire_size(10));
    }

    #[test]
    fn corruption_detected_by_receiver() {
        let rates = FaultRates { corrupt: 1.0, ..FaultRates::none() };
        let (client, server) = Endpoint::pair_with_faults(&FaultPlan::symmetric(rates), 3);
        client.send(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(matches!(server.recv_timeout(TICK), Err(ChannelError::Corrupt(_))));
    }

    #[test]
    fn truncation_detected_by_receiver() {
        let rates = FaultRates { truncate: 1.0, ..FaultRates::none() };
        let (client, server) = Endpoint::pair_with_faults(&FaultPlan::symmetric(rates), 4);
        client.send(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(matches!(server.recv_timeout(TICK), Err(ChannelError::Corrupt(_))));
    }

    #[test]
    fn duplicates_delivered_and_charged_twice() {
        let rates = FaultRates { duplicate: 1.0, ..FaultRates::none() };
        let (client, server) = Endpoint::pair_with_faults(&FaultPlan::symmetric(rates), 5);
        client.send(vec![7; 10]);
        assert_eq!(server.recv_timeout(TICK).unwrap(), vec![7; 10]);
        assert_eq!(server.recv_timeout(TICK).unwrap(), vec![7; 10]);
        assert_eq!(client.stats().total_c2s(), 2 * frame_wire_size(10));
        assert_eq!(client.stats().frames, 2);
    }

    #[test]
    fn delay_reorders_past_next_frame() {
        let rates = FaultRates { delay: 1.0, ..FaultRates::none() };
        let mut plan = FaultPlan::none();
        plan.c2s = rates;
        let (client, server) = Endpoint::pair_with_faults(&plan, 6);
        client.send(vec![1]); // held
        assert_eq!(server.recv_timeout(Duration::from_millis(10)), Err(ChannelError::Timeout));
        client.send(vec![2]); // releases [1]; [2] is itself held
        assert_eq!(server.recv_timeout(TICK).unwrap(), vec![1]);
    }

    #[test]
    fn disconnect_fault_cuts_both_sides() {
        let rates = FaultRates { disconnect_after: Some(2), ..FaultRates::none() };
        let mut plan = FaultPlan::none();
        plan.c2s = rates;
        let (client, server) = Endpoint::pair_with_faults(&plan, 7);
        client.send(vec![1]);
        client.send(vec![2]);
        client.send(vec![3]); // triggers the cut; frame lost
        assert_eq!(server.recv_timeout(TICK).unwrap(), vec![1]);
        assert_eq!(server.recv_timeout(TICK).unwrap(), vec![2]);
        assert_eq!(server.recv_timeout(TICK), Err(ChannelError::Disconnected));
        // The cut link also swallows the server's sends.
        server.send(vec![9]);
        assert_eq!(client.recv_timeout(TICK), Err(ChannelError::Disconnected));
    }

    #[test]
    fn retransmit_counter_accumulates() {
        let (client, _server) = Endpoint::pair();
        client.note_retransmits(3);
        client.note_retransmits(2);
        assert_eq!(client.stats().retransmits, 5);
    }

    #[test]
    fn frame_send_events_mirror_charged_bytes() {
        use msync_trace::{DirTag, ManualClock, PhaseTag};
        let (mut client, server) = Endpoint::pair();
        let rec = Recorder::with_clock(std::sync::Arc::new(ManualClock::ticking(0, 1)));
        client.set_recorder(rec.clone());
        client.set_phase(Phase::Map);
        client.send(vec![0; 100]);
        server.send(vec![0; 10]);
        let snap = rec.snapshot();
        assert_eq!(snap.dir_phase_bytes(DirTag::C2s, PhaseTag::Map), frame_wire_size(100));
        assert_eq!(snap.dir_phase_bytes(DirTag::S2c, PhaseTag::Setup), frame_wire_size(10));
        assert_eq!(snap.total_bytes(), client.stats().total_bytes());
        assert_eq!(snap.frames_sent, client.stats().frames);
    }

    #[test]
    fn injected_faults_become_trace_events() {
        use msync_trace::{EventKind as Ev, FaultKind};
        let rates = FaultRates { duplicate: 1.0, ..FaultRates::none() };
        let (client, server) = Endpoint::pair_with_faults(&FaultPlan::symmetric(rates), 5);
        let rec = Recorder::system();
        client.set_recorder(rec.clone());
        client.send(vec![7; 10]);
        let _ = server.recv_timeout(TICK);
        let faults: Vec<_> = rec
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                Ev::FaultInjected { kind, seq, .. } => Some((kind, seq)),
                _ => None,
            })
            .collect();
        assert_eq!(faults, vec![(FaultKind::Duplicate, 1)]);
        // The duplicate was charged twice, so two FrameSend events too.
        assert_eq!(rec.snapshot().frames_sent, 2);
    }

    #[test]
    fn faulty_runs_reproduce_per_seed() {
        let rates = FaultRates { drop: 0.4, corrupt: 0.3, ..FaultRates::none() };
        let plan = FaultPlan::symmetric(rates);
        let outcomes: Vec<Vec<Result<FrameBuf, ChannelError>>> = (0..2)
            .map(|_| {
                let (client, server) = Endpoint::pair_with_faults(&plan, 1234);
                (0..20u8)
                    .map(|i| {
                        client.send(vec![i; 8]);
                        server.recv_timeout(Duration::from_millis(5))
                    })
                    .collect()
            })
            .collect();
        assert_eq!(outcomes[0], outcomes[1], "same seed must reproduce the same faults");
    }
}
