//! Deterministic link-fault injection.
//!
//! The paper's deployment story is synchronization over slow, real-world
//! links, where frames get dropped, corrupted, truncated, duplicated,
//! reordered, and connections die mid-round. This module models that
//! adversary as a [`FaultPlan`]: per-direction rates for six fault
//! classes, driven by the vendored xoshiro PRNG from `msync-corpus`
//! under an explicit seed, so every failing run is reproducible from
//! `(plan, seed)` alone and the build stays offline.
//!
//! The PRNG drives the *simulated network*, never the protocol itself:
//! both endpoints remain fully deterministic given the bytes they
//! receive (the `xtask lint` determinism rule still applies to protocol
//! logic).

use msync_corpus::Rng;

/// Per-direction fault probabilities. All rates are per-frame Bernoulli
/// draws in `[0, 1]`; classes compose (a frame can be both corrupted and
/// duplicated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a frame is silently lost.
    pub drop: f64,
    /// Probability a random bit of the frame is flipped.
    pub corrupt: f64,
    /// Probability the frame is cut to a random proper prefix.
    pub truncate: f64,
    /// Probability the frame is delivered twice.
    pub duplicate: f64,
    /// Probability the frame is held back and delivered after the next
    /// frame sent in the same direction (deterministic reordering — the
    /// simulator has no wall clock).
    pub delay: f64,
    /// Cut the connection after this many frames have entered this
    /// direction: the triggering frame and everything after it (both
    /// directions) is lost, and receivers see a disconnect once their
    /// queues drain.
    pub disconnect_after: Option<u64>,
}

impl FaultRates {
    /// A perfectly clean direction.
    #[must_use]
    pub const fn none() -> Self {
        FaultRates {
            drop: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            disconnect_after: None,
        }
    }

    /// True when every rate is zero and no disconnect is scheduled.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0
            && self.corrupt == 0.0
            && self.truncate == 0.0
            && self.duplicate == 0.0
            && self.delay == 0.0
            && self.disconnect_after.is_none()
    }
}

impl Default for FaultRates {
    fn default() -> Self {
        Self::none()
    }
}

/// Fault rates for both directions of a duplex channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Faults applied to client→server frames.
    pub c2s: FaultRates,
    /// Faults applied to server→client frames.
    pub s2c: FaultRates,
}

/// Names accepted by [`FaultPlan::profile`], for CLI help text.
pub const PROFILE_NAMES: &[&str] =
    &["none", "drop", "corrupt", "truncate", "duplicate", "delay", "disconnect", "lossy", "evil"];

impl FaultPlan {
    /// A clean link.
    #[must_use]
    pub const fn none() -> Self {
        FaultPlan { c2s: FaultRates::none(), s2c: FaultRates::none() }
    }

    /// The same rates in both directions.
    #[must_use]
    pub const fn symmetric(rates: FaultRates) -> Self {
        FaultPlan { c2s: rates, s2c: rates }
    }

    /// Named presets used by the CLI (`--fault-profile`) and the soak
    /// tests: one profile per single fault class, plus mixed profiles.
    /// Returns `None` for unknown names (see [`PROFILE_NAMES`]).
    #[must_use]
    pub fn profile(name: &str) -> Option<FaultPlan> {
        let single = |f: fn(&mut FaultRates)| {
            let mut r = FaultRates::none();
            f(&mut r);
            Some(FaultPlan::symmetric(r))
        };
        match name {
            "none" => Some(FaultPlan::none()),
            "drop" => single(|r| r.drop = 0.05),
            "corrupt" => single(|r| r.corrupt = 0.05),
            "truncate" => single(|r| r.truncate = 0.05),
            "duplicate" => single(|r| r.duplicate = 0.08),
            "delay" => single(|r| r.delay = 0.15),
            "disconnect" => {
                let mut plan = FaultPlan::none();
                plan.s2c.disconnect_after = Some(20);
                Some(plan)
            }
            "lossy" => single(|r| {
                r.drop = 0.03;
                r.duplicate = 0.03;
                r.delay = 0.05;
            }),
            "evil" => single(|r| {
                r.drop = 0.04;
                r.corrupt = 0.04;
                r.truncate = 0.02;
                r.duplicate = 0.04;
                r.delay = 0.08;
            }),
            _ => None,
        }
    }

    /// True when both directions are clean (the injector is a no-op and
    /// byte accounting matches a faultless channel exactly).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.c2s.is_clean() && self.s2c.is_clean()
    }
}

/// The fate the injector assigns to one frame. Classes compose; `drop`
/// and `disconnect` make the rest moot.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameFate {
    /// The link is cut starting with this frame.
    pub disconnect: bool,
    /// Frame lost in transit.
    pub drop: bool,
    /// One random bit flipped.
    pub corrupt: bool,
    /// Cut to a random proper prefix.
    pub truncate: bool,
    /// Delivered twice.
    pub duplicate: bool,
    /// Held back past the next same-direction frame.
    pub delay: bool,
}

/// Per-direction injector state: the rates, the seeded PRNG, and the
/// count of frames seen (for `disconnect_after`).
#[derive(Debug)]
pub struct FaultInjector {
    rates: FaultRates,
    rng: Rng,
    sent: u64,
}

impl FaultInjector {
    /// Build an injector for one direction. Distinct directions of the
    /// same plan must use distinct seeds (the channel derives them from
    /// the caller's seed).
    #[must_use]
    pub fn new(rates: FaultRates, seed: u64) -> Self {
        FaultInjector { rates, rng: Rng::seed_from_u64(seed), sent: 0 }
    }

    /// Decide the fate of the next frame. Draws happen in a fixed order
    /// (drop, corrupt, truncate, duplicate, delay) so a run is a pure
    /// function of `(rates, seed, frame index)`.
    pub fn next_fate(&mut self) -> FrameFate {
        self.sent += 1;
        let mut fate = FrameFate {
            disconnect: self.rates.disconnect_after.is_some_and(|n| self.sent > n),
            ..FrameFate::default()
        };
        fate.drop = self.rng.gen_bool(self.rates.drop);
        fate.corrupt = self.rng.gen_bool(self.rates.corrupt);
        fate.truncate = self.rng.gen_bool(self.rates.truncate);
        fate.duplicate = self.rng.gen_bool(self.rates.duplicate);
        fate.delay = self.rng.gen_bool(self.rates.delay);
        fate
    }

    /// Flip one uniformly chosen bit of `bytes` (no-op on empty frames).
    pub fn corrupt_frame(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let bit = self.rng.gen_range(0..bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
    }

    /// Frames this injector has assigned fates to so far. Fault trace
    /// events use this as the 1-based per-direction frame sequence
    /// number, so a replay with the same `(rates, seed)` can line its
    /// fates up against a recorded journal.
    #[must_use]
    pub fn frames_seen(&self) -> u64 {
        self.sent
    }

    /// Truncate `bytes` to a uniformly chosen proper prefix.
    pub fn truncate_frame(&mut self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        let keep = self.rng.gen_range(0..bytes.len());
        bytes.truncate(keep);
    }
}

/// Materialize the injector's private wire image `header ++ payload` so
/// a corruption/truncation fault can damage it without touching the
/// sender's shared (possibly cached-for-retransmit) payload allocation.
///
/// This is the **only sanctioned copy of live frame bytes** in the wire
/// modules — the xtask `alloc-discipline` pass allowlists exactly this
/// function; every other path must share [`crate::FrameBuf`]s by
/// refcount. Clean frames are never encoded on the in-memory channel at
/// all, so this copy is paid exactly when a fault actually mutates a
/// frame, and it is metered like any other.
#[must_use]
pub fn copy_for_mutation(header: &[u8], payload: &[u8]) -> Vec<u8> {
    crate::bufpool::note_frame_copy(header.len() + payload.len());
    let mut image = Vec::with_capacity(header.len() + payload.len());
    image.extend_from_slice(header);
    image.extend_from_slice(payload);
    image
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_deterministic_per_seed() {
        let rates = FaultRates { drop: 0.3, corrupt: 0.3, ..FaultRates::none() };
        let mut a = FaultInjector::new(rates, 7);
        let mut b = FaultInjector::new(rates, 7);
        for _ in 0..200 {
            let (fa, fb) = (a.next_fate(), b.next_fate());
            assert_eq!(fa.drop, fb.drop);
            assert_eq!(fa.corrupt, fb.corrupt);
        }
    }

    #[test]
    fn clean_rates_never_fault() {
        let mut inj = FaultInjector::new(FaultRates::none(), 99);
        for _ in 0..500 {
            let f = inj.next_fate();
            assert!(!f.disconnect && !f.drop && !f.corrupt && !f.truncate);
            assert!(!f.duplicate && !f.delay);
        }
    }

    #[test]
    fn disconnect_after_triggers_exactly() {
        let rates = FaultRates { disconnect_after: Some(3), ..FaultRates::none() };
        let mut inj = FaultInjector::new(rates, 1);
        assert!(!inj.next_fate().disconnect);
        assert!(!inj.next_fate().disconnect);
        assert!(!inj.next_fate().disconnect);
        assert!(inj.next_fate().disconnect);
    }

    #[test]
    fn profiles_resolve() {
        for name in PROFILE_NAMES {
            assert!(FaultPlan::profile(name).is_some(), "profile {name} missing");
        }
        assert!(FaultPlan::profile("bogus").is_none());
        assert!(FaultPlan::profile("none").is_some_and(|p| p.is_clean()));
        assert!(FaultPlan::profile("evil").is_some_and(|p| !p.is_clean()));
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(FaultRates::none(), 5);
        let original = vec![0u8; 32];
        let mut frame = original.clone();
        inj.corrupt_frame(&mut frame);
        let flipped: u32 = frame.iter().zip(&original).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn truncate_shortens() {
        let mut inj = FaultInjector::new(FaultRates::none(), 6);
        let mut frame = vec![1u8; 40];
        inj.truncate_frame(&mut frame);
        assert!(frame.len() < 40);
    }
}
