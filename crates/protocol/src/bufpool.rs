//! Refcounted, pool-backed frame buffers.
//!
//! Every layer that moves frames — the ARQ engine, the in-memory
//! channel, the fault injector, the TCP transport, and the daemon
//! multiplexer — shares one ownership story:
//!
//! * a frame's bytes are encoded **once** into a [`FrameBuf`] (ideally
//!   a buffer checked out of a [`BufferPool`]);
//! * everything downstream passes the same allocation around by
//!   refcount bump ([`FrameBuf::share`]) or borrows it as `&[u8]`
//!   (`Deref`);
//! * retransmissions, duplicate-fault deliveries, and delay holds are
//!   all shares of the original allocation — the resend path never
//!   re-encodes;
//! * the only sanctioned copy of live frame bytes is the fault
//!   injector's copy-on-mutate path
//!   ([`crate::fault::FaultInjector::copy_for_mutation`]), because a
//!   corrupted frame must not damage the sender's retransmit cache.
//!
//! When the last reference drops, a pooled buffer returns to its pool
//! for the next session instead of hitting the allocator. The xtask
//! `alloc-discipline` pass bans ad-hoc `.to_vec()` / `.clone()` on
//! frame values inside the wire modules so this discipline holds by
//! construction.
//!
//! Frame-byte copies that *do* happen (encode, reassembly extraction,
//! fault mutation) are metered through [`note_frame_copy`] into one
//! process-global counter; the daemon soak bench reads it before and
//! after a burst to ratchet `bytes_copied_per_session`.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Process-global count of frame bytes copied through the wire path.
static COPIED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Meter `bytes` frame bytes that were physically copied (memcpy'd)
/// somewhere on the wire path. Every copy site in the workspace calls
/// this, so `frame_copy_bytes` deltas are an allocator-traffic profile.
pub fn note_frame_copy(bytes: usize) {
    COPIED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Total frame bytes copied process-wide since start. Monotone; bench
/// code snapshots it around a burst and divides by sessions.
#[must_use]
pub fn frame_copy_bytes() -> u64 {
    COPIED_BYTES.load(Ordering::Relaxed)
}

/// The shared allocation behind one or more [`FrameBuf`] views. The
/// byte content is immutable once sealed; on last drop a pooled
/// allocation returns to its pool.
struct Inner {
    data: Vec<u8>,
    pool: Option<Arc<PoolCore>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.data));
        }
    }
}

/// An immutable, refcounted view of encoded frame bytes.
///
/// Cheap to share (`share` / `Clone` bump a refcount), cheap to narrow
/// ([`FrameBuf::slice`] is a view into the same allocation), and
/// `Deref<Target = [u8]>` so read paths take `&[u8]` unchanged.
/// Equality compares bytes; [`FrameBuf::ptr_eq`] checks identity — the
/// retransmit tests use it to prove the resend path never re-encodes.
pub struct FrameBuf {
    inner: Arc<Inner>,
    off: usize,
    len: usize,
}

impl FrameBuf {
    /// Wrap an owned, already-filled buffer without copying. The buffer
    /// is not pool-backed; it is freed normally on last drop.
    #[must_use]
    pub fn from_vec(data: Vec<u8>) -> Self {
        let len = data.len();
        Self { inner: Arc::new(Inner { data, pool: None }), off: 0, len }
    }

    /// Copy `bytes` into a fresh unpooled buffer. This is a real copy
    /// and is metered as one; use it only where the source is borrowed
    /// (handshake strings, test literals).
    #[must_use]
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        note_frame_copy(bytes.len());
        Self::from_vec(bytes.into())
    }

    /// Share the allocation: a refcount bump, never a byte copy. The
    /// named form (rather than `.clone()`) keeps wire-path call sites
    /// legible to the `alloc-discipline` lint.
    #[must_use]
    pub fn share(&self) -> Self {
        Self { inner: Arc::clone(&self.inner), off: self.off, len: self.len }
    }

    /// A narrowed view of the same allocation (`start..end` relative to
    /// this view, clamped to its bounds). No bytes move — this is how
    /// the ARQ parser hands a frame's payload to the session layer
    /// without copying it out.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> Self {
        let start = start.min(self.len);
        let end = end.clamp(start, self.len);
        Self { inner: Arc::clone(&self.inner), off: self.off + start, len: end - start }
    }

    /// Length of this view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.inner.data[self.off..self.off + self.len]
    }

    /// Whether two views are the *same allocation and range* — frame
    /// identity, not equality. Retransmit tests assert this to prove a
    /// resend is a refcount bump.
    #[must_use]
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner) && a.off == b.off && a.len == b.len
    }
}

impl Deref for FrameBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for FrameBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Clone for FrameBuf {
    fn clone(&self) -> Self {
        self.share()
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for FrameBuf {}

impl PartialEq<[u8]> for FrameBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for FrameBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for FrameBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FrameBuf").field(&self.as_slice()).finish()
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(data: Vec<u8>) -> Self {
        Self::from_vec(data)
    }
}

impl Default for FrameBuf {
    fn default() -> Self {
        Self::from_vec(Vec::new())
    }
}

/// Buffers above this capacity are dropped on return instead of pooled:
/// one giant delta frame must not pin its allocation for the daemon's
/// lifetime.
const MAX_POOLED_CAPACITY: usize = 256 * 1024;

struct PoolCore {
    free: Mutex<Vec<Vec<u8>>>,
    max_idle: usize,
    allocated: AtomicU64,
    reused: AtomicU64,
    returned: AtomicU64,
    outstanding: AtomicUsize,
    high_water: AtomicUsize,
}

impl PoolCore {
    fn put(&self, mut data: Vec<u8>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        if data.capacity() == 0 || data.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        if free.len() < self.max_idle {
            data.clear();
            free.push(data);
            self.returned.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Counters describing a [`BufferPool`]'s lifetime behaviour; rendered
/// as the `msync_frame_pool_*` Prometheus family by the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers created fresh because the free list was empty.
    pub allocated_total: u64,
    /// Checkouts served from the free list (allocator traffic avoided).
    pub reused_total: u64,
    /// Buffers accepted back into the free list on drop.
    pub returned_total: u64,
    /// Buffers currently checked out (sealed frames still alive).
    pub outstanding: usize,
    /// Maximum `outstanding` ever observed — the pool's working set.
    pub high_water: usize,
    /// Buffers sitting in the free list right now.
    pub idle: usize,
}

/// A shared free-list of frame buffers. Clones share the same pool.
///
/// `checkout` hands out an empty `Vec<u8>` (reusing a returned one when
/// available); `seal` freezes the filled buffer into a [`FrameBuf`]
/// that flows through the whole stack by refcount and returns its
/// allocation here when the last reference drops.
#[derive(Clone)]
pub struct BufferPool {
    core: Arc<PoolCore>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool").field("stats", &self.stats()).finish()
    }
}

impl BufferPool {
    /// A pool retaining at most `max_idle` free buffers. Sizing: the
    /// daemon's working set is (frames queued per pump) × (active
    /// sessions); idle capacity beyond that is pure memory, so the
    /// daemon uses a small multiple of its session cap.
    #[must_use]
    pub fn new(max_idle: usize) -> Self {
        Self {
            core: Arc::new(PoolCore {
                free: Mutex::new(Vec::new()),
                max_idle,
                allocated: AtomicU64::new(0),
                reused: AtomicU64::new(0),
                returned: AtomicU64::new(0),
                outstanding: AtomicUsize::new(0),
                high_water: AtomicUsize::new(0),
            }),
        }
    }

    /// Check out an empty buffer to encode one frame into. Reuses a
    /// returned buffer when one is idle.
    #[must_use]
    pub fn checkout(&self) -> Vec<u8> {
        let reused = self.core.free.lock().unwrap_or_else(PoisonError::into_inner).pop();
        let out = self.core.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.core.high_water.fetch_max(out, Ordering::Relaxed);
        match reused {
            Some(buf) => {
                self.core.reused.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.core.allocated.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Freeze a filled checkout into an immutable [`FrameBuf`]. The
    /// allocation returns to this pool when the last share drops.
    #[must_use]
    pub fn seal(&self, data: Vec<u8>) -> FrameBuf {
        let len = data.len();
        FrameBuf {
            inner: Arc::new(Inner { data, pool: Some(Arc::clone(&self.core)) }),
            off: 0,
            len,
        }
    }

    /// Snapshot the pool's counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            allocated_total: self.core.allocated.load(Ordering::Relaxed),
            reused_total: self.core.reused.load(Ordering::Relaxed),
            returned_total: self.core.returned.load(Ordering::Relaxed),
            outstanding: self.core.outstanding.load(Ordering::Relaxed),
            high_water: self.core.high_water.load(Ordering::Relaxed),
            idle: self.core.free.lock().unwrap_or_else(PoisonError::into_inner).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_is_identity_not_copy() {
        let a = FrameBuf::from_vec(vec![1, 2, 3]);
        let b = a.share();
        assert!(FrameBuf::ptr_eq(&a, &b));
        assert_eq!(a, b);
        // A byte-equal but distinct allocation is equal, not identical.
        let c = FrameBuf::from_vec(vec![1, 2, 3]);
        assert_eq!(a, c);
        assert!(!FrameBuf::ptr_eq(&a, &c));
    }

    #[test]
    fn slice_views_same_allocation() {
        let a = FrameBuf::from_vec(vec![9, 8, 7, 6, 5]);
        let s = a.slice(1, 4);
        assert_eq!(&s[..], &[8, 7, 6]);
        let s2 = s.slice(1, 3);
        assert_eq!(&s2[..], &[7, 6]);
        // Out-of-range requests clamp instead of panicking.
        assert_eq!(a.slice(4, 99).len(), 1);
        assert_eq!(a.slice(99, 4).len(), 0);
    }

    #[test]
    fn pooled_buffer_returns_on_last_drop() {
        let pool = BufferPool::new(8);
        let mut buf = pool.checkout();
        buf.extend_from_slice(b"frame");
        let sealed = pool.seal(buf);
        let kept = sealed.share();
        drop(sealed);
        // Still alive through `kept`: not yet returned.
        assert_eq!(pool.stats().returned_total, 0);
        assert_eq!(pool.stats().outstanding, 1);
        drop(kept);
        let s = pool.stats();
        assert_eq!((s.returned_total, s.outstanding, s.idle), (1, 0, 1));
        // The next checkout reuses it, cleared.
        let again = pool.checkout();
        assert!(again.is_empty() && again.capacity() >= 5);
        assert_eq!(pool.stats().reused_total, 1);
    }

    #[test]
    fn high_water_tracks_peak_outstanding() {
        let pool = BufferPool::new(8);
        let frames: Vec<FrameBuf> = (0..5).map(|_| pool.seal(pool.checkout())).collect();
        assert_eq!(pool.stats().high_water, 5);
        drop(frames);
        assert_eq!(pool.stats().high_water, 5);
        assert_eq!(pool.stats().outstanding, 0);
        // Steady-state reuse never raises the mark.
        for _ in 0..20 {
            let f = pool.seal(pool.checkout());
            drop(f);
        }
        assert_eq!(pool.stats().high_water, 5);
    }

    #[test]
    fn idle_list_is_bounded() {
        let pool = BufferPool::new(2);
        let frames: Vec<FrameBuf> = (0..6)
            .map(|_| {
                let mut b = pool.checkout();
                b.push(0);
                pool.seal(b)
            })
            .collect();
        drop(frames);
        assert_eq!(pool.stats().idle, 2);
    }

    #[test]
    fn copy_counter_meters_explicit_copies() {
        let before = frame_copy_bytes();
        let _ = FrameBuf::copy_from_slice(&[0; 64]);
        assert_eq!(frame_copy_bytes() - before, 64);
        let a = FrameBuf::from_vec(vec![0; 1024]);
        let mid = frame_copy_bytes();
        let _shares: Vec<FrameBuf> = (0..100).map(|_| a.share()).collect();
        assert_eq!(frame_copy_bytes(), mid, "sharing must not copy");
    }
}
