//! First-party CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Every channel frame carries a CRC32 of its payload so that bit flips
//! and truncations on a lossy link are *detected* at the transport and
//! surfaced as typed errors, instead of being parsed into garbage hash
//! values that silently desynchronize the endpoints. The implementation
//! is dependency-free and cast-free (this is a wire-format module: the
//! `lossy-cast` lint rule applies), using a lazily built byte-at-a-time
//! table.

use std::sync::OnceLock;

/// Reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            // i < 256, so the conversion always succeeds; unwrap_or keeps
            // the module panic-free without a silent `as` truncation.
            let mut crc = u32::try_from(i).unwrap_or(0);
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC32 of `data` (standard init `!0`, final complement — the same
/// convention as zlib's `crc32()`, so the known-answer vector
/// `crc32(b"123456789") == 0xCBF43926` applies).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &b in data {
        let idx = usize::from(b) ^ usize::try_from(crc & 0xFF).unwrap_or(0);
        crc = (crc >> 8) ^ table[idx & 0xFF];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // The check value every CRC32/IEEE implementation must produce.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"frame payload with enough bytes to be interesting".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for cut in 0..64 {
            assert_ne!(crc32(&data[..cut]), base, "truncation to {cut} undetected");
        }
    }
}
