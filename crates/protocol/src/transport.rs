//! The frame transport abstraction.
//!
//! Everything above this trait — the ARQ session layer, the pipelined
//! collection scheduler, the CLI — is written against [`Transport`]:
//! an ordered, frame-oriented duplex byte exchange with exact traffic
//! accounting and *mandatory deadlines* on every receive. Two backends
//! implement it:
//!
//! * the in-memory [`Endpoint`] pair (simulation, tests, soak suite),
//! * `msync-net`'s `TcpTransport` (a real socket).
//!
//! The contract every implementation must honour:
//!
//! 1. **Framing** — `send` transmits one frame; a successful
//!    `recv_timeout` returns exactly one frame's payload. Frames are
//!    never merged or split above the transport.
//! 2. **Bounded waits** — `recv_timeout` returns within (roughly) its
//!    deadline. A dead peer surfaces as [`ChannelError::Disconnected`],
//!    a silent one as [`ChannelError::Timeout`], damage as
//!    [`ChannelError::Corrupt`] — never a hang.
//! 3. **Honest accounting** — `stats()` reports every frame this side
//!    sent or received at its full wire size (LEB128 length word +
//!    CRC32 + payload, see [`crate::frame_wire_size`]), so the numbers
//!    can be cross-checked against bytes observed on a real socket.
//!
//! [`FaultTransport`] wraps any implementation with the PR 2 fault
//! injector, so the soak machinery is no longer tied to
//! [`Endpoint::pair_with_faults`].

use crate::bufpool::FrameBuf;
use crate::channel::{ChannelError, Endpoint, FrameError};
use crate::fault::{FaultInjector, FaultPlan, FaultRates, FrameFate};
use crate::stats::{Phase, TrafficStats};
use msync_trace::{DirTag, EventKind, FaultKind, Recorder};
use std::collections::VecDeque;
use std::time::Duration;

/// A frame-oriented duplex byte exchange (see the module docs for the
/// full contract). The session layer only ever holds `dyn Transport`,
/// so in-memory channels, faulty channels, and real sockets compose
/// with the same ARQ recovery machinery.
pub trait Transport: Send {
    /// Send one frame carrying `payload`, charged to `phase` at its
    /// full wire size. Errors are transport failures (a peer that is
    /// already gone); in-memory channels report those on the next
    /// receive instead and always return `Ok`.
    ///
    /// The payload arrives as a refcounted [`FrameBuf`]: a transport
    /// that needs to keep it (a delay fault, an output queue) shares it
    /// by refcount instead of copying the bytes.
    fn send(&mut self, payload: &FrameBuf, phase: Phase) -> Result<(), ChannelError>;

    /// Receive the next frame's payload, waiting at most `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<FrameBuf, ChannelError>;

    /// Attribute the wire bytes of frames received since the last call
    /// to `phase`. Transports that learn phases from the sender (the
    /// shared-stats in-memory channel) ignore this; a real socket
    /// cannot know a frame's phase until the session layer has parsed
    /// it, so the ARQ layer calls this after each successful parse.
    fn attribute_inbound(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// Record `frames` retransmitted frames in the statistics (their
    /// bytes are charged by `send` like any other transmission).
    fn note_retransmits(&mut self, frames: u64);

    /// Snapshot of this side's traffic accounting.
    fn stats(&self) -> TrafficStats;

    /// The trace recorder attached to this transport (a disabled
    /// recorder by default). The session layer reads this to emit
    /// span events alongside the transport's own frame events.
    fn recorder(&self) -> Recorder {
        Recorder::off()
    }
}

impl Transport for Endpoint {
    fn send(&mut self, payload: &FrameBuf, phase: Phase) -> Result<(), ChannelError> {
        self.set_phase(phase);
        Endpoint::send(self, payload.share());
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<FrameBuf, ChannelError> {
        Endpoint::recv_timeout(self, timeout)
    }

    fn note_retransmits(&mut self, frames: u64) {
        Endpoint::note_retransmits(self, frames);
    }

    fn stats(&self) -> TrafficStats {
        Endpoint::stats(self)
    }

    fn recorder(&self) -> Recorder {
        Endpoint::recorder(self)
    }
}

/// A deterministic fault layer over any [`Transport`].
///
/// [`Endpoint::pair_with_faults`] injects faults *inside* the in-memory
/// channel; this wrapper injects the same fault classes *above* an
/// arbitrary transport, so a real TCP connection can be subjected to
/// the soak adversary too. Because the wrapper sits above the frame
/// codec (it sees payloads, not encoded wire bytes), the fault model is
/// expressed in receiver-visible effects:
///
/// * outbound `drop` / `corrupt` / `truncate` — the frame is swallowed
///   before it reaches the inner transport (an integrity fault below
///   the CRC would be rejected by the receiver and retransmitted, which
///   is externally indistinguishable from a loss);
/// * outbound `duplicate` — sent twice (both charged);
/// * outbound `delay` — held back and released ahead of the next send;
/// * inbound `drop` — the received frame is discarded and the receive
///   reports [`ChannelError::Timeout`];
/// * inbound `corrupt` / `truncate` — the frame is discarded and the
///   receive reports the matching [`ChannelError::Corrupt`];
/// * inbound `duplicate` — delivered again on the next receive;
/// * inbound `delay` — held back; delivered after the next frame, or on
///   a receive that would otherwise time out;
/// * `disconnect` — the link is cut: sends are swallowed and receives
///   report [`ChannelError::Disconnected`] from then on.
///
/// Frames swallowed before the inner transport are *not* charged to the
/// traffic stats (the bytes never existed on the wire), unlike the
/// in-memory channel which models a sender that paid for lost frames.
pub struct FaultTransport<T: Transport> {
    inner: T,
    outbound: FaultInjector,
    inbound: FaultInjector,
    /// Trace direction of outbound frames (the inbound direction is
    /// its mirror). `new` assumes the client side; `client`/`server`
    /// set it explicitly.
    outbound_tag: DirTag,
    /// Frames ready for immediate delivery (duplicates, released
    /// delays) — shares, never copies.
    pending: VecDeque<FrameBuf>,
    /// Inbound frame held back by a delay fault.
    delayed: Option<FrameBuf>,
    /// Outbound frame (with its phase) held back by a delay fault.
    held_out: Option<(FrameBuf, Phase)>,
    cut: bool,
}

impl<T: Transport> FaultTransport<T> {
    /// Wrap `inner` with explicit per-direction fault rates: `outbound`
    /// applies to frames this side sends, `inbound` to frames it
    /// receives. The two streams derive decorrelated PRNGs from `seed`.
    pub fn new(inner: T, outbound: FaultRates, inbound: FaultRates, seed: u64) -> Self {
        FaultTransport {
            inner,
            outbound: FaultInjector::new(outbound, seed),
            inbound: FaultInjector::new(inbound, seed ^ 0x9E37_79B9_7F4A_7C15),
            outbound_tag: DirTag::C2s,
            pending: VecDeque::new(),
            delayed: None,
            held_out: None,
            cut: false,
        }
    }

    /// Wrap the client side of a connection: outbound frames are
    /// client→server, inbound are server→client.
    pub fn client(inner: T, plan: &FaultPlan, seed: u64) -> Self {
        Self::new(inner, plan.c2s, plan.s2c, seed)
    }

    /// Wrap the server side of a connection.
    pub fn server(inner: T, plan: &FaultPlan, seed: u64) -> Self {
        let mut t = Self::new(inner, plan.s2c, plan.c2s, seed);
        t.outbound_tag = DirTag::S2c;
        t
    }

    /// Recover the wrapped transport (e.g. to read backend-specific
    /// counters after a session).
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn inbound_tag(&self) -> DirTag {
        match self.outbound_tag {
            DirTag::C2s => DirTag::S2c,
            DirTag::S2c => DirTag::C2s,
        }
    }
}

/// Emit one `FaultInjected` trace event per fault class set on `fate`,
/// in the injector's draw order, tagged with the injector's 1-based
/// frame sequence number. Shared by [`FaultTransport`] and the
/// fault-injecting in-memory channel.
pub(crate) fn record_fate(rec: &Recorder, dir: DirTag, fate: &FrameFate, seq: u64) {
    if !rec.is_enabled() {
        return;
    }
    for (active, kind) in [
        (fate.disconnect, FaultKind::Disconnect),
        (fate.drop, FaultKind::Drop),
        (fate.corrupt, FaultKind::Corrupt),
        (fate.truncate, FaultKind::Truncate),
        (fate.duplicate, FaultKind::Duplicate),
        (fate.delay, FaultKind::Delay),
    ] {
        if active {
            rec.record(EventKind::FaultInjected { dir, kind, seq });
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&mut self, payload: &FrameBuf, phase: Phase) -> Result<(), ChannelError> {
        if self.cut {
            return Ok(());
        }
        let fate = self.outbound.next_fate();
        record_fate(&self.inner.recorder(), self.outbound_tag, &fate, self.outbound.frames_seen());
        if fate.disconnect {
            self.cut = true;
            return Ok(());
        }
        // A held-back frame is released ahead of the new one.
        if let Some((held, held_phase)) = self.held_out.take() {
            self.inner.send(&held, held_phase)?;
        }
        if fate.drop || fate.corrupt || fate.truncate {
            // Swallowed: below-CRC damage is externally a loss.
            return Ok(());
        }
        if fate.duplicate {
            self.inner.send(payload, phase)?;
        }
        if fate.delay {
            self.held_out = Some((payload.share(), phase));
            return Ok(());
        }
        self.inner.send(payload, phase)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<FrameBuf, ChannelError> {
        if self.cut {
            return Err(ChannelError::Disconnected);
        }
        if let Some(frame) = self.pending.pop_front() {
            return Ok(frame);
        }
        match self.inner.recv_timeout(timeout) {
            Ok(frame) => {
                let fate = self.inbound.next_fate();
                record_fate(
                    &self.inner.recorder(),
                    self.inbound_tag(),
                    &fate,
                    self.inbound.frames_seen(),
                );
                if fate.disconnect {
                    self.cut = true;
                    return Err(ChannelError::Disconnected);
                }
                if fate.drop {
                    return Err(ChannelError::Timeout);
                }
                if fate.corrupt {
                    return Err(ChannelError::Corrupt(FrameError::Checksum));
                }
                if fate.truncate {
                    return Err(ChannelError::Corrupt(FrameError::Truncated));
                }
                if fate.duplicate {
                    self.pending.push_back(frame.share());
                }
                if fate.delay {
                    if let Some(prev) = self.delayed.replace(frame) {
                        self.pending.push_back(prev);
                    }
                    return Err(ChannelError::Timeout);
                }
                // A frame that got through releases any delayed frame
                // *behind* it: that is the reordering.
                if let Some(d) = self.delayed.take() {
                    self.pending.push_back(d);
                }
                Ok(frame)
            }
            Err(ChannelError::Timeout) => match self.delayed.take() {
                // Nothing to reorder past: the delayed frame arrives.
                Some(frame) => Ok(frame),
                None => Err(ChannelError::Timeout),
            },
            Err(e) => Err(e),
        }
    }

    fn attribute_inbound(&mut self, phase: Phase) {
        self.inner.attribute_inbound(phase);
    }

    fn note_retransmits(&mut self, frames: u64) {
        self.inner.note_retransmits(frames);
    }

    fn stats(&self) -> TrafficStats {
        self.inner.stats()
    }

    fn recorder(&self) -> Recorder {
        self.inner.recorder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(200);
    const BLINK: Duration = Duration::from_millis(10);

    fn pair() -> (Endpoint, Endpoint) {
        Endpoint::pair()
    }

    /// Tests build payloads from literals; production code shares
    /// existing `FrameBuf`s instead.
    fn fb(bytes: &[u8]) -> FrameBuf {
        FrameBuf::copy_from_slice(bytes)
    }

    #[test]
    fn endpoint_satisfies_the_trait() {
        let (mut c, mut s) = pair();
        let (ct, st): (&mut dyn Transport, &mut dyn Transport) = (&mut c, &mut s);
        ct.send(&fb(&[1, 2, 3]), Phase::Map).unwrap();
        assert_eq!(st.recv_timeout(TICK).unwrap(), vec![1, 2, 3]);
        st.send(&fb(&[4]), Phase::Delta).unwrap();
        assert_eq!(ct.recv_timeout(TICK).unwrap(), vec![4]);
        assert_eq!(ct.stats().roundtrips, 1);
    }

    #[test]
    fn clean_wrapper_is_transparent() {
        let (c, mut s) = pair();
        let mut wrapped = FaultTransport::client(c, &FaultPlan::none(), 7);
        wrapped.send(&fb(&[9; 32]), Phase::Setup).unwrap();
        assert_eq!(Transport::recv_timeout(&mut s, TICK).unwrap(), vec![9; 32]);
        Transport::send(&mut s, &fb(&[1]), Phase::Setup).unwrap();
        assert_eq!(wrapped.recv_timeout(TICK).unwrap(), vec![1]);
    }

    #[test]
    fn inbound_drop_reports_timeout() {
        let rates = FaultRates { drop: 1.0, ..FaultRates::none() };
        let (c, mut s) = pair();
        let mut wrapped = FaultTransport::new(c, FaultRates::none(), rates, 1);
        Transport::send(&mut s, &fb(&[5; 8]), Phase::Map).unwrap();
        assert_eq!(wrapped.recv_timeout(BLINK), Err(ChannelError::Timeout));
    }

    #[test]
    fn inbound_corruption_reports_typed_error() {
        let rates = FaultRates { corrupt: 1.0, ..FaultRates::none() };
        let (c, mut s) = pair();
        let mut wrapped = FaultTransport::new(c, FaultRates::none(), rates, 2);
        Transport::send(&mut s, &fb(&[5; 8]), Phase::Map).unwrap();
        assert!(matches!(wrapped.recv_timeout(TICK), Err(ChannelError::Corrupt(_))));
    }

    #[test]
    fn inbound_duplicate_delivered_twice() {
        let rates = FaultRates { duplicate: 1.0, ..FaultRates::none() };
        let (c, mut s) = pair();
        let mut wrapped = FaultTransport::new(c, FaultRates::none(), rates, 3);
        Transport::send(&mut s, &fb(&[7; 4]), Phase::Map).unwrap();
        assert_eq!(wrapped.recv_timeout(TICK).unwrap(), vec![7; 4]);
        assert_eq!(wrapped.recv_timeout(BLINK).unwrap(), vec![7; 4]);
    }

    #[test]
    fn inbound_delay_reorders_or_arrives_late() {
        let rates = FaultRates { delay: 1.0, ..FaultRates::none() };
        let (c, mut s) = pair();
        let mut wrapped = FaultTransport::new(c, FaultRates::none(), rates, 4);
        Transport::send(&mut s, &fb(&[1]), Phase::Map).unwrap();
        // Held back: first receive times out, second delivers it.
        assert_eq!(wrapped.recv_timeout(BLINK), Err(ChannelError::Timeout));
        assert_eq!(wrapped.recv_timeout(BLINK).unwrap(), vec![1]);
    }

    #[test]
    fn outbound_drop_swallows_frames() {
        let rates = FaultRates { drop: 1.0, ..FaultRates::none() };
        let (c, mut s) = pair();
        let mut wrapped = FaultTransport::new(c, rates, FaultRates::none(), 5);
        wrapped.send(&fb(&[1; 16]), Phase::Map).unwrap();
        assert_eq!(Transport::recv_timeout(&mut s, BLINK), Err(ChannelError::Timeout));
    }

    #[test]
    fn outbound_duplicate_sends_twice() {
        let rates = FaultRates { duplicate: 1.0, ..FaultRates::none() };
        let (c, mut s) = pair();
        let mut wrapped = FaultTransport::new(c, rates, FaultRates::none(), 6);
        wrapped.send(&fb(&[2; 4]), Phase::Map).unwrap();
        assert_eq!(Transport::recv_timeout(&mut s, TICK).unwrap(), vec![2; 4]);
        assert_eq!(Transport::recv_timeout(&mut s, TICK).unwrap(), vec![2; 4]);
    }

    #[test]
    fn disconnect_cuts_the_wrapper() {
        let rates = FaultRates { disconnect_after: Some(1), ..FaultRates::none() };
        let (c, mut s) = pair();
        let mut wrapped = FaultTransport::new(c, rates, FaultRates::none(), 7);
        wrapped.send(&fb(&[1]), Phase::Map).unwrap();
        wrapped.send(&fb(&[2]), Phase::Map).unwrap();
        assert_eq!(Transport::recv_timeout(&mut s, TICK).unwrap(), vec![1]);
        assert_eq!(wrapped.recv_timeout(BLINK), Err(ChannelError::Disconnected));
    }

    #[test]
    fn wrapper_reproduces_per_seed() {
        let rates = FaultRates { drop: 0.5, corrupt: 0.2, ..FaultRates::none() };
        let run = || {
            let (c, mut s) = pair();
            let mut wrapped = FaultTransport::new(c, FaultRates::none(), rates, 99);
            (0..16u8)
                .map(|i| {
                    Transport::send(&mut s, &fb(&[i; 4]), Phase::Map).unwrap();
                    wrapped.recv_timeout(BLINK)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same seed must reproduce the same fates");
    }
}
