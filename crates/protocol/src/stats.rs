//! Traffic accounting.
//!
//! Every figure in the paper's evaluation is a statement about *bytes on
//! the wire per direction* (e.g. Figure 6.1 stacks client→server and
//! server→client map-phase traffic and the final delta separately), so
//! the accounting is first-class: channels attribute every frame to a
//! `(direction, phase)` pair.

use msync_trace::{DirTag, PhaseTag};
use std::fmt;

/// Transfer direction, named from the synchronization client's viewpoint
/// (the client holds the outdated file, the server the current one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server (e.g. rsync's block hashes, msync's verification
    /// hashes and bitmaps).
    ClientToServer,
    /// Server → client (e.g. msync's candidate hashes, the final delta).
    ServerToClient,
}

/// Protocol phase a frame belongs to, used to split costs the way the
/// paper's stacked bars do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Per-file fingerprints and session setup.
    Setup,
    /// The multi-round map-construction phase.
    Map,
    /// The final delta transfer.
    Delta,
    /// The crash-recovery extension: resume offers and verdicts
    /// (checkpoint/cache digests presented by a reconnecting client and
    /// the server's accept bitmap or typed rejection).
    Resume,
}

impl From<Direction> for DirTag {
    fn from(d: Direction) -> Self {
        match d {
            Direction::ClientToServer => DirTag::C2s,
            Direction::ServerToClient => DirTag::S2c,
        }
    }
}

impl From<Phase> for PhaseTag {
    fn from(p: Phase) -> Self {
        match p {
            Phase::Setup => PhaseTag::Setup,
            Phase::Map => PhaseTag::Map,
            Phase::Delta => PhaseTag::Delta,
            Phase::Resume => PhaseTag::Resume,
        }
    }
}

const PHASES: usize = 4;

#[inline]
fn phase_idx(p: Phase) -> usize {
    match p {
        Phase::Setup => 0,
        Phase::Map => 1,
        Phase::Delta => 2,
        Phase::Resume => 3,
    }
}

/// Byte and roundtrip counts for one synchronization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    c2s: [u64; PHASES],
    s2c: [u64; PHASES],
    /// Number of communication roundtrips (direction reversals seen by
    /// the channel, divided by two, rounded up).
    pub roundtrips: u32,
    /// Frames actually transmitted by the channel (including duplicates
    /// injected by faults and retransmissions; zero for estimators that
    /// only call [`TrafficStats::record`]).
    pub frames: u64,
    /// Frames the session layer retransmitted while recovering from
    /// loss or corruption. Their bytes are already included in the
    /// per-phase counters — this makes the recovery overhead visible.
    pub retransmits: u64,
}

impl TrafficStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` sent in `dir` during `phase`.
    pub fn record(&mut self, dir: Direction, phase: Phase, bytes: u64) {
        match dir {
            Direction::ClientToServer => self.c2s[phase_idx(phase)] += bytes,
            Direction::ServerToClient => self.s2c[phase_idx(phase)] += bytes,
        }
    }

    /// Bytes sent client→server in `phase`.
    pub fn c2s(&self, phase: Phase) -> u64 {
        self.c2s[phase_idx(phase)]
    }

    /// Bytes sent server→client in `phase`.
    pub fn s2c(&self, phase: Phase) -> u64 {
        self.s2c[phase_idx(phase)]
    }

    /// Total client→server bytes.
    pub fn total_c2s(&self) -> u64 {
        self.c2s.iter().sum()
    }

    /// Total server→client bytes.
    pub fn total_s2c(&self) -> u64 {
        self.s2c.iter().sum()
    }

    /// Total bytes in both directions — the headline cost number.
    pub fn total_bytes(&self) -> u64 {
        self.total_c2s() + self.total_s2c()
    }

    /// Merge another run's stats into this one (collection totals).
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..PHASES {
            self.c2s[i] += other.c2s[i];
            self.s2c[i] += other.s2c[i];
        }
        self.roundtrips = self.roundtrips.max(other.roundtrips);
        self.frames += other.frames;
        self.retransmits += other.retransmits;
    }

    /// Render the per-phase byte grid as an aligned multi-line table —
    /// the canonical report format shared by `msync sync` and the
    /// serve daemon's session log.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("  {:<8} {:>12} {:>12} {:>12}\n", "phase", "c→s", "s→c", "total"));
        for (name, phase) in [
            ("setup", Phase::Setup),
            ("map", Phase::Map),
            ("delta", Phase::Delta),
            ("resume", Phase::Resume),
        ] {
            out.push_str(&format!(
                "  {:<8} {:>12} {:>12} {:>12}\n",
                name,
                human_bytes(self.c2s(phase)),
                human_bytes(self.s2c(phase)),
                human_bytes(self.c2s(phase) + self.s2c(phase)),
            ));
        }
        out.push_str(&format!(
            "  {:<8} {:>12} {:>12} {:>12}\n",
            "total",
            human_bytes(self.total_c2s()),
            human_bytes(self.total_s2c()),
            human_bytes(self.total_bytes()),
        ));
        out.push_str(&format!(
            "  {} roundtrips · {} frames · {} retransmitted\n",
            self.roundtrips, self.frames, self.retransmits
        ));
        out
    }
}

/// `1234` → `"1.2 KB"`; decimal units to match the paper's figures.
fn human_bytes(n: u64) -> String {
    if n < 1000 {
        return format!("{n} B");
    }
    let mut v = n as f64;
    for unit in ["KB", "MB", "GB", "TB"] {
        v /= 1000.0;
        if v < 1000.0 {
            return format!("{v:.1} {unit}");
        }
    }
    format!("{v:.1} PB")
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} B (map s→c {} B, map c→s {} B, delta {} B, setup {} B, {} roundtrips)",
            self.total_bytes(),
            self.s2c(Phase::Map),
            self.c2s(Phase::Map),
            self.s2c(Phase::Delta) + self.c2s(Phase::Delta),
            self.s2c(Phase::Setup) + self.c2s(Phase::Setup),
            self.roundtrips,
        )?;
        if self.retransmits > 0 {
            write!(f, " [{} retransmitted frames]", self.retransmits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = TrafficStats::new();
        s.record(Direction::ClientToServer, Phase::Map, 100);
        s.record(Direction::ServerToClient, Phase::Map, 250);
        s.record(Direction::ServerToClient, Phase::Delta, 1000);
        assert_eq!(s.c2s(Phase::Map), 100);
        assert_eq!(s.s2c(Phase::Map), 250);
        assert_eq!(s.s2c(Phase::Delta), 1000);
        assert_eq!(s.total_bytes(), 1350);
        assert_eq!(s.total_c2s(), 100);
        assert_eq!(s.total_s2c(), 1250);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats::new();
        a.record(Direction::ClientToServer, Phase::Setup, 16);
        a.roundtrips = 3;
        let mut b = TrafficStats::new();
        b.record(Direction::ClientToServer, Phase::Setup, 16);
        b.roundtrips = 5;
        a.merge(&b);
        assert_eq!(a.c2s(Phase::Setup), 32);
        assert_eq!(a.roundtrips, 5);
    }

    #[test]
    fn merge_sums_frames_and_retransmits() {
        let mut a = TrafficStats::new();
        a.frames = 10;
        a.retransmits = 2;
        let mut b = TrafficStats::new();
        b.frames = 4;
        b.retransmits = 1;
        a.merge(&b);
        assert_eq!(a.frames, 14);
        assert_eq!(a.retransmits, 3);
        assert!(format!("{a}").contains("3 retransmitted"));
    }

    #[test]
    fn render_table_lists_every_phase_row() {
        let mut s = TrafficStats::new();
        s.record(Direction::ClientToServer, Phase::Map, 1500);
        s.record(Direction::ServerToClient, Phase::Delta, 2_500_000);
        s.roundtrips = 4;
        s.frames = 9;
        let table = s.render_table();
        for needle in [
            "phase",
            "setup",
            "map",
            "delta",
            "resume",
            "total",
            "1.5 KB",
            "2.5 MB",
            "4 roundtrips",
        ] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }
        assert_eq!(table.lines().count(), 7);
    }

    #[test]
    fn human_bytes_picks_sane_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(999), "999 B");
        assert_eq!(human_bytes(1000), "1.0 KB");
        assert_eq!(human_bytes(1_234_567), "1.2 MB");
    }

    #[test]
    fn tags_mirror_protocol_enums() {
        assert_eq!(DirTag::from(Direction::ClientToServer), DirTag::C2s);
        assert_eq!(DirTag::from(Direction::ServerToClient), DirTag::S2c);
        assert_eq!(PhaseTag::from(Phase::Setup), PhaseTag::Setup);
        assert_eq!(PhaseTag::from(Phase::Map), PhaseTag::Map);
        assert_eq!(PhaseTag::from(Phase::Delta), PhaseTag::Delta);
        assert_eq!(PhaseTag::from(Phase::Resume), PhaseTag::Resume);
    }

    #[test]
    fn display_is_humane() {
        let mut s = TrafficStats::new();
        s.record(Direction::ServerToClient, Phase::Delta, 42);
        let text = format!("{s}");
        assert!(text.contains("42"));
    }
}
