//! Protocol substrate: channels, traffic accounting, and link models.
//!
//! The synchronization algorithms in `msync-rsync` and `msync-core` are
//! written against this crate's [`Endpoint`] abstraction — an in-memory
//! duplex channel whose frames are charged, with framing overhead, to
//! per-direction per-phase byte counters. That makes every experiment's
//! cost numbers exact rather than estimated, and lets the [`LinkModel`]
//! translate them into wall-clock time on the slow links the paper
//! targets.
//!
//! The channel is not an idealized pipe: every frame carries a length
//! word and a first-party CRC32 ([`crc`]), receives are bounded by a
//! deadline, and a [`fault::FaultPlan`] can subject the link to a
//! deterministic, seeded adversary (drops, bit flips, truncation,
//! duplication, reordering delays, mid-round disconnects) so the
//! session layer's recovery machinery can be soak-tested reproducibly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bufpool;
pub mod channel;
pub mod crc;
pub mod fault;
pub mod link;
pub mod stats;
pub mod transport;

pub use bufpool::{frame_copy_bytes, note_frame_copy, BufferPool, FrameBuf, PoolStats};
pub use channel::{
    decode_frame, decode_frame_shared, encode_frame, frame_header, frame_wire_size, ChannelError,
    Endpoint, Frame, FrameError, RetryPolicy,
};
pub use crc::crc32;
pub use fault::{FaultPlan, FaultRates};
pub use link::LinkModel;
pub use stats::{Direction, Phase, TrafficStats};
pub use transport::{FaultTransport, Transport};
