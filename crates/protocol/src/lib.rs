//! Protocol substrate: channels, traffic accounting, and link models.
//!
//! The synchronization algorithms in `msync-rsync` and `msync-core` are
//! written against this crate's [`Endpoint`] abstraction — an in-memory
//! duplex channel whose frames are charged, with framing overhead, to
//! per-direction per-phase byte counters. That makes every experiment's
//! cost numbers exact rather than estimated, and lets the [`LinkModel`]
//! translate them into wall-clock time on the slow links the paper
//! targets.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod channel;
pub mod link;
pub mod stats;

pub use channel::{frame_wire_size, Disconnected, Endpoint, Frame};
pub use link::LinkModel;
pub use stats::{Direction, Phase, TrafficStats};
