//! Slow-link cost model.
//!
//! The paper's motivation is "very large collections ... over slow
//! connections": a protocol's value is the wall-clock time its traffic
//! needs on links like dial-up, DSL, or cable. This model converts
//! [`TrafficStats`] into an estimated transfer time, charging bandwidth
//! per direction plus one round-trip latency per protocol roundtrip —
//! which is exactly the trade the multi-round protocol makes (more
//! roundtrips for fewer bytes), and lets experiments confirm the paper's
//! claim that for large collections the extra roundtrips are negligible
//! because many files share them.

use crate::stats::TrafficStats;
use std::time::Duration;

/// A directional bandwidth + latency model of a network path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Client upload bandwidth in bits/second.
    pub up_bps: f64,
    /// Client download bandwidth in bits/second.
    pub down_bps: f64,
    /// Round-trip latency.
    pub rtt: Duration,
}

impl LinkModel {
    /// 56 kbit/s dial-up modem, ~150 ms RTT.
    pub fn dialup() -> Self {
        Self { up_bps: 33_600.0, down_bps: 56_000.0, rtt: Duration::from_millis(150) }
    }

    /// Early-2000s ADSL: 128 kbit/s up, 768 kbit/s down, 40 ms RTT — the
    /// "cable or DSL links" the paper's web application targets.
    pub fn dsl() -> Self {
        Self { up_bps: 128_000.0, down_bps: 768_000.0, rtt: Duration::from_millis(40) }
    }

    /// Cable: 256 kbit/s up, 2 Mbit/s down, 25 ms RTT.
    pub fn cable() -> Self {
        Self { up_bps: 256_000.0, down_bps: 2_000_000.0, rtt: Duration::from_millis(25) }
    }

    /// A symmetric T1 line (1.544 Mbit/s), 15 ms RTT.
    pub fn t1() -> Self {
        Self { up_bps: 1_544_000.0, down_bps: 1_544_000.0, rtt: Duration::from_millis(15) }
    }

    /// Estimated wall-clock time to carry `stats` over this link.
    pub fn estimate(&self, stats: &TrafficStats) -> Duration {
        let up = stats.total_c2s() as f64 * 8.0 / self.up_bps;
        let down = stats.total_s2c() as f64 * 8.0 / self.down_bps;
        let latency = self.rtt.as_secs_f64() * stats.roundtrips as f64;
        Duration::from_secs_f64(up + down + latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{Direction, Phase};

    #[test]
    fn estimate_scales_with_bytes() {
        let mut small = TrafficStats::new();
        small.record(Direction::ServerToClient, Phase::Delta, 10_000);
        let mut big = TrafficStats::new();
        big.record(Direction::ServerToClient, Phase::Delta, 1_000_000);
        let link = LinkModel::dsl();
        assert!(link.estimate(&big) > link.estimate(&small));
    }

    #[test]
    fn latency_charged_per_roundtrip() {
        let mut a = TrafficStats::new();
        a.roundtrips = 1;
        let mut b = TrafficStats::new();
        b.roundtrips = 11;
        let link = LinkModel::dialup();
        let diff = link.estimate(&b).as_secs_f64() - link.estimate(&a).as_secs_f64();
        assert!((diff - 1.5).abs() < 1e-9, "10 extra roundtrips at 150ms = 1.5s, got {diff}");
    }

    #[test]
    fn asymmetric_directions() {
        // Same bytes cost more upstream than downstream on DSL.
        let mut up = TrafficStats::new();
        up.record(Direction::ClientToServer, Phase::Map, 100_000);
        let mut down = TrafficStats::new();
        down.record(Direction::ServerToClient, Phase::Map, 100_000);
        let link = LinkModel::dsl();
        assert!(link.estimate(&up) > link.estimate(&down));
    }
}
