//! Group-testing reconciliation (Madej [27]: "an application of group
//! testing to the file comparison problem").
//!
//! The same question as the Merkle walk — *which files changed?* — posed
//! as Dorfman group testing: a single short hash over the concatenated
//! fingerprints of a *group* of files answers "did anything in this
//! group change?". Groups that fail split in half adaptively. Compared
//! to the Merkle walk, the probes are cheaper (a truncated hash plus a
//! one-bit answer instead of two child hashes) but nothing is
//! precomputed, so the responder hashes group contents on demand.
//!
//! Groups are ranges of the same hashed bucket space the Merkle tree
//! uses, so differing name sets on the two sides stay aligned.

use crate::{diff_names, Item, ReconOutcome};
use msync_hash::Md5;

/// Bits per group-test hash. 40 bits keeps the false-"unchanged"
/// probability per test below 10⁻¹², amply safe under the final
/// per-file fingerprint checks downstream.
pub const TEST_BITS: u32 = 40;

fn bucketize(items: &[Item], depth: u32) -> Vec<Vec<Item>> {
    let mut buckets: Vec<Vec<Item>> = vec![Vec::new(); 1usize << depth];
    for item in items {
        let d = Md5::digest(item.name.as_bytes());
        let v = msync_hash::u64_prefix_le(&d);
        let idx = if depth == 0 { 0 } else { (v >> (64 - depth)) as usize };
        buckets[idx].push(item.clone());
    }
    for b in buckets.iter_mut() {
        b.sort_by(|a, c| a.name.cmp(&c.name));
    }
    buckets
}

fn range_hash(buckets: &[Vec<Item>], lo: usize, hi: usize) -> u64 {
    let mut h = Md5::new();
    for bucket in &buckets[lo..hi] {
        for item in bucket {
            h.update(item.name.as_bytes());
            h.update(&[0]);
            h.update(&item.fp.0);
        }
        h.update(&[1]); // bucket separator
    }
    let d = h.finish();
    msync_hash::u64_prefix_le(&d) & ((1u64 << TEST_BITS) - 1)
}

/// Run adaptive group-testing reconciliation.
pub fn reconcile(client: &[Item], server: &[Item]) -> ReconOutcome {
    let depth = crate::merkle::depth_for(client.len().max(server.len()));
    let cb = bucketize(client, depth);
    let sb = bucketize(server, depth);
    let n = cb.len();

    let mut c2s = 0u64;
    let mut s2c = 0u64;
    let mut roundtrips = 0u32;

    // Waves of range tests, breadth-first: the client sends one hash per
    // open range; the server answers one bit per range.
    let mut open: Vec<(usize, usize)> = vec![(0, n)];
    let mut leaf_ranges: Vec<(usize, usize)> = Vec::new();
    while !open.is_empty() {
        roundtrips += 1;
        c2s += 1 + ((open.len() as u64) * TEST_BITS as u64).div_ceil(8);
        s2c += (open.len() as u64).div_ceil(8);
        let mut next = Vec::new();
        for &(lo, hi) in &open {
            let differs = range_hash(&cb, lo, hi) != range_hash(&sb, lo, hi);
            if !differs {
                continue;
            }
            if hi - lo == 1 {
                leaf_ranges.push((lo, hi));
            } else {
                let mid = lo + (hi - lo) / 2;
                next.push((lo, mid));
                next.push((mid, hi));
            }
        }
        open = next;
    }

    // Exchange the differing buckets' contents.
    let mut differing = Vec::new();
    if !leaf_ranges.is_empty() {
        roundtrips += 1;
    }
    for &(lo, _) in &leaf_ranges {
        for item in &cb[lo] {
            c2s += item.name.len() as u64 + 16 + 1;
        }
        for item in &sb[lo] {
            s2c += item.name.len() as u64 + 16 + 1;
        }
        differing.extend(diff_names(&cb[lo], &sb[lo]));
    }
    differing.sort();
    differing.dedup();
    ReconOutcome { differing, c2s, s2c, roundtrips }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat_exchange;
    use crate::testutil::corpus;

    #[test]
    fn finds_exactly_the_differences() {
        let (a, b, expect) = corpus(257, &[0, 100, 256], &[13], &[200]);
        let out = reconcile(&a, &b);
        assert_eq!(out.differing, expect);
    }

    #[test]
    fn identical_collections_single_test() {
        let (a, b, _) = corpus(1_000, &[], &[], &[]);
        let out = reconcile(&a, &b);
        assert!(out.differing.is_empty());
        assert_eq!(out.roundtrips, 1);
        assert!(out.c2s + out.s2c < 16);
    }

    #[test]
    fn beats_flat_when_sparse_and_merkle_comparable() {
        let (a, b, _) = corpus(2_000, &[42], &[], &[]);
        let gt = reconcile(&a, &b);
        let flat = flat_exchange(&a, &b);
        let mk = crate::merkle::reconcile(&a, &b);
        assert_eq!(gt.differing, flat.differing);
        assert!((gt.c2s + gt.s2c) * 5 < flat.c2s + flat.s2c);
        // Same adaptive-splitting family: within 3x of each other.
        let (g, m) = (gt.c2s + gt.s2c, mk.c2s + mk.s2c);
        assert!(g < m * 3 && m < g * 3, "gt {g} vs merkle {m}");
    }

    #[test]
    fn cost_scales_with_changes_not_size() {
        let (a1, b1, _) = corpus(4_096, &[7], &[], &[]);
        let (a2, b2, _) = corpus(4_096, &[7, 100, 900, 2000, 3000, 4000], &[], &[]);
        let one = reconcile(&a1, &b1);
        let six = reconcile(&a2, &b2);
        let (c1, c6) = (one.c2s + one.s2c, six.c2s + six.s2c);
        assert!(c6 < c1 * 10, "six changes ({c6}) should cost < 10x one change ({c1})");
        assert!(c6 > c1, "more changes must cost more");
    }

    #[test]
    fn empty_inputs() {
        let out = reconcile(&[], &[]);
        assert!(out.differing.is_empty());
    }

    // --- salvage path: a failed group test converges by sub-group
    // retesting rather than giving up or re-probing the same range. ---

    #[test]
    fn failed_group_salvaged_by_subgroup_retesting() {
        // One changed file: the root test fails, and every wave after it
        // splits the one failed range in two, retests, and discards the
        // clean half. That walk takes exactly depth+1 probe waves plus
        // the final content exchange.
        let n = 1_024usize;
        let (a, b, expect) = corpus(n, &[500], &[], &[]);
        let depth = crate::merkle::depth_for(n);
        let out = reconcile(&a, &b);
        assert_eq!(out.differing, expect);
        assert_eq!(out.roundtrips, depth + 2, "depth+1 test waves + 1 exchange");
        // Pruning bound: after the root, each wave keeps at most the two
        // halves of the single failed range, so probe traffic is
        // O(depth), nowhere near the 2^depth of an unpruned sweep.
        let max_probe_bytes = u64::from(depth + 1) * (1 + 2 * u64::from(TEST_BITS).div_ceil(8));
        // The final exchange sends the failed bucket's full contents — the
        // changed file plus any same-bucket neighbors — so allow a small
        // bucket on top of the probe bytes. An unpruned sweep would probe
        // all 2^depth ranges (~10 KB here); this bound stays ~10x below it.
        let leaf_allowance = 16 * 64;
        assert!(
            out.c2s <= max_probe_bytes + leaf_allowance,
            "c2s {} exceeds pruned-walk bound {}",
            out.c2s,
            max_probe_bytes + leaf_allowance
        );
    }

    #[test]
    fn all_groups_fail_worst_case_converges() {
        // Every file differs: every group test at every level fails, so
        // the adaptive split visits the entire tree. The walk must still
        // terminate at the leaves and report every file exactly once.
        let n = 257usize;
        let changed: Vec<usize> = (0..n).collect();
        let (a, b, expect) = corpus(n, &changed, &[], &[]);
        assert_eq!(expect.len(), n);
        let depth = crate::merkle::depth_for(n);
        let out = reconcile(&a, &b);
        assert_eq!(out.differing, expect);
        assert_eq!(out.roundtrips, depth + 2, "full-tree walk still bottoms out at the leaves");
        // Worst case costs more than flat exchange (same contents moved,
        // plus all the probes that bought nothing) — the documented
        // trade-off of group testing under dense change.
        let flat = flat_exchange(&a, &b);
        assert_eq!(flat.differing, out.differing);
        assert!(
            out.c2s + out.s2c > flat.c2s + flat.s2c,
            "dense change: group testing {} should exceed flat {}",
            out.c2s + out.s2c,
            flat.c2s + flat.s2c
        );
    }

    #[test]
    fn half_failed_tree_only_walks_failed_subranges() {
        // Dense changes on one side of the bucket space, none elsewhere:
        // cost sits between the sparse and all-fail extremes.
        let n = 2_048usize;
        let sparse = {
            let (a, b, _) = corpus(n, &[3], &[], &[]);
            let o = reconcile(&a, &b);
            o.c2s + o.s2c
        };
        let dense = {
            let changed: Vec<usize> = (0..n).collect();
            let (a, b, _) = corpus(n, &changed, &[], &[]);
            let o = reconcile(&a, &b);
            o.c2s + o.s2c
        };
        let mixed = {
            let changed: Vec<usize> = (0..n / 8).collect();
            let (a, b, expect) = corpus(n, &changed, &[], &[]);
            let o = reconcile(&a, &b);
            assert_eq!(o.differing, expect);
            o.c2s + o.s2c
        };
        assert!(sparse < mixed && mixed < dense, "{sparse} < {mixed} < {dense} expected");
    }

    #[test]
    fn one_sided_files_survive_the_salvage_walk() {
        // Additions and deletions change the group hashes through the
        // bucket contents, so the split walk must surface them just like
        // fingerprint flips.
        let (a, b, expect) = corpus(512, &[100], &[7, 8], &[400]);
        let out = reconcile(&a, &b);
        assert_eq!(out.differing, expect);
        assert_eq!(out.differing.len(), 4);
    }
}
