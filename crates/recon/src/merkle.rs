//! Merkle-difference reconciliation (Metzner [28,29] family).
//!
//! Both sides bucket their (name, fingerprint) pairs into a fixed
//! power-of-two bucket space by name hash, build the same-shaped binary
//! hash tree over the buckets, and walk it top-down: a node whose hash
//! matches the peer's is *settled* (everything below is identical); a
//! differing node descends. Only the leaf buckets under differing paths
//! exchange their contents. For `d` changed files out of `n`, about
//! `d·log₂(n/d)` node hashes cross the wire instead of `n` fingerprints.

use crate::{diff_names, Item, ReconOutcome};
use msync_hash::Md5;

/// Bytes per transmitted node hash (16-byte MD5 truncated; 8 bytes keeps
/// collision odds negligible at directory scale).
pub const NODE_HASH_BYTES: usize = 8;

/// Pick the bucket-space depth for `n` items: about one item per bucket.
pub fn depth_for(n: usize) -> u32 {
    (n.max(1)).next_power_of_two().trailing_zeros()
}

/// Which bucket a name falls in, out of `2^depth`.
fn bucket_of(name: &str, depth: u32) -> usize {
    if depth == 0 {
        return 0;
    }
    let d = Md5::digest(name.as_bytes());
    let v = msync_hash::u64_prefix_le(&d);
    (v >> (64 - depth)) as usize
}

/// The full tree: `levels[0]` is the root level (1 node), the last level
/// has `2^depth` leaf-bucket hashes. Bucket contents are hashed in
/// sorted-name order; empty buckets hash a fixed tag.
struct Tree {
    levels: Vec<Vec<[u8; 16]>>,
    /// Sorted items per leaf bucket.
    buckets: Vec<Vec<Item>>,
}

fn build_tree(items: &[Item], depth: u32) -> Tree {
    let n_buckets = 1usize << depth;
    let mut buckets: Vec<Vec<Item>> = vec![Vec::new(); n_buckets];
    for item in items {
        buckets[bucket_of(&item.name, depth)].push(item.clone());
    }
    for b in buckets.iter_mut() {
        b.sort_by(|a, c| a.name.cmp(&c.name));
    }
    let mut level: Vec<[u8; 16]> = buckets
        .iter()
        .map(|b| {
            let mut h = Md5::new();
            h.update(b"leaf");
            for item in b {
                h.update(item.name.as_bytes());
                h.update(&[0]);
                h.update(&item.fp.0);
            }
            h.finish()
        })
        .collect();
    let mut levels = vec![level.clone()];
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                let mut h = Md5::new();
                h.update(b"node");
                h.update(&pair[0]);
                h.update(&pair[1]);
                h.finish()
            })
            .collect();
        levels.push(level.clone());
    }
    levels.reverse(); // root first
    Tree { levels, buckets }
}

/// Run the Merkle-difference protocol between `client` and `server`
/// item lists (the depth is negotiated from the larger side).
pub fn reconcile(client: &[Item], server: &[Item]) -> ReconOutcome {
    let depth = depth_for(client.len().max(server.len()));
    let ct = build_tree(client, depth);
    let st = build_tree(server, depth);

    let mut c2s = 0u64;
    let mut s2c = 0u64;
    let mut roundtrips = 0u32;

    // Root exchange (client announces depth + root).
    c2s += 1 + NODE_HASH_BYTES as u64;
    roundtrips += 1;
    if ct.levels[0][0] == st.levels[0][0] {
        s2c += 1; // "identical"
        return ReconOutcome { differing: Vec::new(), c2s, s2c, roundtrips };
    }
    s2c += 1;

    // Walk level by level: the client sends both child hashes of every
    // open node; the server answers a 2-bit mask of which differ.
    let mut open: Vec<usize> = vec![0]; // node indices at current level
    for level in 1..ct.levels.len() {
        let mut next_open = Vec::new();
        c2s += (open.len() * 2 * NODE_HASH_BYTES) as u64;
        s2c += (open.len() as u64 * 2).div_ceil(8);
        roundtrips += 1;
        for &node in &open {
            for child in [2 * node, 2 * node + 1] {
                if ct.levels[level][child] != st.levels[level][child] {
                    next_open.push(child);
                }
            }
        }
        open = next_open;
        if open.is_empty() {
            break;
        }
    }

    // Exchange the contents of differing leaf buckets.
    let mut differing = Vec::new();
    for &leaf in &open {
        let cb = &ct.buckets[leaf];
        let sb = &st.buckets[leaf];
        for item in cb {
            c2s += item.name.len() as u64 + 16 + 1;
        }
        for item in sb {
            // Server answers with its entries for the bucket (names the
            // client lacks or whose fingerprints differ are derivable
            // from this; charged in full for honesty).
            s2c += item.name.len() as u64 + 16 + 1;
        }
        differing.extend(diff_names(cb, sb));
    }
    roundtrips += 1;
    differing.sort();
    differing.dedup();
    ReconOutcome { differing, c2s, s2c, roundtrips }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat_exchange;
    use crate::testutil::corpus;

    #[test]
    fn finds_exactly_the_differences() {
        let (a, b, expect) = corpus(300, &[5, 123, 250], &[40], &[270]);
        let out = reconcile(&a, &b);
        assert_eq!(out.differing, expect);
    }

    #[test]
    fn identical_collections_cost_one_hash() {
        let (a, b, _) = corpus(500, &[], &[], &[]);
        let out = reconcile(&a, &b);
        assert!(out.differing.is_empty());
        assert!(out.c2s + out.s2c < 16);
        assert_eq!(out.roundtrips, 1);
    }

    #[test]
    fn beats_flat_exchange_when_little_changed() {
        let (a, b, _) = corpus(2_000, &[17, 900], &[], &[]);
        let merkle = reconcile(&a, &b);
        let flat = flat_exchange(&a, &b);
        assert_eq!(merkle.differing, flat.differing);
        assert!(
            (merkle.c2s + merkle.s2c) * 5 < flat.c2s + flat.s2c,
            "merkle {} vs flat {}",
            merkle.c2s + merkle.s2c,
            flat.c2s + flat.s2c
        );
    }

    #[test]
    fn degrades_gracefully_when_everything_changed() {
        let all: Vec<usize> = (0..128).collect();
        let (a, b, expect) = corpus(128, &all, &[], &[]);
        let out = reconcile(&a, &b);
        assert_eq!(out.differing, expect);
        let flat = flat_exchange(&a, &b);
        // Walking the whole tree costs more than flat, but bounded.
        assert!(out.c2s + out.s2c < (flat.c2s + flat.s2c) * 4);
    }

    #[test]
    fn empty_and_singleton() {
        let (a, b, expect) = corpus(1, &[0], &[], &[]);
        assert_eq!(reconcile(&a, &b).differing, expect);
        let out = reconcile(&[], &[]);
        assert!(out.differing.is_empty());
    }

    #[test]
    fn one_side_empty() {
        let (a, _, _) = corpus(50, &[], &[], &[]);
        let out = reconcile(&a, &[]);
        assert_eq!(out.differing.len(), 50);
    }
}
