//! Changed-file identification.
//!
//! Before any file synchronizes, the two sides must agree on *which*
//! files differ. The paper (§4) notes a line of related work on exactly
//! this — "the problem of efficiently identifying files that have
//! changed in scenarios where almost all objects are unchanged" (Madej's
//! group-testing approach [27], Abdel-Ghaffar & El Abbadi's optimal
//! strategies [1], Metzner's hash trees [28,29]) — and sidesteps it with
//! a flat per-file fingerprint exchange ("we do not focus on this aspect
//! and instead use a fingerprint for each file as this is efficient
//! enough for our data sets").
//!
//! This crate builds that substrate properly, so the collection layer
//! can beat the flat exchange when almost nothing changed:
//!
//! * [`merkle`] — a hash tree over the sorted (name, fingerprint) pairs;
//!   both sides walk it top-down, descending only into subtrees whose
//!   hashes differ. Cost ≈ `O(d · log(n/d))` hashes for `d` changed
//!   files out of `n` (Metzner's remote file comparison).
//! * [`group_testing`] — Madej-style adaptive group testing: one hash
//!   over the concatenated fingerprints of a group answers "did anything
//!   in this group change?"; failing groups split. Equivalent asymptotic
//!   cost with simpler state, at more roundtrips.
//!
//! Both protocols are *sound* (never miss a changed file) up to the
//! collision probability of the 16-byte fingerprints, and are measured
//! byte-for-byte like everything else in this workspace.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod group_testing;
pub mod merkle;

use msync_hash::Fingerprint;

/// One file's identity in a reconciliation: its name and content
/// fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Collection-relative path.
    pub name: String,
    /// 16-byte content fingerprint.
    pub fp: Fingerprint,
}

/// Result of a reconciliation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconOutcome {
    /// Names present on both sides with differing fingerprints, plus
    /// names present on only one side — i.e. everything the collection
    /// layer must act on. Sorted.
    pub differing: Vec<String>,
    /// Bytes the initiator sent.
    pub c2s: u64,
    /// Bytes the responder sent.
    pub s2c: u64,
    /// Communication roundtrips used.
    pub roundtrips: u32,
}

/// The flat baseline the paper uses: the client ships every (name, fp)
/// pair; the server answers with the differing names it can compute
/// locally (charged as a bitmap).
pub fn flat_exchange(client: &[Item], server: &[Item]) -> ReconOutcome {
    let mut c2s = 0u64;
    for item in client {
        c2s += item.name.len() as u64 + 16 + 1;
    }
    let differing = diff_names(client, server);
    // Server reply: 1 bit per client file + names only the server has.
    let mut s2c = (client.len() as u64).div_ceil(8) + 1;
    let client_names: std::collections::HashSet<&str> =
        client.iter().map(|i| i.name.as_str()).collect();
    for item in server {
        if !client_names.contains(item.name.as_str()) {
            s2c += item.name.len() as u64 + 1;
        }
    }
    ReconOutcome { differing, c2s, s2c, roundtrips: 1 }
}

/// Ground truth both protocols must reproduce (used internally and by
/// tests): names whose fingerprints differ or that exist on one side.
pub fn diff_names(a: &[Item], b: &[Item]) -> Vec<String> {
    use std::collections::HashMap;
    let bm: HashMap<&str, Fingerprint> = b.iter().map(|i| (i.name.as_str(), i.fp)).collect();
    let mut out: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for i in a {
        seen.insert(i.name.as_str());
        match bm.get(i.name.as_str()) {
            Some(fp) if *fp == i.fp => {}
            _ => out.push(i.name.clone()),
        }
    }
    for i in b {
        if !seen.contains(i.name.as_str()) {
            out.push(i.name.clone());
        }
    }
    out.sort();
    out
}

/// Canonicalize: sort by name, so both sides agree on positions.
pub fn canonicalize(items: &mut [Item]) {
    items.sort_by(|a, b| a.name.cmp(&b.name));
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use msync_hash::file_fingerprint;

    /// `n` files; those with index in `changed` differ between the two
    /// sides; indices in `only_a`/`only_b` exist on one side only.
    pub fn corpus(
        n: usize,
        changed: &[usize],
        only_a: &[usize],
        only_b: &[usize],
    ) -> (Vec<Item>, Vec<Item>, Vec<String>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut expect = Vec::new();
        for i in 0..n {
            let name = format!("dir{:02}/file_{i:05}.dat", i % 37);
            let base = file_fingerprint(format!("content-{i}").as_bytes());
            let in_a = !only_b.contains(&i);
            let in_b = !only_a.contains(&i);
            if in_a {
                a.push(Item { name: name.clone(), fp: base });
            }
            if in_b {
                let fp = if changed.contains(&i) {
                    file_fingerprint(format!("content-{i}-v2").as_bytes())
                } else {
                    base
                };
                b.push(Item { name: name.clone(), fp });
            }
            if changed.contains(&i) && in_a && in_b || only_a.contains(&i) || only_b.contains(&i) {
                expect.push(name);
            }
        }
        expect.sort();
        canonicalize(&mut a);
        canonicalize(&mut b);
        (a, b, expect)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::corpus;
    use super::*;

    #[test]
    fn flat_exchange_finds_everything() {
        let (a, b, expect) = corpus(200, &[3, 77, 150], &[10], &[190]);
        let out = flat_exchange(&a, &b);
        assert_eq!(out.differing, expect);
        // Flat cost is linear in n regardless of d.
        assert!(out.c2s > 200 * 17);
    }

    #[test]
    fn diff_names_symmetric_cases() {
        let (a, b, expect) = corpus(10, &[], &[], &[]);
        assert!(expect.is_empty());
        assert!(diff_names(&a, &b).is_empty());
        let (a, b, expect) = corpus(10, &[0, 9], &[], &[]);
        assert_eq!(diff_names(&a, &b), expect);
    }
}
