//! The multi-round synchronization session (paper §5.6).
//!
//! One session synchronizes one file. The exchange, exactly as in
//! Figure 5.2 of the paper:
//!
//! ```text
//! client                                server
//!   │ ── request: old_len, old fingerprint ──▶ │
//!   │ ◀─ setup: new_len, new fingerprint      │
//!   │    + hashes for the first block size ── │   round 0
//!   │ ── candidate bitmap + verify batch 1 ─▶ │
//!   │ ◀─ batch-1 results [+ batch wait]       │
//!   │      ⋮  (optional extra verify batches) │
//!   │ ◀─ final results + next round hashes ── │   round 1 …
//!   │      ⋮                                  │
//!   │ ◀─ final results + delta ────────────── │   delta phase
//! ```
//!
//! Result bitmaps ride on the next server message ("this bitmap is
//! included into the first roundtrip of the next round"), so a round with
//! a single verification batch costs exactly one roundtrip.
//!
//! Everything both endpoints must agree on — active blocks, probe lists,
//! hash suppressions, verification groups — is recomputed independently
//! from shared state ([`Coverage`], the known-hash set, results bitmaps),
//! so messages carry only hash bits and bitmaps, never structure.

use crate::config::{ChannelOptions, ProtocolConfig};
use crate::coverage::Coverage;
use crate::index::{matches_at, scan_neighborhood, PositionIndex};
use crate::items::{self, global_hash_bits, Item, ItemKind, Side};
use crate::map::{FileMap, Segment};
use crate::stats::{LevelStats, SyncStats};
use crate::verify::{StepOutcome, VerifyState};
use msync_hash::decomposable::{prefix_decompose_left, prefix_decompose_right, DecomposableDigest};
use msync_hash::{file_fingerprint, BitReader, BitWriter, Md5};
use msync_protocol::{
    frame_wire_size, ChannelError, Direction, Endpoint, Phase, RetryPolicy, TrafficStats, Transport,
};
use msync_trace::{DirTag, EventKind, HistKind, Recorder};
use std::collections::{HashMap, HashSet};

/// Synchronization failure. A session never panics, never hangs, and
/// never silently returns a wrong reconstruction: every failure mode of
/// the link or the peer maps to one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The configuration is invalid.
    Config(String),
    /// The two endpoints fell out of lockstep — a protocol bug, never
    /// expected in a correct build.
    Desync(&'static str),
    /// Retries were exhausted and at least one frame failed its
    /// integrity checks: the link is corrupting traffic faster than the
    /// bounded-retry recovery can repair.
    FrameCorrupt,
    /// The peer disconnected (or the link was cut) mid-session.
    PeerGone,
    /// The retry budget ran out with no frame from the peer at all.
    Timeout,
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Desync(what) => write!(f, "protocol desync: {what}"),
            Self::FrameCorrupt => write!(f, "persistent frame corruption exhausted retries"),
            Self::PeerGone => write!(f, "peer disconnected mid-session"),
            Self::Timeout => write!(f, "peer silent; retry budget exhausted"),
        }
    }
}

impl std::error::Error for SyncError {}

/// Result of a session.
#[derive(Debug, Clone)]
pub struct SyncOutcome {
    /// The client's reconstruction of the server's file (always exact —
    /// residual hash failures trigger the full-file fallback).
    pub reconstructed: Vec<u8>,
    /// Cost and per-level statistics.
    pub stats: SyncStats,
    /// Whether the whole-file fallback fired.
    pub fell_back: bool,
}

/// One logical message part with its accounting phase.
#[derive(Debug)]
pub(crate) struct Part {
    pub(crate) phase: Phase,
    pub(crate) payload: Vec<u8>,
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SState {
    AwaitCandidates,
    AwaitBatch,
    AwaitMaybeResend,
    Done,
}

pub(crate) struct ServerSession<'a> {
    new: &'a [u8],
    cfg: &'a ProtocolConfig,
    coverage: Coverage,
    known_hashes: HashSet<(u64, u64)>,
    global_bits: u32,
    /// Virtual round index: `level * 2 + subround` (subround 0 = the
    /// continuation phase of two-phase rounds, 1 = the global phase or
    /// the whole single-phase round).
    vidx: u32,
    /// Probe regions of the pending continuation subround, excluded
    /// from the same level's global subround (paper §5.4).
    excluded: Coverage,
    excluded_level: Option<u32>,
    items: Vec<Item>,
    /// Item indices the client flagged as candidates, in item order.
    candidates: Vec<usize>,
    verify: Option<VerifyState>,
    pub(crate) state: SState,
}

impl<'a> ServerSession<'a> {
    pub(crate) fn new(new: &'a [u8], cfg: &'a ProtocolConfig) -> Self {
        Self {
            new,
            cfg,
            coverage: Coverage::new(),
            known_hashes: HashSet::new(),
            global_bits: 0,
            vidx: 0,
            excluded: Coverage::new(),
            excluded_level: None,
            items: Vec::new(),
            candidates: Vec::new(),
            verify: None,
            state: SState::Done,
        }
    }

    pub(crate) fn on_request(&mut self, payload: &[u8]) -> Result<Vec<Part>, SyncError> {
        let mut r = BitReader::new(payload);
        let old_len = r.read_varint().map_err(|_| SyncError::Desync("request len"))?;
        let mut old_fp = [0u8; 16];
        for b in old_fp.iter_mut() {
            *b = r.read_bits(8).map_err(|_| SyncError::Desync("request fp"))? as u8;
        }
        let new_fp = file_fingerprint(self.new);
        let mut setup = BitWriter::new();
        if old_fp == new_fp.0 {
            setup.write_bit(true); // unchanged
            self.state = SState::Done;
            return Ok(vec![Part { phase: Phase::Setup, payload: setup.into_bytes() }]);
        }
        setup.write_bit(false);
        setup.write_varint(self.new.len() as u64);
        for &b in &new_fp.0 {
            setup.write_bits(b as u64, 8);
        }
        self.global_bits = global_hash_bits(old_len, self.cfg.global_extra_bits);
        let mut parts = vec![Part { phase: Phase::Setup, payload: setup.into_bytes() }];
        parts.extend(self.advance());
        Ok(parts)
    }

    /// Move to the next (sub)round with items, or the delta phase, and
    /// emit the corresponding part.
    fn advance(&mut self) -> Vec<Part> {
        let total = self.cfg.total_levels() * 2;
        while self.vidx < total {
            let vidx = self.vidx;
            self.vidx += 1;
            let Some((items, level, sub)) = round_items(
                self.cfg,
                &self.coverage,
                &self.known_hashes,
                self.new.len() as u64,
                vidx,
                &self.excluded,
                self.excluded_level,
            ) else {
                continue;
            };
            items::extend_known_hashes(&mut self.known_hashes, &items);
            if self.cfg.cont_first_phase && sub == 0 {
                // Remember this subround's probe regions for the global
                // subround of the same level.
                let mut excl = Coverage::new();
                for it in &items {
                    excl.insert(it.new_off, it.len);
                }
                self.excluded = excl;
                self.excluded_level = Some(level);
            }
            let mut w = BitWriter::new();
            w.write_varint(vidx as u64 + 1);
            for it in &items {
                let bits = it.wire_bits(self.cfg, self.global_bits);
                if bits > 0 {
                    let range = &self.new[it.new_off as usize..(it.new_off + it.len) as usize];
                    w.write_bits(DecomposableDigest::of(range).prefix(bits), bits);
                }
            }
            self.items = items;
            self.state = SState::AwaitCandidates;
            return vec![Part { phase: Phase::Map, payload: w.into_bytes() }];
        }
        // Delta phase: reference = known areas in new-file order.
        let mut reference = Vec::with_capacity(self.coverage.covered_bytes() as usize);
        for &(s, e) in self.coverage.intervals() {
            reference.extend_from_slice(&self.new[s as usize..e as usize]);
        }
        let delta = msync_compress::delta_encode(&reference, self.new);
        let mut w = BitWriter::new();
        w.write_varint(0);
        let mut payload = w.into_bytes();
        payload.extend_from_slice(&delta);
        self.state = SState::AwaitMaybeResend;
        vec![Part { phase: Phase::Delta, payload }]
    }

    pub(crate) fn on_client(&mut self, parts: &[Part]) -> Result<Vec<Part>, SyncError> {
        let part = parts.first().ok_or(SyncError::Desync("empty client message"))?;
        match self.state {
            SState::AwaitCandidates => self.on_candidates(&part.payload),
            SState::AwaitBatch => self.on_batch(&part.payload),
            SState::AwaitMaybeResend => Ok(self.on_resend()),
            SState::Done => Err(SyncError::Desync("client message after completion")),
        }
    }

    fn on_candidates(&mut self, payload: &[u8]) -> Result<Vec<Part>, SyncError> {
        let mut r = BitReader::new(payload);
        let mut candidates = Vec::new();
        for i in 0..self.items.len() {
            if r.read_bit().map_err(|_| SyncError::Desync("candidate bitmap"))? {
                candidates.push(i);
            }
        }
        self.candidates = candidates;
        let verify = VerifyState::new(&self.cfg.verify, self.candidates.len());
        self.verify = Some(verify);
        self.check_groups(&mut r)
    }

    fn on_batch(&mut self, payload: &[u8]) -> Result<Vec<Part>, SyncError> {
        let mut r = BitReader::new(payload);
        self.check_groups(&mut r)
    }

    /// Read the current batch's group hashes from `r`, evaluate them,
    /// and reply with the results bitmap (+ the next round when done).
    fn check_groups(&mut self, r: &mut BitReader<'_>) -> Result<Vec<Part>, SyncError> {
        let verify =
            self.verify.as_mut().ok_or(SyncError::Desync("server verify state missing"))?;
        if verify.is_trivially_done() {
            // No candidates at all: nothing to verify, no results bitmap.
            self.verify = None;
            return Ok(self.advance());
        }
        let bits = verify.batch_config().bits;
        let mut results = Vec::with_capacity(verify.groups().len());
        let mut w = BitWriter::new();
        for group in verify.groups() {
            let sent = r.read_bits(bits).map_err(|_| SyncError::Desync("group hash"))?;
            let mut buf = Vec::new();
            for &cand in group {
                let it = &self.items[self.candidates[cand]];
                buf.extend_from_slice(
                    &self.new[it.new_off as usize..(it.new_off + it.len) as usize],
                );
            }
            let ours = Md5::digest_bits(&buf, bits);
            let passed = ours == sent;
            results.push(passed);
            w.write_bit(passed);
        }
        let outcome = verify.apply_results(&results);
        let mut parts = vec![Part { phase: Phase::Map, payload: w.into_bytes() }];
        match outcome {
            StepOutcome::NextBatch => {
                self.state = SState::AwaitBatch;
            }
            StepOutcome::Done => {
                let verify =
                    self.verify.take().ok_or(SyncError::Desync("server verify state missing"))?;
                for &cand in verify.confirmed() {
                    let it = &self.items[self.candidates[cand]];
                    self.coverage.insert(it.new_off, it.len);
                }
                parts.extend(self.advance());
            }
        }
        Ok(parts)
    }

    fn on_resend(&mut self) -> Vec<Part> {
        self.state = SState::Done;
        vec![Part { phase: Phase::Delta, payload: msync_compress::compress(self.new) }]
    }
}

/// Items of virtual round `vidx`, or `None` when the subround is empty
/// or skipped. Pure function of shared state — both sides call it.
#[allow(clippy::too_many_arguments)]
fn round_items(
    cfg: &ProtocolConfig,
    coverage: &Coverage,
    known_hashes: &HashSet<(u64, u64)>,
    new_len: u64,
    vidx: u32,
    excluded: &Coverage,
    excluded_level: Option<u32>,
) -> Option<(Vec<Item>, u32, u32)> {
    let level = vidx / 2;
    let sub = vidx % 2;
    let empty = Coverage::new();
    let (phase, excl) = if cfg.cont_first_phase {
        if sub == 0 {
            (items::RoundPhase::ContOnly, &empty)
        } else {
            let excl = if excluded_level == Some(level) { excluded } else { &empty };
            (items::RoundPhase::Global, excl)
        }
    } else {
        if sub == 0 {
            return None; // single-phase rounds use only subround 1
        }
        (items::RoundPhase::Combined, &empty)
    };
    let items = items::enumerate_phase(cfg, coverage, known_hashes, new_len, level, phase, excl);
    (!items.is_empty()).then_some((items, level, sub))
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the states genuinely all await something
enum CState {
    AwaitSetup,
    AwaitSection,
    AwaitResults,
    AwaitFull,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    item_idx: usize,
    old_pos: u64,
}

pub(crate) enum ClientAction {
    Reply(Vec<Part>),
    Done { data: Vec<u8>, fell_back: bool },
}

pub(crate) struct ClientSession<'a> {
    old: &'a [u8],
    cfg: &'a ProtocolConfig,
    coverage: Coverage,
    known_hashes: HashSet<(u64, u64)>,
    /// Transmitted or derived global hash prefixes, for decomposition.
    hash_store: HashMap<(u64, u64), u64>,
    pub(crate) map: FileMap,
    global_bits: u32,
    new_len: u64,
    new_fp: [u8; 16],
    items: Vec<Item>,
    candidates: Vec<Candidate>,
    verify: Option<VerifyState>,
    state: CState,
    pub(crate) levels: Vec<LevelStats>,
    pub(crate) delta_bytes: u64,
    /// Cached position index for the current level's window size.
    index: Option<PositionIndex>,
    /// Mirror of the server's §5.4 subround bookkeeping.
    excluded: Coverage,
    excluded_level: Option<u32>,
    /// Trace recorder (off unless the driver attached one) and the
    /// session's roster index for event attribution.
    pub(crate) recorder: Recorder,
    pub(crate) file_id: u64,
}

impl<'a> ClientSession<'a> {
    pub(crate) fn new(old: &'a [u8], cfg: &'a ProtocolConfig) -> Self {
        Self {
            old,
            cfg,
            coverage: Coverage::new(),
            known_hashes: HashSet::new(),
            hash_store: HashMap::new(),
            map: FileMap::new(),
            global_bits: global_hash_bits(old.len() as u64, cfg.global_extra_bits),
            new_len: 0,
            new_fp: [0; 16],
            items: Vec::new(),
            candidates: Vec::new(),
            verify: None,
            state: CState::AwaitSetup,
            levels: Vec::new(),
            delta_bytes: 0,
            index: None,
            excluded: Coverage::new(),
            excluded_level: None,
            recorder: Recorder::off(),
            file_id: 0,
        }
    }

    pub(crate) fn request(&self) -> Part {
        let mut w = BitWriter::new();
        w.write_varint(self.old.len() as u64);
        for &b in &file_fingerprint(self.old).0 {
            w.write_bits(b as u64, 8);
        }
        Part { phase: Phase::Setup, payload: w.into_bytes() }
    }

    pub(crate) fn handle(&mut self, parts: Vec<Part>) -> Result<ClientAction, SyncError> {
        let mut reply: Vec<Part> = Vec::new();
        for part in parts {
            match self.state {
                CState::AwaitSetup => {
                    let mut r = BitReader::new(&part.payload);
                    let unchanged = r.read_bit().map_err(|_| SyncError::Desync("setup flag"))?;
                    if unchanged {
                        return Ok(ClientAction::Done {
                            data: self.old.to_vec(),
                            fell_back: false,
                        });
                    }
                    self.new_len = r.read_varint().map_err(|_| SyncError::Desync("new len"))?;
                    for b in self.new_fp.iter_mut() {
                        *b = r.read_bits(8).map_err(|_| SyncError::Desync("new fp"))? as u8;
                    }
                    self.state = CState::AwaitSection;
                }
                CState::AwaitSection => {
                    let mut r = BitReader::new(&part.payload);
                    let tag = r.read_varint().map_err(|_| SyncError::Desync("section tag"))?;
                    if tag == 0 {
                        // Delta: the rest of the payload (byte-aligned —
                        // a zero varint is exactly one byte).
                        let delta = &part.payload[1..];
                        self.delta_bytes = delta.len() as u64;
                        self.recorder.record(EventKind::DeltaPhase {
                            file_id: self.file_id,
                            delta_bytes: self.delta_bytes,
                        });
                        let reference = self.map.reference_from_old(self.old);
                        let result = msync_compress::delta_decode(&reference, delta)
                            .ok()
                            .filter(|out| file_fingerprint(out).0 == self.new_fp);
                        match result {
                            Some(data) => return Ok(ClientAction::Done { data, fell_back: false }),
                            None => {
                                // Residual weak-hash failure: request the
                                // whole file.
                                let mut w = BitWriter::new();
                                w.write_bit(true);
                                self.state = CState::AwaitFull;
                                return Ok(ClientAction::Reply(vec![Part {
                                    phase: Phase::Delta,
                                    payload: w.into_bytes(),
                                }]));
                            }
                        }
                    }
                    let vidx = (tag - 1) as u32;
                    if vidx >= self.cfg.total_levels() * 2 {
                        return Err(SyncError::Desync("round out of range"));
                    }
                    reply.push(self.process_round(vidx, &mut r)?);
                    self.state = if self.verify.as_ref().is_some_and(|v| !v.is_trivially_done()) {
                        CState::AwaitResults
                    } else {
                        // Zero candidates: the server advances without a
                        // results bitmap.
                        self.verify = None;
                        CState::AwaitSection
                    };
                }
                CState::AwaitResults => {
                    let mut r = BitReader::new(&part.payload);
                    let verify = self
                        .verify
                        .as_mut()
                        .ok_or(SyncError::Desync("client verify state missing"))?;
                    let mut results = Vec::with_capacity(verify.groups().len());
                    for _ in 0..verify.groups().len() {
                        results
                            .push(r.read_bit().map_err(|_| SyncError::Desync("results bitmap"))?);
                    }
                    match verify.apply_results(&results) {
                        StepOutcome::NextBatch => {
                            let part = self.compose_batch()?;
                            reply.push(part);
                        }
                        StepOutcome::Done => {
                            let verify = self
                                .verify
                                .take()
                                .ok_or(SyncError::Desync("client verify state missing"))?;
                            let mut confirmed_count = 0u64;
                            for &cand in verify.confirmed() {
                                let c = self.candidates[cand];
                                let it = &self.items[c.item_idx];
                                self.coverage.insert(it.new_off, it.len);
                                self.map.insert(Segment {
                                    new_off: it.new_off,
                                    old_off: c.old_pos,
                                    len: it.len,
                                });
                                confirmed_count += 1;
                            }
                            if let Some(stats) = self.levels.last_mut() {
                                stats.confirmed += confirmed_count as usize;
                            }
                            self.recorder.record(EventKind::VerifyBatch {
                                file_id: self.file_id,
                                candidates: self.candidates.len() as u64,
                                confirmed: confirmed_count,
                            });
                            self.state = CState::AwaitSection;
                        }
                    }
                }
                CState::AwaitFull => {
                    let data = msync_compress::decompress(&part.payload)
                        .map_err(|_| SyncError::Desync("fallback stream"))?;
                    return Ok(ClientAction::Done { data, fell_back: true });
                }
            }
        }
        Ok(ClientAction::Reply(reply))
    }

    /// Parse one (sub)round's hashes, find candidates, and compose the
    /// candidate bitmap + first verification batch.
    fn process_round(&mut self, vidx: u32, r: &mut BitReader<'_>) -> Result<Part, SyncError> {
        let round_t0 = self.recorder.now_micros();
        let level = vidx / 2;
        let d = self.cfg.block_size_at(level) as u64;
        let Some((items, _, sub)) = round_items(
            self.cfg,
            &self.coverage,
            &self.known_hashes,
            self.new_len,
            vidx,
            &self.excluded,
            self.excluded_level,
        ) else {
            return Err(SyncError::Desync("server sent hashes for an empty round"));
        };
        items::extend_known_hashes(&mut self.known_hashes, &items);
        if self.cfg.cont_first_phase && sub == 0 {
            let mut excl = Coverage::new();
            for it in &items {
                excl.insert(it.new_off, it.len);
            }
            self.excluded = excl;
            self.excluded_level = Some(level);
        }

        // Lazy per-level position index for full-size global lookups.
        let needs_index =
            items.iter().any(|it| matches!(it.kind, ItemKind::Global { .. }) && it.len == d);
        if needs_index {
            let rebuild = self.index.as_ref().is_none_or(|ix| ix.window() != d as usize);
            if rebuild {
                self.index = Some(PositionIndex::build(
                    self.old,
                    d as usize,
                    self.global_bits,
                    self.cfg.max_positions_per_hash,
                ));
            }
        }

        let mut stats = LevelStats {
            block_size: d as usize,
            items: items.len(),
            cont_items: 0,
            local_items: 0,
            suppressed: 0,
            candidates: 0,
            confirmed: 0,
            wall_us: 0,
            retransmits: 0,
        };

        let mut candidates = Vec::new();
        let mut bitmap = BitWriter::new();
        for (i, it) in items.iter().enumerate() {
            let found = match it.kind {
                ItemKind::Cont { side, anchor_edge } => {
                    stats.cont_items += 1;
                    let value = r
                        .read_bits(self.cfg.cont_bits)
                        .map_err(|_| SyncError::Desync("cont hash"))?;
                    self.probe_position(side, anchor_edge, it.len).filter(|&pos| {
                        matches_at(self.old, pos as i64, it.len as usize, self.cfg.cont_bits, value)
                    })
                }
                ItemKind::Local => {
                    stats.local_items += 1;
                    let value = r
                        .read_bits(self.cfg.local_bits)
                        .map_err(|_| SyncError::Desync("local hash"))?;
                    self.local_scan(it, value)
                }
                ItemKind::Global { suppressed } => {
                    let value = match suppressed {
                        None => {
                            let v = r
                                .read_bits(self.global_bits)
                                .map_err(|_| SyncError::Desync("global hash"))?;
                            Some(v)
                        }
                        Some(der) => {
                            stats.suppressed += 1;
                            self.derive_hash(it, der)
                        }
                    };
                    match value {
                        None => None,
                        Some(v) => {
                            self.hash_store.insert((it.new_off, it.len), v);
                            self.global_lookup(it, v, d)
                        }
                    }
                }
            };
            match found {
                Some(pos) => {
                    bitmap.write_bit(true);
                    candidates.push(Candidate { item_idx: i, old_pos: pos });
                }
                None => bitmap.write_bit(false),
            }
        }
        stats.candidates = candidates.len();
        if self.recorder.is_enabled() {
            stats.wall_us = self.recorder.now_micros().saturating_sub(round_t0);
            self.recorder.observe(HistKind::RoundDuration, stats.wall_us);
            self.recorder.record(EventKind::MapRound {
                file_id: self.file_id,
                block_size: d,
                items: stats.items as u64,
                candidates: stats.candidates as u64,
            });
        }
        self.levels.push(stats);
        self.items = items;
        self.candidates = candidates;
        let verify = VerifyState::new(&self.cfg.verify, self.candidates.len());
        self.verify = Some(verify);

        // Compose bitmap + batch-1 hashes in one part.
        let mut payload = bitmap;
        self.write_group_hashes(&mut payload)?;
        Ok(Part { phase: Phase::Map, payload: payload.into_bytes() })
    }

    fn compose_batch(&mut self) -> Result<Part, SyncError> {
        let mut w = BitWriter::new();
        self.write_group_hashes(&mut w)?;
        Ok(Part { phase: Phase::Map, payload: w.into_bytes() })
    }

    fn write_group_hashes(&mut self, w: &mut BitWriter) -> Result<(), SyncError> {
        let verify =
            self.verify.as_ref().ok_or(SyncError::Desync("client verify state missing"))?;
        let bits = if verify.is_trivially_done() { 0 } else { verify.batch_config().bits };
        for group in verify.groups() {
            let mut buf = Vec::new();
            for &cand in group {
                let c = self.candidates[cand];
                let it = &self.items[c.item_idx];
                buf.extend_from_slice(&self.old[c.old_pos as usize..(c.old_pos + it.len) as usize]);
            }
            w.write_bits(Md5::digest_bits(&buf, bits), bits);
        }
        Ok(())
    }

    /// Predicted old-file position of a continuation probe.
    fn probe_position(&self, side: Side, anchor_edge: u64, len: u64) -> Option<u64> {
        match side {
            Side::Left => {
                let seg = self.map.segment_at(anchor_edge)?;
                let old_at_edge = seg.old_off + (anchor_edge - seg.new_off);
                old_at_edge.checked_sub(len)
            }
            Side::Right => {
                let seg = self.map.segment_at(anchor_edge.checked_sub(1)?)?;
                let old_at_edge = seg.old_off + (anchor_edge - seg.new_off);
                (old_at_edge + len <= self.old.len() as u64).then_some(old_at_edge)
            }
        }
    }

    /// Neighborhood scan for a local hash.
    fn local_scan(&self, it: &Item, value: u64) -> Option<u64> {
        let seg = self.nearest_segment(it.new_off)?;
        let predicted = seg.old_off as i64 + (it.new_off as i64 - seg.new_off as i64);
        let w = (self.cfg.local_range_blocks * it.len) as i64;
        scan_neighborhood(
            self.old,
            predicted - w,
            predicted + w + it.len as i64,
            it.len as usize,
            self.cfg.local_bits,
            value,
        )
    }

    fn nearest_segment(&self, new_off: u64) -> Option<&Segment> {
        let segs = self.map.segments();
        if segs.is_empty() {
            return None;
        }
        let idx = segs.partition_point(|s| s.new_off <= new_off);
        let after = segs.get(idx);
        let before = idx.checked_sub(1).and_then(|i| segs.get(i));
        match (before, after) {
            (Some(b), Some(a)) => {
                let db = new_off.saturating_sub(b.new_end());
                let da = a.new_off.saturating_sub(new_off);
                Some(if db <= da { b } else { a })
            }
            (Some(b), None) => Some(b),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }

    /// Derive a suppressed sibling hash from the parent's and sibling's
    /// prefixes (paper §5.5). Returns `None` when bookkeeping is missing —
    /// which would be a desync, surfaced as a lost candidate only.
    fn derive_hash(&self, it: &Item, der: crate::items::Derivation) -> Option<u64> {
        let parent = *self.hash_store.get(&(der.parent_off, it.len * 2))?;
        let sibling = match self.hash_store.get(&(der.sibling_off, it.len)) {
            Some(&v) => v,
            None => {
                // Sibling bytes fully known: compute its prefix directly.
                let bytes = self.map.bytes_for_new_range(self.old, der.sibling_off, it.len)?;
                DecomposableDigest::of(&bytes).prefix(self.global_bits)
            }
        };
        Some(if der.is_right {
            prefix_decompose_right(parent, sibling, self.global_bits, it.len)
        } else {
            prefix_decompose_left(parent, sibling, self.global_bits, it.len)
        })
    }

    /// Look up a global hash in the position index (full-size blocks) or
    /// by direct scan (the tail block's odd length).
    fn global_lookup(&self, it: &Item, value: u64, d: u64) -> Option<u64> {
        if it.len == d {
            let index = self.index.as_ref()?;
            index.lookup(value).first().map(|&p| p as u64)
        } else {
            scan_neighborhood(
                self.old,
                0,
                self.old.len() as i64,
                it.len as usize,
                self.global_bits,
                value,
            )
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Synchronize one file: the client holds `old`, the server holds `new`;
/// returns the client's (always exact) reconstruction plus cost stats.
pub fn sync_file(old: &[u8], new: &[u8], cfg: &ProtocolConfig) -> Result<SyncOutcome, SyncError> {
    sync_file_with(old, new, cfg, &Recorder::off(), 0)
}

/// [`sync_file`] with a trace recorder attached: the driver emits
/// session/round span events and mirrors every byte it charges to the
/// traffic stats as a frame event, so the journal's per-(direction,
/// phase) sums equal the returned `TrafficStats` exactly. Because this
/// driver is single-threaded lockstep, a run under a deterministic
/// `ManualClock` produces a byte-identical journal every time.
pub fn sync_file_traced(
    old: &[u8],
    new: &[u8],
    cfg: &ProtocolConfig,
    recorder: &Recorder,
) -> Result<SyncOutcome, SyncError> {
    sync_file_with(old, new, cfg, recorder, 0)
}

pub(crate) fn sync_file_with(
    old: &[u8],
    new: &[u8],
    cfg: &ProtocolConfig,
    rec: &Recorder,
    file_id: u64,
) -> Result<SyncOutcome, SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let session_t0 = rec.now_micros();
    rec.record(EventKind::SessionStart { file_id });
    let mut client = ClientSession::new(old, cfg);
    client.recorder = rec.clone();
    client.file_id = file_id;
    let mut server = ServerSession::new(new, cfg);
    let mut traffic = TrafficStats::new();

    let req = client.request();
    let req_wire = frame_wire_size(req.payload.len());
    traffic.record(Direction::ClientToServer, req.phase, req_wire);
    rec.record(EventKind::FrameSend { dir: DirTag::C2s, phase: req.phase.into(), bytes: req_wire });
    let mut parts = server.on_request(&req.payload)?;
    let mut roundtrips = 1u32;

    loop {
        // One loop iteration is one exchange: the server's message plus
        // (unless the session ends) the client's reply.
        let mut exchange_bytes = 0u64;
        for p in &parts {
            let wire = frame_wire_size(p.payload.len());
            traffic.record(Direction::ServerToClient, p.phase, wire);
            rec.record(EventKind::FrameRecv {
                dir: DirTag::S2c,
                phase: p.phase.into(),
                bytes: wire,
            });
            exchange_bytes += wire;
        }
        match client.handle(parts)? {
            ClientAction::Done { data, fell_back } => {
                if rec.is_enabled() {
                    rec.observe(HistKind::BytesPerRound, exchange_bytes);
                    rec.observe(
                        HistKind::SessionDuration,
                        rec.now_micros().saturating_sub(session_t0),
                    );
                }
                rec.record(EventKind::SessionEnd { file_id, ok: true, fell_back });
                traffic.roundtrips = roundtrips;
                let stats = SyncStats {
                    traffic,
                    levels: client.levels,
                    known_bytes: client.map.known_bytes(),
                    delta_bytes: client.delta_bytes,
                };
                return Ok(SyncOutcome { reconstructed: data, stats, fell_back });
            }
            ClientAction::Reply(cparts) => {
                if cparts.is_empty() {
                    return Err(SyncError::Desync("client had nothing to say"));
                }
                for p in &cparts {
                    let wire = frame_wire_size(p.payload.len());
                    traffic.record(Direction::ClientToServer, p.phase, wire);
                    rec.record(EventKind::FrameSend {
                        dir: DirTag::C2s,
                        phase: p.phase.into(),
                        bytes: wire,
                    });
                    exchange_bytes += wire;
                }
                if rec.is_enabled() {
                    rec.observe(HistKind::BytesPerRound, exchange_bytes);
                }
                roundtrips += 1;
                parts = server.on_client(&cparts)?;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Channel transport (ARQ layer)
// ---------------------------------------------------------------------
//
// Over a real (possibly faulty) channel, each logical message is split
// into frames carrying an ARQ header:
//
// ```text
// varint message sequence number
// varint part index within the message
// 1 byte part header (bit 0 = more parts follow, bits 1..3 = phase)
// payload bytes
// ```
//
// Messages alternate strictly: the client owns even sequence numbers,
// the server odd ones. Recovery is stop-and-wait, driven by whichever
// side is waiting for a reply: after a receive deadline expires it
// retransmits its whole last message; the peer deduplicates by sequence
// number and answers a stale retransmission by resending its own cached
// reply. Duplicated or reordered frames are idempotent (parts are
// assembled by index), corrupt frames are dropped by the channel's CRC
// and repaired by the same retransmission path, and every receive is
// bounded by the `RetryPolicy`, so a dead peer surfaces as a typed
// error — never a hang.

/// Hard cap on frames processed while waiting for one message: a live
/// peer never legitimately approaches it, so exceeding it means the
/// link floods garbage faster than timeouts can fire.
const MAX_FRAMES_PER_EXCHANGE: u32 = 10_000;

/// Parts per message are small (bitmap + batch + round hashes); a
/// larger index in an ARQ header is corruption that slipped past the
/// CRC, not a real frame.
pub(crate) const MAX_PARTS_PER_MESSAGE: usize = 256;

/// Wire form of a message part on a real channel: 1 header byte
/// (bit 0 = more parts follow in this logical message, bits 1..3 =
/// phase tag) followed by the payload.
pub(crate) fn part_header(phase: Phase, more: bool) -> u8 {
    let tag = match phase {
        Phase::Setup => 0u8,
        Phase::Map => 1,
        Phase::Delta => 2,
    };
    (tag << 1) | u8::from(more)
}

pub(crate) fn parse_part_header(b: u8) -> Option<(Phase, bool)> {
    let phase = match b >> 1 {
        0 => Phase::Setup,
        1 => Phase::Map,
        2 => Phase::Delta,
        _ => return None,
    };
    Some((phase, b & 1 == 1))
}

/// A decoded ARQ frame.
struct ArqFrame {
    seq: u64,
    idx: usize,
    more: bool,
    part: Part,
}

fn parse_frame(bytes: &[u8]) -> Option<ArqFrame> {
    let mut r = BitReader::new(bytes);
    let seq = r.read_varint().ok()?;
    let idx = usize::try_from(r.read_varint().ok()?).ok()?;
    if idx >= MAX_PARTS_PER_MESSAGE {
        return None;
    }
    let header = r.read_bits(8).ok()? as u8;
    let (phase, more) = parse_part_header(header)?;
    // The varints and header byte are whole bytes, so the payload
    // starts byte-aligned.
    let consumed = bytes.len() - r.remaining_bits() / 8;
    Some(ArqFrame { seq, idx, more, part: Part { phase, payload: bytes[consumed..].to_vec() } })
}

/// Map a transport-level send failure to the session error it implies.
/// (The in-memory channel never fails a send; a TCP transport reports a
/// closed or wedged socket here.)
pub(crate) fn channel_to_sync(e: ChannelError) -> SyncError {
    match e {
        ChannelError::Timeout => SyncError::Timeout,
        ChannelError::Disconnected => SyncError::PeerGone,
        ChannelError::Corrupt(_) => SyncError::FrameCorrupt,
    }
}

fn send_frame(
    t: &mut dyn Transport,
    seq: u64,
    idx: usize,
    more: bool,
    part: &Part,
) -> Result<(), SyncError> {
    let mut w = BitWriter::new();
    w.write_varint(seq);
    w.write_varint(idx as u64);
    w.write_bits(u64::from(part_header(part.phase, more)), 8);
    let mut frame = w.into_bytes();
    frame.extend_from_slice(&part.payload);
    t.send(&frame, part.phase).map_err(channel_to_sync)
}

/// One side's view of the stop-and-wait message exchange, generic over
/// the transport: the same recovery machinery drives the in-memory
/// channel, the fault wrapper, and a real TCP connection.
pub(crate) struct ArqLink<'a> {
    t: &'a mut dyn Transport,
    retry: RetryPolicy,
    /// Sequence number of the next message this side sends (client
    /// even, server odd).
    send_seq: u64,
    /// Sequence number of the next message expected from the peer.
    recv_seq: u64,
    /// The last message sent, kept for retransmission.
    cached: Vec<Part>,
    /// Whether a stale final frame from the peer triggers a resend of
    /// the cached message. Only the server answers stale frames: it is
    /// how a client retransmission gets its lost reply back. If both
    /// sides did this, one duplicated frame would echo resends back and
    /// forth indefinitely; the client's recovery driver is its receive
    /// timeout instead.
    resend_on_stale: bool,
    /// Trace recorder inherited from the transport, plus the send
    /// timestamp of the in-flight message for RTT measurement.
    rec: Recorder,
    last_send_us: u64,
}

impl<'a> ArqLink<'a> {
    pub(crate) fn client(t: &'a mut dyn Transport, retry: RetryPolicy) -> Self {
        let rec = t.recorder();
        ArqLink {
            t,
            retry,
            send_seq: 0,
            recv_seq: 1,
            cached: Vec::new(),
            resend_on_stale: false,
            rec,
            last_send_us: 0,
        }
    }

    pub(crate) fn server(t: &'a mut dyn Transport, retry: RetryPolicy) -> Self {
        let rec = t.recorder();
        ArqLink {
            t,
            retry,
            send_seq: 1,
            recv_seq: 0,
            cached: Vec::new(),
            resend_on_stale: true,
            rec,
            last_send_us: 0,
        }
    }

    pub(crate) fn send_message(&mut self, parts: Vec<Part>) -> Result<(), SyncError> {
        let seq = self.send_seq;
        self.send_seq += 2;
        for (i, part) in parts.iter().enumerate() {
            send_frame(self.t, seq, i, i + 1 < parts.len(), part)?;
        }
        self.cached = parts;
        self.last_send_us = self.rec.now_micros();
        Ok(())
    }

    /// Retransmit the whole last message and count it in the stats.
    fn retransmit_cached(&mut self) -> Result<(), SyncError> {
        let seq = self.send_seq.wrapping_sub(2);
        let n = self.cached.len();
        for i in 0..n {
            let more = i + 1 < n;
            let mut w = BitWriter::new();
            w.write_varint(seq);
            w.write_varint(i as u64);
            w.write_bits(u64::from(part_header(self.cached[i].phase, more)), 8);
            let mut frame = w.into_bytes();
            frame.extend_from_slice(&self.cached[i].payload);
            self.t.send(&frame, self.cached[i].phase).map_err(channel_to_sync)?;
        }
        self.t.note_retransmits(n as u64);
        self.rec.record(EventKind::Retransmit { frames: n as u64 });
        Ok(())
    }

    /// Receive the peer's next message, driving recovery: timeouts
    /// retransmit our cached message with exponential backoff (which
    /// prompts the peer to resend its reply), duplicates and reordered
    /// parts are assembled idempotently, and exhaustion of the retry
    /// budget maps to a typed error naming the dominant failure.
    pub(crate) fn recv_message(&mut self) -> Result<Vec<Part>, SyncError> {
        let expected = self.recv_seq;
        let mut slots: Vec<Option<Part>> = Vec::new();
        let mut final_idx: Option<usize> = None;
        let mut timeout = self.retry.timeout;
        let mut attempts = 0u32;
        let mut saw_corrupt = false;
        let mut frames = 0u32;
        loop {
            match self.t.recv_timeout(timeout) {
                Ok(bytes) => {
                    frames += 1;
                    if frames > MAX_FRAMES_PER_EXCHANGE {
                        return Err(SyncError::Desync("frame flood while awaiting message"));
                    }
                    let Some(frame) = parse_frame(&bytes) else {
                        // CRC-clean but structurally invalid: treat like
                        // a corrupt frame and let retransmission heal it.
                        saw_corrupt = true;
                        continue;
                    };
                    // The transport cannot know an inbound frame's phase
                    // until the ARQ header is parsed; attribute it now.
                    self.t.attribute_inbound(frame.part.phase);
                    if frame.seq != expected {
                        // A stale frame means the peer missed our last
                        // message's effect — on the server, when its
                        // final part shows up, answer with the cached
                        // reply so the exchange moves again. Future
                        // sequences (only possible via corruption) and
                        // stale frames on the client are dropped.
                        if self.resend_on_stale
                            && frame.seq < expected
                            && !frame.more
                            && !self.cached.is_empty()
                        {
                            self.retransmit_cached()?;
                        }
                        continue;
                    }
                    attempts = 0;
                    if frame.idx >= slots.len() {
                        slots.resize_with(frame.idx + 1, || None);
                    }
                    slots[frame.idx] = Some(frame.part);
                    if !frame.more {
                        final_idx = Some(frame.idx);
                    }
                    if let Some(last) = final_idx {
                        if slots.len() > last {
                            let head = &slots[..=last];
                            if head.iter().all(Option::is_some) {
                                self.recv_seq += 2;
                                slots.truncate(last + 1);
                                if self.rec.is_enabled() && !self.cached.is_empty() {
                                    let rtt =
                                        self.rec.now_micros().saturating_sub(self.last_send_us);
                                    self.rec.observe(HistKind::FrameRtt, rtt);
                                }
                                return Ok(slots.into_iter().flatten().collect());
                            }
                        }
                    }
                }
                Err(ChannelError::Corrupt(_)) => {
                    frames += 1;
                    if frames > MAX_FRAMES_PER_EXCHANGE {
                        return Err(SyncError::Desync("frame flood while awaiting message"));
                    }
                    saw_corrupt = true;
                }
                Err(ChannelError::Timeout) => {
                    attempts += 1;
                    self.rec.record(EventKind::Backoff {
                        attempt: u64::from(attempts),
                        timeout_us: u64::try_from(timeout.as_micros()).unwrap_or(u64::MAX),
                    });
                    if attempts > self.retry.max_retries {
                        return Err(if saw_corrupt {
                            SyncError::FrameCorrupt
                        } else {
                            SyncError::Timeout
                        });
                    }
                    if !self.cached.is_empty() {
                        self.retransmit_cached()?;
                    }
                    timeout = self.retry.backoff(timeout);
                }
                Err(ChannelError::Disconnected) => return Err(SyncError::PeerGone),
            }
        }
    }

    /// After the server's final message: keep answering stale
    /// retransmissions with the cached reply until the client hangs up
    /// (success) or goes silent past the retry budget.
    pub(crate) fn linger(&mut self) {
        let mut quiet = 0u32;
        let mut frames = 0u32;
        while quiet <= self.retry.max_retries && frames < MAX_FRAMES_PER_EXCHANGE {
            match self.t.recv_timeout(self.retry.timeout) {
                Ok(bytes) => {
                    frames += 1;
                    quiet = 0;
                    if let Some(frame) = parse_frame(&bytes) {
                        self.t.attribute_inbound(frame.part.phase);
                        if frame.seq < self.recv_seq
                            && !frame.more
                            && !self.cached.is_empty()
                            && self.retransmit_cached().is_err()
                        {
                            return;
                        }
                    }
                }
                Err(ChannelError::Corrupt(_)) => {
                    frames += 1;
                    quiet = 0;
                }
                Err(ChannelError::Timeout) => quiet += 1,
                Err(ChannelError::Disconnected) => return,
            }
        }
    }

    pub(crate) fn stats(&self) -> TrafficStats {
        self.t.stats()
    }
}

/// Drive the client side of one file session over any [`Transport`]:
/// the peer must be running [`serve_file_transport`] (or the server
/// half of a daemon). Traffic accounting comes from the transport
/// itself, including framing, checksums, and retransmissions. Whenever
/// this returns `Ok`, the reconstruction is byte-exact; link failures
/// that outlast the retry budget surface as [`SyncError::Timeout`] /
/// [`SyncError::FrameCorrupt`] / [`SyncError::PeerGone`].
pub fn sync_file_transport(
    t: &mut dyn Transport,
    old: &[u8],
    cfg: &ProtocolConfig,
    retry: RetryPolicy,
) -> Result<SyncOutcome, SyncError> {
    sync_file_transport_as(t, old, cfg, retry, 0)
}

/// [`sync_file_transport`] with an explicit roster index for trace
/// attribution (the pipelined collection client syncs many files over
/// one connection; each session's events carry its own `file_id`).
pub fn sync_file_transport_as(
    t: &mut dyn Transport,
    old: &[u8],
    cfg: &ProtocolConfig,
    retry: RetryPolicy,
    file_id: u64,
) -> Result<SyncOutcome, SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let rec = t.recorder();
    let session_t0 = rec.now_micros();
    rec.record(EventKind::SessionStart { file_id });
    let mut client = ClientSession::new(old, cfg);
    client.recorder = rec.clone();
    client.file_id = file_id;
    let mut link = ArqLink::client(t, retry);
    link.send_message(vec![client.request()])?;
    let result = loop {
        let retrans_before = link.stats().retransmits;
        let parts = match link.recv_message() {
            Ok(parts) => parts,
            Err(e) => break Err(e),
        };
        // Attribute recovery cost to the round it interrupted.
        let retrans = link.stats().retransmits.saturating_sub(retrans_before);
        if retrans > 0 {
            if let Some(level) = client.levels.last_mut() {
                level.retransmits += retrans;
            }
        }
        match client.handle(parts) {
            Ok(ClientAction::Done { data, fell_back }) => break Ok((data, fell_back)),
            Ok(ClientAction::Reply(cparts)) => {
                if cparts.is_empty() {
                    break Err(SyncError::Desync("client had nothing to say"));
                }
                if let Err(e) = link.send_message(cparts) {
                    break Err(e);
                }
            }
            Err(e) => break Err(e),
        }
    };
    let (data, fell_back) = match result {
        Ok(done) => done,
        Err(e) => {
            rec.record(EventKind::SessionEnd { file_id, ok: false, fell_back: false });
            return Err(e);
        }
    };
    if rec.is_enabled() {
        rec.observe(HistKind::SessionDuration, rec.now_micros().saturating_sub(session_t0));
    }
    rec.record(EventKind::SessionEnd { file_id, ok: true, fell_back });
    let traffic = link.stats();
    let stats = SyncStats {
        traffic,
        levels: client.levels,
        known_bytes: client.map.known_bytes(),
        delta_bytes: client.delta_bytes,
    };
    Ok(SyncOutcome { reconstructed: data, stats, fell_back })
}

/// Drive the server side of one file session over any [`Transport`]:
/// answer a [`sync_file_transport`] client from `new`. Returns `Ok`
/// both on a completed session and when the client goes away (the
/// client side owns the verdict); errors are reserved for protocol
/// desyncs, which indicate a bug rather than link weather.
pub fn serve_file_transport(
    t: &mut dyn Transport,
    new: &[u8],
    cfg: &ProtocolConfig,
    retry: RetryPolicy,
) -> Result<(), SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let mut server = ServerSession::new(new, cfg);
    let mut link = ArqLink::server(t, retry);
    let req = match link.recv_message() {
        Ok(parts) => parts,
        // Nothing ever arrived: the client will report its own
        // error; there is no session to fail on this side.
        Err(_) => return Ok(()),
    };
    let first = req.first().ok_or(SyncError::Desync("empty request"))?;
    let mut reply = server.on_request(&first.payload)?;
    loop {
        if link.send_message(reply).is_err() {
            return Ok(());
        }
        if server.state == SState::Done {
            break;
        }
        match link.recv_message() {
            Ok(parts) => reply = server.on_client(&parts)?,
            // Client finished and hung up, or gave up — either way
            // the client side owns the verdict. Serve any pending
            // resends before leaving.
            Err(SyncError::PeerGone) => return Ok(()),
            Err(_) => break,
        }
    }
    link.linger();
    Ok(())
}

/// Run the protocol over a real duplex [`Endpoint`] pair with the
/// server on its own thread — the deployment shape of the library, as
/// opposed to [`sync_file`]'s lockstep in-process driver — under
/// explicit transport options: a timeout/retry policy and an optional
/// deterministic fault plan for the link.
///
/// Both ends run through the [`Transport`] trait object, so this is
/// the same code path a TCP session takes; byte accounting comes from
/// the channel itself, including checksums and retransmissions.
/// Whenever this returns `Ok`, the reconstruction is byte-exact; link
/// failures that outlast the retry budget surface as
/// [`SyncError::Timeout`] / [`SyncError::FrameCorrupt`] /
/// [`SyncError::PeerGone`].
pub fn sync_over_channel_with(
    old: &[u8],
    new: &[u8],
    cfg: &ProtocolConfig,
    opts: &ChannelOptions,
) -> Result<SyncOutcome, SyncError> {
    sync_over_channel_traced(old, new, cfg, opts, &Recorder::off())
}

/// [`sync_over_channel_with`] with a trace recorder attached to the
/// channel: both endpoints' frame charges and every injected fault
/// become trace events, alongside the client session's span events.
/// (Because client and server run on separate threads, event order
/// interleaves — use [`sync_file_traced`] for byte-stable journals.)
pub fn sync_over_channel_traced(
    old: &[u8],
    new: &[u8],
    cfg: &ProtocolConfig,
    opts: &ChannelOptions,
    recorder: &Recorder,
) -> Result<SyncOutcome, SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let (mut client_ep, mut server_ep) = match &opts.fault_plan {
        Some(plan) => Endpoint::pair_with_faults(plan, opts.fault_seed),
        None => Endpoint::pair(),
    };
    if recorder.is_enabled() {
        // The endpoints share channel state, so one attach covers both.
        client_ep.set_recorder(recorder.clone());
    }

    let server_new = new.to_vec();
    let server_cfg = cfg.clone();
    let retry = opts.retry;
    let handle = std::thread::spawn(move || -> Result<(), SyncError> {
        serve_file_transport(&mut server_ep, &server_new, &server_cfg, retry)
    });

    let result = sync_file_transport(&mut client_ep, old, cfg, opts.retry);
    // Dropping the client endpoint is the hang-up signal that lets a
    // lingering server finish.
    drop(client_ep);
    let joined = handle.join().map_err(|_| SyncError::Desync("server thread panicked"));
    let outcome = result?;
    joined??;
    Ok(outcome)
}

/// [`sync_over_channel_with`] on a clean link with the default
/// [`RetryPolicy`] — the drop-in successor of the original
/// channel driver.
pub fn sync_over_channel(
    old: &[u8],
    new: &[u8],
    cfg: &ProtocolConfig,
) -> Result<SyncOutcome, SyncError> {
    sync_over_channel_with(old, new, cfg, &ChannelOptions::default())
}

#[cfg(test)]
mod channel_tests {
    use super::*;

    fn blob(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn channel_run_matches_in_process_driver() {
        let old = blob(30_000, 3);
        let mut new = old.clone();
        new.splice(12_000..12_050, blob(200, 4));
        let cfg = ProtocolConfig::default();
        let a = sync_file(&old, &new, &cfg).unwrap();
        let b = sync_over_channel(&old, &new, &cfg).unwrap();
        assert_eq!(a.reconstructed, new);
        assert_eq!(b.reconstructed, new);
        // Same protocol content; the channel adds the ARQ header
        // (sequence + part-index varints + part header byte) per frame,
        // so totals agree within a few bytes per frame transmitted.
        let diff = b.stats.total_bytes().abs_diff(a.stats.total_bytes());
        let header_bound = 8 * b.stats.traffic.frames;
        assert!(
            diff <= header_bound,
            "channel {} vs driver {} (frames {})",
            b.stats.total_bytes(),
            a.stats.total_bytes(),
            b.stats.traffic.frames,
        );
        assert_eq!(b.stats.traffic.roundtrips, a.stats.traffic.roundtrips);
        assert_eq!(b.stats.levels, a.stats.levels);
        // A clean link never needs recovery.
        assert_eq!(b.stats.traffic.retransmits, 0);
    }

    #[test]
    fn channel_run_unchanged_file() {
        let data = blob(10_000, 5);
        let out = sync_over_channel(&data, &data, &ProtocolConfig::default()).unwrap();
        assert_eq!(out.reconstructed, data);
        assert!(out.stats.total_bytes() < 64, "got {}", out.stats.total_bytes());
    }

    #[test]
    fn channel_run_empty_to_full() {
        let new = blob(5_000, 6);
        let out = sync_over_channel(b"", &new, &ProtocolConfig::default()).unwrap();
        assert_eq!(out.reconstructed, new);
    }

    fn short_retry() -> msync_protocol::RetryPolicy {
        msync_protocol::RetryPolicy {
            timeout: std::time::Duration::from_millis(20),
            max_retries: 8,
            backoff_cap: std::time::Duration::from_millis(80),
        }
    }

    #[test]
    fn channel_run_survives_lossy_link() {
        let old = blob(24_000, 7);
        let mut new = old.clone();
        new.splice(4_000..4_100, blob(300, 8));
        let cfg = ProtocolConfig::default();
        let plan = msync_protocol::FaultPlan::profile("lossy").unwrap();
        let opts =
            ChannelOptions { retry: short_retry(), fault_plan: Some(plan), fault_seed: 0xFA17 };
        let out = sync_over_channel_with(&old, &new, &cfg, &opts).unwrap();
        assert_eq!(out.reconstructed, new);
    }

    #[test]
    fn channel_run_corruption_is_healed_or_typed() {
        let old = blob(16_000, 9);
        let new = blob(16_000, 10);
        let cfg = ProtocolConfig::default();
        let plan = msync_protocol::FaultPlan::profile("corrupt").unwrap();
        let opts = ChannelOptions { retry: short_retry(), fault_plan: Some(plan), fault_seed: 99 };
        match sync_over_channel_with(&old, &new, &cfg, &opts) {
            Ok(out) => assert_eq!(out.reconstructed, new),
            Err(
                SyncError::FrameCorrupt
                | SyncError::Timeout
                | SyncError::PeerGone
                | SyncError::Desync(_),
            ) => {}
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }

    #[test]
    fn channel_run_disconnect_surfaces_typed_error() {
        let old = blob(20_000, 11);
        let new = blob(20_000, 12);
        let cfg = ProtocolConfig::default();
        let plan = msync_protocol::FaultPlan::profile("disconnect").unwrap();
        let opts = ChannelOptions { retry: short_retry(), fault_plan: Some(plan), fault_seed: 1 };
        match sync_over_channel_with(&old, &new, &cfg, &opts) {
            // Severed before the session finished: must be a typed
            // transport error, never a hang or a panic.
            Err(SyncError::PeerGone | SyncError::Timeout | SyncError::FrameCorrupt) => {}
            Ok(out) => assert_eq!(out.reconstructed, new),
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }

    #[test]
    fn arq_frame_roundtrip_and_garbage_rejection() {
        let part = Part { phase: Phase::Map, payload: vec![1, 2, 3, 4] };
        let mut w = BitWriter::new();
        w.write_varint(6);
        w.write_varint(1);
        w.write_bits(u64::from(part_header(part.phase, true)), 8);
        let mut frame = w.into_bytes();
        frame.extend_from_slice(&part.payload);
        let parsed = parse_frame(&frame).unwrap();
        assert_eq!(parsed.seq, 6);
        assert_eq!(parsed.idx, 1);
        assert!(parsed.more);
        assert_eq!(parsed.part.payload, part.payload);
        assert_eq!(parsed.part.phase, Phase::Map);

        // Truncated header and absurd part indices are rejected, not
        // panicked on.
        assert!(parse_frame(&[]).is_none());
        let mut w = BitWriter::new();
        w.write_varint(0);
        w.write_varint(u64::from(u32::MAX));
        w.write_bits(0, 8);
        assert!(parse_frame(&w.into_bytes()).is_none());
    }
}
