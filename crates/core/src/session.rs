//! The multi-round synchronization session (paper §5.6).
//!
//! One session synchronizes one file. The exchange, exactly as in
//! Figure 5.2 of the paper:
//!
//! ```text
//! client                                server
//!   │ ── request: old_len, old fingerprint ──▶ │
//!   │ ◀─ setup: new_len, new fingerprint      │
//!   │    + hashes for the first block size ── │   round 0
//!   │ ── candidate bitmap + verify batch 1 ─▶ │
//!   │ ◀─ batch-1 results [+ batch wait]       │
//!   │      ⋮  (optional extra verify batches) │
//!   │ ◀─ final results + next round hashes ── │   round 1 …
//!   │      ⋮                                  │
//!   │ ◀─ final results + delta ────────────── │   delta phase
//! ```
//!
//! Result bitmaps ride on the next server message ("this bitmap is
//! included into the first roundtrip of the next round"), so a round with
//! a single verification batch costs exactly one roundtrip.
//!
//! Everything both endpoints must agree on — active blocks, probe lists,
//! hash suppressions, verification groups — is recomputed independently
//! from shared state ([`Coverage`], the known-hash set, results bitmaps),
//! so messages carry only hash bits and bitmaps, never structure.

use crate::config::{ChannelOptions, ProtocolConfig};
use crate::coverage::Coverage;
use crate::engine::{ClientMachine, Machine, Output, ServerMachine};
use crate::index::{matches_at, scan_neighborhood, PositionIndex};
use crate::items::{self, global_hash_bits, Item, ItemKind, Side};
use crate::map::{FileMap, Segment};
use crate::snapshot::SessionCache;
use crate::stats::{LevelStats, SyncStats};
use crate::verify::{StepOutcome, VerifyState};
use msync_hash::decomposable::{prefix_decompose_left, prefix_decompose_right, DecomposableDigest};
use msync_hash::{file_fingerprint, BitReader, BitWriter, Md5};
use msync_protocol::{
    frame_wire_size, ChannelError, Direction, Endpoint, FrameBuf, Phase, RetryPolicy, TrafficStats,
    Transport,
};
use msync_trace::{Clock, DirTag, EventKind, HistKind, Recorder, SystemClock};
use std::collections::{HashMap, HashSet};

/// Synchronization failure. A session never panics, never hangs, and
/// never silently returns a wrong reconstruction: every failure mode of
/// the link or the peer maps to one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The configuration is invalid.
    Config(String),
    /// The two endpoints fell out of lockstep — a protocol bug, never
    /// expected in a correct build.
    Desync(&'static str),
    /// Retries were exhausted and at least one frame failed its
    /// integrity checks: the link is corrupting traffic faster than the
    /// bounded-retry recovery can repair.
    FrameCorrupt,
    /// The peer disconnected (or the link was cut) mid-session.
    PeerGone,
    /// The retry budget ran out with no frame from the peer at all.
    Timeout,
    /// A durability sink (checkpoint journal, atomic apply) failed.
    /// Protocol state was fine, but progress that cannot be persisted
    /// must not be reported as durable.
    Persist(String),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Desync(what) => write!(f, "protocol desync: {what}"),
            Self::FrameCorrupt => write!(f, "persistent frame corruption exhausted retries"),
            Self::PeerGone => write!(f, "peer disconnected mid-session"),
            Self::Timeout => write!(f, "peer silent; retry budget exhausted"),
            Self::Persist(msg) => write!(f, "cannot persist progress: {msg}"),
        }
    }
}

impl std::error::Error for SyncError {}

/// Result of a session.
#[derive(Debug, Clone)]
pub struct SyncOutcome {
    /// The client's reconstruction of the server's file (always exact —
    /// residual hash failures trigger the full-file fallback).
    pub reconstructed: Vec<u8>,
    /// Cost and per-level statistics.
    pub stats: SyncStats,
    /// Whether the whole-file fallback fired.
    pub fell_back: bool,
}

/// One logical message part with its accounting phase. The payload is
/// a refcounted [`FrameBuf`]: freshly composed parts own their bytes,
/// parts parsed from a received frame are zero-copy views of it.
#[derive(Debug)]
pub(crate) struct Part {
    pub(crate) phase: Phase,
    pub(crate) payload: FrameBuf,
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SState {
    AwaitCandidates,
    AwaitBatch,
    AwaitMaybeResend,
    Done,
}

/// The server's protocol state for one file. The served file's bytes
/// are *not* owned here: every entry point takes them as a parameter,
/// so a daemon can share one in-memory collection read-only across many
/// concurrent sessions. The caller must pass the same bytes on every
/// call.
pub(crate) struct ServerSession {
    cfg: ProtocolConfig,
    coverage: Coverage,
    known_hashes: HashSet<(u64, u64)>,
    global_bits: u32,
    /// Virtual round index: `level * 2 + subround` (subround 0 = the
    /// continuation phase of two-phase rounds, 1 = the global phase or
    /// the whole single-phase round).
    vidx: u32,
    /// Probe regions of the pending continuation subround, excluded
    /// from the same level's global subround (paper §5.4).
    excluded: Coverage,
    excluded_level: Option<u32>,
    items: Vec<Item>,
    /// Item indices the client flagged as candidates, in item order.
    candidates: Vec<usize>,
    verify: Option<VerifyState>,
    /// Cross-session hash-cache handle; `None` outside a daemon (each
    /// hash is then computed directly, exactly as before the cache).
    cache: Option<SessionCache>,
    /// Full-width digests of the previous partition round's blocks,
    /// kept so this round's halves can be derived arithmetically
    /// (parent minus sibling — the decomposable property) instead of
    /// rescanned. Replaced wholesale each partition round: one level
    /// of parents is all derivation ever needs.
    level_digests: HashMap<(u64, u64), DecomposableDigest>,
    pub(crate) state: SState,
}

impl ServerSession {
    pub(crate) fn new(cfg: ProtocolConfig) -> Self {
        Self {
            cfg,
            coverage: Coverage::new(),
            known_hashes: HashSet::new(),
            global_bits: 0,
            vidx: 0,
            excluded: Coverage::new(),
            excluded_level: None,
            items: Vec::new(),
            candidates: Vec::new(),
            verify: None,
            cache: None,
            level_digests: HashMap::new(),
            state: SState::Done,
        }
    }

    /// A session whose map-phase hash work (block digests, verification
    /// hashes) is memoized in a shared [`SessionCache`], and whose
    /// served-file fingerprint is taken precomputed from the handle
    /// instead of rehashed per session.
    pub(crate) fn with_cache(cfg: ProtocolConfig, cache: SessionCache) -> Self {
        let mut s = Self::new(cfg);
        s.cache = Some(cache);
        s
    }

    pub(crate) fn on_request(
        &mut self,
        new: &[u8],
        payload: &[u8],
    ) -> Result<Vec<Part>, SyncError> {
        let mut r = BitReader::new(payload);
        let old_len = r.read_varint().map_err(|_| SyncError::Desync("request len"))?;
        let mut old_fp = [0u8; 16];
        for b in old_fp.iter_mut() {
            *b = r.read_bits(8).map_err(|_| SyncError::Desync("request fp"))? as u8;
        }
        let new_fp = match &self.cache {
            Some(c) => c.file_fingerprint(),
            None => file_fingerprint(new),
        };
        let mut setup = BitWriter::new();
        if old_fp == new_fp.0 {
            setup.write_bit(true); // unchanged
            self.state = SState::Done;
            return Ok(vec![Part { phase: Phase::Setup, payload: setup.into_bytes().into() }]);
        }
        setup.write_bit(false);
        setup.write_varint(new.len() as u64);
        for &b in &new_fp.0 {
            setup.write_bits(b as u64, 8);
        }
        self.global_bits = global_hash_bits(old_len, self.cfg.global_extra_bits);
        let mut parts = vec![Part { phase: Phase::Setup, payload: setup.into_bytes().into() }];
        parts.extend(self.advance(new));
        Ok(parts)
    }

    /// Move to the next (sub)round with items, or the delta phase, and
    /// emit the corresponding part.
    fn advance(&mut self, new: &[u8]) -> Vec<Part> {
        let total = self.cfg.total_levels() * 2;
        while self.vidx < total {
            let vidx = self.vidx;
            self.vidx += 1;
            let Some((items, level, sub)) = round_items(
                &self.cfg,
                &self.coverage,
                &self.known_hashes,
                new.len() as u64,
                vidx,
                &self.excluded,
                self.excluded_level,
            ) else {
                continue;
            };
            items::extend_known_hashes(&mut self.known_hashes, &items);
            if self.cfg.cont_first_phase && sub == 0 {
                // Remember this subround's probe regions for the global
                // subround of the same level.
                let mut excl = Coverage::new();
                for it in &items {
                    excl.insert(it.new_off, it.len);
                }
                self.excluded = excl;
                self.excluded_level = Some(level);
            }
            let mut w = BitWriter::new();
            w.write_varint(vidx as u64 + 1);
            self.write_round_hashes(new, &items, &mut w);
            self.items = items;
            self.state = SState::AwaitCandidates;
            return vec![Part { phase: Phase::Map, payload: w.into_bytes().into() }];
        }
        // Delta phase: reference = known areas in new-file order.
        let mut reference = Vec::with_capacity(self.coverage.covered_bytes() as usize);
        for &(s, e) in self.coverage.intervals() {
            reference.extend_from_slice(&new[s as usize..e as usize]);
        }
        let delta = msync_compress::delta_encode(&reference, new);
        let mut w = BitWriter::new();
        w.write_varint(0);
        let mut payload = w.into_bytes();
        payload.extend_from_slice(&delta);
        self.state = SState::AwaitMaybeResend;
        vec![Part { phase: Phase::Delta, payload: payload.into() }]
    }

    /// Write one round's hash bits, batching digest work across the
    /// round's sibling ranges instead of rescanning every range: a
    /// partition block whose parent was digested last round and whose
    /// sibling is already in hand this round is derived arithmetically
    /// rather than scanned, so each round costs at most one pass over
    /// the round's uncovered slice — and usually half of one.
    /// Suppressed siblings (never transmitted) are derived the same way
    /// at zero scan cost, so the *next* round finds their digests as
    /// parents. Derivation is exact mod 2³², so the wire bits are
    /// byte-identical to the scanned ones.
    fn write_round_hashes(&mut self, new: &[u8], items: &[Item], w: &mut BitWriter) {
        let mut level: HashMap<(u64, u64), DecomposableDigest> = HashMap::new();
        let mut pending: Vec<&Item> = Vec::new();
        for it in items {
            let bits = it.wire_bits(&self.cfg, self.global_bits);
            if bits == 0 {
                if matches!(it.kind, ItemKind::Global { .. }) {
                    pending.push(it);
                }
                continue;
            }
            let digest = if matches!(it.kind, ItemKind::Cont { .. }) {
                // Probes sit at arbitrary offsets — never on the block
                // grid, so they neither derive nor serve as parents.
                self.scan_digest(new, it.new_off, it.len)
            } else {
                let d = self.block_digest(new, &level, it.new_off, it.len);
                level.insert((it.new_off, it.len), d);
                d
            };
            w.write_bits(digest.prefix(bits), bits);
        }
        // Suppressed siblings: with the transmitted half and the parent
        // both in hand, their digests cost nothing now and would cost a
        // full scan next round.
        for it in pending {
            if let Some(d) = self.derive_digest(&level, it.new_off, it.len) {
                if let Some(c) = &self.cache {
                    c.note_derived(it.new_off, it.len, d);
                }
                level.insert((it.new_off, it.len), d);
            }
        }
        // Continuation-only subrounds leave `level` empty and must not
        // wipe the parents the same level's global subround will need.
        if !level.is_empty() {
            self.level_digests = level;
        }
    }

    /// Digest of one partition block: sibling derivation first (free),
    /// then the shared cache, then a metered scan. Derivation comes
    /// first so the hit/miss accounting of a warm session mirrors the
    /// miss accounting of the cold one exactly — the derivation
    /// decision depends only on session-local state, never on cache
    /// temperature.
    fn block_digest(
        &self,
        new: &[u8],
        level: &HashMap<(u64, u64), DecomposableDigest>,
        off: u64,
        len: u64,
    ) -> DecomposableDigest {
        if let Some(d) = self.derive_digest(level, off, len) {
            if let Some(c) = &self.cache {
                c.note_derived(off, len, d);
            }
            return d;
        }
        if let Some(hit) = self.cache.as_ref().and_then(|c| c.cached_range(off, len)) {
            return hit;
        }
        self.scan_digest(new, off, len)
    }

    /// Digest of `new[off..off + len]` by decomposition: the parent
    /// block digested last round minus the sibling digested this
    /// round. `None` when either half of that equation is missing —
    /// the caller falls back to other sources.
    fn derive_digest(
        &self,
        level: &HashMap<(u64, u64), DecomposableDigest>,
        off: u64,
        len: u64,
    ) -> Option<DecomposableDigest> {
        if len == 0 || !len.is_power_of_two() {
            return None; // tail blocks pair with nothing
        }
        let parent_off = off & !(2 * len - 1);
        let parent = self.level_digests.get(&(parent_off, 2 * len))?;
        let is_right = off == parent_off + len;
        let sibling_off = if is_right { parent_off } else { parent_off + len };
        let sibling = level.get(&(sibling_off, len))?;
        if is_right {
            parent.decompose_right(sibling)
        } else {
            parent.decompose_left(sibling)
        }
    }

    /// Metered scan of `new[off..off + len]` — through the shared
    /// cache when present, directly otherwise.
    fn scan_digest(&self, new: &[u8], off: u64, len: u64) -> DecomposableDigest {
        match &self.cache {
            Some(c) => c.range_digest(new, off, len),
            None => DecomposableDigest::of(&new[off as usize..(off + len) as usize]),
        }
    }

    pub(crate) fn on_client(&mut self, new: &[u8], parts: &[Part]) -> Result<Vec<Part>, SyncError> {
        let part = parts.first().ok_or(SyncError::Desync("empty client message"))?;
        match self.state {
            SState::AwaitCandidates => self.on_candidates(new, &part.payload),
            SState::AwaitBatch => self.on_batch(new, &part.payload),
            SState::AwaitMaybeResend => Ok(self.on_resend(new)),
            SState::Done => Err(SyncError::Desync("client message after completion")),
        }
    }

    fn on_candidates(&mut self, new: &[u8], payload: &[u8]) -> Result<Vec<Part>, SyncError> {
        let mut r = BitReader::new(payload);
        let mut candidates = Vec::new();
        for i in 0..self.items.len() {
            if r.read_bit().map_err(|_| SyncError::Desync("candidate bitmap"))? {
                candidates.push(i);
            }
        }
        self.candidates = candidates;
        let verify = VerifyState::new(&self.cfg.verify, self.candidates.len());
        self.verify = Some(verify);
        self.check_groups(new, &mut r)
    }

    fn on_batch(&mut self, new: &[u8], payload: &[u8]) -> Result<Vec<Part>, SyncError> {
        let mut r = BitReader::new(payload);
        self.check_groups(new, &mut r)
    }

    /// Read the current batch's group hashes from `r`, evaluate them,
    /// and reply with the results bitmap (+ the next round when done).
    fn check_groups(&mut self, new: &[u8], r: &mut BitReader<'_>) -> Result<Vec<Part>, SyncError> {
        let verify =
            self.verify.as_mut().ok_or(SyncError::Desync("server verify state missing"))?;
        if verify.is_trivially_done() {
            // No candidates at all: nothing to verify, no results bitmap.
            self.verify = None;
            return Ok(self.advance(new));
        }
        let bits = verify.batch_config().bits;
        let mut results = Vec::with_capacity(verify.groups().len());
        let mut w = BitWriter::new();
        for group in verify.groups() {
            let sent = r.read_bits(bits).map_err(|_| SyncError::Desync("group hash"))?;
            let ranges: Vec<(u64, u64)> = group
                .iter()
                .map(|&cand| {
                    let it = &self.items[self.candidates[cand]];
                    (it.new_off, it.len)
                })
                .collect();
            let ours = match &self.cache {
                Some(c) => c.group_hash(new, &ranges, bits),
                None => {
                    let mut buf = Vec::new();
                    for &(off, len) in &ranges {
                        buf.extend_from_slice(&new[off as usize..(off + len) as usize]);
                    }
                    Md5::digest_bits(&buf, bits)
                }
            };
            let passed = ours == sent;
            results.push(passed);
            w.write_bit(passed);
        }
        let outcome = verify.apply_results(&results);
        let mut parts = vec![Part { phase: Phase::Map, payload: w.into_bytes().into() }];
        match outcome {
            StepOutcome::NextBatch => {
                self.state = SState::AwaitBatch;
            }
            StepOutcome::Done => {
                let verify =
                    self.verify.take().ok_or(SyncError::Desync("server verify state missing"))?;
                for &cand in verify.confirmed() {
                    let it = &self.items[self.candidates[cand]];
                    self.coverage.insert(it.new_off, it.len);
                }
                parts.extend(self.advance(new));
            }
        }
        Ok(parts)
    }

    fn on_resend(&mut self, new: &[u8]) -> Vec<Part> {
        self.state = SState::Done;
        vec![Part { phase: Phase::Delta, payload: msync_compress::compress(new).into() }]
    }
}

/// Items of virtual round `vidx`, or `None` when the subround is empty
/// or skipped. Pure function of shared state — both sides call it.
#[allow(clippy::too_many_arguments)]
fn round_items(
    cfg: &ProtocolConfig,
    coverage: &Coverage,
    known_hashes: &HashSet<(u64, u64)>,
    new_len: u64,
    vidx: u32,
    excluded: &Coverage,
    excluded_level: Option<u32>,
) -> Option<(Vec<Item>, u32, u32)> {
    let level = vidx / 2;
    let sub = vidx % 2;
    let empty = Coverage::new();
    let (phase, excl) = if cfg.cont_first_phase {
        if sub == 0 {
            (items::RoundPhase::ContOnly, &empty)
        } else {
            let excl = if excluded_level == Some(level) { excluded } else { &empty };
            (items::RoundPhase::Global, excl)
        }
    } else {
        if sub == 0 {
            return None; // single-phase rounds use only subround 1
        }
        (items::RoundPhase::Combined, &empty)
    };
    let items = items::enumerate_phase(cfg, coverage, known_hashes, new_len, level, phase, excl);
    (!items.is_empty()).then_some((items, level, sub))
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the states genuinely all await something
enum CState {
    AwaitSetup,
    AwaitSection,
    AwaitResults,
    AwaitFull,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    item_idx: usize,
    old_pos: u64,
}

pub(crate) enum ClientAction {
    Reply(Vec<Part>),
    Done { data: Vec<u8>, fell_back: bool },
}

pub(crate) struct ClientSession<'a> {
    old: &'a [u8],
    cfg: &'a ProtocolConfig,
    coverage: Coverage,
    known_hashes: HashSet<(u64, u64)>,
    /// Transmitted or derived global hash prefixes, for decomposition.
    hash_store: HashMap<(u64, u64), u64>,
    pub(crate) map: FileMap,
    global_bits: u32,
    new_len: u64,
    new_fp: [u8; 16],
    items: Vec<Item>,
    candidates: Vec<Candidate>,
    verify: Option<VerifyState>,
    state: CState,
    pub(crate) levels: Vec<LevelStats>,
    pub(crate) delta_bytes: u64,
    /// Cached position index for the current level's window size.
    index: Option<PositionIndex>,
    /// Mirror of the server's §5.4 subround bookkeeping.
    excluded: Coverage,
    excluded_level: Option<u32>,
    /// Trace recorder (off unless the driver attached one) and the
    /// session's roster index for event attribution.
    pub(crate) recorder: Recorder,
    pub(crate) file_id: u64,
}

impl<'a> ClientSession<'a> {
    pub(crate) fn new(old: &'a [u8], cfg: &'a ProtocolConfig) -> Self {
        Self {
            old,
            cfg,
            coverage: Coverage::new(),
            known_hashes: HashSet::new(),
            hash_store: HashMap::new(),
            map: FileMap::new(),
            global_bits: global_hash_bits(old.len() as u64, cfg.global_extra_bits),
            new_len: 0,
            new_fp: [0; 16],
            items: Vec::new(),
            candidates: Vec::new(),
            verify: None,
            state: CState::AwaitSetup,
            levels: Vec::new(),
            delta_bytes: 0,
            index: None,
            excluded: Coverage::new(),
            excluded_level: None,
            recorder: Recorder::off(),
            file_id: 0,
        }
    }

    pub(crate) fn request(&self) -> Part {
        let mut w = BitWriter::new();
        w.write_varint(self.old.len() as u64);
        for &b in &file_fingerprint(self.old).0 {
            w.write_bits(b as u64, 8);
        }
        Part { phase: Phase::Setup, payload: w.into_bytes().into() }
    }

    pub(crate) fn handle(&mut self, parts: Vec<Part>) -> Result<ClientAction, SyncError> {
        let mut reply: Vec<Part> = Vec::new();
        for part in parts {
            match self.state {
                CState::AwaitSetup => {
                    let mut r = BitReader::new(&part.payload);
                    let unchanged = r.read_bit().map_err(|_| SyncError::Desync("setup flag"))?;
                    if unchanged {
                        return Ok(ClientAction::Done {
                            data: self.old.to_vec(),
                            fell_back: false,
                        });
                    }
                    self.new_len = r.read_varint().map_err(|_| SyncError::Desync("new len"))?;
                    for b in self.new_fp.iter_mut() {
                        *b = r.read_bits(8).map_err(|_| SyncError::Desync("new fp"))? as u8;
                    }
                    self.state = CState::AwaitSection;
                }
                CState::AwaitSection => {
                    let mut r = BitReader::new(&part.payload);
                    let tag = r.read_varint().map_err(|_| SyncError::Desync("section tag"))?;
                    if tag == 0 {
                        // Delta: the rest of the payload (byte-aligned —
                        // a zero varint is exactly one byte).
                        let delta = &part.payload[1..];
                        self.delta_bytes = delta.len() as u64;
                        self.recorder.record(EventKind::DeltaPhase {
                            file_id: self.file_id,
                            delta_bytes: self.delta_bytes,
                        });
                        let reference = self.map.reference_from_old(self.old);
                        let result = msync_compress::delta_decode(&reference, delta)
                            .ok()
                            .filter(|out| file_fingerprint(out).0 == self.new_fp);
                        match result {
                            Some(data) => return Ok(ClientAction::Done { data, fell_back: false }),
                            None => {
                                // Residual weak-hash failure: request the
                                // whole file.
                                let mut w = BitWriter::new();
                                w.write_bit(true);
                                self.state = CState::AwaitFull;
                                return Ok(ClientAction::Reply(vec![Part {
                                    phase: Phase::Delta,
                                    payload: w.into_bytes().into(),
                                }]));
                            }
                        }
                    }
                    let vidx = (tag - 1) as u32;
                    if vidx >= self.cfg.total_levels() * 2 {
                        return Err(SyncError::Desync("round out of range"));
                    }
                    reply.push(self.process_round(vidx, &mut r)?);
                    self.state = if self.verify.as_ref().is_some_and(|v| !v.is_trivially_done()) {
                        CState::AwaitResults
                    } else {
                        // Zero candidates: the server advances without a
                        // results bitmap.
                        self.verify = None;
                        CState::AwaitSection
                    };
                }
                CState::AwaitResults => {
                    let mut r = BitReader::new(&part.payload);
                    let verify = self
                        .verify
                        .as_mut()
                        .ok_or(SyncError::Desync("client verify state missing"))?;
                    let mut results = Vec::with_capacity(verify.groups().len());
                    for _ in 0..verify.groups().len() {
                        results
                            .push(r.read_bit().map_err(|_| SyncError::Desync("results bitmap"))?);
                    }
                    match verify.apply_results(&results) {
                        StepOutcome::NextBatch => {
                            let part = self.compose_batch()?;
                            reply.push(part);
                        }
                        StepOutcome::Done => {
                            let verify = self
                                .verify
                                .take()
                                .ok_or(SyncError::Desync("client verify state missing"))?;
                            let mut confirmed_count = 0u64;
                            for &cand in verify.confirmed() {
                                let c = self.candidates[cand];
                                let it = &self.items[c.item_idx];
                                self.coverage.insert(it.new_off, it.len);
                                self.map.insert(Segment {
                                    new_off: it.new_off,
                                    old_off: c.old_pos,
                                    len: it.len,
                                });
                                confirmed_count += 1;
                            }
                            if let Some(stats) = self.levels.last_mut() {
                                stats.confirmed += confirmed_count as usize;
                            }
                            self.recorder.record(EventKind::VerifyBatch {
                                file_id: self.file_id,
                                candidates: self.candidates.len() as u64,
                                confirmed: confirmed_count,
                            });
                            self.state = CState::AwaitSection;
                        }
                    }
                }
                CState::AwaitFull => {
                    let data = msync_compress::decompress(&part.payload)
                        .map_err(|_| SyncError::Desync("fallback stream"))?;
                    return Ok(ClientAction::Done { data, fell_back: true });
                }
            }
        }
        Ok(ClientAction::Reply(reply))
    }

    /// Parse one (sub)round's hashes, find candidates, and compose the
    /// candidate bitmap + first verification batch.
    fn process_round(&mut self, vidx: u32, r: &mut BitReader<'_>) -> Result<Part, SyncError> {
        let round_t0 = self.recorder.now_micros();
        let level = vidx / 2;
        let d = self.cfg.block_size_at(level) as u64;
        let Some((items, _, sub)) = round_items(
            self.cfg,
            &self.coverage,
            &self.known_hashes,
            self.new_len,
            vidx,
            &self.excluded,
            self.excluded_level,
        ) else {
            return Err(SyncError::Desync("server sent hashes for an empty round"));
        };
        items::extend_known_hashes(&mut self.known_hashes, &items);
        if self.cfg.cont_first_phase && sub == 0 {
            let mut excl = Coverage::new();
            for it in &items {
                excl.insert(it.new_off, it.len);
            }
            self.excluded = excl;
            self.excluded_level = Some(level);
        }

        // Lazy per-level position index for full-size global lookups.
        let needs_index =
            items.iter().any(|it| matches!(it.kind, ItemKind::Global { .. }) && it.len == d);
        if needs_index {
            let rebuild = self.index.as_ref().is_none_or(|ix| ix.window() != d as usize);
            if rebuild {
                self.index = Some(PositionIndex::build(
                    self.old,
                    d as usize,
                    self.global_bits,
                    self.cfg.max_positions_per_hash,
                ));
            }
        }

        let mut stats = LevelStats {
            block_size: d as usize,
            items: items.len(),
            cont_items: 0,
            local_items: 0,
            suppressed: 0,
            candidates: 0,
            confirmed: 0,
            wall_us: 0,
            retransmits: 0,
        };

        let mut candidates = Vec::new();
        let mut bitmap = BitWriter::new();
        for (i, it) in items.iter().enumerate() {
            let found = match it.kind {
                ItemKind::Cont { side, anchor_edge } => {
                    stats.cont_items += 1;
                    let value = r
                        .read_bits(self.cfg.cont_bits)
                        .map_err(|_| SyncError::Desync("cont hash"))?;
                    self.probe_position(side, anchor_edge, it.len).filter(|&pos| {
                        matches_at(self.old, pos as i64, it.len as usize, self.cfg.cont_bits, value)
                    })
                }
                ItemKind::Local => {
                    stats.local_items += 1;
                    let value = r
                        .read_bits(self.cfg.local_bits)
                        .map_err(|_| SyncError::Desync("local hash"))?;
                    self.local_scan(it, value)
                }
                ItemKind::Global { suppressed } => {
                    let value = match suppressed {
                        None => {
                            let v = r
                                .read_bits(self.global_bits)
                                .map_err(|_| SyncError::Desync("global hash"))?;
                            Some(v)
                        }
                        Some(der) => {
                            stats.suppressed += 1;
                            self.derive_hash(it, der)
                        }
                    };
                    match value {
                        None => None,
                        Some(v) => {
                            self.hash_store.insert((it.new_off, it.len), v);
                            self.global_lookup(it, v, d)
                        }
                    }
                }
            };
            match found {
                Some(pos) => {
                    bitmap.write_bit(true);
                    candidates.push(Candidate { item_idx: i, old_pos: pos });
                }
                None => bitmap.write_bit(false),
            }
        }
        stats.candidates = candidates.len();
        if self.recorder.is_enabled() {
            stats.wall_us = self.recorder.now_micros().saturating_sub(round_t0);
            self.recorder.observe(HistKind::RoundDuration, stats.wall_us);
            self.recorder.record(EventKind::MapRound {
                file_id: self.file_id,
                block_size: d,
                items: stats.items as u64,
                candidates: stats.candidates as u64,
            });
        }
        self.levels.push(stats);
        self.items = items;
        self.candidates = candidates;
        let verify = VerifyState::new(&self.cfg.verify, self.candidates.len());
        self.verify = Some(verify);

        // Compose bitmap + batch-1 hashes in one part.
        let mut payload = bitmap;
        self.write_group_hashes(&mut payload)?;
        Ok(Part { phase: Phase::Map, payload: payload.into_bytes().into() })
    }

    fn compose_batch(&mut self) -> Result<Part, SyncError> {
        let mut w = BitWriter::new();
        self.write_group_hashes(&mut w)?;
        Ok(Part { phase: Phase::Map, payload: w.into_bytes().into() })
    }

    fn write_group_hashes(&mut self, w: &mut BitWriter) -> Result<(), SyncError> {
        let verify =
            self.verify.as_ref().ok_or(SyncError::Desync("client verify state missing"))?;
        let bits = if verify.is_trivially_done() { 0 } else { verify.batch_config().bits };
        for group in verify.groups() {
            let mut buf = Vec::new();
            for &cand in group {
                let c = self.candidates[cand];
                let it = &self.items[c.item_idx];
                buf.extend_from_slice(&self.old[c.old_pos as usize..(c.old_pos + it.len) as usize]);
            }
            w.write_bits(Md5::digest_bits(&buf, bits), bits);
        }
        Ok(())
    }

    /// Predicted old-file position of a continuation probe.
    fn probe_position(&self, side: Side, anchor_edge: u64, len: u64) -> Option<u64> {
        match side {
            Side::Left => {
                let seg = self.map.segment_at(anchor_edge)?;
                let old_at_edge = seg.old_off + (anchor_edge - seg.new_off);
                old_at_edge.checked_sub(len)
            }
            Side::Right => {
                let seg = self.map.segment_at(anchor_edge.checked_sub(1)?)?;
                let old_at_edge = seg.old_off + (anchor_edge - seg.new_off);
                (old_at_edge + len <= self.old.len() as u64).then_some(old_at_edge)
            }
        }
    }

    /// Neighborhood scan for a local hash.
    fn local_scan(&self, it: &Item, value: u64) -> Option<u64> {
        let seg = self.nearest_segment(it.new_off)?;
        let predicted = seg.old_off as i64 + (it.new_off as i64 - seg.new_off as i64);
        let w = (self.cfg.local_range_blocks * it.len) as i64;
        scan_neighborhood(
            self.old,
            predicted - w,
            predicted + w + it.len as i64,
            it.len as usize,
            self.cfg.local_bits,
            value,
        )
    }

    fn nearest_segment(&self, new_off: u64) -> Option<&Segment> {
        let segs = self.map.segments();
        if segs.is_empty() {
            return None;
        }
        let idx = segs.partition_point(|s| s.new_off <= new_off);
        let after = segs.get(idx);
        let before = idx.checked_sub(1).and_then(|i| segs.get(i));
        match (before, after) {
            (Some(b), Some(a)) => {
                let db = new_off.saturating_sub(b.new_end());
                let da = a.new_off.saturating_sub(new_off);
                Some(if db <= da { b } else { a })
            }
            (Some(b), None) => Some(b),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }

    /// Derive a suppressed sibling hash from the parent's and sibling's
    /// prefixes (paper §5.5). Returns `None` when bookkeeping is missing —
    /// which would be a desync, surfaced as a lost candidate only.
    fn derive_hash(&self, it: &Item, der: crate::items::Derivation) -> Option<u64> {
        let parent = *self.hash_store.get(&(der.parent_off, it.len * 2))?;
        let sibling = match self.hash_store.get(&(der.sibling_off, it.len)) {
            Some(&v) => v,
            None => {
                // Sibling bytes fully known: compute its prefix directly.
                let bytes = self.map.bytes_for_new_range(self.old, der.sibling_off, it.len)?;
                DecomposableDigest::of(&bytes).prefix(self.global_bits)
            }
        };
        Some(if der.is_right {
            prefix_decompose_right(parent, sibling, self.global_bits, it.len)
        } else {
            prefix_decompose_left(parent, sibling, self.global_bits, it.len)
        })
    }

    /// Look up a global hash in the position index (full-size blocks) or
    /// by direct scan (the tail block's odd length).
    fn global_lookup(&self, it: &Item, value: u64, d: u64) -> Option<u64> {
        if it.len == d {
            let index = self.index.as_ref()?;
            index.lookup(value).first().map(|&p| p as u64)
        } else {
            scan_neighborhood(
                self.old,
                0,
                self.old.len() as i64,
                it.len as usize,
                self.global_bits,
                value,
            )
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Options for [`sync_file_with`] — the one entry point behind the
/// historical `sync_file`/`sync_file_traced`/`sync_over_channel*`
/// sprawl.
///
/// The default runs the single-threaded lockstep driver untraced: the
/// two sessions exchange messages in-process with analytic byte
/// accounting, and a run under a deterministic `ManualClock` produces a
/// byte-identical journal every time. Setting `channel` switches to the
/// deployment shape: a real duplex [`Endpoint`] pair with the server on
/// its own thread, ARQ recovery, and wire-level accounting (framing,
/// checksums, retransmissions) from the channel itself.
#[derive(Debug, Clone, Default)]
pub struct SyncOptions {
    /// Trace recorder; [`Recorder::off()`] (the default) disables
    /// tracing. When enabled, the driver emits session/round span
    /// events and mirrors every byte it charges as a frame event, so
    /// the journal's per-(direction, phase) sums equal the returned
    /// `TrafficStats` exactly.
    pub recorder: Recorder,
    /// Roster index stamped on this session's trace events (the
    /// pipelined collection client syncs many files over one
    /// connection; each session's events carry its own id).
    pub file_id: u64,
    /// `Some` runs over a real in-memory channel (optionally with
    /// injected faults) instead of the lockstep driver.
    pub channel: Option<ChannelOptions>,
}

/// Synchronize one file: the client holds `old`, the server holds `new`;
/// returns the client's (always exact) reconstruction plus cost stats.
pub fn sync_file(old: &[u8], new: &[u8], cfg: &ProtocolConfig) -> Result<SyncOutcome, SyncError> {
    sync_file_with(old, new, cfg, &SyncOptions::default())
}

/// [`sync_file`] under explicit [`SyncOptions`]: tracing, trace file
/// id, and the choice of lockstep or real-channel execution.
pub fn sync_file_with(
    old: &[u8],
    new: &[u8],
    cfg: &ProtocolConfig,
    opts: &SyncOptions,
) -> Result<SyncOutcome, SyncError> {
    match &opts.channel {
        None => sync_file_lockstep(old, new, cfg, &opts.recorder, opts.file_id),
        Some(ch) => sync_channel_inner(old, new, cfg, ch, &opts.recorder, opts.file_id),
    }
}

fn sync_file_lockstep(
    old: &[u8],
    new: &[u8],
    cfg: &ProtocolConfig,
    rec: &Recorder,
    file_id: u64,
) -> Result<SyncOutcome, SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let session_t0 = rec.now_micros();
    rec.record(EventKind::SessionStart { file_id });
    let mut client = ClientSession::new(old, cfg);
    client.recorder = rec.clone();
    client.file_id = file_id;
    let mut server = ServerSession::new(cfg.clone());
    let mut traffic = TrafficStats::new();

    let req = client.request();
    let req_wire = frame_wire_size(req.payload.len());
    traffic.record(Direction::ClientToServer, req.phase, req_wire);
    rec.record(EventKind::FrameSend { dir: DirTag::C2s, phase: req.phase.into(), bytes: req_wire });
    let mut parts = server.on_request(new, &req.payload)?;
    let mut roundtrips = 1u32;

    loop {
        // One loop iteration is one exchange: the server's message plus
        // (unless the session ends) the client's reply.
        let mut exchange_bytes = 0u64;
        for p in &parts {
            let wire = frame_wire_size(p.payload.len());
            traffic.record(Direction::ServerToClient, p.phase, wire);
            rec.record(EventKind::FrameRecv {
                dir: DirTag::S2c,
                phase: p.phase.into(),
                bytes: wire,
            });
            exchange_bytes += wire;
        }
        match client.handle(parts)? {
            ClientAction::Done { data, fell_back } => {
                if rec.is_enabled() {
                    rec.observe(HistKind::BytesPerRound, exchange_bytes);
                    rec.observe(
                        HistKind::SessionDuration,
                        rec.now_micros().saturating_sub(session_t0),
                    );
                }
                rec.record(EventKind::SessionEnd { file_id, ok: true, fell_back });
                traffic.roundtrips = roundtrips;
                let stats = SyncStats {
                    traffic,
                    levels: client.levels,
                    known_bytes: client.map.known_bytes(),
                    delta_bytes: client.delta_bytes,
                };
                return Ok(SyncOutcome { reconstructed: data, stats, fell_back });
            }
            ClientAction::Reply(cparts) => {
                if cparts.is_empty() {
                    return Err(SyncError::Desync("client had nothing to say"));
                }
                for p in &cparts {
                    let wire = frame_wire_size(p.payload.len());
                    traffic.record(Direction::ClientToServer, p.phase, wire);
                    rec.record(EventKind::FrameSend {
                        dir: DirTag::C2s,
                        phase: p.phase.into(),
                        bytes: wire,
                    });
                    exchange_bytes += wire;
                }
                if rec.is_enabled() {
                    rec.observe(HistKind::BytesPerRound, exchange_bytes);
                }
                roundtrips += 1;
                parts = server.on_client(new, &cparts)?;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Transport drivers (blocking pumps over the sans-IO engine)
// ---------------------------------------------------------------------
//
// The ARQ wire format and its stop-and-wait recovery live in
// `crate::engine::arq`; the session machines in `crate::engine` own all
// protocol state. What remains here is the blocking shape: a pump loop
// that executes a machine's effects against a `Transport`, sleeping in
// `recv_timeout` until the machine's next deadline.

/// Map a transport-level send failure to the session error it implies.
/// (The in-memory channel never fails a send; a TCP transport reports a
/// closed or wedged socket here.)
pub(crate) fn channel_to_sync(e: ChannelError) -> SyncError {
    match e {
        ChannelError::Timeout => SyncError::Timeout,
        ChannelError::Disconnected => SyncError::PeerGone,
        ChannelError::Corrupt(_) => SyncError::FrameCorrupt,
    }
}

/// Drive `m` over `t` until it finishes: transmit queued frames,
/// attribute inbound bytes, and on `Wait` block in `recv_timeout` until
/// a frame arrives or the machine's deadline passes. `clock` supplies
/// the `now_us` timeline the machine's deadlines live on.
pub(crate) fn pump<M: Machine>(
    t: &mut dyn Transport,
    m: &mut M,
    ctx: &M::Ctx,
    clock: &SystemClock,
) -> Result<(), SyncError> {
    pump_with(t, m, ctx, clock, &mut |_| Ok(()))
}

/// [`pump`] with a durability hook: `after_input` runs after every
/// frame the machine absorbs (and once more when it finishes), which
/// is exactly when new progress can exist to persist. The checkpoint
/// writer drains completed files here without the machine itself
/// touching any I/O — the engine stays effect-pure.
pub(crate) fn pump_with<M: Machine>(
    t: &mut dyn Transport,
    m: &mut M,
    ctx: &M::Ctx,
    clock: &SystemClock,
    after_input: &mut dyn FnMut(&mut M) -> Result<(), SyncError>,
) -> Result<(), SyncError> {
    loop {
        match m.poll_output(clock.now_micros())? {
            Output::Transmit { frame, phase, retransmit } => {
                t.send(&frame, phase).map_err(channel_to_sync)?;
                if retransmit {
                    t.note_retransmits(1);
                }
            }
            Output::Attribute { phase } => t.attribute_inbound(phase),
            Output::Wait { deadline_us } => {
                let remaining = deadline_us.saturating_sub(clock.now_micros()).max(1);
                match t.recv_timeout(std::time::Duration::from_micros(remaining)) {
                    Ok(bytes) => {
                        m.on_frame(ctx, &bytes, clock.now_micros())?;
                        after_input(m)?;
                    }
                    // A bare expiry needs no machine call: the next
                    // `poll_output` observes the passed deadline.
                    Err(ChannelError::Timeout) => {}
                    Err(ChannelError::Corrupt(_)) => m.on_corrupt_frame(clock.now_micros())?,
                    Err(ChannelError::Disconnected) => m.on_disconnect()?,
                }
            }
            Output::Done => {
                after_input(m)?;
                return Ok(());
            }
        }
    }
}

/// Drive the client side of one file session over any [`Transport`]:
/// the peer must be running [`serve_file_transport`] (or the server
/// half of a daemon). Traffic accounting comes from the transport
/// itself, including framing, checksums, and retransmissions. Whenever
/// this returns `Ok`, the reconstruction is byte-exact; link failures
/// that outlast the retry budget surface as [`SyncError::Timeout`] /
/// [`SyncError::FrameCorrupt`] / [`SyncError::PeerGone`].
pub fn sync_file_transport(
    t: &mut dyn Transport,
    old: &[u8],
    cfg: &ProtocolConfig,
    retry: RetryPolicy,
) -> Result<SyncOutcome, SyncError> {
    sync_file_transport_as(t, old, cfg, retry, 0)
}

/// [`sync_file_transport`] with an explicit roster index for trace
/// attribution (the pipelined collection client syncs many files over
/// one connection; each session's events carry its own `file_id`).
pub fn sync_file_transport_as(
    t: &mut dyn Transport,
    old: &[u8],
    cfg: &ProtocolConfig,
    retry: RetryPolicy,
    file_id: u64,
) -> Result<SyncOutcome, SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let rec = t.recorder();
    let session_t0 = rec.now_micros();
    rec.record(EventKind::SessionStart { file_id });
    let clock = SystemClock::new();
    let mut machine =
        ClientMachine::new(old, cfg, retry, rec.clone(), file_id, clock.now_micros())?;
    let done = match pump(t, &mut machine, &(), &clock) {
        Ok(()) => machine.take_done().ok_or(SyncError::Desync("client machine finished empty")),
        Err(e) => Err(e),
    };
    let done = match done {
        Ok(done) => done,
        Err(e) => {
            rec.record(EventKind::SessionEnd { file_id, ok: false, fell_back: false });
            return Err(e);
        }
    };
    if rec.is_enabled() {
        rec.observe(HistKind::SessionDuration, rec.now_micros().saturating_sub(session_t0));
    }
    rec.record(EventKind::SessionEnd { file_id, ok: true, fell_back: done.fell_back });
    let stats = SyncStats {
        traffic: t.stats(),
        levels: done.levels,
        known_bytes: done.known_bytes,
        delta_bytes: done.delta_bytes,
    };
    Ok(SyncOutcome { reconstructed: done.data, stats, fell_back: done.fell_back })
}

/// Drive the server side of one file session over any [`Transport`]:
/// answer a [`sync_file_transport`] client from `new`. Returns `Ok`
/// both on a completed session and when the client goes away (the
/// client side owns the verdict); errors are reserved for protocol
/// desyncs, which indicate a bug rather than link weather.
pub fn serve_file_transport(
    t: &mut dyn Transport,
    new: &[u8],
    cfg: &ProtocolConfig,
    retry: RetryPolicy,
) -> Result<(), SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let rec = t.recorder();
    let clock = SystemClock::new();
    let mut machine = ServerMachine::new(cfg, retry, rec, clock.now_micros())?;
    match pump(t, &mut machine, new, &clock) {
        Ok(()) => Ok(()),
        // Protocol desyncs indicate a bug and must surface; link
        // weather (the client vanished or went silent mid-send) is the
        // client's verdict to report, not ours.
        Err(e @ (SyncError::Desync(_) | SyncError::Config(_))) => Err(e),
        Err(_) => Ok(()),
    }
}

/// The channel-mode body of [`sync_file_with`]: run the protocol over
/// a real duplex [`Endpoint`] pair with the server on its own thread —
/// the deployment shape of the library, as opposed to [`sync_file`]'s
/// lockstep in-process driver. Byte accounting comes from the channel
/// itself, including checksums and retransmissions.
fn sync_channel_inner(
    old: &[u8],
    new: &[u8],
    cfg: &ProtocolConfig,
    opts: &ChannelOptions,
    recorder: &Recorder,
    file_id: u64,
) -> Result<SyncOutcome, SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let (mut client_ep, mut server_ep) = match &opts.fault_plan {
        Some(plan) => Endpoint::pair_with_faults(plan, opts.fault_seed),
        None => Endpoint::pair(),
    };
    if recorder.is_enabled() {
        // The endpoints share channel state, so one attach covers both.
        client_ep.set_recorder(recorder.clone());
    }

    let server_new = new.to_vec();
    let server_cfg = cfg.clone();
    let retry = opts.retry;
    let handle = std::thread::spawn(move || -> Result<(), SyncError> {
        serve_file_transport(&mut server_ep, &server_new, &server_cfg, retry)
    });

    let result = sync_file_transport_as(&mut client_ep, old, cfg, opts.retry, file_id);
    // Dropping the client endpoint is the hang-up signal that lets a
    // lingering server finish.
    drop(client_ep);
    let joined = handle.join().map_err(|_| SyncError::Desync("server thread panicked"));
    let outcome = result?;
    joined??;
    Ok(outcome)
}

#[cfg(test)]
mod digest_batch_tests {
    use super::*;
    use crate::snapshot::HashCache;
    use std::sync::Arc;

    fn cfg_three_levels() -> ProtocolConfig {
        ProtocolConfig {
            start_block: 128,
            min_block_global: 32,
            min_block_cont: 32,
            use_continuation: false,
            use_local: false,
            skip_sibling_of_matched: false,
            ..ProtocolConfig::default()
        }
    }

    fn corpus() -> Vec<u8> {
        (0..256u32).map(|i| (i.wrapping_mul(131) % 251) as u8).collect()
    }

    /// Drive three map rounds with no client matches and assert the
    /// emitted hash bits equal a per-range rescan of every transmitted
    /// item — derivation must be invisible on the wire.
    fn run_rounds(cfg: &ProtocolConfig, s: &mut ServerSession, new: &[u8]) {
        let cov = Coverage::new();
        let mut known = HashSet::new();
        for level in 0..3 {
            let items = items::enumerate(cfg, &cov, &known, new.len() as u64, level);
            let mut w = BitWriter::new();
            s.write_round_hashes(new, &items, &mut w);
            let mut reference = BitWriter::new();
            for it in &items {
                let bits = it.wire_bits(cfg, s.global_bits);
                if bits > 0 {
                    let d = DecomposableDigest::of(
                        &new[it.new_off as usize..(it.new_off + it.len) as usize],
                    );
                    reference.write_bits(d.prefix(bits), bits);
                }
            }
            assert_eq!(
                w.into_bytes(),
                reference.into_bytes(),
                "level {level}: derived wire bits must equal scanned wire bits"
            );
            items::extend_known_hashes(&mut known, &items);
        }
    }

    #[test]
    fn derived_wire_bits_match_scanned_wire_bits() {
        // Decomposable suppression off: every sibling is transmitted,
        // so right halves are derived *onto the wire* — the strongest
        // equality check.
        let cfg = ProtocolConfig { use_decomposable: false, ..cfg_three_levels() };
        let new = corpus();
        let mut s = ServerSession::new(cfg.clone());
        s.global_bits = 40;
        run_rounds(&cfg, &mut s, &new);
    }

    #[test]
    fn sibling_derivation_replaces_scans_and_is_metered() {
        let cfg = cfg_three_levels();
        let new = corpus();
        let rec = Recorder::system();
        let cache = SessionCache::new(
            Arc::new(HashCache::default()),
            file_fingerprint(&new),
            [0; 16],
            rec.clone(),
        );
        let mut s = ServerSession::with_cache(cfg.clone(), cache);
        s.global_bits = 40;
        run_rounds(&cfg, &mut s, &new);
        let m = rec.snapshot();
        // Level 0 scans both 128-byte blocks (no parents yet). Levels
        // 1 and 2 scan only the transmitted left halves; every right
        // half — suppressed on the wire — is derived from parent and
        // left sibling without touching the file.
        assert_eq!(m.hash_cache_miss_bytes, 256 + 128 + 128);
        assert_eq!(m.hash_cache_derived_bytes, 128 + 128);
        assert_eq!(m.hash_cache_derived, 2 + 4);
        assert_eq!(m.hash_cache_hits, 0, "a single cold session never hits");
    }
}

#[cfg(test)]
mod channel_tests {
    use super::*;
    use crate::engine::arq::{parse_frame, part_header};

    /// Channel-mode run through the one supported entry point.
    fn over_channel(
        old: &[u8],
        new: &[u8],
        cfg: &ProtocolConfig,
        channel: ChannelOptions,
    ) -> Result<SyncOutcome, SyncError> {
        sync_file_with(
            old,
            new,
            cfg,
            &SyncOptions { channel: Some(channel), ..SyncOptions::default() },
        )
    }

    fn blob(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn channel_run_matches_in_process_driver() {
        let old = blob(30_000, 3);
        let mut new = old.clone();
        new.splice(12_000..12_050, blob(200, 4));
        let cfg = ProtocolConfig::default();
        let a = sync_file(&old, &new, &cfg).unwrap();
        let b = over_channel(&old, &new, &cfg, ChannelOptions::default()).unwrap();
        assert_eq!(a.reconstructed, new);
        assert_eq!(b.reconstructed, new);
        // Same protocol content; the channel adds the ARQ header
        // (sequence + part-index varints + part header byte) per frame,
        // so totals agree within a few bytes per frame transmitted.
        let diff = b.stats.total_bytes().abs_diff(a.stats.total_bytes());
        let header_bound = 8 * b.stats.traffic.frames;
        assert!(
            diff <= header_bound,
            "channel {} vs driver {} (frames {})",
            b.stats.total_bytes(),
            a.stats.total_bytes(),
            b.stats.traffic.frames,
        );
        assert_eq!(b.stats.traffic.roundtrips, a.stats.traffic.roundtrips);
        assert_eq!(b.stats.levels, a.stats.levels);
        // A clean link never needs recovery.
        assert_eq!(b.stats.traffic.retransmits, 0);
    }

    #[test]
    fn channel_run_unchanged_file() {
        let data = blob(10_000, 5);
        let out = over_channel(&data, &data, &ProtocolConfig::default(), ChannelOptions::default())
            .unwrap();
        assert_eq!(out.reconstructed, data);
        assert!(out.stats.total_bytes() < 64, "got {}", out.stats.total_bytes());
    }

    #[test]
    fn channel_run_empty_to_full() {
        let new = blob(5_000, 6);
        let out =
            over_channel(b"", &new, &ProtocolConfig::default(), ChannelOptions::default()).unwrap();
        assert_eq!(out.reconstructed, new);
    }

    fn short_retry() -> msync_protocol::RetryPolicy {
        msync_protocol::RetryPolicy {
            timeout: std::time::Duration::from_millis(20),
            max_retries: 8,
            backoff_cap: std::time::Duration::from_millis(80),
        }
    }

    #[test]
    fn channel_run_survives_lossy_link() {
        let old = blob(24_000, 7);
        let mut new = old.clone();
        new.splice(4_000..4_100, blob(300, 8));
        let cfg = ProtocolConfig::default();
        let plan = msync_protocol::FaultPlan::profile("lossy").unwrap();
        let opts =
            ChannelOptions { retry: short_retry(), fault_plan: Some(plan), fault_seed: 0xFA17 };
        let out = over_channel(&old, &new, &cfg, opts).unwrap();
        assert_eq!(out.reconstructed, new);
    }

    #[test]
    fn channel_run_corruption_is_healed_or_typed() {
        let old = blob(16_000, 9);
        let new = blob(16_000, 10);
        let cfg = ProtocolConfig::default();
        let plan = msync_protocol::FaultPlan::profile("corrupt").unwrap();
        let opts = ChannelOptions { retry: short_retry(), fault_plan: Some(plan), fault_seed: 99 };
        match over_channel(&old, &new, &cfg, opts) {
            Ok(out) => assert_eq!(out.reconstructed, new),
            Err(
                SyncError::FrameCorrupt
                | SyncError::Timeout
                | SyncError::PeerGone
                | SyncError::Desync(_),
            ) => {}
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }

    #[test]
    fn channel_run_disconnect_surfaces_typed_error() {
        let old = blob(20_000, 11);
        let new = blob(20_000, 12);
        let cfg = ProtocolConfig::default();
        let plan = msync_protocol::FaultPlan::profile("disconnect").unwrap();
        let opts = ChannelOptions { retry: short_retry(), fault_plan: Some(plan), fault_seed: 1 };
        match over_channel(&old, &new, &cfg, opts) {
            // Severed before the session finished: must be a typed
            // transport error, never a hang or a panic.
            Err(SyncError::PeerGone | SyncError::Timeout | SyncError::FrameCorrupt) => {}
            Ok(out) => assert_eq!(out.reconstructed, new),
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }

    #[test]
    fn arq_frame_roundtrip_and_garbage_rejection() {
        let part = Part { phase: Phase::Map, payload: vec![1, 2, 3, 4].into() };
        let mut w = BitWriter::new();
        w.write_varint(6);
        w.write_varint(1);
        w.write_bits(u64::from(part_header(part.phase, true)), 8);
        let mut frame = w.into_bytes();
        frame.extend_from_slice(&part.payload);
        let parsed = parse_frame(&frame.into()).unwrap();
        assert_eq!(parsed.seq, 6);
        assert_eq!(parsed.idx, 1);
        assert!(parsed.more);
        assert_eq!(parsed.part.payload, part.payload);
        assert_eq!(parsed.part.phase, Phase::Map);

        // Truncated header and absurd part indices are rejected, not
        // panicked on.
        assert!(parse_frame(&FrameBuf::default()).is_none());
        let mut w = BitWriter::new();
        w.write_varint(0);
        w.write_varint(u64::from(u32::MAX));
        w.write_bits(0, 8);
        assert!(parse_frame(&w.into_bytes().into()).is_none());
    }
}
