//! Sans-IO stop-and-wait ARQ.
//!
//! Over a real (possibly faulty) channel, each logical message is split
//! into frames carrying an ARQ header:
//!
//! ```text
//! varint message sequence number
//! varint part index within the message
//! 1 byte part header (bit 0 = more parts follow, bits 1..3 = phase)
//! payload bytes
//! ```
//!
//! Messages alternate strictly: the client owns even sequence numbers,
//! the server odd ones. Recovery is stop-and-wait, driven by whichever
//! side is waiting for a reply: after a receive deadline expires it
//! retransmits its whole last message; the peer deduplicates by sequence
//! number and answers a stale retransmission by resending its own cached
//! reply. Duplicated or reordered frames are idempotent (parts are
//! assembled by index), corrupt frames are dropped by the channel's CRC
//! and repaired by the same retransmission path, and every wait is
//! bounded by the `RetryPolicy`, so a dead peer surfaces as a typed
//! error — never a hang.
//!
//! [`ArqCore`] holds this logic with **no I/O and no clock**: callers
//! feed it received frames with an explicit `now_us` and drain queued
//! effects (frames to transmit, inbound bytes to attribute). Timeouts
//! exist only as an absolute deadline the caller is told to watch; the
//! deadline re-arms on *any* link activity (exactly like a fresh
//! blocking `recv_timeout` call per frame), and the retry/backoff
//! budget advances only when the caller lets a deadline expire.

use std::collections::VecDeque;
use std::time::Duration;

use msync_hash::{BitReader, BitWriter};
use msync_protocol::{BufferPool, FrameBuf, Phase, RetryPolicy};
use msync_trace::{EventKind, HistKind, Recorder};

use super::Output;
use crate::session::{Part, SyncError};

/// Hard cap on frames processed while waiting for one message: a live
/// peer never legitimately approaches it, so exceeding it means the
/// link floods garbage faster than timeouts can fire.
pub(crate) const MAX_FRAMES_PER_EXCHANGE: u32 = 10_000;

/// Parts per message are small (bitmap + batch + round hashes); a
/// larger index in an ARQ header is corruption that slipped past the
/// CRC, not a real frame.
pub(crate) const MAX_PARTS_PER_MESSAGE: usize = 256;

/// Wire form of a message part on a real channel: 1 header byte
/// (bit 0 = more parts follow in this logical message, bits 1..3 =
/// phase tag) followed by the payload.
pub(crate) fn part_header(phase: Phase, more: bool) -> u8 {
    let tag = match phase {
        Phase::Setup => 0u8,
        Phase::Map => 1,
        Phase::Delta => 2,
        Phase::Resume => 3,
    };
    (tag << 1) | u8::from(more)
}

pub(crate) fn parse_part_header(b: u8) -> Option<(Phase, bool)> {
    let phase = match b >> 1 {
        0 => Phase::Setup,
        1 => Phase::Map,
        2 => Phase::Delta,
        3 => Phase::Resume,
        _ => return None,
    };
    Some((phase, b & 1 == 1))
}

/// A decoded ARQ frame.
pub(crate) struct ArqFrame {
    pub(crate) seq: u64,
    pub(crate) idx: usize,
    pub(crate) more: bool,
    pub(crate) part: Part,
}

pub(crate) fn parse_frame(frame: &FrameBuf) -> Option<ArqFrame> {
    let mut r = BitReader::new(frame);
    let seq = r.read_varint().ok()?;
    let idx = usize::try_from(r.read_varint().ok()?).ok()?;
    if idx >= MAX_PARTS_PER_MESSAGE {
        return None;
    }
    let header = r.read_bits(8).ok()? as u8;
    let (phase, more) = parse_part_header(header)?;
    // The varints and header byte are whole bytes, so the payload
    // starts byte-aligned — and a zero-copy view of the received frame
    // suffices: the part shares the frame's allocation.
    let consumed = frame.len() - r.remaining_bits() / 8;
    let payload = frame.slice(consumed, frame.len());
    Some(ArqFrame { seq, idx, more, part: Part { phase, payload } })
}

/// Encode one part as a wire frame: ARQ header bits followed by one
/// metered copy of the payload into `buf` (a pool checkout or a plain
/// `Vec` — the caller seals it into a [`FrameBuf`]).
pub(crate) fn encode_arq_frame_into(
    buf: &mut Vec<u8>,
    seq: u64,
    idx: usize,
    more: bool,
    part: &Part,
) {
    let mut w = BitWriter::new();
    w.write_varint(seq);
    w.write_varint(idx as u64);
    w.write_bits(u64::from(part_header(part.phase, more)), 8);
    let head = w.into_bytes();
    buf.reserve(head.len() + part.payload.len());
    buf.extend_from_slice(&head);
    msync_protocol::note_frame_copy(part.payload.len());
    buf.extend_from_slice(&part.payload);
}

pub(crate) fn micros_of(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One side's view of the stop-and-wait message exchange, sans-IO: the
/// same recovery machinery drives the in-memory channel, the fault
/// wrapper, a blocking TCP connection, and the nonblocking daemon
/// multiplexer.
pub(crate) struct ArqCore {
    retry: RetryPolicy,
    /// Sequence number of the next message this side sends (client
    /// even, server odd).
    send_seq: u64,
    /// Sequence number of the next message expected from the peer.
    recv_seq: u64,
    /// The last message sent, kept as encoded frames (with their
    /// accounting phases) for retransmission: a resend is a refcount
    /// bump of each cached [`FrameBuf`], never a re-encode.
    cached: Vec<(FrameBuf, Phase)>,
    /// Pool the encoded frames draw their buffers from (optional — the
    /// blocking one-shot drivers don't bother; the daemon multiplexer
    /// installs its shared pool via `set_pool`).
    pool: Option<BufferPool>,
    /// Whether a stale final frame from the peer triggers a resend of
    /// the cached message. Only the server answers stale frames: it is
    /// how a client retransmission gets its lost reply back. If both
    /// sides did this, one duplicated frame would echo resends back and
    /// forth indefinitely; the client's recovery driver is its receive
    /// deadline instead.
    resend_on_stale: bool,
    /// Trace recorder inherited from the driver, plus the send
    /// timestamp of the in-flight message for RTT measurement.
    rec: Recorder,
    last_send_us: u64,
    // ---- receive-in-progress state, reset by `begin_await` ----
    slots: Vec<Option<Part>>,
    final_idx: Option<usize>,
    /// Current per-attempt timeout (grows by backoff within one wait).
    timeout: Duration,
    attempts: u32,
    saw_corrupt: bool,
    frames: u32,
    deadline_us: u64,
    awaiting: bool,
    /// Frames retransmitted during the current wait, for per-level
    /// recovery-cost attribution by the client machine.
    retrans_in_wait: u64,
    /// Queued effects (Transmit/Attribute only), drained by the owner.
    effects: VecDeque<Output>,
}

impl ArqCore {
    pub(crate) fn client(retry: RetryPolicy, rec: Recorder) -> Self {
        Self::new(retry, rec, 0, 1, false)
    }

    pub(crate) fn server(retry: RetryPolicy, rec: Recorder) -> Self {
        Self::new(retry, rec, 1, 0, true)
    }

    fn new(
        retry: RetryPolicy,
        rec: Recorder,
        send_seq: u64,
        recv_seq: u64,
        resend_on_stale: bool,
    ) -> Self {
        Self {
            retry,
            send_seq,
            recv_seq,
            cached: Vec::new(),
            pool: None,
            resend_on_stale,
            rec,
            last_send_us: 0,
            slots: Vec::new(),
            final_idx: None,
            timeout: retry.timeout,
            attempts: 0,
            saw_corrupt: false,
            frames: 0,
            deadline_us: 0,
            awaiting: false,
            retrans_in_wait: 0,
            effects: VecDeque::new(),
        }
    }

    pub(crate) fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Draw encoded-frame buffers from `pool` from now on (frames
    /// already cached keep their original allocations).
    pub(crate) fn set_pool(&mut self, pool: BufferPool) {
        self.pool = Some(pool);
    }

    /// Encode one part into a pooled (or plain) buffer.
    fn encode_frame_buf(&self, seq: u64, idx: usize, more: bool, part: &Part) -> FrameBuf {
        let mut buf = match &self.pool {
            Some(p) => p.checkout(),
            None => Vec::new(),
        };
        encode_arq_frame_into(&mut buf, seq, idx, more, part);
        match &self.pool {
            Some(p) => p.seal(buf),
            None => FrameBuf::from(buf),
        }
    }

    pub(crate) fn recv_seq(&self) -> u64 {
        self.recv_seq
    }

    pub(crate) fn has_cached(&self) -> bool {
        !self.cached.is_empty()
    }

    pub(crate) fn next_effect(&mut self) -> Option<Output> {
        self.effects.pop_front()
    }

    pub(crate) fn has_effects(&self) -> bool {
        !self.effects.is_empty()
    }

    pub(crate) fn deadline_us(&self) -> u64 {
        self.deadline_us
    }

    /// Queue a whole logical message for transmission: each part is
    /// encoded exactly once, and the encoded frames are cached so a
    /// retransmission is a refcount bump, never a re-encode.
    pub(crate) fn send_message(&mut self, parts: Vec<Part>, now_us: u64) {
        let seq = self.send_seq;
        self.send_seq += 2;
        let n = parts.len();
        self.cached.clear();
        for (i, part) in parts.iter().enumerate() {
            let frame = self.encode_frame_buf(seq, i, i + 1 < n, part);
            self.effects.push_back(Output::Transmit {
                frame: frame.share(),
                phase: part.phase,
                retransmit: false,
            });
            self.cached.push((frame, part.phase));
        }
        self.last_send_us = now_us;
    }

    /// Queue the whole cached message again as recovery traffic — the
    /// identical encoded frames, shared by refcount.
    pub(crate) fn queue_retransmit(&mut self) {
        let n = self.cached.len();
        for (frame, phase) in &self.cached {
            self.effects.push_back(Output::Transmit {
                frame: frame.share(),
                phase: *phase,
                retransmit: true,
            });
        }
        self.retrans_in_wait += n as u64;
        self.rec.record(EventKind::Retransmit { frames: n as u64 });
    }

    /// Queue an inbound-byte attribution (used by lingering machines
    /// that parse frames outside an active wait).
    pub(crate) fn queue_attribute(&mut self, phase: Phase) {
        self.effects.push_back(Output::Attribute { phase });
    }

    /// Start waiting for the peer's next message: fresh retry budget,
    /// fresh deadline.
    pub(crate) fn begin_await(&mut self, now_us: u64) {
        self.slots.clear();
        self.final_idx = None;
        self.timeout = self.retry.timeout;
        self.attempts = 0;
        self.saw_corrupt = false;
        self.frames = 0;
        self.deadline_us = now_us.saturating_add(micros_of(self.timeout));
        self.awaiting = true;
        self.retrans_in_wait = 0;
    }

    /// Frames retransmitted since the current (or just-completed) wait
    /// began; resets the counter.
    pub(crate) fn take_retrans_in_wait(&mut self) -> u64 {
        std::mem::take(&mut self.retrans_in_wait)
    }

    fn count_frame(&mut self, now_us: u64) -> Result<(), SyncError> {
        self.frames += 1;
        if self.frames > MAX_FRAMES_PER_EXCHANGE {
            return Err(SyncError::Desync("frame flood while awaiting message"));
        }
        // Any link activity re-arms the deadline: the blocking driver
        // gave every `recv_timeout` call a fresh full timeout.
        self.deadline_us = now_us.saturating_add(micros_of(self.timeout));
        Ok(())
    }

    /// Feed one received frame. Returns the assembled message once its
    /// final part is in; duplicates, stale retransmissions, and
    /// structurally invalid frames return `None`.
    pub(crate) fn on_frame(
        &mut self,
        bytes: &FrameBuf,
        now_us: u64,
    ) -> Result<Option<Vec<Part>>, SyncError> {
        self.count_frame(now_us)?;
        let Some(frame) = parse_frame(bytes) else {
            // CRC-clean but structurally invalid: treat like a corrupt
            // frame and let retransmission heal it. The unattributable
            // wire bytes pool in the transport and are charged to the
            // map phase by its `stats()`.
            self.saw_corrupt = true;
            return Ok(None);
        };
        // The transport cannot know an inbound frame's phase until the
        // ARQ header is parsed; attribute it now.
        self.queue_attribute(frame.part.phase);
        if frame.seq != self.recv_seq {
            // A stale frame means the peer missed our last message's
            // effect — on the server, when its final part shows up,
            // answer with the cached reply so the exchange moves again.
            // Future sequences (only possible via corruption) and stale
            // frames on the client are dropped.
            if self.resend_on_stale && frame.seq < self.recv_seq && !frame.more && self.has_cached()
            {
                self.queue_retransmit();
            }
            return Ok(None);
        }
        self.attempts = 0;
        if frame.idx >= self.slots.len() {
            self.slots.resize_with(frame.idx + 1, || None);
        }
        self.slots[frame.idx] = Some(frame.part);
        if !frame.more {
            self.final_idx = Some(frame.idx);
        }
        if let Some(last) = self.final_idx {
            if self.slots.len() > last && self.slots[..=last].iter().all(Option::is_some) {
                self.recv_seq += 2;
                self.slots.truncate(last + 1);
                self.awaiting = false;
                if self.rec.is_enabled() && self.has_cached() {
                    let rtt = now_us.saturating_sub(self.last_send_us);
                    self.rec.observe(HistKind::FrameRtt, rtt);
                }
                return Ok(Some(std::mem::take(&mut self.slots).into_iter().flatten().collect()));
            }
        }
        Ok(None)
    }

    /// Report a frame the transport rejected (CRC failure).
    pub(crate) fn on_corrupt(&mut self, now_us: u64) -> Result<(), SyncError> {
        self.count_frame(now_us)?;
        self.saw_corrupt = true;
        Ok(())
    }

    /// Advance the retry budget if the deadline has expired: count the
    /// attempt, retransmit the cached message, back off, re-arm. Exact
    /// mirror of one `Err(Timeout)` arm of the old blocking receive.
    ///
    /// # Errors
    /// [`SyncError::FrameCorrupt`] / [`SyncError::Timeout`] when the
    /// budget is exhausted.
    pub(crate) fn poll_deadline(&mut self, now_us: u64) -> Result<(), SyncError> {
        if !self.awaiting || now_us < self.deadline_us {
            return Ok(());
        }
        self.attempts += 1;
        self.rec.record(EventKind::Backoff {
            attempt: u64::from(self.attempts),
            timeout_us: micros_of(self.timeout),
        });
        if self.attempts > self.retry.max_retries {
            return Err(if self.saw_corrupt {
                SyncError::FrameCorrupt
            } else {
                SyncError::Timeout
            });
        }
        if self.has_cached() {
            self.queue_retransmit();
        }
        self.timeout = self.retry.backoff(self.timeout);
        self.deadline_us = now_us.saturating_add(micros_of(self.timeout));
        Ok(())
    }
}
