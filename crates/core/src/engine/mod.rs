//! Sans-IO session engine.
//!
//! Every protocol exchange in this crate — the single-file session, the
//! stop-and-wait ARQ recovery layer, and the pipelined collection
//! schedule — is expressed here as a pure state machine. A machine never
//! touches a socket, a channel, a thread, or a clock: the caller feeds
//! it received frames ([`Machine::on_frame`]) and drains its effects
//! ([`Machine::poll_output`]), supplying the current time on every call.
//! What to do with those effects is the caller's business:
//!
//! * the blocking drivers in [`crate::session`] and [`crate::pipeline`]
//!   pump a machine over a [`Transport`](msync_protocol::Transport),
//!   sleeping in `recv_timeout` until the machine's deadline;
//! * the `msync-net` daemon multiplexes many machines over nonblocking
//!   sockets on a fixed worker pool, servicing deadlines from a poll
//!   loop.
//!
//! Because machines are deterministic functions of (frames, clock
//! readings), a recorded frame sequence replayed under a
//! [`ManualClock`](msync_trace::ManualClock) reproduces the exact same
//! output frames — the engine unit tests assert this.
//!
//! The module is I/O-free by construction and by lint: the xtask
//! `io-discipline` rule bans `thread::spawn` and blocking
//! `recv`/`read`-family calls anywhere under `crates/core/src/engine/`.

pub mod arq;
pub mod collection;
pub mod machine;

pub use collection::{CollectionClientMachine, CollectionServeMachine, CompletedFile};
pub use machine::{ClientDone, ClientMachine, ServerMachine};

use crate::session::SyncError;
use msync_protocol::{FrameBuf, Phase};

/// One effect requested by a machine, drained via
/// [`Machine::poll_output`]. Effects must be executed in the order they
/// are returned; `Wait` and `Done` are always the last effect of a
/// drain.
#[derive(Debug)]
pub enum Output {
    /// Put this encoded ARQ frame on the wire, charged to `phase`.
    /// `retransmit` marks recovery traffic so the transport's
    /// retransmission counter stays honest.
    Transmit {
        /// Encoded frame (ARQ header + payload), ready to send. A
        /// refcounted [`FrameBuf`]: retransmissions of the same frame
        /// carry shares of one allocation, and transports that queue
        /// output keep shares instead of copies.
        frame: FrameBuf,
        /// Accounting phase of the frame's payload.
        phase: Phase,
        /// Whether this is a retransmission of an earlier frame.
        retransmit: bool,
    },
    /// Attribute the most recently received frame's wire bytes to
    /// `phase` (the transport pools inbound bytes until the ARQ header
    /// has been parsed — which only the machine can do).
    Attribute {
        /// Accounting phase parsed from the frame's ARQ header.
        phase: Phase,
    },
    /// Nothing to do until a frame arrives or `deadline_us` passes
    /// (on the same clock the caller supplies as `now_us`).
    Wait {
        /// Absolute deadline in microseconds.
        deadline_us: u64,
    },
    /// The machine has finished; it will emit no further effects.
    Done,
}

/// The uniform driving surface of a session machine.
///
/// The contract, identical for every implementation:
///
/// 1. call [`poll_output`](Machine::poll_output) repeatedly, executing
///    effects, until it returns `Wait` or `Done`;
/// 2. on `Wait`, sleep (or poll) until a frame arrives or the deadline
///    passes, then call [`on_frame`](Machine::on_frame) /
///    [`on_corrupt_frame`](Machine::on_corrupt_frame) /
///    [`on_disconnect`](Machine::on_disconnect) as appropriate — a bare
///    deadline expiry needs no call at all, the next `poll_output`
///    observes it;
/// 3. repeat from 1 until `Done` or an error.
///
/// `Ctx` is whatever per-call context the machine needs but must not
/// own — the served file's bytes for a server machine (`[u8]`), the
/// served collection for a collection server (`[FileEntry]`), or `()`
/// for client machines, which borrow their inputs at construction.
pub trait Machine {
    /// Caller-supplied context passed to every `on_frame` call.
    type Ctx: ?Sized;

    /// Feed one received frame payload to the machine. The frame is a
    /// refcounted [`FrameBuf`] so the machine can keep zero-copy views
    /// of it (message parts slice the frame's allocation).
    ///
    /// # Errors
    /// Any [`SyncError`] the frame provokes (desync, retry exhaustion).
    fn on_frame(&mut self, ctx: &Self::Ctx, bytes: &FrameBuf, now_us: u64)
        -> Result<(), SyncError>;

    /// Report a frame that failed the transport's integrity checks.
    ///
    /// # Errors
    /// [`SyncError::Desync`] if the link floods garbage past the cap.
    fn on_corrupt_frame(&mut self, now_us: u64) -> Result<(), SyncError>;

    /// Report that the peer disconnected.
    ///
    /// # Errors
    /// [`SyncError::PeerGone`] on the client side; server machines treat
    /// a hang-up as the normal end of service and return `Ok`.
    fn on_disconnect(&mut self) -> Result<(), SyncError>;

    /// Drain the machine's next effect.
    ///
    /// # Errors
    /// Any [`SyncError`] raised by an expired retry budget.
    fn poll_output(&mut self, now_us: u64) -> Result<Output, SyncError>;
}
