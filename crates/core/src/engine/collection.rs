//! Pipelined collection synchronization as sans-IO machines.
//!
//! [`CollectionClientMachine`] and [`CollectionServeMachine`] carry the
//! wire schedule documented in [`crate::pipeline`]: a sorted roster
//! exchange, then windowed batch frames holding one round message per
//! in-flight file, one ARQ message per direction per flush. The
//! blocking [`sync_collection_client`](crate::pipeline) /
//! [`serve_collection`](crate::pipeline) drivers pump these machines
//! over a `Transport`; the `msync-net` daemon multiplexes many
//! [`CollectionServeMachine`]s on a fixed worker pool.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use msync_hash::{file_fingerprint, Fingerprint};
use msync_protocol::{BufferPool, Direction, FrameBuf, Phase, RetryPolicy, TrafficStats};
use msync_trace::{EventKind, HistKind, Recorder, ResumeRejectTag};

use super::arq::{micros_of, parse_frame, ArqCore, MAX_FRAMES_PER_EXCHANGE};
use super::{Machine, Output};
use crate::collection::{CollectionOutcome, FileEntry};
use crate::config::ProtocolConfig;
use crate::pipeline::{
    decode_batch, decode_resume_offer, decode_resume_verdict, decode_roster, encode_batch,
    encode_resume_offer, encode_resume_verdict, encode_roster, ResumeVerdict, ServeOutcome,
};
use crate::resume::{config_digest, ResumePlan};
use crate::session::{ClientAction, ClientSession, Part, SState, ServerSession, SyncError};
use crate::snapshot::{CollectionSnapshot, SessionCache};
use crate::stats::SyncStats;

/// One file the pipelined client has fully completed, surfaced through
/// [`CollectionClientMachine::drain_completed`] so a durability hook
/// can apply it atomically and checkpoint it while the session is
/// still running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedFile {
    /// Roster index (the server's sorted-name order).
    pub file_id: usize,
    /// Collection-relative name.
    pub name: String,
    /// Final file content.
    pub data: Vec<u8>,
    /// Whether the session fell back to a full transfer.
    pub fell_back: bool,
    /// Confirmed by a resume verdict rather than synced: the content
    /// equals the client's local copy (the sink should checkpoint it
    /// but need not rewrite it).
    pub resumed: bool,
    /// Scheduler round it completed in (0 = the roster/resume
    /// exchange itself).
    pub round: u64,
}

/// Per-file client state while the pipeline runs.
struct Slot<'a> {
    session: ClientSession<'a>,
    old_data: &'a [u8],
    existed: bool,
    traffic: TrafficStats,
    done: Option<(Vec<u8>, bool)>,
    /// Confirmed complete by the server's resume verdict (no session).
    resumed: bool,
    /// Recorder timestamp at admission (0 when tracing is off).
    t0_us: u64,
}

enum ClientState {
    AwaitRoster,
    AwaitBatch,
    Finished,
}

/// The client half of a pipelined collection sync as a sans-IO machine.
pub struct CollectionClientMachine<'a> {
    old: &'a [FileEntry],
    cfg: &'a ProtocolConfig,
    depth: usize,
    rec: Recorder,
    arq: ArqCore,
    state: ClientState,
    server_names: Vec<String>,
    slots: Vec<Slot<'a>>,
    outbox: Vec<(usize, Vec<Part>)>,
    expected: HashSet<usize>,
    next_admit: usize,
    in_flight: usize,
    done_count: usize,
    deleted: usize,
    /// Resume entries offered to the server (sorted by name). Empty
    /// when no offer was sent.
    offered: Vec<(String, Fingerprint)>,
    /// Completed files awaiting [`Self::drain_completed`].
    pending_completed: Vec<CompletedFile>,
    /// Scheduler round counter (0 = the roster/resume exchange).
    round: u64,
}

impl<'a> CollectionClientMachine<'a> {
    /// Build the machine and queue the roster message — plus a resume
    /// offer when `resume` holds a usable plan. `now_us` is the
    /// caller's clock reading, the origin for the first ARQ deadline.
    ///
    /// Plan entries are verified against `old` before being offered:
    /// only names whose local content actually carries the claimed
    /// digest go on the wire, so a stale checkpoint degrades to a
    /// smaller offer instead of corrupting the sync.
    ///
    /// # Errors
    /// [`SyncError::Config`] when `cfg` fails validation.
    pub fn new(
        old: &'a [FileEntry],
        cfg: &'a ProtocolConfig,
        depth: usize,
        retry: RetryPolicy,
        rec: Recorder,
        resume: Option<&ResumePlan>,
        now_us: u64,
    ) -> Result<Self, SyncError> {
        cfg.validate().map_err(SyncError::Config)?;
        let mut arq = ArqCore::client(retry, rec.clone());
        let mut my_names: Vec<&str> = old.iter().map(|f| f.name.as_str()).collect();
        my_names.sort_unstable();
        let mut message =
            vec![Part { phase: Phase::Setup, payload: encode_roster(&my_names).into() }];
        let mut offered: Vec<(String, Fingerprint)> = Vec::new();
        if let Some(plan) = resume {
            let by_name: HashMap<&str, &FileEntry> =
                old.iter().map(|f| (f.name.as_str(), f)).collect();
            offered = plan
                .entries
                .iter()
                .filter(|(name, digest)| {
                    by_name.get(name.as_str()).is_some_and(|f| file_fingerprint(&f.data) == *digest)
                })
                .cloned()
                .collect();
            if !offered.is_empty() {
                rec.record(EventKind::ResumeOffer { files: offered.len() as u64 });
                message.push(Part {
                    phase: Phase::Resume,
                    payload: encode_resume_offer(&plan.config_digest, &offered).into(),
                });
            }
        }
        arq.send_message(message, now_us);
        arq.begin_await(now_us);
        Ok(Self {
            old,
            cfg,
            depth: depth.max(1),
            rec,
            arq,
            state: ClientState::AwaitRoster,
            server_names: Vec::new(),
            slots: Vec::new(),
            outbox: Vec::new(),
            expected: HashSet::new(),
            next_admit: 0,
            in_flight: 0,
            done_count: 0,
            deleted: 0,
            offered,
            pending_completed: Vec::new(),
            round: 0,
        })
    }

    /// Draw encoded-frame buffers for this session from `pool`.
    pub fn set_pool(&mut self, pool: BufferPool) {
        self.arq.set_pool(pool);
    }

    /// Files completed since the last call, in completion order. The
    /// driver's durability hook applies and checkpoints them while the
    /// session keeps running; resumed files appear here too so a fresh
    /// checkpoint re-records them.
    pub fn drain_completed(&mut self) -> Vec<CompletedFile> {
        std::mem::take(&mut self.pending_completed)
    }

    /// Admit unstarted files into freed window slots, in roster order.
    /// Slots pre-completed by a resume verdict are skipped.
    fn admit(&mut self) {
        while self.next_admit < self.slots.len() && self.in_flight < self.depth {
            let id = self.next_admit;
            self.next_admit += 1;
            if self.slots[id].done.is_some() {
                continue;
            }
            self.in_flight += 1;
            self.rec.record(EventKind::SessionStart { file_id: id as u64 });
            self.slots[id].t0_us = self.rec.now_micros();
            let part = self.slots[id].session.request();
            self.slots[id].traffic.record(
                Direction::ClientToServer,
                part.phase,
                part.payload.len() as u64,
            );
            self.outbox.push((id, vec![part]));
        }
    }

    /// Flush the outbox as one batch message, or finish the session.
    fn flush(&mut self, now_us: u64) {
        if self.outbox.is_empty() {
            self.state = ClientState::Finished;
            return;
        }
        let batch = encode_batch(&self.outbox);
        self.expected = self.outbox.iter().map(|(id, _)| *id).collect();
        self.outbox.clear();
        self.round += 1;
        self.arq.send_message(vec![Part { phase: Phase::Map, payload: batch.into() }], now_us);
        self.arq.begin_await(now_us);
        self.state = ClientState::AwaitBatch;
    }

    /// Apply the server's resume verdict: mark accepted files done
    /// before any session starts.
    fn on_verdict(&mut self, payload: &[u8]) -> Result<(), SyncError> {
        match decode_resume_verdict(payload)? {
            ResumeVerdict::Accept(bits) => {
                if bits.len() != self.offered.len() {
                    return Err(SyncError::Desync("resume verdict length mismatch"));
                }
                let mut accepted = 0u64;
                for ((name, _), ok) in self.offered.iter().zip(&bits) {
                    if !ok {
                        continue;
                    }
                    // Offered names came from `old`, but only roster
                    // membership makes them resumable here.
                    let Ok(id) = self.server_names.binary_search(name) else {
                        return Err(SyncError::Desync("resume verdict for unknown file"));
                    };
                    let slot = &mut self.slots[id];
                    slot.done = Some((slot.old_data.to_vec(), false));
                    slot.resumed = true;
                    self.done_count += 1;
                    accepted += 1;
                    self.rec.record(EventKind::CacheHit { file_id: id as u64 });
                    self.pending_completed.push(CompletedFile {
                        file_id: id,
                        name: name.clone(),
                        data: slot.old_data.to_vec(),
                        fell_back: false,
                        resumed: true,
                        round: 0,
                    });
                }
                self.rec.record(EventKind::ResumeAccept {
                    accepted,
                    declined: self.offered.len() as u64 - accepted,
                });
            }
            ResumeVerdict::Reject(reason) => {
                self.rec.record(EventKind::ResumeReject { reason });
            }
        }
        Ok(())
    }

    fn on_roster(&mut self, parts: &[Part], now_us: u64) -> Result<(), SyncError> {
        let roster_part = parts.first().ok_or(SyncError::Desync("missing server roster"))?;
        self.server_names = decode_roster(&roster_part.payload)?;
        let old_by_name: HashMap<&str, &FileEntry> =
            self.old.iter().map(|f| (f.name.as_str(), f)).collect();
        let server_set: HashSet<&str> = self.server_names.iter().map(String::as_str).collect();
        self.deleted = self.old.iter().filter(|f| !server_set.contains(f.name.as_str())).count();

        const EMPTY: &[u8] = &[];
        self.slots = self
            .server_names
            .iter()
            .enumerate()
            .map(|(id, name)| {
                let old_entry = old_by_name.get(name.as_str()).copied();
                let old_data = old_entry.map_or(EMPTY, |f| f.data.as_slice());
                let mut session = ClientSession::new(old_data, self.cfg);
                session.recorder = self.rec.clone();
                session.file_id = id as u64;
                Slot {
                    session,
                    old_data,
                    existed: old_entry.is_some(),
                    traffic: TrafficStats::new(),
                    done: None,
                    resumed: false,
                    t0_us: 0,
                }
            })
            .collect();
        if !self.offered.is_empty() {
            let verdict = parts
                .iter()
                .find(|p| p.phase == Phase::Resume)
                .ok_or(SyncError::Desync("missing resume verdict"))?;
            self.on_verdict(&verdict.payload)?;
        }
        self.admit();
        if self.rec.is_enabled() && !self.slots.is_empty() {
            self.rec.record(EventKind::WindowAdvance {
                in_flight: self.in_flight as u64,
                admitted: self.next_admit as u64,
                done: self.done_count as u64,
            });
        }
        self.flush(now_us);
        Ok(())
    }

    fn on_batch(&mut self, parts: &[Part], now_us: u64) -> Result<(), SyncError> {
        let part = parts.first().ok_or(SyncError::Desync("empty batch reply"))?;
        for (id, parts) in decode_batch(&part.payload)? {
            if !self.expected.remove(&id) {
                return Err(SyncError::Desync("batch reply for a file not in flight"));
            }
            let slot = self.slots.get_mut(id).ok_or(SyncError::Desync("batch id out of range"))?;
            for p in &parts {
                slot.traffic.record(Direction::ServerToClient, p.phase, p.payload.len() as u64);
            }
            match slot.session.handle(parts)? {
                ClientAction::Done { data, fell_back } => {
                    if self.rec.is_enabled() {
                        self.rec.observe(
                            HistKind::SessionDuration,
                            self.rec.now_micros().saturating_sub(slot.t0_us),
                        );
                        self.rec.record(EventKind::SessionEnd {
                            file_id: id as u64,
                            ok: true,
                            fell_back,
                        });
                    }
                    self.pending_completed.push(CompletedFile {
                        file_id: id,
                        name: self.server_names[id].clone(),
                        data: data.clone(),
                        fell_back,
                        resumed: false,
                        round: self.round,
                    });
                    slot.done = Some((data, fell_back));
                    self.in_flight -= 1;
                    self.done_count += 1;
                }
                ClientAction::Reply(cparts) => {
                    if cparts.is_empty() {
                        return Err(SyncError::Desync("session yielded no reply"));
                    }
                    for p in &cparts {
                        slot.traffic.record(
                            Direction::ClientToServer,
                            p.phase,
                            p.payload.len() as u64,
                        );
                    }
                    self.outbox.push((id, cparts));
                }
            }
        }
        if !self.expected.is_empty() {
            return Err(SyncError::Desync("batch reply missing an in-flight file"));
        }
        self.admit();
        if self.rec.is_enabled() {
            self.rec.record(EventKind::WindowAdvance {
                in_flight: self.in_flight as u64,
                admitted: self.next_admit as u64,
                done: self.done_count as u64,
            });
        }
        self.flush(now_us);
        Ok(())
    }

    /// Assemble the outcome in roster (sorted-name) order. `traffic` is
    /// the transport's wire-level accounting.
    ///
    /// # Errors
    /// [`SyncError::Desync`] if the machine never finished.
    pub fn finish(self, traffic: TrafficStats) -> Result<CollectionOutcome, SyncError> {
        if !matches!(self.state, ClientState::Finished) {
            return Err(SyncError::Desync("collection machine not finished"));
        }
        let n = self.server_names.len();
        let mut files = Vec::with_capacity(n);
        let mut per_file = Vec::with_capacity(n);
        let mut unchanged = 0usize;
        let mut created = 0usize;
        let mut fell_back = 0usize;
        let mut resumed = 0usize;
        for (name, slot) in self.server_names.iter().zip(self.slots) {
            let (data, fb) = slot.done.ok_or(SyncError::Desync("file never completed"))?;
            if !slot.existed {
                created += 1;
            }
            if fb {
                fell_back += 1;
            }
            let levels = slot.session.levels;
            if slot.resumed {
                resumed += 1;
            } else if slot.existed && levels.is_empty() && data.as_slice() == slot.old_data {
                unchanged += 1;
            }
            let stats = SyncStats {
                traffic: slot.traffic,
                levels,
                known_bytes: slot.session.map.known_bytes(),
                delta_bytes: slot.session.delta_bytes,
            };
            per_file.push((name.clone(), stats));
            files.push(FileEntry { name: name.clone(), data });
        }
        Ok(CollectionOutcome {
            files,
            traffic,
            per_file,
            unchanged,
            created,
            renamed: 0,
            deleted: self.deleted,
            fell_back,
            resumed,
        })
    }
}

impl Machine for CollectionClientMachine<'_> {
    type Ctx = ();

    fn on_frame(&mut self, _ctx: &(), bytes: &FrameBuf, now_us: u64) -> Result<(), SyncError> {
        if matches!(self.state, ClientState::Finished) {
            return Ok(());
        }
        let Some(parts) = self.arq.on_frame(bytes, now_us)? else {
            return Ok(());
        };
        match self.state {
            ClientState::AwaitRoster => self.on_roster(&parts, now_us),
            ClientState::AwaitBatch => self.on_batch(&parts, now_us),
            ClientState::Finished => Ok(()),
        }
    }

    fn on_corrupt_frame(&mut self, now_us: u64) -> Result<(), SyncError> {
        if matches!(self.state, ClientState::Finished) {
            return Ok(());
        }
        self.arq.on_corrupt(now_us)
    }

    fn on_disconnect(&mut self) -> Result<(), SyncError> {
        if matches!(self.state, ClientState::Finished) {
            return Ok(());
        }
        Err(SyncError::PeerGone)
    }

    fn poll_output(&mut self, now_us: u64) -> Result<Output, SyncError> {
        loop {
            if let Some(effect) = self.arq.next_effect() {
                return Ok(effect);
            }
            if matches!(self.state, ClientState::Finished) {
                return Ok(Output::Done);
            }
            self.arq.poll_deadline(now_us)?;
            if !self.arq.has_effects() {
                return Ok(Output::Wait { deadline_us: self.arq.deadline_us() });
            }
        }
    }
}

/// Server-side per-file session state.
enum ServeSlot {
    Idle,
    Running(ServerSession),
    Finished,
}

enum ServeState {
    AwaitRoster,
    Await,
    Linger { deadline_us: u64 },
    Done,
}

/// The server half of a pipelined collection sync as a sans-IO machine.
/// The served collection is the per-call context
/// (`Ctx = CollectionSnapshot`), so a daemon shares one immutable
/// snapshot read-only across every concurrent session — and can swap
/// its registry entry for a new snapshot without disturbing machines
/// already bound to the old one.
///
/// The context must be identical on every call: the machine captures
/// the sorted roster order on the first message and indexes the
/// snapshot by it thereafter. The daemon guarantees this by binding
/// each connection to one `Arc<CollectionSnapshot>` at handshake time.
pub struct CollectionServeMachine {
    cfg: ProtocolConfig,
    /// [`config_digest`] of `cfg`, computed once: half of every
    /// session's hash-cache key.
    cfg_digest: [u8; 16],
    rec: Recorder,
    arq: ArqCore,
    state: ServeState,
    /// Index into the served collection, in sorted-name (roster) order.
    order: Vec<usize>,
    slots: Vec<ServeSlot>,
    rostered: bool,
    sessions: usize,
    quiet: u32,
    linger_frames: u32,
}

impl CollectionServeMachine {
    /// Build the machine, waiting for a client roster from `now_us`.
    ///
    /// # Errors
    /// [`SyncError::Config`] when `cfg` fails validation.
    pub fn new(
        cfg: &ProtocolConfig,
        retry: RetryPolicy,
        rec: Recorder,
        now_us: u64,
    ) -> Result<Self, SyncError> {
        cfg.validate().map_err(SyncError::Config)?;
        let mut arq = ArqCore::server(retry, rec.clone());
        arq.begin_await(now_us);
        Ok(Self {
            cfg: cfg.clone(),
            cfg_digest: config_digest(cfg),
            rec,
            arq,
            state: ServeState::AwaitRoster,
            order: Vec::new(),
            slots: Vec::new(),
            rostered: false,
            sessions: 0,
            quiet: 0,
            linger_frames: 0,
        })
    }

    /// Draw encoded-frame buffers for this session from `pool`.
    pub fn set_pool(&mut self, pool: BufferPool) {
        self.arq.set_pool(pool);
    }

    /// What this connection amounted to. `files_in_collection` is the
    /// served collection's size (used when the peer vanished before the
    /// roster exchange); `traffic` is the transport's wire accounting.
    #[must_use]
    pub fn outcome(&self, files_in_collection: usize, traffic: TrafficStats) -> ServeOutcome {
        let files = if self.rostered { self.order.len() } else { files_in_collection };
        ServeOutcome { files, sessions: self.sessions, traffic }
    }

    fn enter_linger(&mut self, now_us: u64) {
        self.quiet = 0;
        self.linger_frames = 0;
        let deadline_us = now_us.saturating_add(micros_of(self.arq.retry().timeout));
        self.state = ServeState::Linger { deadline_us };
    }

    /// Evaluate a client's resume offer against the served collection.
    /// Every entry whose name is in the roster *and* whose digest
    /// matches the server's current content is accepted; its slot is
    /// finished without ever running a session. Malformed or
    /// incompatible offers produce a typed rejection, never an error —
    /// the client falls back to a full sync.
    fn eval_offer(
        &mut self,
        snap: &CollectionSnapshot,
        names: &[&str],
        payload: &[u8],
    ) -> ResumeVerdict {
        let (their_digest, entries) = match decode_resume_offer(payload) {
            Ok(decoded) => decoded,
            Err(reason) => {
                self.rec.record(EventKind::ResumeReject { reason });
                return ResumeVerdict::Reject(reason);
            }
        };
        self.rec.record(EventKind::ResumeOffer { files: entries.len() as u64 });
        if their_digest != config_digest(&self.cfg) {
            self.rec.record(EventKind::ResumeReject { reason: ResumeRejectTag::ConfigMismatch });
            return ResumeVerdict::Reject(ResumeRejectTag::ConfigMismatch);
        }
        let mut bits = Vec::with_capacity(entries.len());
        let mut accepted = 0u64;
        for (name, digest) in &entries {
            let ok = names.binary_search(&name.as_str()).is_ok_and(|id| {
                // Fingerprints were computed once at snapshot build
                // time; an offer check does no hashing at all.
                let fresh = snap.fingerprint(self.order[id]) == *digest;
                if fresh {
                    self.slots[id] = ServeSlot::Finished;
                }
                fresh
            });
            accepted += u64::from(ok);
            bits.push(ok);
        }
        self.rec.record(EventKind::ResumeAccept {
            accepted,
            declined: entries.len() as u64 - accepted,
        });
        ResumeVerdict::Accept(bits)
    }

    fn on_roster(
        &mut self,
        snap: &CollectionSnapshot,
        parts: &[Part],
        now_us: u64,
    ) -> Result<(), SyncError> {
        let roster_part = parts.first().ok_or(SyncError::Desync("empty client roster"))?;
        // The client's roster is advisory (it computes creates and
        // deletes itself); decoding it validates the handshake.
        decode_roster(&roster_part.payload)?;
        let new = snap.files();
        let mut order: Vec<usize> = (0..new.len()).collect();
        order.sort_by(|&a, &b| new[a].name.cmp(&new[b].name));
        let names: Vec<&str> = order.iter().map(|&i| new[i].name.as_str()).collect();
        self.slots = (0..order.len()).map(|_| ServeSlot::Idle).collect();
        self.order = order;
        let mut reply = vec![Part { phase: Phase::Setup, payload: encode_roster(&names).into() }];
        if let Some(offer) = parts.iter().find(|p| p.phase == Phase::Resume) {
            let verdict = self.eval_offer(snap, &names, &offer.payload);
            reply.push(Part {
                phase: Phase::Resume,
                payload: encode_resume_verdict(&verdict).into(),
            });
        }
        self.arq.send_message(reply, now_us);
        self.rostered = true;
        self.state = ServeState::Await;
        self.arq.begin_await(now_us);
        Ok(())
    }

    fn on_batch(
        &mut self,
        snap: &CollectionSnapshot,
        parts: &[Part],
        now_us: u64,
    ) -> Result<(), SyncError> {
        let part = parts.first().ok_or(SyncError::Desync("empty batch message"))?;
        let mut out: Vec<(usize, Vec<Part>)> = Vec::new();
        for (id, parts) in decode_batch(&part.payload)? {
            let slot = self.slots.get_mut(id).ok_or(SyncError::Desync("batch id out of range"))?;
            let file_idx = *self.order.get(id).ok_or(SyncError::Desync("batch id"))?;
            let entry = snap.files().get(file_idx).ok_or(SyncError::Desync("collection shrank"))?;
            let reply = match slot {
                ServeSlot::Idle => {
                    let cache = SessionCache::new(
                        Arc::clone(snap.cache()),
                        snap.fingerprint(file_idx),
                        self.cfg_digest,
                        self.rec.clone(),
                    );
                    let mut session = ServerSession::with_cache(self.cfg.clone(), cache);
                    let p0 = parts.first().ok_or(SyncError::Desync("empty file message"))?;
                    let reply = session.on_request(&entry.data, &p0.payload)?;
                    self.sessions += 1;
                    *slot = ServeSlot::Running(session);
                    reply
                }
                ServeSlot::Running(session) => session.on_client(&entry.data, &parts)?,
                ServeSlot::Finished => {
                    return Err(SyncError::Desync("message for a finished file"))
                }
            };
            if let ServeSlot::Running(session) = slot {
                if session.state == SState::Done {
                    *slot = ServeSlot::Finished;
                }
            }
            out.push((id, reply));
        }
        self.arq.send_message(
            vec![Part { phase: Phase::Map, payload: encode_batch(&out).into() }],
            now_us,
        );
        self.arq.begin_await(now_us);
        Ok(())
    }

    fn on_linger_frame(&mut self, bytes: &FrameBuf, now_us: u64) {
        self.linger_frames += 1;
        self.quiet = 0;
        if let Some(frame) = parse_frame(bytes) {
            self.arq.queue_attribute(frame.part.phase);
            if frame.seq < self.arq.recv_seq() && !frame.more && self.arq.has_cached() {
                self.arq.queue_retransmit();
            }
        }
        if self.linger_frames >= MAX_FRAMES_PER_EXCHANGE {
            self.state = ServeState::Done;
        } else {
            let deadline_us = now_us.saturating_add(micros_of(self.arq.retry().timeout));
            self.state = ServeState::Linger { deadline_us };
        }
    }
}

impl Machine for CollectionServeMachine {
    type Ctx = CollectionSnapshot;

    fn on_frame(
        &mut self,
        snap: &CollectionSnapshot,
        bytes: &FrameBuf,
        now_us: u64,
    ) -> Result<(), SyncError> {
        match self.state {
            ServeState::AwaitRoster | ServeState::Await => {
                let Some(parts) = self.arq.on_frame(bytes, now_us)? else {
                    return Ok(());
                };
                match self.state {
                    ServeState::AwaitRoster => self.on_roster(snap, &parts, now_us),
                    _ => self.on_batch(snap, &parts, now_us),
                }
            }
            ServeState::Linger { .. } => {
                self.on_linger_frame(bytes, now_us);
                Ok(())
            }
            ServeState::Done => Ok(()),
        }
    }

    fn on_corrupt_frame(&mut self, now_us: u64) -> Result<(), SyncError> {
        match self.state {
            ServeState::AwaitRoster | ServeState::Await => self.arq.on_corrupt(now_us),
            ServeState::Linger { .. } => {
                self.linger_frames += 1;
                self.quiet = 0;
                if self.linger_frames >= MAX_FRAMES_PER_EXCHANGE {
                    self.state = ServeState::Done;
                } else {
                    let deadline_us = now_us.saturating_add(micros_of(self.arq.retry().timeout));
                    self.state = ServeState::Linger { deadline_us };
                }
                Ok(())
            }
            ServeState::Done => Ok(()),
        }
    }

    fn on_disconnect(&mut self) -> Result<(), SyncError> {
        // Peer gone: the client is done with us — the normal end of
        // pipelined service.
        self.state = ServeState::Done;
        Ok(())
    }

    fn poll_output(&mut self, now_us: u64) -> Result<Output, SyncError> {
        loop {
            if let Some(effect) = self.arq.next_effect() {
                return Ok(effect);
            }
            match self.state {
                ServeState::Done => return Ok(Output::Done),
                ServeState::AwaitRoster | ServeState::Await => {
                    match self.arq.poll_deadline(now_us) {
                        Ok(()) => {
                            if !self.arq.has_effects() {
                                return Ok(Output::Wait { deadline_us: self.arq.deadline_us() });
                            }
                        }
                        // Budget exhausted: the client went silent. No
                        // roster yet means nothing was served; in
                        // flight, linger for straggling retransmissions
                        // before leaving.
                        Err(SyncError::Timeout | SyncError::FrameCorrupt) => {
                            if matches!(self.state, ServeState::AwaitRoster) {
                                self.state = ServeState::Done;
                            } else {
                                self.enter_linger(now_us);
                            }
                        }
                        Err(other) => return Err(other),
                    }
                }
                ServeState::Linger { deadline_us } => {
                    if now_us < deadline_us {
                        return Ok(Output::Wait { deadline_us });
                    }
                    self.quiet += 1;
                    if self.quiet > self.arq.retry().max_retries {
                        self.state = ServeState::Done;
                    } else {
                        let next = now_us.saturating_add(micros_of(self.arq.retry().timeout));
                        self.state = ServeState::Linger { deadline_us: next };
                    }
                }
            }
        }
    }
}
