//! Single-file session machines: [`ClientMachine`] drives one
//! [`ClientSession`](crate::session) over the sans-IO ARQ core,
//! [`ServerMachine`] answers it from the served file's bytes.
//!
//! State diagram (client):
//!
//! ```text
//! new() ──request queued──▶ Awaiting ──final reply──▶ Finished
//!                              │  ▲
//!                              └──┘ reply queued, next await
//! ```
//!
//! State diagram (server):
//!
//! ```text
//! new() ─▶ AwaitRequest ─▶ Await ⟲ ─session done─▶ Linger ─▶ Done
//!              │ budget out            budget out ▲   quiet budget /
//!              ▼                         │────────┘   disconnect
//!             Done                      Linger
//! ```
//!
//! The linger state is the server's grace period after its final
//! message: stale client retransmissions are answered from the cached
//! reply until the client hangs up (success) or goes silent past the
//! retry budget.

use msync_protocol::{BufferPool, FrameBuf, RetryPolicy};
use msync_trace::Recorder;

use super::arq::{micros_of, parse_frame, ArqCore, MAX_FRAMES_PER_EXCHANGE};
use super::{Machine, Output};
use crate::config::ProtocolConfig;
use crate::session::{ClientAction, ClientSession, SState, ServerSession, SyncError};
use crate::stats::LevelStats;

/// What a finished [`ClientMachine`] produced, extracted with
/// [`ClientMachine::take_done`]. The driver combines this with the
/// transport's own `TrafficStats` to build a
/// [`SyncOutcome`](crate::session::SyncOutcome).
#[derive(Debug)]
pub struct ClientDone {
    /// The reconstruction (always exact when the session succeeded).
    pub data: Vec<u8>,
    /// Whether the whole-file fallback fired.
    pub fell_back: bool,
    /// Per-level statistics gathered by the session.
    pub levels: Vec<LevelStats>,
    /// Bytes of the new file covered by the map at completion.
    pub known_bytes: u64,
    /// Size of the delta stream, when one was received.
    pub delta_bytes: u64,
}

/// The client half of one file session as a sans-IO machine.
pub struct ClientMachine<'a> {
    session: ClientSession<'a>,
    arq: ArqCore,
    done: Option<ClientDone>,
    finished: bool,
}

impl<'a> ClientMachine<'a> {
    /// Build the machine and queue the opening request. `now_us` is the
    /// caller's clock reading, the origin for the first ARQ deadline.
    ///
    /// # Errors
    /// [`SyncError::Config`] when `cfg` fails validation.
    pub fn new(
        old: &'a [u8],
        cfg: &'a ProtocolConfig,
        retry: RetryPolicy,
        rec: Recorder,
        file_id: u64,
        now_us: u64,
    ) -> Result<Self, SyncError> {
        cfg.validate().map_err(SyncError::Config)?;
        let mut session = ClientSession::new(old, cfg);
        session.recorder = rec.clone();
        session.file_id = file_id;
        let mut arq = ArqCore::client(retry, rec);
        let request = session.request();
        arq.send_message(vec![request], now_us);
        arq.begin_await(now_us);
        Ok(Self { session, arq, done: None, finished: false })
    }

    /// The finished session's result, once [`Output::Done`] was polled.
    pub fn take_done(&mut self) -> Option<ClientDone> {
        self.done.take()
    }

    /// Draw encoded-frame buffers for this session from `pool`.
    pub fn set_pool(&mut self, pool: BufferPool) {
        self.arq.set_pool(pool);
    }
}

impl Machine for ClientMachine<'_> {
    type Ctx = ();

    fn on_frame(&mut self, _ctx: &(), bytes: &FrameBuf, now_us: u64) -> Result<(), SyncError> {
        if self.finished {
            return Ok(());
        }
        let Some(parts) = self.arq.on_frame(bytes, now_us)? else {
            return Ok(());
        };
        // Attribute recovery cost to the round the wait interrupted,
        // before `handle` opens the next round's level entry.
        let retrans = self.arq.take_retrans_in_wait();
        if retrans > 0 {
            if let Some(level) = self.session.levels.last_mut() {
                level.retransmits += retrans;
            }
        }
        match self.session.handle(parts)? {
            ClientAction::Done { data, fell_back } => {
                self.done = Some(ClientDone {
                    data,
                    fell_back,
                    levels: std::mem::take(&mut self.session.levels),
                    known_bytes: self.session.map.known_bytes(),
                    delta_bytes: self.session.delta_bytes,
                });
                self.finished = true;
            }
            ClientAction::Reply(cparts) => {
                if cparts.is_empty() {
                    return Err(SyncError::Desync("client had nothing to say"));
                }
                self.arq.send_message(cparts, now_us);
                self.arq.begin_await(now_us);
            }
        }
        Ok(())
    }

    fn on_corrupt_frame(&mut self, now_us: u64) -> Result<(), SyncError> {
        if self.finished {
            return Ok(());
        }
        self.arq.on_corrupt(now_us)
    }

    fn on_disconnect(&mut self) -> Result<(), SyncError> {
        if self.finished {
            return Ok(());
        }
        Err(SyncError::PeerGone)
    }

    fn poll_output(&mut self, now_us: u64) -> Result<Output, SyncError> {
        loop {
            if let Some(effect) = self.arq.next_effect() {
                return Ok(effect);
            }
            if self.finished {
                return Ok(Output::Done);
            }
            self.arq.poll_deadline(now_us)?;
            if !self.arq.has_effects() {
                return Ok(Output::Wait { deadline_us: self.arq.deadline_us() });
            }
        }
    }
}

enum ServerState {
    AwaitRequest,
    Await,
    Linger { deadline_us: u64 },
    Done,
}

/// The server half of one file session as a sans-IO machine. The served
/// file's bytes are the per-call context (`Ctx = [u8]`), so one daemon
/// can share a collection read-only across many machines.
pub struct ServerMachine {
    session: ServerSession,
    arq: ArqCore,
    state: ServerState,
    quiet: u32,
    linger_frames: u32,
}

impl ServerMachine {
    /// Build the machine, waiting for a client request from `now_us`.
    ///
    /// # Errors
    /// [`SyncError::Config`] when `cfg` fails validation.
    pub fn new(
        cfg: &ProtocolConfig,
        retry: RetryPolicy,
        rec: Recorder,
        now_us: u64,
    ) -> Result<Self, SyncError> {
        cfg.validate().map_err(SyncError::Config)?;
        let mut arq = ArqCore::server(retry, rec);
        arq.begin_await(now_us);
        Ok(Self {
            session: ServerSession::new(cfg.clone()),
            arq,
            state: ServerState::AwaitRequest,
            quiet: 0,
            linger_frames: 0,
        })
    }

    /// Draw encoded-frame buffers for this session from `pool`.
    pub fn set_pool(&mut self, pool: BufferPool) {
        self.arq.set_pool(pool);
    }

    fn enter_linger(&mut self, now_us: u64) {
        self.quiet = 0;
        self.linger_frames = 0;
        let deadline_us = now_us.saturating_add(micros_of(self.arq.retry().timeout));
        self.state = ServerState::Linger { deadline_us };
    }

    fn on_linger_frame(&mut self, bytes: &FrameBuf, now_us: u64) {
        self.linger_frames += 1;
        self.quiet = 0;
        if let Some(frame) = parse_frame(bytes) {
            self.arq.queue_attribute(frame.part.phase);
            if frame.seq < self.arq.recv_seq() && !frame.more && self.arq.has_cached() {
                self.arq.queue_retransmit();
            }
        }
        if self.linger_frames >= MAX_FRAMES_PER_EXCHANGE {
            self.state = ServerState::Done;
        } else {
            let deadline_us = now_us.saturating_add(micros_of(self.arq.retry().timeout));
            self.state = ServerState::Linger { deadline_us };
        }
    }
}

impl Machine for ServerMachine {
    type Ctx = [u8];

    fn on_frame(&mut self, new: &[u8], bytes: &FrameBuf, now_us: u64) -> Result<(), SyncError> {
        match self.state {
            ServerState::AwaitRequest | ServerState::Await => {
                let Some(parts) = self.arq.on_frame(bytes, now_us)? else {
                    return Ok(());
                };
                let reply = match self.state {
                    ServerState::AwaitRequest => {
                        let first = parts.first().ok_or(SyncError::Desync("empty request"))?;
                        self.session.on_request(new, &first.payload)?
                    }
                    _ => self.session.on_client(new, &parts)?,
                };
                self.arq.send_message(reply, now_us);
                if self.session.state == SState::Done {
                    self.enter_linger(now_us);
                } else {
                    self.state = ServerState::Await;
                    self.arq.begin_await(now_us);
                }
                Ok(())
            }
            ServerState::Linger { .. } => {
                self.on_linger_frame(bytes, now_us);
                Ok(())
            }
            ServerState::Done => Ok(()),
        }
    }

    fn on_corrupt_frame(&mut self, now_us: u64) -> Result<(), SyncError> {
        match self.state {
            ServerState::AwaitRequest | ServerState::Await => self.arq.on_corrupt(now_us),
            ServerState::Linger { .. } => {
                self.linger_frames += 1;
                self.quiet = 0;
                if self.linger_frames >= MAX_FRAMES_PER_EXCHANGE {
                    self.state = ServerState::Done;
                } else {
                    let deadline_us = now_us.saturating_add(micros_of(self.arq.retry().timeout));
                    self.state = ServerState::Linger { deadline_us };
                }
                Ok(())
            }
            ServerState::Done => Ok(()),
        }
    }

    fn on_disconnect(&mut self) -> Result<(), SyncError> {
        // The client finished and hung up, or gave up — either way the
        // client side owns the verdict; end service normally.
        self.state = ServerState::Done;
        Ok(())
    }

    fn poll_output(&mut self, now_us: u64) -> Result<Output, SyncError> {
        loop {
            if let Some(effect) = self.arq.next_effect() {
                return Ok(effect);
            }
            match self.state {
                ServerState::Done => return Ok(Output::Done),
                ServerState::AwaitRequest | ServerState::Await => {
                    match self.arq.poll_deadline(now_us) {
                        Ok(()) => {
                            if !self.arq.has_effects() {
                                return Ok(Output::Wait { deadline_us: self.arq.deadline_us() });
                            }
                        }
                        // Budget exhausted. Before the first request
                        // there is no session to fail on this side; in
                        // flight, serve any pending resends from the
                        // linger state before leaving. The client owns
                        // the verdict either way.
                        Err(SyncError::Timeout | SyncError::FrameCorrupt) => {
                            if matches!(self.state, ServerState::AwaitRequest) {
                                self.state = ServerState::Done;
                            } else {
                                self.enter_linger(now_us);
                            }
                        }
                        Err(other) => return Err(other),
                    }
                }
                ServerState::Linger { deadline_us } => {
                    if now_us < deadline_us {
                        return Ok(Output::Wait { deadline_us });
                    }
                    self.quiet += 1;
                    if self.quiet > self.arq.retry().max_retries {
                        self.state = ServerState::Done;
                    } else {
                        let next = now_us.saturating_add(micros_of(self.arq.retry().timeout));
                        self.state = ServerState::Linger { deadline_us: next };
                    }
                }
            }
        }
    }
}
