//! Atomic file application — the single write path for sync results.
//!
//! A crash mid-`fs::write` leaves a torn file under the final name, and
//! a re-run then "syncs" from garbage. Every byte a sync session puts
//! on disk therefore goes through [`AtomicApplier`]: write to a sibling
//! temp file, fsync it, rename over the final name, fsync the parent
//! directory so the rename itself is durable. Readers either see the
//! complete old file or the complete new one — never a prefix.
//!
//! Temp files use the [`TEMP_SUFFIX`] sibling-name convention so a
//! crash between write and rename leaves an identifiable orphan;
//! [`AtomicApplier::clean_orphans`] sweeps them on startup. The xtask
//! `apply-discipline` lint pass bans bare `fs::write`/`File::create`
//! on sync-apply paths outside this module, so the discipline holds by
//! construction.

use std::fs;
use std::io::Write as _;
use std::path::{Component, Path, PathBuf};

/// Suffix appended to a file's final name to form its sibling temp
/// name. Chosen to be implausible as a real collection member.
pub const TEMP_SUFFIX: &str = ".msync-tmp";

/// Applies named files under a root directory, atomically.
#[derive(Debug, Clone)]
pub struct AtomicApplier {
    root: PathBuf,
}

impl AtomicApplier {
    /// An applier rooted at `root`. The directory itself is created on
    /// the first [`AtomicApplier::apply`], not here.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        AtomicApplier { root: root.into() }
    }

    /// The root directory files are applied under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Write `data` to `rel` under the root, atomically: parents are
    /// created as needed, the bytes land in a fsynced sibling temp
    /// file, and a rename + parent-directory fsync publishes them.
    /// Returns the final path.
    ///
    /// # Errors
    /// If `rel` escapes the root (absolute, or contains `..`), or on
    /// any filesystem error — each with the path in the message.
    pub fn apply(&self, rel: &str, data: &[u8]) -> Result<PathBuf, String> {
        let rel_path = sanitize_rel(rel)?;
        let final_path = self.root.join(rel_path);
        if let Some(parent) = final_path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory {}: {e}", parent.display()))?;
        }
        atomic_write_file(&final_path, data)?;
        Ok(final_path)
    }

    /// Remove every `*.msync-tmp` orphan under the root (a crash
    /// between temp write and rename leaves one). Returns how many
    /// were removed; a missing root is not an error (nothing applied
    /// yet).
    ///
    /// # Errors
    /// On any filesystem error other than the root not existing.
    pub fn clean_orphans(&self) -> Result<usize, String> {
        if !self.root.exists() {
            return Ok(0);
        }
        let mut removed = 0usize;
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = fs::read_dir(&dir)
                .map_err(|e| format!("cannot list directory {}: {e}", dir.display()))?;
            for entry in entries {
                let entry =
                    entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
                let path = entry.path();
                let ty = entry
                    .file_type()
                    .map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
                if ty.is_dir() {
                    stack.push(path);
                } else if path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(TEMP_SUFFIX))
                {
                    fs::remove_file(&path)
                        .map_err(|e| format!("cannot remove orphan {}: {e}", path.display()))?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

/// Reject relative names that would write outside the applier root:
/// absolute paths, drive prefixes, `..` components, and empty names.
fn sanitize_rel(rel: &str) -> Result<&Path, String> {
    let path = Path::new(rel);
    if rel.is_empty() {
        return Err("empty file name in apply request".to_owned());
    }
    for comp in path.components() {
        match comp {
            Component::Normal(_) | Component::CurDir => {}
            Component::ParentDir => {
                return Err(format!("file name `{rel}` escapes the output directory (`..`)"));
            }
            Component::RootDir | Component::Prefix(_) => {
                return Err(format!("file name `{rel}` is absolute; expected a relative path"));
            }
        }
    }
    Ok(path)
}

/// Atomically replace `path` with `data`: sibling temp file, fsync,
/// rename, fsync the parent directory. The parent must already exist.
///
/// # Errors
/// On any filesystem error, with the offending path in the message.
pub fn atomic_write_file(path: &Path, data: &[u8]) -> Result<(), String> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("cannot derive a temp name for {}", path.display()))?;
    let tmp_path = path.with_file_name(format!("{file_name}{TEMP_SUFFIX}"));
    let mut tmp = fs::File::create(&tmp_path)
        .map_err(|e| format!("cannot create temp file {}: {e}", tmp_path.display()))?;
    tmp.write_all(data).map_err(|e| format!("cannot write {}: {e}", tmp_path.display()))?;
    tmp.sync_all().map_err(|e| format!("cannot fsync {}: {e}", tmp_path.display()))?;
    drop(tmp);
    fs::rename(&tmp_path, path).map_err(|e| {
        format!("cannot rename {} over {}: {e}", tmp_path.display(), path.display())
    })?;
    if let Some(parent) = path.parent() {
        // An empty parent means "current directory"; skip the fsync
        // rather than trying to open "".
        if !parent.as_os_str().is_empty() {
            fsync_dir(parent)?;
        }
    }
    Ok(())
}

/// fsync a directory so a just-completed rename within it is durable.
fn fsync_dir(dir: &Path) -> Result<(), String> {
    let handle = fs::File::open(dir)
        .map_err(|e| format!("cannot open directory {} for fsync: {e}", dir.display()))?;
    handle.sync_all().map_err(|e| format!("cannot fsync directory {}: {e}", dir.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msync-apply-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn apply_creates_parents_and_publishes_content() {
        let root = tmp_root("apply");
        let applier = AtomicApplier::new(&root);
        let path = applier.apply("sub/dir/file.txt", b"hello").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        assert!(path.starts_with(&root));
        // Overwrite is atomic too.
        applier.apply("sub/dir/file.txt", b"rewritten").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"rewritten");
        // No temp residue after a clean apply.
        assert_eq!(applier.clean_orphans().unwrap(), 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn escaping_names_are_rejected() {
        let root = tmp_root("escape");
        let applier = AtomicApplier::new(&root);
        assert!(applier.apply("../evil", b"x").is_err());
        assert!(applier.apply("a/../../evil", b"x").is_err());
        assert!(applier.apply("/abs/evil", b"x").is_err());
        assert!(applier.apply("", b"x").is_err());
        assert!(!root.exists() || fs::read_dir(&root).unwrap().next().is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn clean_orphans_removes_only_temps() {
        let root = tmp_root("orphans");
        let applier = AtomicApplier::new(&root);
        applier.apply("keep.txt", b"real").unwrap();
        fs::create_dir_all(root.join("nested")).unwrap();
        fs::write(root.join(format!("torn.bin{TEMP_SUFFIX}")), b"partial").unwrap();
        fs::write(root.join("nested").join(format!("torn2{TEMP_SUFFIX}")), b"partial").unwrap();
        assert_eq!(applier.clean_orphans().unwrap(), 2);
        assert_eq!(fs::read(root.join("keep.txt")).unwrap(), b"real");
        assert!(!root.join(format!("torn.bin{TEMP_SUFFIX}")).exists());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_root_cleans_nothing() {
        let root = tmp_root("absent");
        assert_eq!(AtomicApplier::new(&root).clean_orphans().unwrap(), 0);
    }
}
