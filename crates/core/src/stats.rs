//! Per-session statistics beyond raw traffic: what each round did.
//!
//! These power the paper's analysis quantities — e.g. the "harvest rate"
//! (fraction of sent hashes that end in confirmed matches, §6.2) that
//! explains why continuation hashes can profitably run at much smaller
//! block sizes than global hashes.

use msync_protocol::TrafficStats;

/// What happened in one protocol round (one block size).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Block size of the round.
    pub block_size: usize,
    /// Items hashed (probes + active blocks).
    pub items: usize,
    /// Of which continuation probes.
    pub cont_items: usize,
    /// Of which local-hash blocks.
    pub local_items: usize,
    /// Global hashes suppressed via decomposability.
    pub suppressed: usize,
    /// Items whose hash found a candidate position in the old file.
    pub candidates: usize,
    /// Candidates confirmed by verification.
    pub confirmed: usize,
    /// Wall-clock duration of the round in microseconds (0 when the
    /// session ran without a trace recorder).
    pub wall_us: u64,
    /// Frames the ARQ layer retransmitted while this round was the
    /// most recent one (0 on clean links or untraced runs).
    pub retransmits: u64,
}

impl LevelStats {
    /// Fraction of hashed items that ended in a confirmed match — the
    /// paper's *harvest rate*.
    pub fn harvest_rate(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.confirmed as f64 / self.items as f64
        }
    }
}

/// Full statistics of one synchronization session.
#[derive(Debug, Clone, Default)]
pub struct SyncStats {
    /// Bytes per direction and phase, plus roundtrips.
    pub traffic: TrafficStats,
    /// One entry per executed round, outermost block size first.
    pub levels: Vec<LevelStats>,
    /// Bytes of the new file covered by confirmed matches when the map
    /// phase ended.
    pub known_bytes: u64,
    /// Size of the delta the server sent in the final phase.
    pub delta_bytes: u64,
}

impl SyncStats {
    /// Total bytes on the wire — the headline number of every figure.
    pub fn total_bytes(&self) -> u64 {
        self.traffic.total_bytes()
    }

    /// Total confirmed matches across rounds.
    pub fn confirmed_matches(&self) -> usize {
        self.levels.iter().map(|l| l.confirmed).sum()
    }

    /// Total candidates that failed verification (false candidates).
    pub fn false_candidates(&self) -> usize {
        let candidates: usize = self.levels.iter().map(|l| l.candidates).sum();
        candidates.saturating_sub(self.confirmed_matches())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvest_rate() {
        let l = LevelStats { items: 10, confirmed: 4, ..Default::default() };
        assert!((l.harvest_rate() - 0.4).abs() < 1e-12);
        assert_eq!(LevelStats::default().harvest_rate(), 0.0);
    }

    #[test]
    fn aggregates() {
        let stats = SyncStats {
            levels: vec![
                LevelStats { items: 8, candidates: 5, confirmed: 4, ..Default::default() },
                LevelStats { items: 4, candidates: 3, confirmed: 3, ..Default::default() },
            ],
            ..Default::default()
        };
        assert_eq!(stats.confirmed_matches(), 7);
        assert_eq!(stats.false_candidates(), 1);
    }
}
