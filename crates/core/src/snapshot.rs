//! Copy-on-write collection snapshots and the cross-session hash cache.
//!
//! A [`CollectionSnapshot`] freezes a served collection — files plus
//! their precomputed fingerprints — behind an `Arc` so a daemon can
//! atomically swap what it serves: in-flight sessions keep the `Arc`
//! they started with and finish byte-exact against it, while new
//! sessions bind the replacement. Building the snapshot fingerprints
//! every file exactly once, so neither the roster offer nor the
//! per-file request path rehashes whole files per client.
//!
//! The snapshot also carries a [`HashCache`]: a cross-session memo of
//! per-file map-phase artifacts keyed by `(file fingerprint,
//! ProtocolConfig digest)`. Two clients syncing the same hot file with
//! the same configuration cause its block hash tree and verification
//! hashes to be computed once, not once per session. The cache stores
//! *full-width* digests ([`DecomposableDigest`] for ranges, the
//! untruncated 64-bit value for verification hashes), so any requested
//! `bits` width is served from one entry. Group keys are the exact
//! `(offset, len)` range lists — equality on the real inputs, never on
//! a hash of them — so a cache hit can never substitute a wrong
//! verification value.
//!
//! The cache is storage only: hit/miss *events* are recorded through
//! the per-session [`Recorder`] carried by the [`SessionCache`] handle,
//! which keeps the daemon-level invariant that aggregate metrics equal
//! the sum of per-session metrics.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

use msync_hash::{truncate_bits, DecomposableDigest, Fingerprint, Md5};
use msync_trace::{EventKind, Recorder};

use crate::collection::FileEntry;

/// Key of one file's artifact set: its content fingerprint plus the
/// digest of the [`crate::ProtocolConfig`] the artifacts were built
/// under. Two configs with different block-size schedules or hash
/// widths never share entries.
type FileKey = (Fingerprint, [u8; 16]);

/// Memoized map-phase artifacts for one `(file, config)` pair.
#[derive(Default)]
struct FileArtifacts {
    /// `(new_off, len)` → full-width block digest. Served for any
    /// requested prefix width via [`DecomposableDigest::prefix`].
    ranges: HashMap<(u64, u64), DecomposableDigest>,
    /// Exact verification-group range list → untruncated 64-bit MD5
    /// value of the concatenated ranges; truncated per request.
    groups: HashMap<Box<[(u64, u64)]>, u64>,
}

/// Cross-session memo of per-file map-phase hash work.
///
/// Thread-safe; shared across all sessions of a collection (and across
/// snapshot swaps — the reload path passes the old cache to the new
/// snapshot, so unchanged files stay warm). Evicts whole file entries
/// FIFO once `max_files` distinct `(file, config)` keys exist.
pub struct HashCache {
    inner: Mutex<CacheInner>,
    max_files: usize,
}

struct CacheInner {
    files: HashMap<FileKey, FileArtifacts>,
    order: VecDeque<FileKey>,
}

/// Default bound on distinct `(file, config)` entries.
pub const DEFAULT_CACHE_FILES: usize = 4096;

impl Default for HashCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CACHE_FILES)
    }
}

impl HashCache {
    /// A cache bounded to `max_files` distinct `(file, config)` keys.
    #[must_use]
    pub fn with_capacity(max_files: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner { files: HashMap::new(), order: VecDeque::new() }),
            max_files: max_files.max(1),
        }
    }

    /// Distinct `(file, config)` entries currently held.
    #[must_use]
    pub fn file_entries(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).files.len()
    }

    fn lookup_range(&self, key: FileKey, range: (u64, u64)) -> Option<DecomposableDigest> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .files
            .get(&key)?
            .ranges
            .get(&range)
            .copied()
    }

    fn insert_range(&self, key: FileKey, range: (u64, u64), digest: DecomposableDigest) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.entry(key, self.max_files).ranges.insert(range, digest);
    }

    fn lookup_group(&self, key: FileKey, ranges: &[(u64, u64)]) -> Option<u64> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .files
            .get(&key)?
            .groups
            .get(ranges)
            .copied()
    }

    fn insert_group(&self, key: FileKey, ranges: Box<[(u64, u64)]>, value: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.entry(key, self.max_files).groups.insert(ranges, value);
    }
}

impl CacheInner {
    /// The artifact set for `key`, creating (and FIFO-evicting) as
    /// needed.
    fn entry(&mut self, key: FileKey, max_files: usize) -> &mut FileArtifacts {
        if !self.files.contains_key(&key) {
            while self.files.len() >= max_files {
                match self.order.pop_front() {
                    Some(old) => {
                        self.files.remove(&old);
                    }
                    None => break,
                }
            }
            self.order.push_back(key);
        }
        self.files.entry(key).or_default()
    }
}

/// One session's handle into the shared [`HashCache`]: the cache, the
/// `(file, config)` key the session operates under, and the session's
/// recorder for hit/miss events.
#[derive(Clone)]
pub struct SessionCache {
    cache: Arc<HashCache>,
    key: FileKey,
    rec: Recorder,
}

impl SessionCache {
    /// Bind a session to `cache` under `(file_fp, cfg_digest)`.
    #[must_use]
    pub fn new(
        cache: Arc<HashCache>,
        file_fp: Fingerprint,
        cfg_digest: [u8; 16],
        rec: Recorder,
    ) -> Self {
        Self { cache, key: (file_fp, cfg_digest), rec }
    }

    /// The fingerprint of the file this session serves, precomputed at
    /// snapshot build time.
    #[must_use]
    pub fn file_fingerprint(&self) -> Fingerprint {
        self.key.0
    }

    /// Cached digest of `new[off..off + len]` if present, recording the
    /// hit. Absence records nothing: the caller chooses how to obtain
    /// the digest (derivation or a metered scan), so a lookup that
    /// falls through is not yet a miss.
    #[must_use]
    pub fn cached_range(&self, off: u64, len: u64) -> Option<DecomposableDigest> {
        let hit = self.cache.lookup_range(self.key, (off, len))?;
        self.rec.record(EventKind::HashCacheHit { bytes: len });
        Some(hit)
    }

    /// Record a digest obtained by sibling decomposition — no bytes
    /// were scanned — and warm the cache with it for later sessions.
    pub fn note_derived(&self, off: u64, len: u64, digest: DecomposableDigest) {
        self.cache.insert_range(self.key, (off, len), digest);
        self.rec.record(EventKind::HashCacheDerived { bytes: len });
    }

    /// Full-width block digest of `new[off..off + len]`, memoized.
    ///
    /// # Panics
    /// If the range exceeds `new` — callers derive ranges from the same
    /// item table that indexed `new` in the first place.
    #[must_use]
    pub fn range_digest(&self, new: &[u8], off: u64, len: u64) -> DecomposableDigest {
        if let Some(hit) = self.cache.lookup_range(self.key, (off, len)) {
            self.rec.record(EventKind::HashCacheHit { bytes: len });
            return hit;
        }
        let digest = DecomposableDigest::of(&new[off as usize..(off + len) as usize]);
        self.cache.insert_range(self.key, (off, len), digest);
        self.rec.record(EventKind::HashCacheMiss { bytes: len });
        digest
    }

    /// `bits`-wide verification hash of the concatenation of `ranges`
    /// out of `new`, memoized at full width and truncated per request.
    ///
    /// # Panics
    /// As [`Self::range_digest`].
    #[must_use]
    pub fn group_hash(&self, new: &[u8], ranges: &[(u64, u64)], bits: u32) -> u64 {
        let bytes: u64 = ranges.iter().map(|&(_, len)| len).sum();
        if let Some(full) = self.cache.lookup_group(self.key, ranges) {
            self.rec.record(EventKind::HashCacheHit { bytes });
            return truncate_bits(full, bits);
        }
        let mut buf = Vec::with_capacity(bytes as usize);
        for &(off, len) in ranges {
            buf.extend_from_slice(&new[off as usize..(off + len) as usize]);
        }
        let full = Md5::digest_bits(&buf, 64);
        self.cache.insert_group(self.key, ranges.into(), full);
        self.rec.record(EventKind::HashCacheMiss { bytes });
        truncate_bits(full, bits)
    }
}

/// An immutable view of a served collection: the files, one
/// fingerprint per file (computed once, here), and the shared hash
/// cache its sessions memoize into.
pub struct CollectionSnapshot {
    files: Vec<FileEntry>,
    fps: Vec<Fingerprint>,
    cache: Arc<HashCache>,
}

impl CollectionSnapshot {
    /// Snapshot `files` with a fresh cache.
    #[must_use]
    pub fn new(files: Vec<FileEntry>) -> Self {
        Self::with_cache(files, Arc::new(HashCache::default()))
    }

    /// Snapshot `files` sharing an existing cache — the reload path,
    /// so files unchanged across a swap stay warm (their fingerprints,
    /// and therefore their cache keys, are unchanged).
    #[must_use]
    pub fn with_cache(files: Vec<FileEntry>, cache: Arc<HashCache>) -> Self {
        let fps = files.iter().map(|f| msync_hash::file_fingerprint(&f.data)).collect();
        Self { files, fps, cache }
    }

    /// The served files.
    #[must_use]
    pub fn files(&self) -> &[FileEntry] {
        &self.files
    }

    /// The precomputed fingerprint of file `idx`.
    ///
    /// # Panics
    /// If `idx` is out of bounds.
    #[must_use]
    pub fn fingerprint(&self, idx: usize) -> Fingerprint {
        self.fps[idx]
    }

    /// The shared hash cache.
    #[must_use]
    pub fn cache(&self) -> &Arc<HashCache> {
        &self.cache
    }

    /// Number of files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msync_hash::file_fingerprint;

    fn handle(cache: &Arc<HashCache>, rec: &Recorder) -> SessionCache {
        SessionCache::new(Arc::clone(cache), file_fingerprint(b"data"), [7; 16], rec.clone())
    }

    #[test]
    fn snapshot_precomputes_fingerprints() {
        let snap = CollectionSnapshot::new(vec![
            FileEntry::new("a", b"alpha".to_vec()),
            FileEntry::new("b", b"beta".to_vec()),
        ]);
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        assert_eq!(snap.fingerprint(0), file_fingerprint(b"alpha"));
        assert_eq!(snap.fingerprint(1), file_fingerprint(b"beta"));
    }

    #[test]
    fn range_digest_hits_after_miss_and_matches_direct() {
        let cache = Arc::new(HashCache::default());
        let rec = Recorder::system();
        let h = handle(&cache, &rec);
        let new = b"0123456789abcdef".to_vec();

        let first = h.range_digest(&new, 4, 8);
        assert_eq!(first, DecomposableDigest::of(&new[4..12]));
        let second = h.range_digest(&new, 4, 8);
        assert_eq!(second, first);

        let m = rec.snapshot();
        assert_eq!((m.hash_cache_misses, m.hash_cache_hits), (1, 1));
        assert_eq!((m.hash_cache_miss_bytes, m.hash_cache_hit_bytes), (8, 8));
    }

    #[test]
    fn derived_digests_warm_the_cache_without_miss_accounting() {
        let cache = Arc::new(HashCache::default());
        let rec = Recorder::system();
        let h = handle(&cache, &rec);
        let new = b"0123456789abcdef".to_vec();
        assert!(h.cached_range(0, 8).is_none(), "an empty cache has nothing to serve");
        let digest = DecomposableDigest::of(&new[0..8]);
        h.note_derived(0, 8, digest);
        assert_eq!(h.cached_range(0, 8), Some(digest));
        assert_eq!(h.range_digest(&new, 0, 8), digest);
        let m = rec.snapshot();
        assert_eq!(m.hash_cache_misses, 0, "derivation must not meter as a scan");
        assert_eq!((m.hash_cache_derived, m.hash_cache_derived_bytes), (1, 8));
        assert_eq!((m.hash_cache_hits, m.hash_cache_hit_bytes), (2, 16));
    }

    #[test]
    fn group_hash_serves_any_width_from_one_entry() {
        let cache = Arc::new(HashCache::default());
        let rec = Recorder::system();
        let h = handle(&cache, &rec);
        let new = b"the quick brown fox jumps over the lazy dog".to_vec();
        let ranges = [(0u64, 9u64), (16, 10)];

        let mut buf = Vec::new();
        for &(off, len) in &ranges {
            buf.extend_from_slice(&new[off as usize..(off + len) as usize]);
        }
        let full = h.group_hash(&new, &ranges, 64);
        assert_eq!(full, Md5::digest_bits(&buf, 64));
        // Narrower widths are cache hits off the same full-width entry.
        for bits in [12u32, 24, 48] {
            assert_eq!(h.group_hash(&new, &ranges, bits), Md5::digest_bits(&buf, bits));
        }
        let m = rec.snapshot();
        assert_eq!(m.hash_cache_misses, 1);
        assert_eq!(m.hash_cache_hits, 3);
    }

    #[test]
    fn different_config_digests_do_not_share_entries() {
        let cache = Arc::new(HashCache::default());
        let rec = Recorder::system();
        let fp = file_fingerprint(b"same file");
        let a = SessionCache::new(Arc::clone(&cache), fp, [1; 16], rec.clone());
        let b = SessionCache::new(Arc::clone(&cache), fp, [2; 16], rec.clone());
        let new = b"same file contents here".to_vec();
        let _ = a.range_digest(&new, 0, 9);
        let _ = b.range_digest(&new, 0, 9);
        let m = rec.snapshot();
        assert_eq!(m.hash_cache_misses, 2, "distinct configs must not share");
        assert_eq!(cache.file_entries(), 2);
    }

    #[test]
    fn fifo_eviction_caps_file_entries() {
        let cache = Arc::new(HashCache::with_capacity(2));
        let rec = Recorder::off();
        let new = b"xxxxxxxx".to_vec();
        for i in 0u8..4 {
            let h =
                SessionCache::new(Arc::clone(&cache), file_fingerprint(&[i]), [0; 16], rec.clone());
            let _ = h.range_digest(&new, 0, 4);
        }
        assert_eq!(cache.file_entries(), 2);
        // The oldest entry was evicted: re-touching it misses again.
        let rec = Recorder::system();
        let h = SessionCache::new(Arc::clone(&cache), file_fingerprint(&[0]), [0; 16], rec.clone());
        let _ = h.range_digest(&new, 0, 4);
        assert_eq!(rec.snapshot().hash_cache_misses, 1);
    }

    #[test]
    fn reload_with_shared_cache_keeps_unchanged_files_warm() {
        let old = CollectionSnapshot::new(vec![FileEntry::new("a", b"stable".to_vec())]);
        let rec = Recorder::system();
        let h =
            SessionCache::new(Arc::clone(old.cache()), old.fingerprint(0), [0; 16], rec.clone());
        let _ = h.range_digest(b"stable", 0, 6);

        let swapped = CollectionSnapshot::with_cache(
            vec![FileEntry::new("a", b"stable".to_vec()), FileEntry::new("b", b"new".to_vec())],
            Arc::clone(old.cache()),
        );
        let h2 = SessionCache::new(
            Arc::clone(swapped.cache()),
            swapped.fingerprint(0),
            [0; 16],
            rec.clone(),
        );
        let _ = h2.range_digest(b"stable", 0, 6);
        let m = rec.snapshot();
        assert_eq!((m.hash_cache_misses, m.hash_cache_hits), (1, 1));
    }
}
