//! Analytical cost models (paper §2.3: "some basic performance bounds
//! based on block size and number and size of file modifications can be
//! shown").
//!
//! These closed-form models predict synchronization cost from the edit
//! statistics — useful for choosing block sizes without trial runs (the
//! oracle behind `rsync (optimal)` becomes a formula) and as a sanity
//! harness: the experiments cross-check the simulator against the model
//! and the model against the simulator.

/// Parameters of an edit pattern: `clusters` runs of changed bytes,
/// each about `cluster_bytes` long, in a file of `file_len` bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EditModel {
    /// File size in bytes.
    pub file_len: u64,
    /// Number of edit clusters.
    pub clusters: u64,
    /// Bytes per cluster.
    pub cluster_bytes: u64,
    /// Compression ratio achieved on literal bytes (output/input), e.g.
    /// 0.35 for source text under the gzip-like coder.
    pub literal_ratio: f64,
}

/// Predicted rsync cost for a block size `b` (paper §2.2 accounting):
///
/// * upstream: 6 bytes per block of the old file (+ fingerprint);
/// * downstream: each edit cluster dirties `⌈cluster/b⌉ + 1` blocks on
///   average (cluster boundaries straddle block boundaries), whose
///   bytes travel as compressed literals; matched blocks cost ~2 bytes
///   of token each.
pub fn rsync_cost(m: &EditModel, block_size: u64) -> f64 {
    let b = block_size.max(1) as f64;
    let n = m.file_len as f64;
    let n_blocks = (n / b).ceil();
    let upstream = 6.0 * n_blocks + 17.0;
    let dirty_blocks = ((m.cluster_bytes as f64 / b).ceil() + 1.0) * m.clusters as f64;
    let dirty_blocks = dirty_blocks.min(n_blocks);
    let literals = dirty_blocks * b * m.literal_ratio;
    let tokens = 2.0 * (n_blocks - dirty_blocks).max(0.0);
    upstream + literals + tokens
}

/// The block size minimizing [`rsync_cost`]: balancing `6n/b` of
/// signatures against `k·b·ρ` of dirtied literals gives
/// `b* = sqrt(6n / (k·ρ))`, clamped to a sane range. This is the
/// closed form behind the paper's observation that "the choice of block
/// size ... depends on the degree of similarity between the two files —
/// the more similar, the larger the optimal block size".
pub fn rsync_optimal_block(m: &EditModel) -> u64 {
    let k = m.clusters.max(1) as f64;
    let b = (6.0 * m.file_len as f64 / (k * m.literal_ratio.max(0.01))).sqrt();
    (b as u64).clamp(64, 16_384).next_power_of_two()
}

/// Predicted map-construction bits for the basic multi-round protocol
/// with start block `s`, minimum block `min_b`, and `bits` per global
/// hash: each edit cluster keeps ~2 blocks unmatched per level (its two
/// boundary blocks), so level `ℓ` sends hashes for about `2k` blocks
/// once the block size drops below the inter-cluster spacing, and the
/// final unmatched area is ~`2·min_b` per cluster plus the cluster
/// bytes themselves (which travel as delta literals).
pub fn msync_cost(m: &EditModel, start_block: u64, min_block: u64, hash_bits: u32) -> f64 {
    let k = m.clusters.max(1) as f64;
    let n = m.file_len as f64;
    let mut bits = 0.0f64;
    let mut b = start_block as f64;
    while b >= min_block as f64 {
        let blocks_at_level = (n / b).ceil();
        // Unmatched blocks at this level ≈ the 2 boundary blocks per
        // cluster, capped by the level's block count.
        let active = (2.0 * k).min(blocks_at_level);
        bits += active * hash_bits as f64;
        // Verification ≈ 16 bits per confirmed candidate (~half).
        bits += active * 0.5 * 16.0;
        b /= 2.0;
    }
    let map_bytes = bits / 8.0;
    let delta_bytes = (k * (m.cluster_bytes as f64 + 2.0 * min_block as f64)) * m.literal_ratio
        + k * 4.0 // copy-op overhead per known area boundary
        + 40.0; // table headers
    map_bytes + delta_bytes + 34.0 // fingerprints both ways
}

/// Expected number of *false* candidate positions per transmitted
/// global hash: `old_len` positions each colliding with probability
/// `2^-bits` (paper §5.2's motivation for `log n + extra`-bit hashes).
pub fn expected_false_candidates(old_len: u64, hash_bits: u32) -> f64 {
    old_len as f64 / (1u64 << hash_bits.min(63)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EditModel {
        EditModel { file_len: 100_000, clusters: 10, cluster_bytes: 200, literal_ratio: 0.4 }
    }

    #[test]
    fn rsync_cost_is_u_shaped() {
        let m = model();
        let costs: Vec<f64> =
            [64u64, 256, 1024, 4096, 16_384].iter().map(|&b| rsync_cost(&m, b)).collect();
        let min_idx = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert!(min_idx > 0 && min_idx < costs.len() - 1, "optimum must be interior: {costs:?}");
    }

    #[test]
    fn optimal_block_tracks_similarity() {
        // Fewer clusters (more similar files) → larger optimal block.
        let few = EditModel { clusters: 2, ..model() };
        let many = EditModel { clusters: 200, ..model() };
        assert!(rsync_optimal_block(&few) > rsync_optimal_block(&many));
    }

    #[test]
    fn formula_optimum_is_near_grid_optimum() {
        let m = model();
        let formula = rsync_optimal_block(&m);
        let grid = (6..=14)
            .map(|p| 1u64 << p)
            .min_by(|&a, &b| rsync_cost(&m, a).partial_cmp(&rsync_cost(&m, b)).expect("finite"))
            .expect("non-empty grid");
        assert!(
            formula == grid || formula == grid * 2 || formula * 2 == grid,
            "formula {formula} vs grid {grid}"
        );
    }

    #[test]
    fn msync_beats_rsync_in_the_model_too() {
        // The model reproduces the headline: for localized edits the
        // multi-round protocol undercuts rsync at its optimal block.
        let m = model();
        let rsync_best = rsync_cost(&m, rsync_optimal_block(&m));
        let msync_pred = msync_cost(&m, 1 << 15, 64, 25);
        assert!(msync_pred < rsync_best, "model: msync {msync_pred:.0} vs rsync {rsync_best:.0}");
    }

    #[test]
    fn false_candidate_scaling() {
        assert!((expected_false_candidates(1 << 20, 20) - 1.0).abs() < 1e-9);
        assert!((expected_false_candidates(1 << 20, 28) - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn model_matches_simulator_within_factor_two() {
        // Cross-check: synthesize a file with the model's edit pattern
        // and compare predicted vs simulated rsync cost at two block
        // sizes. The model is a bound-flavored estimate; factor-2
        // agreement is the bar (the paper's models are of the same
        // fidelity).
        let n = 120_000usize;
        let clusters = 8usize;
        let cluster_bytes = 150usize;
        let mut state = 0xABCDu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let old: Vec<u8> = (0..n).map(|_| (rnd() >> 56) as u8).collect();
        let mut new = old.clone();
        for c in 0..clusters {
            let at = (n / clusters) * c + 1000;
            for i in 0..cluster_bytes {
                new[at + i] = (rnd() >> 56) as u8;
            }
        }
        let m = EditModel {
            file_len: n as u64,
            clusters: clusters as u64,
            cluster_bytes: cluster_bytes as u64,
            literal_ratio: 1.0, // random bytes do not compress
        };
        for block in [512u64, 2048] {
            let predicted = rsync_cost(&m, block);
            let actual = msync_rsync::sync(&old, &new, block as usize).stats.total_bytes() as f64;
            let ratio = predicted / actual;
            assert!(
                (0.5..2.0).contains(&ratio),
                "block {block}: predicted {predicted:.0} vs actual {actual:.0}"
            );
        }
    }
}
