//! The client's position index: where in the old file does each hash
//! value occur?
//!
//! For each round with global hashes, the client scans `f_old` once with
//! the rolling decomposable checksum at the round's window size and
//! stores `truncated hash → positions`. An incoming global hash then
//! finds its candidate positions in O(1) — the same trick as rsync's
//! hash table, one scan per block size (this is the "repeated passes over
//! the data" the paper's CPU discussion refers to).

use msync_hash::decomposable::{DecomposableAdler, DecomposableDigest};
use msync_hash::rolling::scan_rolling;
use msync_hash::truncate_bits;
use std::collections::HashMap;

/// Hash-value → old-file positions for one window size.
#[derive(Debug)]
pub struct PositionIndex {
    map: HashMap<u64, Vec<u32>>,
    window: usize,
    bits: u32,
}

impl PositionIndex {
    /// Scan `old` at `window` bytes, keeping up to `max_positions`
    /// positions per `bits`-bit hash value.
    pub fn build(old: &[u8], window: usize, bits: u32, max_positions: usize) -> Self {
        let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
        if window > 0 && old.len() >= window {
            let mut h = DecomposableAdler::new();
            scan_rolling(&mut h, old, window, |pos, value| {
                let key = truncate_bits(value, bits);
                let entry = map.entry(key).or_default();
                if entry.len() < max_positions {
                    entry.push(pos as u32);
                }
            });
        }
        Self { map, window, bits }
    }

    /// Candidate positions for a truncated hash value.
    pub fn lookup(&self, hash: u64) -> &[u32] {
        self.map.get(&hash).map_or(&[], |v| v.as_slice())
    }

    /// Window size this index was built for.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Hash width this index was built for.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

/// Compare a `bits`-bit hash against a single predicted position
/// (continuation probes): does `old[pos..pos+len]` hash to `target`?
pub fn matches_at(old: &[u8], pos: i64, len: usize, bits: u32, target: u64) -> bool {
    if pos < 0 || (pos as usize) + len > old.len() {
        return false;
    }
    let d = DecomposableDigest::of(&old[pos as usize..pos as usize + len]);
    d.prefix(bits) == target
}

/// Scan the neighborhood `[lo, hi)` of the old file for a window whose
/// `bits`-bit hash equals `target` (local hashes). Returns the first
/// matching position.
pub fn scan_neighborhood(
    old: &[u8],
    lo: i64,
    hi: i64,
    len: usize,
    bits: u32,
    target: u64,
) -> Option<u64> {
    let lo = lo.max(0) as usize;
    let hi = (hi.max(0) as usize).min(old.len());
    if len == 0 || lo + len > hi {
        return None;
    }
    let region = &old[lo..hi];
    let mut found = None;
    let mut h = DecomposableAdler::new();
    scan_rolling(&mut h, region, len, |pos, value| {
        if found.is_none() && truncate_bits(value, bits) == target {
            found = Some((lo + pos) as u64);
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn index_finds_every_block() {
        let old = data(2048);
        let idx = PositionIndex::build(&old, 64, 30, 4);
        for start in (0..2048 - 64).step_by(64) {
            let h = DecomposableDigest::of(&old[start..start + 64]).prefix(30);
            let positions = idx.lookup(h);
            assert!(positions.contains(&(start as u32)), "position {start} missing");
        }
    }

    #[test]
    fn lookup_missing_value_empty() {
        let old = data(256);
        let idx = PositionIndex::build(&old, 32, 24, 4);
        // A value that cannot be a 24-bit truncation.
        assert!(idx.lookup(1 << 40).is_empty());
    }

    #[test]
    fn max_positions_cap() {
        let old = vec![0u8; 1000]; // every window identical
        let idx = PositionIndex::build(&old, 16, 20, 3);
        let h = DecomposableDigest::of(&old[..16]).prefix(20);
        assert_eq!(idx.lookup(h).len(), 3);
    }

    #[test]
    fn window_longer_than_file() {
        let idx = PositionIndex::build(b"short", 64, 20, 4);
        assert!(idx.map.is_empty());
        assert_eq!(idx.window(), 64);
        assert_eq!(idx.bits(), 20);
    }

    #[test]
    fn matches_at_predicted_position() {
        let old = data(512);
        let target = DecomposableDigest::of(&old[100..132]).prefix(4);
        assert!(matches_at(&old, 100, 32, 4, target));
        assert!(!matches_at(&old, -1, 32, 4, target));
        assert!(!matches_at(&old, 500, 32, 4, target)); // out of bounds
    }

    #[test]
    fn neighborhood_scan_finds_shifted_match() {
        let old = data(1024);
        let target = DecomposableDigest::of(&old[300..364]).prefix(24);
        let pos = scan_neighborhood(&old, 250, 420, 64, 24, target);
        assert_eq!(pos, Some(300));
        // Outside the window: not found.
        assert_eq!(scan_neighborhood(&old, 0, 200, 64, 24, target), None);
    }

    #[test]
    fn neighborhood_degenerate_ranges() {
        let old = data(128);
        assert_eq!(scan_neighborhood(&old, 100, 50, 16, 8, 0), None);
        assert_eq!(scan_neighborhood(&old, -50, -10, 16, 8, 0), None);
        assert_eq!(scan_neighborhood(&old, 0, 128, 0, 8, 0), None);
    }
}
