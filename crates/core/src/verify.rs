//! Match-verification state machine (paper §5.3).
//!
//! Candidates found by weak hashes must be verified "beyond a reasonable
//! doubt". The paper models this as group testing with one-sided errors:
//! a test asks *are all candidates in this group true matches?* — a group
//! of true matches always passes; a group containing a false match fails
//! except with probability `2^-bits`.
//!
//! The state machine is driven identically on both endpoints: the group
//! structure of each batch is a pure function of the candidate count, the
//! strategy, and the pass/fail results of earlier batches, so only hash
//! values and result bitmaps ever cross the wire.

use crate::config::{BatchConfig, VerifyStrategy};

/// Verification progress for one round's candidates.
#[derive(Debug, Clone)]
pub struct VerifyState {
    batches: Vec<BatchConfig>,
    batch_idx: usize,
    /// Groups of the current batch (indices into the candidate list).
    groups: Vec<Vec<usize>>,
    confirmed: Vec<usize>,
    rejected: Vec<usize>,
}

/// What happens after a batch's results are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Another batch follows (one more verification roundtrip).
    NextBatch,
    /// Verification finished for this round.
    Done,
}

impl VerifyState {
    /// Start verification of `candidate_count` candidates.
    pub fn new(strategy: &VerifyStrategy, candidate_count: usize) -> Self {
        let batches = match strategy {
            VerifyStrategy::PerCandidate { bits } => {
                vec![BatchConfig { group_size: 1, bits: *bits }]
            }
            VerifyStrategy::GroupTesting { batches } => batches.clone(),
        };
        let pending: Vec<usize> = (0..candidate_count).collect();
        let groups = form_groups(&pending, batches[0].group_size);
        Self { batches, batch_idx: 0, groups, confirmed: Vec::new(), rejected: Vec::new() }
    }

    /// The current batch's configuration.
    pub fn batch_config(&self) -> BatchConfig {
        self.batches[self.batch_idx]
    }

    /// Groups awaiting verification in the current batch.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Is there anything to verify at all?
    pub fn is_trivially_done(&self) -> bool {
        self.groups.is_empty()
    }

    /// Apply the pass/fail bitmap for the current batch (one bool per
    /// group, in group order). Returns whether another batch follows.
    ///
    /// Members of passing groups are confirmed. Members of failing
    /// singleton groups are rejected outright. Members of failing larger
    /// groups are *salvaged* into the next batch when one remains,
    /// otherwise rejected.
    pub fn apply_results(&mut self, results: &[bool]) -> StepOutcome {
        debug_assert_eq!(results.len(), self.groups.len());
        let mut unresolved = Vec::new();
        for (group, &passed) in self.groups.iter().zip(results) {
            if passed {
                self.confirmed.extend_from_slice(group);
            } else if group.len() == 1 {
                self.rejected.extend_from_slice(group);
            } else {
                unresolved.extend_from_slice(group);
            }
        }
        self.batch_idx += 1;
        if unresolved.is_empty() || self.batch_idx >= self.batches.len() {
            self.rejected.extend_from_slice(&unresolved);
            self.groups.clear();
            return StepOutcome::Done;
        }
        self.groups = form_groups(&unresolved, self.batches[self.batch_idx].group_size);
        StepOutcome::NextBatch
    }

    /// Confirmed candidate indices (valid once `Done`).
    pub fn confirmed(&self) -> &[usize] {
        &self.confirmed
    }

    /// Rejected candidate indices (valid once `Done`).
    pub fn rejected(&self) -> &[usize] {
        &self.rejected
    }
}

fn form_groups(pending: &[usize], group_size: usize) -> Vec<Vec<usize>> {
    pending.chunks(group_size.max(1)).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_strategy() -> VerifyStrategy {
        VerifyStrategy::GroupTesting {
            batches: vec![
                BatchConfig { group_size: 4, bits: 12 },
                BatchConfig { group_size: 1, bits: 16 },
            ],
        }
    }

    #[test]
    fn per_candidate_single_batch() {
        let mut v = VerifyState::new(&VerifyStrategy::PerCandidate { bits: 16 }, 3);
        assert_eq!(v.groups().len(), 3);
        assert_eq!(v.apply_results(&[true, false, true]), StepOutcome::Done);
        assert_eq!(v.confirmed(), &[0, 2]);
        assert_eq!(v.rejected(), &[1]);
    }

    #[test]
    fn group_salvage_flow() {
        let mut v = VerifyState::new(&group_strategy(), 10);
        // Groups: [0..4], [4..8], [8..10]
        assert_eq!(v.groups().len(), 3);
        assert_eq!(v.batch_config().bits, 12);
        // Second group fails → its 4 members go to singleton batch 2.
        assert_eq!(v.apply_results(&[true, false, true]), StepOutcome::NextBatch);
        assert_eq!(v.groups().len(), 4);
        assert_eq!(v.batch_config().bits, 16);
        assert_eq!(v.apply_results(&[true, true, false, true]), StepOutcome::Done);
        let mut confirmed = v.confirmed().to_vec();
        confirmed.sort_unstable();
        assert_eq!(confirmed, vec![0, 1, 2, 3, 4, 5, 7, 8, 9]);
        assert_eq!(v.rejected(), &[6]);
    }

    #[test]
    fn all_pass_first_batch_finishes_early() {
        let mut v = VerifyState::new(&group_strategy(), 8);
        assert_eq!(v.apply_results(&[true, true]), StepOutcome::Done);
        assert_eq!(v.confirmed().len(), 8);
        assert!(v.rejected().is_empty());
    }

    #[test]
    fn failed_group_at_last_batch_rejected_wholesale() {
        let strategy =
            VerifyStrategy::GroupTesting { batches: vec![BatchConfig { group_size: 4, bits: 12 }] };
        let mut v = VerifyState::new(&strategy, 4);
        assert_eq!(v.apply_results(&[false]), StepOutcome::Done);
        assert!(v.confirmed().is_empty());
        assert_eq!(v.rejected().len(), 4);
    }

    #[test]
    fn zero_candidates() {
        let v = VerifyState::new(&group_strategy(), 0);
        assert!(v.is_trivially_done());
        assert!(v.groups().is_empty());
    }

    #[test]
    fn partial_final_group_smaller() {
        let v = VerifyState::new(&group_strategy(), 5);
        assert_eq!(v.groups().len(), 2);
        assert_eq!(v.groups()[1].len(), 1);
    }
}
