//! # msync-core — multi-round file synchronization
//!
//! The paper's primary contribution: a two-phase framework for updating
//! an outdated file replica over a slow link with far less traffic than
//! rsync.
//!
//! **Phase 1 — map construction** ([`session`]): over multiple rounds of
//! shrinking block sizes, the server sends weak hashes of its file's
//! blocks and the client identifies which blocks it already holds,
//! verified with an optimized group-testing sub-protocol. The techniques
//! of paper §5 are all here:
//!
//! * recursive splitting of unmatched blocks ([`items`]),
//! * optimized match verification via group testing with salvage
//!   ([`verify`]),
//! * continuation hashes that extend confirmed matches with 3–4-bit
//!   hashes, and local hashes scanned in a predicted neighborhood
//!   ([`items`], [`index`]),
//! * decomposable hash functions that let every other sibling hash be
//!   derived instead of transmitted
//!   ([`msync_hash::decomposable`]).
//!
//! **Phase 2 — delta compression** ([`session`]): both sides assemble the
//! identical reference string from the map's known areas; the server
//! sends a zdelta-style delta of the current file against it.
//!
//! [`collection`] scales the session to whole replicated collections
//! (the paper's target workload), skipping unchanged files by
//! fingerprint and batching rounds across files so roundtrip counts stay
//! independent of collection size.
//!
//! ## Example
//!
//! ```
//! use msync_core::{sync_file, ProtocolConfig};
//!
//! let old = b"the quick brown fox jumps over the lazy dog. ".repeat(200);
//! let mut new = old.clone();
//! new.truncate(6_000);
//! new.extend_from_slice(b"and then the story changes completely...");
//!
//! let out = sync_file(&old, &new, &ProtocolConfig::default()).unwrap();
//! assert_eq!(out.reconstructed, new);
//! assert!(out.stats.total_bytes() < new.len() as u64 / 4);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptive;
pub mod analysis;
pub mod apply;
pub mod broadcast;
pub mod collection;
pub mod config;
pub mod coverage;
pub mod engine;
pub mod index;
pub mod items;
pub mod map;
pub mod params;
pub mod pipeline;
pub mod resume;
pub mod session;
pub mod snapshot;
pub mod stats;
pub mod verify;

pub use adaptive::{sync_collection_adaptive, sync_file_adaptive, AdaptiveOutcome};
pub use apply::{atomic_write_file, AtomicApplier, TEMP_SUFFIX};
pub use broadcast::{sync_broadcast, BroadcastOutcome};
pub use collection::{
    sync_collection, sync_collection_traced, sync_collection_with, CollectionOutcome, FileEntry,
    ReconStrategy,
};
pub use config::{BatchConfig, ChannelOptions, ProtocolConfig, VerifyStrategy};
pub use engine::{
    ClientDone, ClientMachine, CollectionClientMachine, CollectionServeMachine, CompletedFile,
    Machine, Output, ServerMachine,
};
pub use map::{FileMap, Segment};
pub use pipeline::{serve_collection, sync_collection_client, PipelineOptions, ServeOutcome};
pub use resume::{
    config_digest, load_checkpoint, CacheEntry, CheckpointLog, MetadataCache, ResumePlan,
    SessionCheckpoint, STATE_VERSION,
};
pub use session::{
    serve_file_transport, sync_file, sync_file_transport, sync_file_transport_as, sync_file_with,
    SyncError, SyncOptions, SyncOutcome,
};
pub use snapshot::{CollectionSnapshot, HashCache, SessionCache};
pub use stats::{LevelStats, SyncStats};
