//! Pipelined collection synchronization over a real transport.
//!
//! [`crate::collection::sync_collection`] models the collection
//! workload analytically: it runs each file's session in-process and
//! merges the accounting. This module is the wire version — a client
//! and a server that only share a [`Transport`], suitable for the
//! in-memory [`Endpoint`](msync_protocol::Endpoint) pair or a TCP
//! socket.
//!
//! The paper's observation (§1) is that roundtrip latencies need not be
//! paid per file "since many files can be processed simultaneously".
//! The scheduler here realizes that: up to `depth` files are in flight
//! at once, and each ARQ exchange carries **one batch frame per
//! direction** holding the current round message of every in-flight
//! file. A 1,000-file collection at depth 32 therefore pays roughly
//! `ceil(1000/32) × rounds` flushes instead of `1000 × rounds`.
//!
//! ## Wire schedule
//!
//! 1. Client sends its sorted file-name roster (one `Setup` message).
//! 2. Server replies with *its* sorted roster; the index of a name in
//!    that listing becomes the file id used by every later batch.
//! 3. Repeat until the client has no in-flight files: client packs one
//!    message per in-flight file into a batch frame; server feeds each
//!    file's message to that file's [`ServerSession`] and packs the
//!    replies into the mirror batch. Files finish at their own pace;
//!    freed slots admit the next unstarted file in roster order.
//! 4. The client hangs up; the server treats the peer-gone condition
//!    as the normal end of service and lingers briefly for stragglers.
//!
//! Deletions never cross the wire: the client computes them locally as
//! its names minus the server roster. Renames are not detected on this
//! path (the analytic `sync_collection` models them); a renamed file
//! costs a create plus a delete here.

use std::collections::{HashMap, HashSet};

use msync_hash::{BitReader, BitWriter};
use msync_protocol::{Direction, Phase, RetryPolicy, TrafficStats, Transport};
use msync_trace::{EventKind, HistKind};

use crate::collection::{CollectionOutcome, FileEntry};
use crate::config::ProtocolConfig;
use crate::session::{
    parse_part_header, part_header, ArqLink, ClientAction, ClientSession, Part, SState,
    ServerSession, SyncError, MAX_PARTS_PER_MESSAGE,
};
use crate::stats::SyncStats;

/// Upper bound on files in one collection roster. A count above this in
/// a decoded roster or batch is treated as a desync, not an allocation
/// request.
const MAX_COLLECTION_FILES: u64 = 1 << 20;

/// Upper bound on a single file name in a roster.
const MAX_NAME_BYTES: u64 = 4096;

/// Knobs for the pipelined client.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Maximum files in flight at once (minimum 1). Each wire flush
    /// carries one round message for every in-flight file, so depth
    /// trades memory for fewer roundtrips.
    pub depth: usize,
    /// ARQ retry policy for the underlying link.
    pub retry: RetryPolicy,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self { depth: 32, retry: RetryPolicy::default() }
    }
}

/// What the server side saw while serving one connection.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Files in the served collection (the roster length).
    pub files: usize,
    /// Files the client actually engaged with a session.
    pub sessions: usize,
    /// Wire traffic as measured by the server's transport.
    pub traffic: TrafficStats,
}

fn encode_roster(names: &[&str]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_varint(names.len() as u64);
    for name in names {
        w.write_varint(name.len() as u64);
        for &b in name.as_bytes() {
            w.write_bits(u64::from(b), 8);
        }
    }
    w.into_bytes()
}

fn decode_roster(payload: &[u8]) -> Result<Vec<String>, SyncError> {
    let mut r = BitReader::new(payload);
    let count = r.read_varint().map_err(|_| SyncError::Desync("roster count"))?;
    if count > MAX_COLLECTION_FILES {
        return Err(SyncError::Desync("roster count exceeds cap"));
    }
    let count = usize::try_from(count).map_err(|_| SyncError::Desync("roster count"))?;
    let mut names = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let len = r.read_varint().map_err(|_| SyncError::Desync("roster name len"))?;
        if len > MAX_NAME_BYTES {
            return Err(SyncError::Desync("roster name too long"));
        }
        let len = usize::try_from(len).map_err(|_| SyncError::Desync("roster name len"))?;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            let b = r.read_bits(8).map_err(|_| SyncError::Desync("roster name byte"))?;
            bytes.push(u8::try_from(b).map_err(|_| SyncError::Desync("roster name byte"))?);
        }
        let name =
            String::from_utf8(bytes).map_err(|_| SyncError::Desync("roster name not UTF-8"))?;
        names.push(name);
    }
    Ok(names)
}

/// Pack one round message per in-flight file into a single frame
/// payload: `varint n, then per file (varint id, varint n_parts, per
/// part: 1 phase byte, varint len, payload bytes)`.
fn encode_batch(entries: &[(usize, Vec<Part>)]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_varint(entries.len() as u64);
    for (id, parts) in entries {
        w.write_varint(*id as u64);
        w.write_varint(parts.len() as u64);
        for part in parts {
            w.write_bits(u64::from(part_header(part.phase, false)), 8);
            w.write_varint(part.payload.len() as u64);
            for &b in &part.payload {
                w.write_bits(u64::from(b), 8);
            }
        }
    }
    w.into_bytes()
}

fn decode_batch(payload: &[u8]) -> Result<Vec<(usize, Vec<Part>)>, SyncError> {
    let mut r = BitReader::new(payload);
    let count = r.read_varint().map_err(|_| SyncError::Desync("batch count"))?;
    if count > MAX_COLLECTION_FILES {
        return Err(SyncError::Desync("batch count exceeds cap"));
    }
    let count = usize::try_from(count).map_err(|_| SyncError::Desync("batch count"))?;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let id = r.read_varint().map_err(|_| SyncError::Desync("batch file id"))?;
        if id >= MAX_COLLECTION_FILES {
            return Err(SyncError::Desync("batch file id exceeds cap"));
        }
        let id = usize::try_from(id).map_err(|_| SyncError::Desync("batch file id"))?;
        let n_parts = r.read_varint().map_err(|_| SyncError::Desync("batch part count"))?;
        if n_parts == 0 || n_parts > MAX_PARTS_PER_MESSAGE as u64 {
            return Err(SyncError::Desync("batch part count out of range"));
        }
        let n_parts = usize::try_from(n_parts).map_err(|_| SyncError::Desync("batch parts"))?;
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let header = r.read_bits(8).map_err(|_| SyncError::Desync("batch part header"))?;
            let header = u8::try_from(header).map_err(|_| SyncError::Desync("batch header"))?;
            let (phase, _more) =
                parse_part_header(header).ok_or(SyncError::Desync("batch phase tag"))?;
            let len = r.read_varint().map_err(|_| SyncError::Desync("batch part len"))?;
            let len = usize::try_from(len).map_err(|_| SyncError::Desync("batch part len"))?;
            let bits = len.checked_mul(8).ok_or(SyncError::Desync("batch part len"))?;
            if bits > r.remaining_bits() {
                return Err(SyncError::Desync("batch part truncated"));
            }
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                let b = r.read_bits(8).map_err(|_| SyncError::Desync("batch part byte"))?;
                bytes.push(u8::try_from(b).map_err(|_| SyncError::Desync("batch byte"))?);
            }
            parts.push(Part { phase, payload: bytes });
        }
        out.push((id, parts));
    }
    Ok(out)
}

/// Per-file client state while the pipeline runs.
struct Slot<'a> {
    session: ClientSession<'a>,
    old_data: &'a [u8],
    existed: bool,
    traffic: TrafficStats,
    done: Option<(Vec<u8>, bool)>,
    /// Recorder timestamp at admission (0 when tracing is off).
    t0_us: u64,
}

/// Sync the local `old` collection against a remote server over `t`,
/// with up to [`PipelineOptions::depth`] files in flight per flush.
///
/// The returned outcome's `traffic` is the transport's own wire
/// accounting (framing and ARQ retransmits included); `per_file`
/// carries payload-level per-file costs attributed by phase.
pub fn sync_collection_client(
    t: &mut dyn Transport,
    old: &[FileEntry],
    cfg: &ProtocolConfig,
    opts: &PipelineOptions,
) -> Result<CollectionOutcome, SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let depth = opts.depth.max(1);
    let rec = t.recorder();
    let mut link = ArqLink::client(t, opts.retry);

    // 1. Roster exchange: our names out (sorted for determinism), the
    // server's names back. Server roster order defines file ids.
    let mut my_names: Vec<&str> = old.iter().map(|f| f.name.as_str()).collect();
    my_names.sort_unstable();
    link.send_message(vec![Part { phase: Phase::Setup, payload: encode_roster(&my_names) }])?;
    let reply = link.recv_message()?;
    let roster_part = reply.first().ok_or(SyncError::Desync("missing server roster"))?;
    let server_names = decode_roster(&roster_part.payload)?;
    let n = server_names.len();

    let old_by_name: HashMap<&str, &FileEntry> = old.iter().map(|f| (f.name.as_str(), f)).collect();
    let server_set: HashSet<&str> = server_names.iter().map(String::as_str).collect();
    let deleted = old.iter().filter(|f| !server_set.contains(f.name.as_str())).count();

    const EMPTY: &[u8] = &[];
    let mut slots: Vec<Slot<'_>> = server_names
        .iter()
        .enumerate()
        .map(|(id, name)| {
            let old_entry = old_by_name.get(name.as_str()).copied();
            let old_data = old_entry.map_or(EMPTY, |f| f.data.as_slice());
            let mut session = ClientSession::new(old_data, cfg);
            session.recorder = rec.clone();
            session.file_id = id as u64;
            Slot {
                session,
                old_data,
                existed: old_entry.is_some(),
                traffic: TrafficStats::new(),
                done: None,
                t0_us: 0,
            }
        })
        .collect();

    // 2. Windowed batch loop: admit files in roster order as slots
    // free, one ARQ message per direction per flush.
    let mut outbox: Vec<(usize, Vec<Part>)> = Vec::new();
    let mut next_admit = 0usize;
    let mut in_flight = 0usize;
    let mut done_count = 0usize;
    while next_admit < n && in_flight < depth {
        let id = next_admit;
        next_admit += 1;
        in_flight += 1;
        rec.record(EventKind::SessionStart { file_id: id as u64 });
        slots[id].t0_us = rec.now_micros();
        let part = slots[id].session.request();
        slots[id].traffic.record(Direction::ClientToServer, part.phase, part.payload.len() as u64);
        outbox.push((id, vec![part]));
    }
    if rec.is_enabled() && n > 0 {
        rec.record(EventKind::WindowAdvance {
            in_flight: in_flight as u64,
            admitted: next_admit as u64,
            done: done_count as u64,
        });
    }
    while !outbox.is_empty() {
        let batch = encode_batch(&outbox);
        let mut expected: HashSet<usize> = outbox.iter().map(|(id, _)| *id).collect();
        outbox.clear();
        link.send_message(vec![Part { phase: Phase::Map, payload: batch }])?;
        let reply = link.recv_message()?;
        let part = reply.first().ok_or(SyncError::Desync("empty batch reply"))?;
        for (id, parts) in decode_batch(&part.payload)? {
            if !expected.remove(&id) {
                return Err(SyncError::Desync("batch reply for a file not in flight"));
            }
            let slot = slots.get_mut(id).ok_or(SyncError::Desync("batch id out of range"))?;
            for p in &parts {
                slot.traffic.record(Direction::ServerToClient, p.phase, p.payload.len() as u64);
            }
            match slot.session.handle(parts)? {
                ClientAction::Done { data, fell_back } => {
                    if rec.is_enabled() {
                        rec.observe(
                            HistKind::SessionDuration,
                            rec.now_micros().saturating_sub(slot.t0_us),
                        );
                        rec.record(EventKind::SessionEnd {
                            file_id: id as u64,
                            ok: true,
                            fell_back,
                        });
                    }
                    slot.done = Some((data, fell_back));
                    in_flight -= 1;
                    done_count += 1;
                }
                ClientAction::Reply(cparts) => {
                    if cparts.is_empty() {
                        return Err(SyncError::Desync("session yielded no reply"));
                    }
                    for p in &cparts {
                        slot.traffic.record(
                            Direction::ClientToServer,
                            p.phase,
                            p.payload.len() as u64,
                        );
                    }
                    outbox.push((id, cparts));
                }
            }
        }
        if !expected.is_empty() {
            return Err(SyncError::Desync("batch reply missing an in-flight file"));
        }
        while next_admit < n && in_flight < depth {
            let id = next_admit;
            next_admit += 1;
            in_flight += 1;
            rec.record(EventKind::SessionStart { file_id: id as u64 });
            slots[id].t0_us = rec.now_micros();
            let part = slots[id].session.request();
            slots[id].traffic.record(
                Direction::ClientToServer,
                part.phase,
                part.payload.len() as u64,
            );
            outbox.push((id, vec![part]));
        }
        if rec.is_enabled() {
            rec.record(EventKind::WindowAdvance {
                in_flight: in_flight as u64,
                admitted: next_admit as u64,
                done: done_count as u64,
            });
        }
    }

    // 3. Assemble the outcome in roster (sorted-name) order.
    let traffic = link.stats();
    let mut files = Vec::with_capacity(n);
    let mut per_file = Vec::with_capacity(n);
    let mut unchanged = 0usize;
    let mut created = 0usize;
    let mut fell_back = 0usize;
    for (name, slot) in server_names.iter().zip(slots) {
        let (data, fb) = slot.done.ok_or(SyncError::Desync("file never completed"))?;
        if !slot.existed {
            created += 1;
        }
        if fb {
            fell_back += 1;
        }
        let levels = slot.session.levels;
        if slot.existed && levels.is_empty() && data.as_slice() == slot.old_data {
            unchanged += 1;
        }
        let stats = SyncStats {
            traffic: slot.traffic,
            levels,
            known_bytes: slot.session.map.known_bytes(),
            delta_bytes: slot.session.delta_bytes,
        };
        per_file.push((name.clone(), stats));
        files.push(FileEntry { name: name.clone(), data });
    }
    Ok(CollectionOutcome {
        files,
        traffic,
        per_file,
        unchanged,
        created,
        renamed: 0,
        deleted,
        fell_back,
    })
}

/// Server-side per-file session state.
enum ServeSlot<'a> {
    Idle,
    Running(ServerSession<'a>),
    Finished,
}

/// Serve the `new` collection to one pipelined client over `t`.
///
/// A vanished peer after the roster exchange is the normal end of
/// service (the client simply hangs up once every file is done), not
/// an error; protocol violations still surface as [`SyncError`].
pub fn serve_collection(
    t: &mut dyn Transport,
    new: &[FileEntry],
    cfg: &ProtocolConfig,
    retry: RetryPolicy,
) -> Result<ServeOutcome, SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let mut link = ArqLink::server(t, retry);

    let first = match link.recv_message() {
        Ok(parts) => parts,
        // The peer connected and said nothing — nothing was served.
        Err(_) => return Ok(ServeOutcome { files: new.len(), sessions: 0, traffic: link.stats() }),
    };
    let roster_part = first.first().ok_or(SyncError::Desync("empty client roster"))?;
    // The client's roster is advisory (it computes creates and deletes
    // itself); decoding it validates the handshake.
    decode_roster(&roster_part.payload)?;

    let mut new_sorted: Vec<&FileEntry> = new.iter().collect();
    new_sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let names: Vec<&str> = new_sorted.iter().map(|f| f.name.as_str()).collect();
    link.send_message(vec![Part { phase: Phase::Setup, payload: encode_roster(&names) }])?;

    let n = new_sorted.len();
    let mut slots: Vec<ServeSlot<'_>> = (0..n).map(|_| ServeSlot::Idle).collect();
    let mut sessions = 0usize;
    loop {
        let msg = match link.recv_message() {
            Ok(m) => m,
            // Peer gone or silent: the client is done with us.
            Err(_) => break,
        };
        let part = msg.first().ok_or(SyncError::Desync("empty batch message"))?;
        let mut out: Vec<(usize, Vec<Part>)> = Vec::new();
        for (id, parts) in decode_batch(&part.payload)? {
            let slot = slots.get_mut(id).ok_or(SyncError::Desync("batch id out of range"))?;
            let reply = match slot {
                ServeSlot::Idle => {
                    let entry = new_sorted.get(id).ok_or(SyncError::Desync("batch id"))?;
                    let mut session = ServerSession::new(&entry.data, cfg);
                    let p0 = parts.first().ok_or(SyncError::Desync("empty file message"))?;
                    let reply = session.on_request(&p0.payload)?;
                    sessions += 1;
                    *slot = ServeSlot::Running(session);
                    reply
                }
                ServeSlot::Running(session) => session.on_client(&parts)?,
                ServeSlot::Finished => {
                    return Err(SyncError::Desync("message for a finished file"))
                }
            };
            if let ServeSlot::Running(session) = slot {
                if session.state == SState::Done {
                    *slot = ServeSlot::Finished;
                }
            }
            out.push((id, reply));
        }
        link.send_message(vec![Part { phase: Phase::Map, payload: encode_batch(&out) }])?;
    }
    link.linger();
    Ok(ServeOutcome { files: n, sessions, traffic: link.stats() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msync_protocol::Endpoint;
    use std::thread;

    fn entry(name: &str, data: &[u8]) -> FileEntry {
        FileEntry::new(name, data.to_vec())
    }

    fn run_pair(
        old: &[FileEntry],
        new: &[FileEntry],
        cfg: &ProtocolConfig,
        depth: usize,
    ) -> (CollectionOutcome, ServeOutcome) {
        let (mut client_ep, mut server_ep) = Endpoint::pair();
        let server_files = new.to_vec();
        let server_cfg = cfg.clone();
        let handle = thread::spawn(move || {
            serve_collection(&mut server_ep, &server_files, &server_cfg, RetryPolicy::default())
        });
        let opts = PipelineOptions { depth, retry: RetryPolicy::default() };
        let out = sync_collection_client(&mut client_ep, old, cfg, &opts).unwrap();
        drop(client_ep);
        let srv = handle.join().unwrap().unwrap();
        (out, srv)
    }

    fn sorted_names(files: &[FileEntry]) -> Vec<&str> {
        files.iter().map(|f| f.name.as_str()).collect()
    }

    #[test]
    fn roster_roundtrips() {
        let names = ["a.txt", "dir/b.txt", "z"];
        let decoded = decode_roster(&encode_roster(&names)).unwrap();
        assert_eq!(decoded, names);
        assert!(decode_roster(&[0xff; 3]).is_err());
    }

    #[test]
    fn batch_roundtrips() {
        let entries = vec![
            (0usize, vec![Part { phase: Phase::Setup, payload: vec![1, 2, 3] }]),
            (
                7usize,
                vec![
                    Part { phase: Phase::Map, payload: vec![] },
                    Part { phase: Phase::Delta, payload: vec![9; 40] },
                ],
            ),
        ];
        let decoded = decode_batch(&encode_batch(&entries)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, 0);
        assert_eq!(decoded[0].1[0].payload, vec![1, 2, 3]);
        assert_eq!(decoded[1].0, 7);
        assert_eq!(decoded[1].1[1].phase, Phase::Delta);
        assert_eq!(decoded[1].1[1].payload, vec![9; 40]);
        assert!(decode_batch(&[0xff; 2]).is_err());
    }

    #[test]
    fn pipelined_collection_is_byte_exact() {
        let base = b"the quick brown fox jumps over the lazy dog. ".repeat(120);
        let mut changed = base.clone();
        changed.truncate(3_000);
        changed.extend_from_slice(b"a new ending entirely");
        let old = vec![
            entry("changed.txt", &base),
            entry("deleted.txt", b"goes away"),
            entry("same.txt", &base),
        ];
        let new = vec![
            entry("same.txt", &base),
            entry("changed.txt", &changed),
            entry("fresh.txt", b"brand new file body"),
        ];
        let cfg = ProtocolConfig::default();
        let (out, srv) = run_pair(&old, &new, &cfg, 8);

        assert_eq!(sorted_names(&out.files), vec!["changed.txt", "fresh.txt", "same.txt"]);
        let by_name: HashMap<&str, &[u8]> =
            new.iter().map(|f| (f.name.as_str(), f.data.as_slice())).collect();
        for f in &out.files {
            assert_eq!(f.data.as_slice(), by_name[f.name.as_str()], "{}", f.name);
        }
        assert_eq!(out.created, 1);
        assert_eq!(out.deleted, 1);
        assert_eq!(out.unchanged, 1);
        assert_eq!(srv.files, 3);
        assert_eq!(srv.sessions, 3);
        assert!(out.traffic.total_bytes() > 0);
    }

    #[test]
    fn deeper_pipelines_use_fewer_roundtrips() {
        let cfg = ProtocolConfig::default();
        let files: Vec<FileEntry> = (0..24)
            .map(|i| {
                let body = format!("file {i} body ").repeat(200);
                entry(&format!("f{i:03}.txt"), body.as_bytes())
            })
            .collect();
        let old: Vec<FileEntry> = files
            .iter()
            .map(|f| {
                let mut d = f.data.clone();
                d.truncate(d.len() / 2);
                d.extend_from_slice(b"divergent tail material");
                FileEntry::new(f.name.clone(), d)
            })
            .collect();

        let (seq, _) = run_pair(&old, &files, &cfg, 1);
        let (pipe, _) = run_pair(&old, &files, &cfg, 16);
        assert_eq!(sorted_names(&seq.files), sorted_names(&pipe.files));
        for (a, b) in seq.files.iter().zip(&pipe.files) {
            assert_eq!(a.data, b.data);
        }
        assert!(
            pipe.traffic.roundtrips < seq.traffic.roundtrips,
            "pipelined {} roundtrips vs sequential {}",
            pipe.traffic.roundtrips,
            seq.traffic.roundtrips
        );
    }

    #[test]
    fn empty_collections_terminate() {
        let cfg = ProtocolConfig::default();
        let old = vec![entry("only-local.txt", b"bytes")];
        let (out, srv) = run_pair(&old, &[], &cfg, 4);
        assert!(out.files.is_empty());
        assert_eq!(out.deleted, 1);
        assert_eq!(srv.files, 0);
        assert_eq!(srv.sessions, 0);

        let (out, srv) = run_pair(&[], &[], &cfg, 4);
        assert!(out.files.is_empty());
        assert_eq!(srv.sessions, 0);
    }

    #[test]
    fn client_from_nothing_receives_everything() {
        let cfg = ProtocolConfig::default();
        let new = vec![entry("a", b"alpha contents"), entry("b", &b"beta ".repeat(500))];
        let (out, _) = run_pair(&[], &new, &cfg, 4);
        assert_eq!(out.created, 2);
        assert_eq!(out.files.len(), 2);
        assert_eq!(out.files[0].data, b"alpha contents");
        assert_eq!(out.files[1].data, b"beta ".repeat(500));
    }
}
