//! Pipelined collection synchronization over a real transport.
//!
//! [`crate::collection::sync_collection`] models the collection
//! workload analytically: it runs each file's session in-process and
//! merges the accounting. This module is the wire version — a client
//! and a server that only share a [`Transport`], suitable for the
//! in-memory [`Endpoint`](msync_protocol::Endpoint) pair or a TCP
//! socket.
//!
//! The paper's observation (§1) is that roundtrip latencies need not be
//! paid per file "since many files can be processed simultaneously".
//! The scheduler here realizes that: up to `depth` files are in flight
//! at once, and each ARQ exchange carries **one batch frame per
//! direction** holding the current round message of every in-flight
//! file. A 1,000-file collection at depth 32 therefore pays roughly
//! `ceil(1000/32) × rounds` flushes instead of `1000 × rounds`.
//!
//! ## Wire schedule
//!
//! 1. Client sends its sorted file-name roster (one `Setup` message).
//! 2. Server replies with *its* sorted roster; the index of a name in
//!    that listing becomes the file id used by every later batch.
//! 3. Repeat until the client has no in-flight files: client packs one
//!    message per in-flight file into a batch frame; server feeds each
//!    file's message to that file's [`ServerSession`] and packs the
//!    replies into the mirror batch. Files finish at their own pace;
//!    freed slots admit the next unstarted file in roster order.
//! 4. The client hangs up; the server treats the peer-gone condition
//!    as the normal end of service and lingers briefly for stragglers.
//!
//! Deletions never cross the wire: the client computes them locally as
//! its names minus the server roster. Renames are not detected on this
//! path (the analytic `sync_collection` models them); a renamed file
//! costs a create plus a delete here.

use msync_hash::{BitReader, BitWriter, Fingerprint};
use msync_protocol::{RetryPolicy, TrafficStats, Transport};
use msync_trace::{Clock, ResumeRejectTag, SystemClock};

use crate::collection::{CollectionOutcome, FileEntry};
use crate::config::ProtocolConfig;
use crate::engine::arq::{parse_part_header, part_header, MAX_PARTS_PER_MESSAGE};
use crate::engine::{CollectionClientMachine, CollectionServeMachine, CompletedFile};
use crate::resume::ResumePlan;
use crate::session::{pump, pump_with, Part, SyncError};
use crate::snapshot::CollectionSnapshot;

/// Upper bound on files in one collection roster. A count above this in
/// a decoded roster or batch is treated as a desync, not an allocation
/// request.
const MAX_COLLECTION_FILES: u64 = 1 << 20;

/// Upper bound on a single file name in a roster.
const MAX_NAME_BYTES: u64 = 4096;

/// Knobs for the pipelined client.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Maximum files in flight at once (minimum 1). Each wire flush
    /// carries one round message for every in-flight file, so depth
    /// trades memory for fewer roundtrips.
    pub depth: usize,
    /// ARQ retry policy for the underlying link.
    pub retry: RetryPolicy,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self { depth: 32, retry: RetryPolicy::default() }
    }
}

/// What the server side saw while serving one connection.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Files in the served collection (the roster length).
    pub files: usize,
    /// Files the client actually engaged with a session.
    pub sessions: usize,
    /// Wire traffic as measured by the server's transport.
    pub traffic: TrafficStats,
}

pub(crate) fn encode_roster(names: &[&str]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_varint(names.len() as u64);
    for name in names {
        w.write_varint(name.len() as u64);
        for &b in name.as_bytes() {
            w.write_bits(u64::from(b), 8);
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_roster(payload: &[u8]) -> Result<Vec<String>, SyncError> {
    let mut r = BitReader::new(payload);
    let count = r.read_varint().map_err(|_| SyncError::Desync("roster count"))?;
    if count > MAX_COLLECTION_FILES {
        return Err(SyncError::Desync("roster count exceeds cap"));
    }
    let count = usize::try_from(count).map_err(|_| SyncError::Desync("roster count"))?;
    let mut names = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let len = r.read_varint().map_err(|_| SyncError::Desync("roster name len"))?;
        if len > MAX_NAME_BYTES {
            return Err(SyncError::Desync("roster name too long"));
        }
        let len = usize::try_from(len).map_err(|_| SyncError::Desync("roster name len"))?;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            let b = r.read_bits(8).map_err(|_| SyncError::Desync("roster name byte"))?;
            bytes.push(u8::try_from(b).map_err(|_| SyncError::Desync("roster name byte"))?);
        }
        let name =
            String::from_utf8(bytes).map_err(|_| SyncError::Desync("roster name not UTF-8"))?;
        names.push(name);
    }
    Ok(names)
}

/// Pack one round message per in-flight file into a single frame
/// payload: `varint n, then per file (varint id, varint n_parts, per
/// part: 1 phase byte, varint len, payload bytes)`.
pub(crate) fn encode_batch(entries: &[(usize, Vec<Part>)]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_varint(entries.len() as u64);
    for (id, parts) in entries {
        w.write_varint(*id as u64);
        w.write_varint(parts.len() as u64);
        for part in parts {
            w.write_bits(u64::from(part_header(part.phase, false)), 8);
            w.write_varint(part.payload.len() as u64);
            for &b in part.payload.iter() {
                w.write_bits(u64::from(b), 8);
            }
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_batch(payload: &[u8]) -> Result<Vec<(usize, Vec<Part>)>, SyncError> {
    let mut r = BitReader::new(payload);
    let count = r.read_varint().map_err(|_| SyncError::Desync("batch count"))?;
    if count > MAX_COLLECTION_FILES {
        return Err(SyncError::Desync("batch count exceeds cap"));
    }
    let count = usize::try_from(count).map_err(|_| SyncError::Desync("batch count"))?;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let id = r.read_varint().map_err(|_| SyncError::Desync("batch file id"))?;
        if id >= MAX_COLLECTION_FILES {
            return Err(SyncError::Desync("batch file id exceeds cap"));
        }
        let id = usize::try_from(id).map_err(|_| SyncError::Desync("batch file id"))?;
        let n_parts = r.read_varint().map_err(|_| SyncError::Desync("batch part count"))?;
        if n_parts == 0 || n_parts > MAX_PARTS_PER_MESSAGE as u64 {
            return Err(SyncError::Desync("batch part count out of range"));
        }
        let n_parts = usize::try_from(n_parts).map_err(|_| SyncError::Desync("batch parts"))?;
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let header = r.read_bits(8).map_err(|_| SyncError::Desync("batch part header"))?;
            let header = u8::try_from(header).map_err(|_| SyncError::Desync("batch header"))?;
            let (phase, _more) =
                parse_part_header(header).ok_or(SyncError::Desync("batch phase tag"))?;
            let len = r.read_varint().map_err(|_| SyncError::Desync("batch part len"))?;
            let len = usize::try_from(len).map_err(|_| SyncError::Desync("batch part len"))?;
            let bits = len.checked_mul(8).ok_or(SyncError::Desync("batch part len"))?;
            if bits > r.remaining_bits() {
                return Err(SyncError::Desync("batch part truncated"));
            }
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                let b = r.read_bits(8).map_err(|_| SyncError::Desync("batch part byte"))?;
                bytes.push(u8::try_from(b).map_err(|_| SyncError::Desync("batch byte"))?);
            }
            parts.push(Part { phase, payload: bytes.into() });
        }
        out.push((id, parts));
    }
    Ok(out)
}

/// The server's verdict on a resume offer, as it crosses the wire in
/// the `Phase::Resume` part of the roster reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ResumeVerdict {
    /// Per-offer-entry confirmation flags, in offer order. A declined
    /// entry (stale digest, unknown name) simply syncs normally.
    Accept(Vec<bool>),
    /// The offer as a whole is unusable; the client falls back to a
    /// full sync.
    Reject(ResumeRejectTag),
}

/// Offer payload: 16 config-digest bytes, then `varint n` entries of
/// `(varint name_len, name bytes, 16 digest bytes)`.
pub(crate) fn encode_resume_offer(
    config_digest: &[u8; 16],
    entries: &[(String, Fingerprint)],
) -> Vec<u8> {
    let mut w = BitWriter::new();
    for &b in config_digest {
        w.write_bits(u64::from(b), 8);
    }
    w.write_varint(entries.len() as u64);
    for (name, digest) in entries {
        w.write_varint(name.len() as u64);
        for &b in name.as_bytes() {
            w.write_bits(u64::from(b), 8);
        }
        for &b in &digest.0 {
            w.write_bits(u64::from(b), 8);
        }
    }
    w.into_bytes()
}

/// Decode a resume offer. Failures map directly onto the typed
/// rejection the server answers with — a malformed or oversized offer
/// is the *client's* problem to fall back from, never a reason to kill
/// the connection.
pub(crate) fn decode_resume_offer(
    payload: &[u8],
) -> Result<([u8; 16], Vec<(String, Fingerprint)>), ResumeRejectTag> {
    let mut r = BitReader::new(payload);
    let mut config_digest = [0u8; 16];
    for slot in &mut config_digest {
        let b = r.read_bits(8).map_err(|_| ResumeRejectTag::MalformedOffer)?;
        *slot = u8::try_from(b).map_err(|_| ResumeRejectTag::MalformedOffer)?;
    }
    let count = r.read_varint().map_err(|_| ResumeRejectTag::MalformedOffer)?;
    if count > MAX_COLLECTION_FILES {
        return Err(ResumeRejectTag::TooLarge);
    }
    let count = usize::try_from(count).map_err(|_| ResumeRejectTag::TooLarge)?;
    let mut entries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let len = r.read_varint().map_err(|_| ResumeRejectTag::MalformedOffer)?;
        if len > MAX_NAME_BYTES {
            return Err(ResumeRejectTag::MalformedOffer);
        }
        let len = usize::try_from(len).map_err(|_| ResumeRejectTag::MalformedOffer)?;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            let b = r.read_bits(8).map_err(|_| ResumeRejectTag::MalformedOffer)?;
            bytes.push(u8::try_from(b).map_err(|_| ResumeRejectTag::MalformedOffer)?);
        }
        let name = String::from_utf8(bytes).map_err(|_| ResumeRejectTag::MalformedOffer)?;
        let mut digest = [0u8; 16];
        for slot in &mut digest {
            let b = r.read_bits(8).map_err(|_| ResumeRejectTag::MalformedOffer)?;
            *slot = u8::try_from(b).map_err(|_| ResumeRejectTag::MalformedOffer)?;
        }
        entries.push((name, Fingerprint(digest)));
    }
    Ok((config_digest, entries))
}

/// Stable wire codes for [`ResumeRejectTag`]; the enum itself lives in
/// `msync-trace` (journal tokens), the codes live here with the codec.
fn reject_code(reason: ResumeRejectTag) -> u64 {
    match reason {
        ResumeRejectTag::ConfigMismatch => 0,
        ResumeRejectTag::MalformedOffer => 1,
        ResumeRejectTag::TooLarge => 2,
    }
}

fn reject_from_code(code: u64) -> Option<ResumeRejectTag> {
    match code {
        0 => Some(ResumeRejectTag::ConfigMismatch),
        1 => Some(ResumeRejectTag::MalformedOffer),
        2 => Some(ResumeRejectTag::TooLarge),
        _ => None,
    }
}

/// Verdict payload: accept is `1, varint n, n bits`; reject is
/// `0, varint reason_code`.
pub(crate) fn encode_resume_verdict(verdict: &ResumeVerdict) -> Vec<u8> {
    let mut w = BitWriter::new();
    match verdict {
        ResumeVerdict::Accept(bits) => {
            w.write_bits(1, 8);
            w.write_varint(bits.len() as u64);
            for &ok in bits {
                w.write_bits(u64::from(ok), 1);
            }
        }
        ResumeVerdict::Reject(reason) => {
            w.write_bits(0, 8);
            w.write_varint(reject_code(*reason));
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_resume_verdict(payload: &[u8]) -> Result<ResumeVerdict, SyncError> {
    let mut r = BitReader::new(payload);
    let tag = r.read_bits(8).map_err(|_| SyncError::Desync("resume verdict tag"))?;
    match tag {
        1 => {
            let count = r.read_varint().map_err(|_| SyncError::Desync("resume verdict count"))?;
            if count > MAX_COLLECTION_FILES {
                return Err(SyncError::Desync("resume verdict count exceeds cap"));
            }
            let count =
                usize::try_from(count).map_err(|_| SyncError::Desync("resume verdict count"))?;
            let mut bits = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let b = r.read_bits(1).map_err(|_| SyncError::Desync("resume verdict bit"))?;
                bits.push(b == 1);
            }
            Ok(ResumeVerdict::Accept(bits))
        }
        0 => {
            let code = r.read_varint().map_err(|_| SyncError::Desync("resume reject code"))?;
            let reason =
                reject_from_code(code).ok_or(SyncError::Desync("unknown resume reject code"))?;
            Ok(ResumeVerdict::Reject(reason))
        }
        _ => Err(SyncError::Desync("resume verdict tag")),
    }
}

/// Sync the local `old` collection against a remote server over `t`,
/// with up to [`PipelineOptions::depth`] files in flight per flush.
///
/// The returned outcome's `traffic` is the transport's own wire
/// accounting (framing and ARQ retransmits included); `per_file`
/// carries payload-level per-file costs attributed by phase.
pub fn sync_collection_client(
    t: &mut dyn Transport,
    old: &[FileEntry],
    cfg: &ProtocolConfig,
    opts: &PipelineOptions,
) -> Result<CollectionOutcome, SyncError> {
    sync_collection_client_resumable(t, old, cfg, opts, None, &mut |_| Ok(()))
}

/// [`sync_collection_client`] with crash-recovery hooks: an optional
/// [`ResumePlan`] offered to the server in the roster exchange (files
/// the server confirms skip their sessions entirely), and an
/// `on_complete` durability sink invoked for every file the moment it
/// finishes — the CLI applies it atomically and appends a checkpoint
/// line there, so an interrupted run can resume from the last
/// completed file.
///
/// A sink error aborts the session as [`SyncError::Persist`]: progress
/// that cannot be made durable must not be reported as such.
pub fn sync_collection_client_resumable(
    t: &mut dyn Transport,
    old: &[FileEntry],
    cfg: &ProtocolConfig,
    opts: &PipelineOptions,
    resume: Option<&ResumePlan>,
    on_complete: &mut dyn FnMut(&CompletedFile) -> Result<(), String>,
) -> Result<CollectionOutcome, SyncError> {
    let rec = t.recorder();
    let clock = SystemClock::new();
    let mut machine = CollectionClientMachine::new(
        old,
        cfg,
        opts.depth,
        opts.retry,
        rec,
        resume,
        clock.now_micros(),
    )?;
    pump_with(t, &mut machine, &(), &clock, &mut |m| {
        for done in m.drain_completed() {
            on_complete(&done).map_err(SyncError::Persist)?;
        }
        Ok(())
    })?;
    machine.finish(t.stats())
}

/// Serve the `new` collection to one pipelined client over `t`.
///
/// Convenience wrapper around [`serve_collection_snapshot`] for
/// one-shot callers (tests, single-connection servers): the files are
/// snapshotted — fingerprinted once, given a private hash cache — and
/// served. A daemon serving many connections should build one
/// [`CollectionSnapshot`] and share it instead, so the cache is warm
/// across sessions.
///
/// A vanished peer after the roster exchange is the normal end of
/// service (the client simply hangs up once every file is done), not
/// an error; protocol violations still surface as [`SyncError`].
pub fn serve_collection(
    t: &mut dyn Transport,
    new: &[FileEntry],
    cfg: &ProtocolConfig,
    retry: RetryPolicy,
) -> Result<ServeOutcome, SyncError> {
    let snap = CollectionSnapshot::new(new.to_vec());
    serve_collection_snapshot(t, &snap, cfg, retry)
}

/// Serve an immutable [`CollectionSnapshot`] to one pipelined client
/// over `t`. Sessions memoize their map-phase hash work into the
/// snapshot's shared cache, so a hot file is hashed once across every
/// connection served from the same snapshot.
///
/// # Errors
/// As [`serve_collection`].
pub fn serve_collection_snapshot(
    t: &mut dyn Transport,
    snap: &CollectionSnapshot,
    cfg: &ProtocolConfig,
    retry: RetryPolicy,
) -> Result<ServeOutcome, SyncError> {
    let rec = t.recorder();
    let clock = SystemClock::new();
    let mut machine = CollectionServeMachine::new(cfg, retry, rec, clock.now_micros())?;
    pump(t, &mut machine, snap, &clock)?;
    Ok(machine.outcome(snap.len(), t.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msync_protocol::{Endpoint, Phase};
    use std::collections::HashMap;
    use std::thread;

    fn entry(name: &str, data: &[u8]) -> FileEntry {
        FileEntry::new(name, data.to_vec())
    }

    fn run_pair(
        old: &[FileEntry],
        new: &[FileEntry],
        cfg: &ProtocolConfig,
        depth: usize,
    ) -> (CollectionOutcome, ServeOutcome) {
        let (mut client_ep, mut server_ep) = Endpoint::pair();
        let server_files = new.to_vec();
        let server_cfg = cfg.clone();
        let handle = thread::spawn(move || {
            serve_collection(&mut server_ep, &server_files, &server_cfg, RetryPolicy::default())
        });
        let opts = PipelineOptions { depth, retry: RetryPolicy::default() };
        let out = sync_collection_client(&mut client_ep, old, cfg, &opts).unwrap();
        drop(client_ep);
        let srv = handle.join().unwrap().unwrap();
        (out, srv)
    }

    fn sorted_names(files: &[FileEntry]) -> Vec<&str> {
        files.iter().map(|f| f.name.as_str()).collect()
    }

    #[test]
    fn roster_roundtrips() {
        let names = ["a.txt", "dir/b.txt", "z"];
        let decoded = decode_roster(&encode_roster(&names)).unwrap();
        assert_eq!(decoded, names);
        assert!(decode_roster(&[0xff; 3]).is_err());
    }

    #[test]
    fn batch_roundtrips() {
        let entries = vec![
            (0usize, vec![Part { phase: Phase::Setup, payload: vec![1, 2, 3].into() }]),
            (
                7usize,
                vec![
                    Part { phase: Phase::Map, payload: vec![].into() },
                    Part { phase: Phase::Delta, payload: vec![9; 40].into() },
                ],
            ),
        ];
        let decoded = decode_batch(&encode_batch(&entries)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, 0);
        assert_eq!(decoded[0].1[0].payload, vec![1, 2, 3]);
        assert_eq!(decoded[1].0, 7);
        assert_eq!(decoded[1].1[1].phase, Phase::Delta);
        assert_eq!(decoded[1].1[1].payload, vec![9; 40]);
        assert!(decode_batch(&[0xff; 2]).is_err());
    }

    #[test]
    fn pipelined_collection_is_byte_exact() {
        let base = b"the quick brown fox jumps over the lazy dog. ".repeat(120);
        let mut changed = base.clone();
        changed.truncate(3_000);
        changed.extend_from_slice(b"a new ending entirely");
        let old = vec![
            entry("changed.txt", &base),
            entry("deleted.txt", b"goes away"),
            entry("same.txt", &base),
        ];
        let new = vec![
            entry("same.txt", &base),
            entry("changed.txt", &changed),
            entry("fresh.txt", b"brand new file body"),
        ];
        let cfg = ProtocolConfig::default();
        let (out, srv) = run_pair(&old, &new, &cfg, 8);

        assert_eq!(sorted_names(&out.files), vec!["changed.txt", "fresh.txt", "same.txt"]);
        let by_name: HashMap<&str, &[u8]> =
            new.iter().map(|f| (f.name.as_str(), f.data.as_slice())).collect();
        for f in &out.files {
            assert_eq!(f.data.as_slice(), by_name[f.name.as_str()], "{}", f.name);
        }
        assert_eq!(out.created, 1);
        assert_eq!(out.deleted, 1);
        assert_eq!(out.unchanged, 1);
        assert_eq!(srv.files, 3);
        assert_eq!(srv.sessions, 3);
        assert!(out.traffic.total_bytes() > 0);
    }

    #[test]
    fn deeper_pipelines_use_fewer_roundtrips() {
        let cfg = ProtocolConfig::default();
        let files: Vec<FileEntry> = (0..24)
            .map(|i| {
                let body = format!("file {i} body ").repeat(200);
                entry(&format!("f{i:03}.txt"), body.as_bytes())
            })
            .collect();
        let old: Vec<FileEntry> = files
            .iter()
            .map(|f| {
                let mut d = f.data.clone();
                d.truncate(d.len() / 2);
                d.extend_from_slice(b"divergent tail material");
                FileEntry::new(f.name.clone(), d)
            })
            .collect();

        let (seq, _) = run_pair(&old, &files, &cfg, 1);
        let (pipe, _) = run_pair(&old, &files, &cfg, 16);
        assert_eq!(sorted_names(&seq.files), sorted_names(&pipe.files));
        for (a, b) in seq.files.iter().zip(&pipe.files) {
            assert_eq!(a.data, b.data);
        }
        assert!(
            pipe.traffic.roundtrips < seq.traffic.roundtrips,
            "pipelined {} roundtrips vs sequential {}",
            pipe.traffic.roundtrips,
            seq.traffic.roundtrips
        );
    }

    #[test]
    fn empty_collections_terminate() {
        let cfg = ProtocolConfig::default();
        let old = vec![entry("only-local.txt", b"bytes")];
        let (out, srv) = run_pair(&old, &[], &cfg, 4);
        assert!(out.files.is_empty());
        assert_eq!(out.deleted, 1);
        assert_eq!(srv.files, 0);
        assert_eq!(srv.sessions, 0);

        let (out, srv) = run_pair(&[], &[], &cfg, 4);
        assert!(out.files.is_empty());
        assert_eq!(srv.sessions, 0);
    }

    #[test]
    fn client_from_nothing_receives_everything() {
        let cfg = ProtocolConfig::default();
        let new = vec![entry("a", b"alpha contents"), entry("b", &b"beta ".repeat(500))];
        let (out, _) = run_pair(&[], &new, &cfg, 4);
        assert_eq!(out.created, 2);
        assert_eq!(out.files.len(), 2);
        assert_eq!(out.files[0].data, b"alpha contents");
        assert_eq!(out.files[1].data, b"beta ".repeat(500));
    }

    #[test]
    fn resume_offer_roundtrips() {
        use msync_hash::file_fingerprint;
        let digest = [7u8; 16];
        let entries = vec![
            ("a.txt".to_string(), file_fingerprint(b"alpha")),
            ("dir/b".to_string(), file_fingerprint(b"beta")),
        ];
        let encoded = encode_resume_offer(&digest, &entries);
        let (d, e) = decode_resume_offer(&encoded).unwrap();
        assert_eq!(d, digest);
        assert_eq!(e, entries);
        assert!(matches!(
            decode_resume_offer(&encoded[..encoded.len() - 1]),
            Err(msync_trace::ResumeRejectTag::MalformedOffer)
        ));
        assert!(matches!(
            decode_resume_offer(&[0u8; 4]),
            Err(msync_trace::ResumeRejectTag::MalformedOffer)
        ));
    }

    #[test]
    fn resume_verdict_roundtrips() {
        let accept = ResumeVerdict::Accept(vec![true, false, true, true]);
        match decode_resume_verdict(&encode_resume_verdict(&accept)).unwrap() {
            ResumeVerdict::Accept(bits) => assert_eq!(bits, vec![true, false, true, true]),
            ResumeVerdict::Reject(_) => panic!("expected accept"),
        }
        for reason in [
            msync_trace::ResumeRejectTag::ConfigMismatch,
            msync_trace::ResumeRejectTag::MalformedOffer,
            msync_trace::ResumeRejectTag::TooLarge,
        ] {
            let reject = ResumeVerdict::Reject(reason);
            match decode_resume_verdict(&encode_resume_verdict(&reject)).unwrap() {
                ResumeVerdict::Reject(r) => assert_eq!(r, reason),
                ResumeVerdict::Accept(_) => panic!("expected reject"),
            }
        }
        assert!(decode_resume_verdict(&[9]).is_err());
    }

    fn run_pair_resume(
        old: &[FileEntry],
        new: &[FileEntry],
        cfg: &ProtocolConfig,
        plan: &crate::resume::ResumePlan,
    ) -> (CollectionOutcome, ServeOutcome, Vec<crate::engine::CompletedFile>) {
        let (mut client_ep, mut server_ep) = Endpoint::pair();
        let server_files = new.to_vec();
        let server_cfg = cfg.clone();
        let handle = thread::spawn(move || {
            serve_collection(&mut server_ep, &server_files, &server_cfg, RetryPolicy::default())
        });
        let opts = PipelineOptions { depth: 8, retry: RetryPolicy::default() };
        let mut completed = Vec::new();
        let out = sync_collection_client_resumable(
            &mut client_ep,
            old,
            cfg,
            &opts,
            Some(plan),
            &mut |f| {
                completed.push(f.clone());
                Ok(())
            },
        )
        .unwrap();
        drop(client_ep);
        let srv = handle.join().unwrap().unwrap();
        (out, srv, completed)
    }

    #[test]
    fn accepted_resume_entries_skip_sessions() {
        use msync_hash::file_fingerprint;
        let big = b"shared content ".repeat(400);
        let changed_old = b"old divergent body ".repeat(100);
        let changed_new = b"new divergent body ".repeat(100);
        let old = vec![entry("done.bin", &big), entry("wip.bin", &changed_old)];
        let new = vec![entry("done.bin", &big), entry("wip.bin", &changed_new)];
        let cfg = ProtocolConfig::default();

        let mut plan = crate::resume::ResumePlan::new(&cfg);
        plan.add("done.bin", file_fingerprint(&big));

        let (out, srv, completed) = run_pair_resume(&old, &new, &cfg, &plan);
        assert_eq!(out.resumed, 1);
        assert_eq!(out.unchanged, 0);
        // Only the changed file ran a session.
        assert_eq!(srv.sessions, 1);
        let by_name: HashMap<&str, &[u8]> =
            new.iter().map(|f| (f.name.as_str(), f.data.as_slice())).collect();
        for f in &out.files {
            assert_eq!(f.data.as_slice(), by_name[f.name.as_str()], "{}", f.name);
        }
        // The sink saw both files; the resumed one is flagged, round 0.
        assert_eq!(completed.len(), 2);
        let resumed = completed.iter().find(|f| f.name == "done.bin").unwrap();
        assert!(resumed.resumed);
        assert_eq!(resumed.round, 0);
        assert_eq!(resumed.data, big);
        let synced = completed.iter().find(|f| f.name == "wip.bin").unwrap();
        assert!(!synced.resumed);
        assert!(synced.round > 0);
    }

    #[test]
    fn stale_resume_entries_are_declined_not_fatal() {
        use msync_hash::file_fingerprint;
        let body = b"current server content ".repeat(200);
        let old = vec![entry("f.bin", &body)];
        let new = vec![entry("f.bin", &b"server moved on ".repeat(200))];
        let cfg = ProtocolConfig::default();

        // The checkpoint digest matches the client's copy but no longer
        // matches the server's content: the server must decline it and
        // the file syncs normally.
        let mut plan = crate::resume::ResumePlan::new(&cfg);
        plan.add("f.bin", file_fingerprint(&body));

        let (out, srv, _) = run_pair_resume(&old, &new, &cfg, &plan);
        assert_eq!(out.resumed, 0);
        assert_eq!(srv.sessions, 1);
        assert_eq!(out.files[0].data, new[0].data);
    }

    #[test]
    fn config_mismatch_rejects_offer_and_full_sync_proceeds() {
        use msync_hash::file_fingerprint;
        let body = b"identical both sides ".repeat(200);
        let old = vec![entry("f.bin", &body)];
        let new = vec![entry("f.bin", &body)];
        let cfg = ProtocolConfig::default();

        // Plan built under a different protocol config: the server
        // rejects the whole offer and every file runs a session.
        let other = ProtocolConfig { start_block: cfg.start_block * 2, ..cfg.clone() };
        let mut plan = crate::resume::ResumePlan::new(&other);
        plan.add("f.bin", file_fingerprint(&body));

        let (out, srv, _) = run_pair_resume(&old, &new, &cfg, &plan);
        assert_eq!(out.resumed, 0);
        assert_eq!(out.unchanged, 1);
        assert_eq!(srv.sessions, 1);
        assert_eq!(out.files[0].data, body);
    }

    #[test]
    fn plan_entries_unverifiable_locally_are_not_offered() {
        use msync_hash::file_fingerprint;
        let body = b"real local bytes ".repeat(100);
        let old = vec![entry("f.bin", &body)];
        let new = vec![entry("f.bin", &body)];
        let cfg = ProtocolConfig::default();

        // The plan claims a digest the local file does not have (e.g. a
        // crash between apply and checkpoint): the client must drop the
        // entry before offering, and the sync stays correct.
        let mut plan = crate::resume::ResumePlan::new(&cfg);
        plan.add("f.bin", file_fingerprint(b"something else"));
        plan.add("ghost.bin", file_fingerprint(&body));

        let (out, srv, _) = run_pair_resume(&old, &new, &cfg, &plan);
        assert_eq!(out.resumed, 0);
        assert_eq!(srv.sessions, 1);
        assert_eq!(out.files[0].data, body);
    }
}
