//! Durable session state: checkpoints, the client metadata cache, and
//! the resume plan a reconnecting client presents to the server.
//!
//! Both on-disk artifacts are versioned JSONL, parsed with the same
//! flat-object parser the trace journal uses
//! ([`msync_trace::parse_flat_object`]), and both are append- or
//! atomically-written so a crash can tear at most the final line:
//!
//! * **Checkpoint** ([`CheckpointLog`] / [`load_checkpoint`]) — one
//!   header line binding the protocol-config digest, then one fsynced
//!   line per *completed* file (roster name, strong digest, the
//!   scheduler round it finished in). Parsing stops at the first
//!   malformed line, so a torn tail costs one file of progress, never
//!   the session.
//! * **Metadata cache** ([`MetadataCache`]) — `path → (size, mtime,
//!   strong digest)` for every file the last successful sync applied.
//!   A later run that stats the same size+mtime trusts the digest
//!   without rehashing, and offers it for resume — an unchanged
//!   collection then skips even the per-file map exchange.
//!
//! File names are hex-encoded in both formats so arbitrary bytes
//! survive the escape-free JSONL subset.

use crate::config::ProtocolConfig;
use crate::params;
use msync_hash::{file_fingerprint, Fingerprint};
use msync_trace::{parse_flat_object, FieldValue};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Checkpoint / cache format version. Any change to field names, kind
/// tokens, or value types bumps this; loaders treat other versions as
/// absent state, never as an error.
pub const STATE_VERSION: u32 = 1;

/// Digest of the canonical [`params::render`] text of a config. Resume
/// is only sound between runs that agree on every protocol parameter
/// (block sizes, hash widths, verification strategy), so the digest
/// binds checkpoints and offers to the exact configuration.
pub fn config_digest(cfg: &ProtocolConfig) -> [u8; 16] {
    file_fingerprint(params::render(cfg).as_bytes()).0
}

/// What a reconnecting client presents to the server: the config
/// digest its durable state was produced under, plus the files it
/// believes are already up to date (name → strong digest of the local
/// content).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumePlan {
    /// Digest of the protocol config the entries were verified under.
    pub config_digest: [u8; 16],
    /// `(name, strong digest)` per already-complete file, sorted by
    /// name with duplicates removed (last writer wins).
    pub entries: Vec<(String, Fingerprint)>,
}

impl ResumePlan {
    /// A plan for `cfg` with no entries yet.
    pub fn new(cfg: &ProtocolConfig) -> Self {
        ResumePlan { config_digest: config_digest(cfg), entries: Vec::new() }
    }

    /// Merge `(name, digest)` claims into the plan; later claims for
    /// the same name replace earlier ones. Keeps `entries` sorted.
    pub fn add(&mut self, name: impl Into<String>, digest: Fingerprint) {
        let name = name.into();
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name.as_str())) {
            Ok(i) => self.entries[i].1 = digest,
            Err(i) => self.entries.insert(i, (name, digest)),
        }
    }

    /// Whether there is anything worth offering.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed checkpoint: which files a previous, interrupted run had
/// fully completed, and under which config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionCheckpoint {
    /// Digest of the protocol config the run used.
    pub config_digest: [u8; 16],
    /// `(name, strong digest, scheduler round)` per completed file, in
    /// completion order.
    pub files: Vec<(String, Fingerprint, u64)>,
}

/// An append-only, per-line-fsynced checkpoint journal. Created fresh
/// at session start (truncating any previous one); one line is
/// appended as each file completes, so the on-disk state is always a
/// prefix of the truth.
#[derive(Debug)]
pub struct CheckpointLog {
    file: fs::File,
}

impl CheckpointLog {
    /// Create (or truncate) the checkpoint at `path`, writing and
    /// fsyncing the header line that binds `config_digest`.
    ///
    /// # Errors
    /// On any filesystem error, with the path in the message.
    pub fn create(path: &Path, config_digest: [u8; 16]) -> Result<CheckpointLog, String> {
        let mut file = fs::File::create(path)
            .map_err(|e| format!("cannot create checkpoint {}: {e}", path.display()))?;
        let header = format!(
            "{{\"v\":{STATE_VERSION},\"kind\":\"msync-checkpoint\",\"config\":\"{}\"}}\n",
            Fingerprint(config_digest).to_hex()
        );
        file.write_all(header.as_bytes())
            .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
        file.sync_all().map_err(|e| format!("cannot fsync checkpoint {}: {e}", path.display()))?;
        Ok(CheckpointLog { file })
    }

    /// Append one completed file and fsync, so the entry survives a
    /// crash the moment this returns.
    ///
    /// # Errors
    /// On any filesystem error.
    pub fn append(&mut self, name: &str, digest: Fingerprint, round: u64) -> Result<(), String> {
        let line = format!(
            "{{\"kind\":\"file\",\"name_hex\":\"{}\",\"digest\":\"{}\",\"round\":{round}}}\n",
            hex_encode(name.as_bytes()),
            digest.to_hex()
        );
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| format!("cannot append to checkpoint: {e}"))?;
        self.file.sync_data().map_err(|e| format!("cannot fsync checkpoint: {e}"))
    }
}

/// Load a checkpoint. Returns `Ok(None)` when the file does not exist,
/// has a different [`STATE_VERSION`], or is not a checkpoint at all —
/// resume then simply has nothing to offer. Parsing stops silently at
/// the first malformed entry line (a torn tail from a crash
/// mid-append).
///
/// # Errors
/// Only on I/O errors reading an existing file.
pub fn load_checkpoint(path: &Path) -> Result<Option<SessionCheckpoint>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read checkpoint {}: {e}", path.display())),
    };
    let mut lines = text.lines();
    let Some(header) = lines.next() else { return Ok(None) };
    let Ok(fields) = parse_flat_object(header) else { return Ok(None) };
    if lookup_u64(&fields, "v") != Some(u64::from(STATE_VERSION))
        || lookup_str(&fields, "kind") != Some("msync-checkpoint")
    {
        return Ok(None);
    }
    let Some(config_digest) = lookup_str(&fields, "config").and_then(hex_decode16) else {
        return Ok(None);
    };
    let mut files = Vec::new();
    for line in lines {
        let Ok(fields) = parse_flat_object(line) else { break };
        if lookup_str(&fields, "kind") != Some("file") {
            break;
        }
        let name = lookup_str(&fields, "name_hex").and_then(hex_decode_string);
        let digest = lookup_str(&fields, "digest").and_then(hex_decode16);
        let round = lookup_u64(&fields, "round");
        match (name, digest, round) {
            (Some(name), Some(digest), Some(round)) => {
                files.push((name, Fingerprint(digest), round));
            }
            _ => break,
        }
    }
    Ok(Some(SessionCheckpoint { config_digest, files }))
}

/// One metadata cache record: enough to decide "unchanged since the
/// last sync" from a `stat` alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// File size in bytes at record time.
    pub size: u64,
    /// Modification time in microseconds since the Unix epoch.
    pub mtime_us: u64,
    /// Strong digest of the content those stats described.
    pub digest: Fingerprint,
}

/// The client metadata cache: `path → (size, mtime, digest)`,
/// persisted as versioned JSONL and rewritten atomically after each
/// successful sync.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetadataCache {
    entries: BTreeMap<String, CacheEntry>,
}

impl MetadataCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load from `path`. A missing file, a foreign format, or a
    /// version mismatch all yield an empty cache (the cache is an
    /// optimization, never a requirement); a torn tail drops only the
    /// torn lines.
    ///
    /// # Errors
    /// Only on I/O errors reading an existing file.
    pub fn load(path: &Path) -> Result<MetadataCache, String> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(MetadataCache::new());
            }
            Err(e) => return Err(format!("cannot read cache {}: {e}", path.display())),
        };
        let mut cache = MetadataCache::new();
        let mut lines = text.lines();
        let Some(header) = lines.next() else { return Ok(cache) };
        let Ok(fields) = parse_flat_object(header) else { return Ok(cache) };
        if lookup_u64(&fields, "v") != Some(u64::from(STATE_VERSION))
            || lookup_str(&fields, "kind") != Some("msync-cache")
        {
            return Ok(cache);
        }
        for line in lines {
            let Ok(fields) = parse_flat_object(line) else { break };
            let name = lookup_str(&fields, "name_hex").and_then(hex_decode_string);
            let size = lookup_u64(&fields, "size");
            let mtime_us = lookup_u64(&fields, "mtime_us");
            let digest = lookup_str(&fields, "digest").and_then(hex_decode16);
            match (name, size, mtime_us, digest) {
                (Some(name), Some(size), Some(mtime_us), Some(digest)) => {
                    cache
                        .entries
                        .insert(name, CacheEntry { size, mtime_us, digest: Fingerprint(digest) });
                }
                _ => break,
            }
        }
        Ok(cache)
    }

    /// Render to the JSONL format [`MetadataCache::load`] reads.
    pub fn render(&self) -> String {
        let mut out = format!("{{\"v\":{STATE_VERSION},\"kind\":\"msync-cache\"}}\n");
        for (name, e) in &self.entries {
            out.push_str(&format!(
                "{{\"name_hex\":\"{}\",\"size\":{},\"mtime_us\":{},\"digest\":\"{}\"}}\n",
                hex_encode(name.as_bytes()),
                e.size,
                e.mtime_us,
                e.digest.to_hex()
            ));
        }
        out
    }

    /// Atomically rewrite the cache at `path` (via the sibling-temp
    /// discipline of [`crate::apply`]).
    ///
    /// # Errors
    /// On any filesystem error.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        crate::apply::atomic_write_file(path, self.render().as_bytes())
    }

    /// The digest recorded for `name`, iff the recorded size and mtime
    /// both still match — the "unchanged since last sync" fast path.
    pub fn lookup(&self, name: &str, size: u64, mtime_us: u64) -> Option<Fingerprint> {
        let e = self.entries.get(name)?;
        (e.size == size && e.mtime_us == mtime_us).then_some(e.digest)
    }

    /// Record (or replace) one file's metadata.
    pub fn record(&mut self, name: String, entry: CacheEntry) {
        self.entries.insert(name, entry);
    }

    /// Drop a file's record (it changed or disappeared).
    pub fn evict(&mut self, name: &str) {
        self.entries.remove(name);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache has no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn lookup_u64(fields: &[(String, FieldValue)], key: &str) -> Option<u64> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        FieldValue::U64(n) => Some(*n),
        _ => None,
    })
}

fn lookup_str<'a>(fields: &'a [(String, FieldValue)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        FieldValue::Str(s) => Some(s.as_str()),
        _ => None,
    })
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_nibble(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    let bytes = text.as_bytes();
    if bytes.len() % 2 != 0 {
        return None;
    }
    bytes
        .chunks_exact(2)
        .map(|pair| Some(hex_nibble(pair[0])? << 4 | hex_nibble(pair[1])?))
        .collect()
}

fn hex_decode16(text: &str) -> Option<[u8; 16]> {
    let v = hex_decode(text)?;
    <[u8; 16]>::try_from(v).ok()
}

fn hex_decode_string(text: &str) -> Option<String> {
    String::from_utf8(hex_decode(text)?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msync-resume-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(tag)
    }

    #[test]
    fn config_digest_tracks_the_config() {
        let a = ProtocolConfig::default();
        let mut b = ProtocolConfig::default();
        b.start_block *= 2;
        assert_eq!(config_digest(&a), config_digest(&ProtocolConfig::default()));
        assert_ne!(config_digest(&a), config_digest(&b));
    }

    #[test]
    fn checkpoint_roundtrips() {
        let path = tmp_path("ckpt-roundtrip");
        let digest = config_digest(&ProtocolConfig::default());
        let mut log = CheckpointLog::create(&path, digest).unwrap();
        log.append("a.txt", file_fingerprint(b"aaa"), 0).unwrap();
        log.append("dir/b with space.bin", file_fingerprint(b"bbb"), 2).unwrap();
        drop(log);
        let ckpt = load_checkpoint(&path).unwrap().unwrap();
        assert_eq!(ckpt.config_digest, digest);
        assert_eq!(ckpt.files.len(), 2);
        assert_eq!(ckpt.files[0], ("a.txt".to_owned(), file_fingerprint(b"aaa"), 0));
        assert_eq!(ckpt.files[1], ("dir/b with space.bin".to_owned(), file_fingerprint(b"bbb"), 2));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_checkpoint_tail_drops_only_the_tail() {
        let path = tmp_path("ckpt-torn");
        let digest = [7u8; 16];
        let mut log = CheckpointLog::create(&path, digest).unwrap();
        log.append("done.txt", file_fingerprint(b"x"), 1).unwrap();
        drop(log);
        // Simulate a crash mid-append: a truncated trailing line.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"file\",\"name_hex\":\"61\",\"dig");
        fs::write(&path, text).unwrap();
        let ckpt = load_checkpoint(&path).unwrap().unwrap();
        assert_eq!(ckpt.files.len(), 1);
        assert_eq!(ckpt.files[0].0, "done.txt");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn absent_or_foreign_checkpoints_are_none() {
        let path = tmp_path("ckpt-absent");
        let _ = fs::remove_file(&path);
        assert_eq!(load_checkpoint(&path).unwrap(), None);
        fs::write(&path, "not a checkpoint\n").unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), None);
        fs::write(&path, "{\"v\":999,\"kind\":\"msync-checkpoint\",\"config\":\"00\"}\n").unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), None);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cache_roundtrips_and_validates_stats() {
        let path = tmp_path("cache-roundtrip");
        let mut cache = MetadataCache::new();
        let digest = file_fingerprint(b"content");
        cache.record("x/y.txt".to_owned(), CacheEntry { size: 7, mtime_us: 123, digest });
        cache.save(&path).unwrap();
        let loaded = MetadataCache::load(&path).unwrap();
        assert_eq!(loaded, cache);
        assert_eq!(loaded.lookup("x/y.txt", 7, 123), Some(digest));
        assert_eq!(loaded.lookup("x/y.txt", 8, 123), None, "size changed");
        assert_eq!(loaded.lookup("x/y.txt", 7, 124), None, "mtime changed");
        assert_eq!(loaded.lookup("other", 7, 123), None);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn absent_cache_is_empty() {
        let path = tmp_path("cache-absent");
        let _ = fs::remove_file(&path);
        assert!(MetadataCache::load(&path).unwrap().is_empty());
    }

    #[test]
    fn plan_add_sorts_and_replaces() {
        let mut plan = ResumePlan::new(&ProtocolConfig::default());
        plan.add("b".to_owned(), file_fingerprint(b"1"));
        plan.add("a".to_owned(), file_fingerprint(b"2"));
        plan.add("b".to_owned(), file_fingerprint(b"3"));
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.entries[0].0, "a");
        assert_eq!(plan.entries[1], ("b".to_owned(), file_fingerprint(b"3")));
    }
}
