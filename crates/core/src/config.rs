//! Protocol configuration (the paper's "simple parameter file ... used to
//! specify all the options and techniques that should be used in each
//! round").
//!
//! Every technique of §5 is individually switchable so the experiments
//! can reproduce each figure's ablation: recursive splitting depth, hash
//! bit budgets, decomposable-hash suppression, continuation and local
//! hashes, and the verification strategy.

/// How candidate matches are verified (paper §5.3, Figure 6.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyStrategy {
    /// One hash per candidate, `bits` wide, single batch. With
    /// `bits = 32` this is the "trivial verification" bar of Figure 6.4.
    PerCandidate {
        /// Verification hash width per candidate.
        bits: u32,
    },
    /// Group testing: a sequence of batches, each one verification
    /// roundtrip. Batch *k* covers the candidates that are still
    /// unresolved (members of failed groups), grouped `group_size` at a
    /// time with one `bits`-wide hash per group. Candidates still in
    /// failed groups after the last batch are dropped (treated as
    /// non-matches) — the safe direction.
    GroupTesting {
        /// One entry per verification batch/roundtrip.
        batches: Vec<BatchConfig>,
    },
}

/// One verification batch of the group-testing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Candidates per verification group (1 = individual hashes).
    pub group_size: usize,
    /// Hash bits per group.
    pub bits: u32,
}

impl VerifyStrategy {
    /// Number of verification roundtrips this strategy can take.
    pub fn max_batches(&self) -> usize {
        match self {
            VerifyStrategy::PerCandidate { .. } => 1,
            VerifyStrategy::GroupTesting { batches } => batches.len(),
        }
    }
}

/// Full protocol configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Starting (largest) block size; a power of two (paper: 2^15).
    pub start_block: usize,
    /// Smallest block size for which *global* hashes are sent; the
    /// recursion on global hashes stops here (Figures 6.1/6.2 sweep this).
    pub min_block_global: usize,
    /// Smallest block size for which *continuation* hashes are sent.
    /// Setting it equal to or above `min_block_global` disables the
    /// deeper continuation-only levels; it may be far smaller (down to
    /// 8–16 bytes) because continuation hashes are nearly free.
    pub min_block_cont: usize,
    /// Extra bits added to `log2(old_len)` for global candidate hashes
    /// (the paper sends "log n + extra"-bit hashes so the expected number
    /// of false candidates per block is `2^-extra`).
    pub global_extra_bits: u32,
    /// Bits per continuation hash (paper: "even a very small number of
    /// bits (say, 3 or 4 per hash)").
    pub cont_bits: u32,
    /// Enable continuation hashes at all.
    pub use_continuation: bool,
    /// Enable local hashes: global-hash blocks near a confirmed anchor
    /// are checked only against a predicted neighborhood in the old file
    /// and therefore get a reduced bit budget.
    pub use_local: bool,
    /// Bits per local hash (only meaningful with `use_local`).
    pub local_bits: u32,
    /// Neighborhood half-width for local hashes, in units of the current
    /// block size.
    pub local_range_blocks: u64,
    /// Suppress every derivable sibling hash (decomposable hashes, §5.5).
    pub use_decomposable: bool,
    /// Skip the global hash of a block whose sibling was confirmed in the
    /// continuation phase of the same round (§5.4's phase-split
    /// optimization).
    pub skip_sibling_of_matched: bool,
    /// Run each level as two subrounds — continuation probes first,
    /// then global hashes informed by their results (§5.4: "first
    /// sending continuation hashes, and then global hashes in the next
    /// roundtrip ... observed some moderate benefits"). Costs one extra
    /// roundtrip per level with probes.
    pub cont_first_phase: bool,
    /// Verification strategy.
    pub verify: VerifyStrategy,
    /// Maximum candidate positions kept per hash value in the client's
    /// position index (more positions = fewer lost matches to aliasing,
    /// at more memory).
    pub max_positions_per_hash: usize,
}

impl Default for ProtocolConfig {
    /// The paper's best all-techniques configuration (Table 6.1 column
    /// "our protocol, all techniques", minus the >20-roundtrip extremes
    /// it itself calls impractical).
    fn default() -> Self {
        Self {
            start_block: 1 << 15,
            min_block_global: 128,
            min_block_cont: 16,
            global_extra_bits: 8,
            cont_bits: 4,
            use_continuation: true,
            use_local: false,
            local_bits: 10,
            local_range_blocks: 4,
            use_decomposable: true,
            skip_sibling_of_matched: true,
            cont_first_phase: false,
            verify: VerifyStrategy::GroupTesting {
                batches: vec![
                    BatchConfig { group_size: 4, bits: 20 },
                    BatchConfig { group_size: 1, bits: 20 },
                ],
            },
            max_positions_per_hash: 4,
        }
    }
}

impl ProtocolConfig {
    /// The *basic protocol* of Figures 6.1/6.2: recursive halving +
    /// decomposable hashes + one verification hash per candidate, no
    /// continuation/local hashes.
    pub fn basic(min_block: usize) -> Self {
        Self {
            min_block_global: min_block,
            min_block_cont: min_block,
            use_continuation: false,
            use_local: false,
            skip_sibling_of_matched: false,
            verify: VerifyStrategy::PerCandidate { bits: 16 },
            ..Self::default()
        }
    }

    /// Trivial verification (leftmost bar of Figure 6.4): 32-bit
    /// per-candidate hashes.
    pub fn trivial_verify(mut self) -> Self {
        self.verify = VerifyStrategy::PerCandidate { bits: 32 };
        self
    }

    /// All-techniques preset used for Table 6.1/6.2 (same as `default`).
    pub fn all_techniques() -> Self {
        Self::default()
    }

    /// Roundtrip-restricted preset (paper §7: "we are also studying how
    /// to improve file synchronization if we are restricted to just one
    /// or two round-trips"): run only `levels` rounds of the recursion,
    /// one verification batch, no continuation levels. The delta phase
    /// absorbs whatever the coarse map missed; with `levels = 1` this is
    /// in the same regime as rsync (one map roundtrip) and, as the paper
    /// expects, does not beat it by much.
    pub fn restricted(levels: u32) -> Self {
        let levels = levels.max(1);
        let start = 1usize << 15;
        let min_block = (start >> (levels - 1)).max(64);
        Self {
            start_block: start,
            min_block_global: min_block,
            min_block_cont: min_block,
            use_continuation: levels > 2,
            verify: VerifyStrategy::PerCandidate { bits: 20 },
            ..Self::default()
        }
    }

    /// Number of rounds (levels) the global-hash recursion runs.
    pub fn global_levels(&self) -> u32 {
        levels_between(self.start_block, self.min_block_global)
    }

    /// Number of rounds including continuation-only levels.
    pub fn total_levels(&self) -> u32 {
        let floor = if self.use_continuation {
            self.min_block_cont.min(self.min_block_global)
        } else {
            self.min_block_global
        };
        levels_between(self.start_block, floor)
    }

    /// Block size at level `level` (level 0 = `start_block`).
    pub fn block_size_at(&self, level: u32) -> usize {
        (self.start_block >> level).max(1)
    }

    /// Validate invariants; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.start_block.is_power_of_two() {
            return Err(format!("start_block {} is not a power of two", self.start_block));
        }
        if self.min_block_global < 2 {
            return Err("min_block_global must be at least 2".into());
        }
        if self.min_block_global > self.start_block {
            return Err("min_block_global exceeds start_block".into());
        }
        if self.use_continuation && self.min_block_cont < 2 {
            return Err("min_block_cont must be at least 2".into());
        }
        if self.cont_bits == 0 || self.cont_bits > 32 {
            return Err("cont_bits must be in 1..=32".into());
        }
        if self.global_extra_bits > 32 {
            return Err("global_extra_bits must be at most 32".into());
        }
        match &self.verify {
            VerifyStrategy::PerCandidate { bits } if *bits == 0 || *bits > 64 => {
                return Err("per-candidate verify bits must be in 1..=64".into());
            }
            VerifyStrategy::GroupTesting { batches } => {
                if batches.is_empty() {
                    return Err("group testing needs at least one batch".into());
                }
                for b in batches {
                    if b.group_size == 0 || b.bits == 0 || b.bits > 64 {
                        return Err("batch group_size and bits must be positive (bits ≤ 64)".into());
                    }
                }
            }
            _ => {}
        }
        if self.max_positions_per_hash == 0 {
            return Err("max_positions_per_hash must be positive".into());
        }
        Ok(())
    }
}

/// Transport options for channel-mode [`crate::sync_file_with`] (the
/// `channel` field of `SyncOptions`): the
/// timeout/retry policy the session applies to every receive, and an
/// optional deterministic fault plan for the link (used by the soak
/// tests and the CLI's `--fault-profile` flag to exercise recovery).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelOptions {
    /// Receive deadline, retry budget, and backoff for the session.
    pub retry: msync_protocol::RetryPolicy,
    /// Faults to inject into the channel; `None` for a clean link.
    pub fault_plan: Option<msync_protocol::FaultPlan>,
    /// Seed for the fault injector's PRNG (ignored for a clean link).
    /// Together with `fault_plan` it reproduces a run exactly.
    pub fault_seed: u64,
}

/// Number of halvings from `from` down to (and including) blocks of size
/// `to`: e.g. 32768 → 128 is 9 levels (32768, 16384, …, 128).
pub fn levels_between(from: usize, to: usize) -> u32 {
    if to >= from {
        return 1;
    }
    let mut levels = 1;
    let mut size = from;
    while size / 2 >= to {
        size /= 2;
        levels += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        ProtocolConfig::default().validate().unwrap();
        ProtocolConfig::basic(32).validate().unwrap();
        ProtocolConfig::all_techniques().trivial_verify().validate().unwrap();
    }

    #[test]
    fn levels_arithmetic() {
        assert_eq!(levels_between(32768, 32768), 1);
        assert_eq!(levels_between(32768, 16384), 2);
        assert_eq!(levels_between(32768, 128), 9);
        assert_eq!(levels_between(128, 256), 1);
        let cfg = ProtocolConfig::basic(128);
        assert_eq!(cfg.block_size_at(0), 32768);
        assert_eq!(cfg.block_size_at(cfg.global_levels() - 1), 128);
    }

    #[test]
    fn continuation_extends_levels() {
        let cfg =
            ProtocolConfig { min_block_global: 128, min_block_cont: 16, ..Default::default() };
        assert!(cfg.total_levels() > cfg.global_levels());
        assert_eq!(cfg.total_levels(), levels_between(1 << 15, 16));
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = ProtocolConfig { start_block: 1000, ..Default::default() };
        assert!(cfg.validate().is_err());

        let cfg = ProtocolConfig { min_block_global: 1 << 20, ..Default::default() };
        assert!(cfg.validate().is_err());

        let cfg = ProtocolConfig {
            verify: VerifyStrategy::GroupTesting { batches: vec![] },
            ..Default::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = ProtocolConfig {
            verify: VerifyStrategy::PerCandidate { bits: 0 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }
}
