//! Parameter-file parsing.
//!
//! The paper's prototype is driven by "a simple parameter file ... used
//! to specify all the options and techniques that should be used in each
//! round, such as the type and number of bits per hash, the strategy for
//! verifying candidate hashes through individual or group hashes or for
//! salvaging failed candidates". This module parses the same kind of
//! file into a [`ProtocolConfig`]:
//!
//! ```text
//! # msync parameters
//! start_block = 32768
//! min_block_global = 64
//! min_block_cont = 16
//! global_extra_bits = 8
//! cont_bits = 4
//! use_continuation = true
//! use_decomposable = true
//! skip_sibling_of_matched = true
//! verify = group 4x20, 1x20      # batches: group_size x bits
//! #verify = per_candidate 32
//! ```

use crate::config::{BatchConfig, ProtocolConfig, VerifyStrategy};

/// Parse a parameter file into a configuration, starting from defaults.
pub fn parse(text: &str) -> Result<ProtocolConfig, String> {
    let mut cfg = ProtocolConfig::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
        let key = key.trim();
        let value = value.trim();
        let bad = |what: &str| format!("line {}: invalid {what}: `{value}`", lineno + 1);
        match key {
            "start_block" => cfg.start_block = value.parse().map_err(|_| bad("integer"))?,
            "min_block_global" => {
                cfg.min_block_global = value.parse().map_err(|_| bad("integer"))?
            }
            "min_block_cont" => cfg.min_block_cont = value.parse().map_err(|_| bad("integer"))?,
            "global_extra_bits" => {
                cfg.global_extra_bits = value.parse().map_err(|_| bad("integer"))?
            }
            "cont_bits" => cfg.cont_bits = value.parse().map_err(|_| bad("integer"))?,
            "local_bits" => cfg.local_bits = value.parse().map_err(|_| bad("integer"))?,
            "local_range_blocks" => {
                cfg.local_range_blocks = value.parse().map_err(|_| bad("integer"))?
            }
            "max_positions_per_hash" => {
                cfg.max_positions_per_hash = value.parse().map_err(|_| bad("integer"))?
            }
            "use_continuation" => {
                cfg.use_continuation = parse_bool(value).ok_or_else(|| bad("bool"))?
            }
            "use_local" => cfg.use_local = parse_bool(value).ok_or_else(|| bad("bool"))?,
            "use_decomposable" => {
                cfg.use_decomposable = parse_bool(value).ok_or_else(|| bad("bool"))?
            }
            "skip_sibling_of_matched" => {
                cfg.skip_sibling_of_matched = parse_bool(value).ok_or_else(|| bad("bool"))?
            }
            "cont_first_phase" => {
                cfg.cont_first_phase = parse_bool(value).ok_or_else(|| bad("bool"))?
            }
            "verify" => cfg.verify = parse_verify(value).ok_or_else(|| bad("verify spec"))?,
            other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
        }
    }
    cfg.validate()?;
    Ok(cfg)
}

fn parse_bool(v: &str) -> Option<bool> {
    match v {
        "true" | "yes" | "on" | "1" => Some(true),
        "false" | "no" | "off" | "0" => Some(false),
        _ => None,
    }
}

/// `per_candidate <bits>` or `group <size>x<bits>[, <size>x<bits> ...]`.
fn parse_verify(v: &str) -> Option<VerifyStrategy> {
    let v = v.trim();
    if let Some(rest) = v.strip_prefix("per_candidate") {
        let bits: u32 = rest.trim().parse().ok()?;
        return Some(VerifyStrategy::PerCandidate { bits });
    }
    let rest = v.strip_prefix("group")?;
    let mut batches = Vec::new();
    for spec in rest.split(',') {
        let spec = spec.trim();
        let (size, bits) = spec.split_once('x')?;
        batches.push(BatchConfig {
            group_size: size.trim().parse().ok()?,
            bits: bits.trim().parse().ok()?,
        });
    }
    if batches.is_empty() {
        return None;
    }
    Some(VerifyStrategy::GroupTesting { batches })
}

/// Render a configuration back into parameter-file syntax (round-trips
/// through [`parse`]).
pub fn render(cfg: &ProtocolConfig) -> String {
    let verify = match &cfg.verify {
        VerifyStrategy::PerCandidate { bits } => format!("per_candidate {bits}"),
        VerifyStrategy::GroupTesting { batches } => {
            let specs: Vec<String> =
                batches.iter().map(|b| format!("{}x{}", b.group_size, b.bits)).collect();
            format!("group {}", specs.join(", "))
        }
    };
    format!(
        "start_block = {}\nmin_block_global = {}\nmin_block_cont = {}\n\
         global_extra_bits = {}\ncont_bits = {}\nlocal_bits = {}\n\
         local_range_blocks = {}\nmax_positions_per_hash = {}\n\
         use_continuation = {}\nuse_local = {}\nuse_decomposable = {}\n\
         skip_sibling_of_matched = {}\ncont_first_phase = {}\nverify = {}\n",
        cfg.start_block,
        cfg.min_block_global,
        cfg.min_block_cont,
        cfg.global_extra_bits,
        cfg.cont_bits,
        cfg.local_bits,
        cfg.local_range_blocks,
        cfg.max_positions_per_hash,
        cfg.use_continuation,
        cfg.use_local,
        cfg.use_decomposable,
        cfg.skip_sibling_of_matched,
        cfg.cont_first_phase,
        verify,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_file() {
        let text = "\
# comment line
start_block = 8192
min_block_global = 64   # inline comment
min_block_cont = 16
cont_bits = 3
use_continuation = yes
use_decomposable = off
verify = group 4x12, 2x14, 1x16
";
        let cfg = parse(text).unwrap();
        assert_eq!(cfg.start_block, 8192);
        assert_eq!(cfg.min_block_global, 64);
        assert_eq!(cfg.cont_bits, 3);
        assert!(cfg.use_continuation);
        assert!(!cfg.use_decomposable);
        match cfg.verify {
            VerifyStrategy::GroupTesting { ref batches } => {
                assert_eq!(batches.len(), 3);
                assert_eq!(batches[1], BatchConfig { group_size: 2, bits: 14 });
            }
            _ => panic!("wrong strategy"),
        }
    }

    #[test]
    fn parse_per_candidate() {
        let cfg = parse("verify = per_candidate 32\n").unwrap();
        assert_eq!(cfg.verify, VerifyStrategy::PerCandidate { bits: 32 });
    }

    #[test]
    fn errors_are_located() {
        assert!(parse("bogus_key = 3").unwrap_err().contains("line 1"));
        assert!(parse("\nstart_block == 3").unwrap_err().contains("line 2"));
        assert!(parse("cont_bits = many").unwrap_err().contains("line 1"));
        assert!(parse("verify = group").is_err());
        // Invalid after parse: caught by validate.
        assert!(parse("start_block = 1000").is_err());
    }

    #[test]
    fn render_roundtrip() {
        let cfg = ProtocolConfig::default();
        let text = render(&cfg);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, cfg);

        let cfg = ProtocolConfig { verify: VerifyStrategy::PerCandidate { bits: 24 }, ..cfg };
        assert_eq!(parse(&render(&cfg)).unwrap(), cfg);
    }
}
