//! The client's *map* of the server's file (paper §5.1).
//!
//! During map construction the client learns, region by region, that
//! certain byte ranges of the current file `f_new` are identical to
//! ranges it already holds in `f_old`. The map is conceptually a string
//! over `Σ ∪ {?}`: identical to `f_new` in *known areas* and `?`
//! elsewhere. We represent it as a sorted list of non-overlapping
//! segments, each tying a range of `f_new` to a range of `f_old`.
//!
//! Both endpoints maintain structurally identical maps (the server knows
//! *which* of its regions the client has, though not where they live in
//! `f_old`), which is what lets the delta phase build the same reference
//! string on both sides.

/// One known area: `f_new[new_off .. new_off+len] == f_old[old_off .. old_off+len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Start of the known area in the *current* (server) file.
    pub new_off: u64,
    /// Start of the identical bytes in the *outdated* (client) file.
    /// The server side carries 0 here — it never learns client offsets
    /// and never needs them.
    pub old_off: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Segment {
    /// End offset (exclusive) in the new file.
    pub fn new_end(&self) -> u64 {
        self.new_off + self.len
    }
}

/// The map: known areas of `f_new`, sorted by `new_off`, non-overlapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileMap {
    segments: Vec<Segment>,
}

impl FileMap {
    /// An empty map (everything unknown).
    pub fn new() -> Self {
        Self::default()
    }

    /// The known segments, sorted by new-file offset.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total number of known bytes.
    pub fn known_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// Insert a confirmed match. Adjacent segments that also agree on the
    /// old-file side are merged so continuation extension yields one long
    /// anchor instead of a chain of block-sized stubs.
    ///
    /// # Panics
    ///
    /// Debug-panics if the new-file range overlaps an existing segment —
    /// the protocol only confirms matches for uncovered regions.
    pub fn insert(&mut self, seg: Segment) {
        if seg.len == 0 {
            return;
        }
        let idx = self.segments.partition_point(|s| s.new_off < seg.new_off);
        debug_assert!(
            idx == 0 || self.segments[idx - 1].new_end() <= seg.new_off,
            "segment overlaps predecessor"
        );
        debug_assert!(
            idx == self.segments.len() || seg.new_end() <= self.segments[idx].new_off,
            "segment overlaps successor"
        );
        self.segments.insert(idx, seg);
        // Try merging with neighbours (both files contiguous).
        if idx + 1 < self.segments.len() {
            let (a, b) = (self.segments[idx], self.segments[idx + 1]);
            if a.new_end() == b.new_off && a.old_off + a.len == b.old_off {
                self.segments[idx].len += b.len;
                self.segments.remove(idx + 1);
            }
        }
        if idx > 0 {
            let (a, b) = (self.segments[idx - 1], self.segments[idx]);
            if a.new_end() == b.new_off && a.old_off + a.len == b.old_off {
                self.segments[idx - 1].len += b.len;
                self.segments.remove(idx);
            }
        }
    }

    /// Is the new-file range `[off, off+len)` completely unknown (no
    /// overlap with any known segment)?
    pub fn is_unknown(&self, off: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = off + len;
        let idx = self.segments.partition_point(|s| s.new_end() <= off);
        match self.segments.get(idx) {
            Some(s) => s.new_off >= end,
            None => true,
        }
    }

    /// The segment covering new-file offset `off`, if any.
    pub fn segment_at(&self, off: u64) -> Option<&Segment> {
        let idx = self.segments.partition_point(|s| s.new_end() <= off);
        self.segments.get(idx).filter(|s| s.new_off <= off)
    }

    /// Reconstruct the bytes of a fully-known new-file range from the
    /// old file (used to compute hashes of covered siblings for
    /// decomposition). Returns `None` if any byte of the range is
    /// unknown.
    pub fn bytes_for_new_range(&self, old: &[u8], new_off: u64, len: u64) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = new_off;
        let end = new_off + len;
        while pos < end {
            let seg = self.segment_at(pos)?;
            let take = (seg.new_end() - pos).min(end - pos);
            let old_start = seg.old_off + (pos - seg.new_off);
            out.extend_from_slice(&old[old_start as usize..(old_start + take) as usize]);
            pos += take;
        }
        Some(out)
    }

    /// Build the reference string for the delta phase from the *old*
    /// file: the concatenation of the known areas in new-file order.
    /// This is the client's construction.
    pub fn reference_from_old(&self, old: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.known_bytes() as usize);
        for s in &self.segments {
            out.extend_from_slice(&old[s.old_off as usize..(s.old_off + s.len) as usize]);
        }
        out
    }

    /// Build the same reference string from the *new* file — the server's
    /// construction. Byte-identical to [`Self::reference_from_old`]
    /// whenever every confirmed match is true.
    pub fn reference_from_new(&self, new: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.known_bytes() as usize);
        for s in &self.segments {
            out.extend_from_slice(&new[s.new_off as usize..s.new_end() as usize]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut m = FileMap::new();
        m.insert(Segment { new_off: 100, old_off: 50, len: 10 });
        m.insert(Segment { new_off: 300, old_off: 200, len: 20 });
        assert_eq!(m.known_bytes(), 30);
        assert!(m.is_unknown(0, 100));
        assert!(!m.is_unknown(95, 10));
        assert!(!m.is_unknown(105, 1));
        assert!(m.is_unknown(110, 190));
        assert!(!m.is_unknown(290, 20));
        assert!(m.is_unknown(320, 1000));
    }

    #[test]
    fn merge_contiguous_both_sides() {
        let mut m = FileMap::new();
        m.insert(Segment { new_off: 0, old_off: 0, len: 10 });
        m.insert(Segment { new_off: 10, old_off: 10, len: 10 });
        assert_eq!(m.segments().len(), 1);
        assert_eq!(m.segments()[0], Segment { new_off: 0, old_off: 0, len: 20 });
        // Contiguous in new but not old: no merge.
        m.insert(Segment { new_off: 20, old_off: 100, len: 5 });
        assert_eq!(m.segments().len(), 2);
    }

    #[test]
    fn merge_via_middle_insert() {
        let mut m = FileMap::new();
        m.insert(Segment { new_off: 0, old_off: 0, len: 8 });
        m.insert(Segment { new_off: 16, old_off: 16, len: 8 });
        m.insert(Segment { new_off: 8, old_off: 8, len: 8 });
        assert_eq!(m.segments().len(), 1);
        assert_eq!(m.segments()[0].len, 24);
    }

    #[test]
    fn reference_construction_agrees() {
        let old = b"AAAABBBBCCCCDDDD".to_vec();
        //          0   4   8   12
        let new = b"xxBBBBxxxxDDDDxx".to_vec();
        let mut m = FileMap::new();
        m.insert(Segment { new_off: 2, old_off: 4, len: 4 });
        m.insert(Segment { new_off: 10, old_off: 12, len: 4 });
        let from_old = m.reference_from_old(&old);
        let from_new = m.reference_from_new(&new);
        assert_eq!(from_old, b"BBBBDDDD");
        assert_eq!(from_old, from_new);
    }

    #[test]
    fn segment_at_lookup() {
        let mut m = FileMap::new();
        m.insert(Segment { new_off: 10, old_off: 0, len: 5 });
        assert!(m.segment_at(9).is_none());
        assert_eq!(m.segment_at(10).unwrap().old_off, 0);
        assert_eq!(m.segment_at(14).unwrap().old_off, 0);
        assert!(m.segment_at(15).is_none());
    }

    #[test]
    fn bytes_for_new_range_walks_segments() {
        let old = b"AAAABBBBCCCC".to_vec();
        let mut m = FileMap::new();
        // new [0,4) = old [4,8); new [4,8) = old [0,4)  (swapped blocks)
        m.insert(Segment { new_off: 0, old_off: 4, len: 4 });
        m.insert(Segment { new_off: 4, old_off: 0, len: 4 });
        assert_eq!(m.bytes_for_new_range(&old, 0, 8).unwrap(), b"BBBBAAAA");
        assert_eq!(m.bytes_for_new_range(&old, 2, 4).unwrap(), b"BBAA");
        // Range extending past coverage: None.
        assert!(m.bytes_for_new_range(&old, 6, 4).is_none());
        assert!(m.bytes_for_new_range(&old, 100, 1).is_none());
        // Empty range always works.
        assert_eq!(m.bytes_for_new_range(&old, 3, 0).unwrap(), b"");
    }

    #[test]
    fn zero_len_ignored() {
        let mut m = FileMap::new();
        m.insert(Segment { new_off: 5, old_off: 5, len: 0 });
        assert!(m.segments().is_empty());
        assert!(m.is_unknown(0, 0));
    }
}
